"""Custom scenario sweeps with the declarative Sweep DSL.

    python examples/engine_sweep.py

One `Sweep` declaration spans a (protocol x nprocs x seed x phase) grid
including checkpoint -> restart chains: the `restart` axis marks cells
that restore from their checkpoint sibling, the derived
`checkpoint_fractions` column schedules the parent's snapshot, and the
engine expands/dedupes the whole product — the probe run behind each
fraction schedule and the checkpoint run behind each restart simulate
exactly once.  Set `jobs` or a cache directory on the engine below to
fan out over worker processes and make reruns free.

This is the intended template for exploring scenarios the paper didn't
run; `repro-mpi sweep --axis ...` is the same machinery from the shell.
"""

from repro.harness import ExperimentEngine, Sweep


def build_sweep() -> Sweep:
    return Sweep(
        "comd_ckpt_restart",
        axes={
            "nprocs": (4, 8),
            "protocol": ("2pc", "cc"),
            "seed": (0, 1),
            "restart": (False, True),
        },
        base={"app": "comd", "niters": 8, "ppn": 4},
        # Checkpoint halfway through the probe runtime; the probe itself
        # becomes a dedupable engine job.
        derive={"checkpoint_fractions": lambda p: (0.5,)},
    )


def main() -> None:
    engine = ExperimentEngine(jobs=1)
    sweep = build_sweep()
    results = engine.run_sweep(sweep)

    result = sweep.fold(
        results,
        metrics=(
            ("ckpt (s)", lambda r: (
                [c for c in r.checkpoints if c.committed][0].checkpoint_time
                if any(c.committed for c in r.checkpoints) else None
            )),
            ("restart ready (s)", lambda r: r.restart_ready_time or None),
        ),
        title="CoMD checkpoint/restart sweep",
    )
    print(result.render())
    print(engine.last_stats.summary())


if __name__ == "__main__":
    main()
