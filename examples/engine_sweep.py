"""Custom experiment sweeps on the batch engine.

    python examples/engine_sweep.py

Builds a (protocol x nprocs x seed) sweep of declarative RunSpecs,
including a checkpoint/restart chain per cell, and submits everything
as ONE engine batch: duplicates dedupe, dependent phases (the probe run
behind a fraction-scheduled checkpoint, the checkpoint run behind a
restart) are expanded and scheduled automatically, and — with `jobs` or
a cache directory set below — the sweep fans out over worker processes
and persists across reruns.  This is the intended template for
exploring scenarios the paper didn't run.
"""

from repro.harness import ExperimentEngine, RunSpec
from repro.util.records import format_table


def build_sweep() -> list[RunSpec]:
    specs: list[RunSpec] = []
    for nprocs in (4, 8):
        for protocol in ("2pc", "cc"):
            for seed in (0, 1):
                ckpt = RunSpec.create(
                    "comd",
                    nprocs,
                    app_kwargs={"niters": 8},
                    protocol=protocol,
                    ppn=4,
                    seed=seed,
                    # Checkpoint halfway through the probe runtime; the
                    # probe itself becomes a dedupable engine job.
                    checkpoint_fractions=(0.5,),
                )
                restart = RunSpec.create(
                    "comd",
                    nprocs,
                    app_kwargs={"niters": 8},
                    protocol=protocol,
                    ppn=4,
                    seed=seed,
                    restart_of=ckpt,
                )
                specs += [ckpt, restart]
    return specs


def main() -> None:
    # jobs=4 fans out over worker processes; add cache=ResultCache(dir)
    # to make reruns free.
    engine = ExperimentEngine(jobs=1)
    specs = build_sweep()
    results = engine.run_batch(specs)

    rows = []
    for spec in specs:
        r = results[spec]
        if spec.restart_of is not None:
            rows.append(
                [spec.protocol, spec.nprocs, spec.seed, "restart",
                 f"{r.restart_ready_time:.3f}s ready"]
            )
        else:
            committed = [c for c in r.checkpoints if c.committed]
            rows.append(
                [spec.protocol, spec.nprocs, spec.seed, "checkpoint",
                 f"{committed[0].checkpoint_time:.3f}s ckpt"]
            )
    print(format_table(["protocol", "procs", "seed", "phase", "time"], rows))
    print(engine.last_stats.summary())


if __name__ == "__main__":
    main()
