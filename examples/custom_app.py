"""Writing your own checkpointable MPI application.

    python examples/custom_app.py

Demonstrates the full application contract: persistent state in
``ctx.state`` (including virtual communicator handles and numpy arrays),
sub-communicators, overlapping groups, non-blocking collectives, the
gather-then-commit step structure, and per-step deterministic RNG —
everything needed for the intra-step replay machinery to restart the
app exactly.
"""

import numpy as np

from repro.apps.base import MpiApp
from repro.harness.runner import launch_run, restart_run
from repro.netmodel import StorageModel


class BlockJacobi(MpiApp):
    """A block-Jacobi-flavoured iteration on a 2D process grid.

    Each step: neighbour halo exchange on the world ring, a row-wise
    reduction on a split communicator, a non-blocking global residual
    reduction overlapped with the local update, and a deterministic
    perturbation drawn from the step RNG.
    """

    name = "block-jacobi"

    def __init__(self, niters=30, block=32):
        super().__init__(niters)
        self.block = block

    def setup(self, ctx):
        # Sub-communicators are created once, in setup, and the virtual
        # handles live in checkpointed state.
        rows = max(int(np.sqrt(ctx.nprocs)), 1)
        ctx.state["row"] = ctx.world.split(color=ctx.rank // rows, key=ctx.rank)
        rng = ctx.step_rng(-1, "init")
        ctx.state["x"] = rng.standard_normal(self.block)
        ctx.state["residuals"] = []
        ctx.declare_memory(128 << 20)

    def step(self, ctx, i):
        s = ctx.state
        x = s["x"]
        me, n = ctx.rank, ctx.nprocs

        # 1. Halo exchange (p2p) with ring neighbours.
        left, right = (me - 1) % n, (me + 1) % n
        ghost_l = ctx.world.sendrecv(x[:4], dest=left, source=right, sendtag=1, recvtag=1)
        ghost_r = ctx.world.sendrecv(x[-4:], dest=right, source=left, sendtag=2, recvtag=2)

        # 2. Row-wise mean (blocking collective on the sub-communicator).
        row_mean = s["row"].allreduce(float(x.mean())) / s["row"].size

        # 3. Local smoothing, overlapped with the global residual norm.
        res_req = ctx.world.iallreduce(float(x @ x))
        ctx.compute_jittered(2e-5, i, "smooth")
        noise = ctx.step_rng(i, "perturb").normal(0, 1e-3, x.shape)
        x_new = 0.9 * x + 0.1 * row_mean + noise
        x_new[:4] += 1e-6 * ghost_r
        x_new[-4:] += 1e-6 * ghost_l
        residual = float(np.sqrt(res_req.wait()))

        # 4. Commit block: all state writes, derived from locals, at the
        #    very end of the step and after the last MPI call.
        s["x"] = x_new
        s["residuals"] = s["residuals"] + [round(residual, 9)]

    def finalize(self, ctx):
        return {
            "x_norm": round(float(np.linalg.norm(ctx.state["x"])), 9),
            "last_residuals": tuple(ctx.state["residuals"][-3:]),
        }


def main() -> None:
    nprocs = 9
    factory = lambda: BlockJacobi(niters=30)
    storage = StorageModel(base_latency=0.001)

    native = launch_run(factory, nprocs, protocol="native", seed=11)
    print("native:", native.per_rank[0])

    ck = launch_run(
        factory, nprocs, protocol="cc", seed=11,
        checkpoint_at=[native.runtime * 0.6], storage=storage,
    )
    assert repr(ck.per_rank) == repr(native.per_rank)
    images = ck.committed_images()
    print(f"checkpoint at iteration {images[0].app_state['iter']}/30")

    rs = restart_run(factory, images, seed=11, storage=storage)
    assert repr(rs.per_rank) == repr(native.per_rank)
    print("restart reproduces native results:", rs.per_rank[0])


if __name__ == "__main__":
    main()
