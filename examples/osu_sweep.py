"""OSU micro-benchmark sweep: the paper's Figure 5a/5b in miniature.

    python examples/osu_sweep.py

Sweeps the four collective kinds over message sizes for native, 2PC,
and CC, printing the overhead table.  This is the experiment that shows
*why* the CC algorithm was needed: the trivial-barrier 2PC approach
costs hundreds of percent on small-message collectives at high call
rates, while CC's local sequence-number counting costs almost nothing.
"""

from repro.apps import make_app_factory
from repro.core import UnsupportedOperationError
from repro.des import ProcessFailed
from repro.harness.runner import launch_run
from repro.util.records import format_table


def measure(kind: str, nbytes: int, blocking: bool, nprocs: int = 16):
    factory = make_app_factory(
        "osu", niters=40, kind=kind, nbytes=nbytes, blocking=blocking
    )
    out = {}
    for protocol in ("native", "2pc", "cc"):
        try:
            r = launch_run(factory, nprocs, protocol=protocol, ppn=8, seed=0)
            out[protocol] = r.runtime
        except ProcessFailed as exc:
            if isinstance(exc.original, UnsupportedOperationError):
                out[protocol] = None
            else:
                raise
    return out


def main() -> None:
    rows = []
    for blocking in (True, False):
        for kind in ("bcast", "alltoall", "allreduce", "allgather"):
            for nbytes in (4, 1024, 1 << 20):
                res = measure(kind, nbytes, blocking)
                base = res["native"]
                name = ("" if blocking else "i") + kind
                size = {4: "4B", 1024: "1KB", 1 << 20: "1MB"}[nbytes]

                def fmt(t):
                    return "NA" if t is None else f"{(t / base - 1) * 100:.1f}"

                rows.append([name, size, fmt(res["2pc"]), fmt(res["cc"])])
    print(
        format_table(
            ["benchmark", "msg", "2PC overhead %", "CC overhead %"],
            rows,
            title="OSU collective sweep, 16 procs / 2 nodes (cf. paper Fig. 5)",
        )
    )


if __name__ == "__main__":
    main()
