"""The non-blocking-collective Poisson solver: why CC matters.

    python examples/nonblocking_poisson.py

The paper's Poisson solver (conjugate gradient with Iallreduce /
Iallgather only) is the workload class MANA's 2PC algorithm simply
cannot checkpoint — non-blocking collectives don't tolerate inserted
barriers.  This example shows 2PC refusing the app, CC running it with
sub-1% overhead, and a checkpoint landing while reductions are in
flight (the Section 4.3.2 drain completes them first).
"""

from repro.apps import PoissonCG
from repro.core import UnsupportedOperationError
from repro.des import ProcessFailed
from repro.harness.runner import launch_run, restart_run
from repro.netmodel import StorageModel


def main() -> None:
    nprocs = 8
    factory = lambda: PoissonCG(niters=40, local_n=48, rel_error=1e-4)

    native = launch_run(factory, nprocs, protocol="native", seed=3)
    out = native.per_rank[0]
    print(
        f"native CG: {out['iters_run']} iterations, converged={out['converged']}, "
        f"rel residual={out['rel_residual']:.2e}"
    )

    print("\ntrying MANA/2PC ...")
    try:
        launch_run(factory, nprocs, protocol="2pc", seed=3)
    except ProcessFailed as exc:
        assert isinstance(exc.original, UnsupportedOperationError)
        print(f"  2PC refused, as in the paper: {exc.original}")

    print("\nrunning under MANA/CC ...")
    cc = launch_run(factory, nprocs, protocol="cc", seed=3)
    overhead = (cc.runtime / native.runtime - 1) * 100
    print(f"  CC overhead: {overhead:.2f}% (paper: <1%)")

    print("\ncheckpoint mid-solve, then restart ...")
    storage = StorageModel(base_latency=0.01)
    ck = launch_run(
        factory, nprocs, protocol="cc", seed=3,
        checkpoint_at=[native.runtime * 0.4], storage=storage,
    )
    images = ck.committed_images()
    it = images[0].app_state["iter"]
    print(f"  snapshot at CG iteration {it}; in-flight reductions drained")
    rs = restart_run(factory, images, seed=3, storage=storage)
    assert repr(rs.per_rank) == repr(native.per_rank)
    print("  restarted solve converges to the identical solution: OK")


if __name__ == "__main__":
    main()
