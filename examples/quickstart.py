"""Quickstart: run an MPI app under the Collective Clock protocol and
take a transparent checkpoint.

    python examples/quickstart.py

Shows the three execution modes of the reproduction (native / 2PC / CC),
a mid-run checkpoint, and a restart from the images — the end-to-end
story of the paper in ~60 lines of user code.
"""

from repro.apps.base import MpiApp
from repro.harness.runner import launch_run, restart_run
from repro.netmodel import StorageModel


class RingReduce(MpiApp):
    """A toy app: ring p2p exchange plus a global reduction per step."""

    name = "ring-reduce"

    def setup(self, ctx):
        ctx.state["total"] = 0

    def step(self, ctx, i):
        me, n = ctx.rank, ctx.nprocs
        ctx.compute_jittered(5e-6, i)  # model some local work
        token = ctx.world.sendrecv(
            me * 100 + i, dest=(me + 1) % n, source=(me - 1) % n,
            sendtag=1, recvtag=1,
        )
        step_sum = ctx.world.allreduce(token)
        # commit block: state writes last, derived from call results
        ctx.state["total"] = ctx.state["total"] + step_sum

    def finalize(self, ctx):
        return ctx.state["total"]


def main() -> None:
    nprocs, niters = 8, 50
    factory = lambda: RingReduce(niters=niters)

    print("1) native run (no checkpoint support) ...")
    native = launch_run(factory, nprocs, protocol="native", seed=42)
    print(f"   result={native.per_rank[0]}  runtime={native.runtime * 1e3:.3f} ms")

    print("2) same app under MANA/2PC and MANA/CC wrappers ...")
    tpc = launch_run(factory, nprocs, protocol="2pc", seed=42)
    cc = launch_run(factory, nprocs, protocol="cc", seed=42)
    assert tpc.per_rank == cc.per_rank == native.per_rank
    print(
        f"   2PC overhead: {(tpc.runtime / native.runtime - 1) * 100:6.2f} %   "
        f"CC overhead: {(cc.runtime / native.runtime - 1) * 100:6.2f} %"
    )

    print("3) CC run with a checkpoint at mid-run ...")
    storage = StorageModel(base_latency=0.001)
    ck = launch_run(
        factory, nprocs, protocol="cc", seed=42,
        checkpoint_at=[native.runtime * 0.5], storage=storage,
    )
    record = ck.checkpoints[0]
    images = record.images
    print(
        f"   checkpoint committed at t={record.t_written:.6f}s "
        f"(drain {1e6 * (record.t_quiesced - record.t_request):.1f} us); "
        f"snapshot taken at iteration {images[0].app_state['iter']}/{niters}"
    )

    print("4) restart from the images in a fresh 'lower half' ...")
    rs = restart_run(factory, images, seed=42, storage=storage)
    assert rs.per_rank == native.per_rank
    print(f"   restart result={rs.per_rank[0]}  == native result: OK")


if __name__ == "__main__":
    main()
