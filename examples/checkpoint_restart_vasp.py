"""Checkpoint/restart of the collective-intensive miniVASP workload.

    python examples/checkpoint_restart_vasp.py

Reproduces the paper's headline scenario: VASP is the very-high
collective-rate application (Table 1) where MANA's old 2PC algorithm
hurt most; the CC algorithm checkpoints it with near-zero steady-state
overhead.  This example measures both protocols' runtime overhead,
takes a checkpoint under each, persists the images to disk (real files
with CRCs), and restarts from them.
"""

import tempfile
from pathlib import Path

from repro.apps import MiniVasp
from repro.harness.runner import launch_run, restart_run
from repro.mana import load_checkpoint_set, save_checkpoint_set
from repro.netmodel import StorageModel


def main() -> None:
    nprocs, niters = 16, 10
    factory = lambda: MiniVasp(niters=niters)
    storage = StorageModel()  # Lustre-like defaults

    native = launch_run(factory, nprocs, protocol="native", ppn=8, seed=7)
    print(
        f"native miniVASP: runtime={native.runtime:.4f}s  "
        f"coll rate={native.coll_rate:.0f}/s  p2p rate={native.p2p_rate:.0f}/s"
    )

    for protocol in ("2pc", "cc"):
        run = launch_run(factory, nprocs, protocol=protocol, ppn=8, seed=7)
        overhead = (run.runtime / native.runtime - 1) * 100
        print(f"{protocol.upper():>4}: runtime={run.runtime:.4f}s  overhead={overhead:5.2f}%")

    print("\ncheckpointing under CC at 50% of the run ...")
    ck = launch_run(
        factory, nprocs, protocol="cc", ppn=8, seed=7,
        checkpoint_at=[native.runtime * 0.5], storage=storage,
    )
    rec = ck.checkpoints[0]
    print(
        f"  drain-to-safe-state: {1e3 * (rec.t_quiesced - rec.t_request):.3f} ms "
        f"(the CC topological sort at work)\n"
        f"  total checkpoint time: {rec.checkpoint_time:.2f} s "
        f"({rec.total_image_bytes / (1 << 30):.1f} GiB of images)"
    )

    with tempfile.TemporaryDirectory() as tmp:
        paths = save_checkpoint_set(rec.images, tmp)
        print(f"  wrote {len(paths)} image files under {Path(tmp).name}/")
        images = load_checkpoint_set(tmp)
        rs = restart_run(factory, images, ppn=8, seed=7, storage=storage)
        print(
            f"  restart: lower half rebuilt and app resumed by "
            f"t={rs.restart_ready_time:.2f}s"
        )
        assert repr(rs.per_rank) == repr(native.per_rank)
        print("  restarted run reproduces the native results exactly: OK")


if __name__ == "__main__":
    main()
