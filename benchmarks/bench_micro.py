"""Micro-benchmarks of the core mechanisms (not a paper figure).

Measures the wall-clock cost of the hot primitives: sequence-number
increments (the CC steady-state cost), ggid hashing, the DES event loop,
and the collective cost solvers — the pieces whose cheapness the whole
reproduction relies on.
"""

from repro.core import SeqNumTable, compute_ggid
from repro.des import Simulator
from repro.netmodel import CollectiveTuning, make_solver, make_topology


def test_seq_increment_cost(benchmark):
    """The paper's central claim: counting collectives is nearly free."""
    table = SeqNumTable()
    table.ensure_group(0xABCDEF)
    benchmark(table.increment, 0xABCDEF)


def test_ggid_hash_cost(benchmark):
    ranks = tuple(range(512))
    benchmark(compute_ggid, ranks)


def test_des_event_throughput(benchmark):
    """Events per second of the simulation kernel (sleep ping-pong)."""

    def run_events():
        with Simulator() as sim:
            def body():
                for _ in range(500):
                    sim.sleep(1e-6)

            sim.spawn(body)
            sim.run()
            return sim.event_count

    count = benchmark(run_events)
    assert count >= 500


def test_bcast_solver_cost(benchmark):
    """Cost of resolving one 512-rank broadcast's exit times."""
    topo = make_topology(512, ppn=128)
    tuning = CollectiveTuning()

    def resolve():
        solver = make_solver("bcast", tuple(range(512)), topo, tuning, 1024)
        for i in range(512):
            solver.on_arrival(i, 0.0)
        return solver.complete

    assert benchmark(resolve)


def test_alltoall_solver_cost(benchmark):
    topo = make_topology(256, ppn=128)
    tuning = CollectiveTuning()

    def resolve():
        solver = make_solver("alltoall", tuple(range(256)), topo, tuning, 4096)
        for i in range(256):
            solver.on_arrival(i, float(i) * 1e-9)
        return solver.complete

    assert benchmark(resolve)
