"""Micro-benchmarks of the core mechanisms (not a paper figure).

Measures the wall-clock cost of the hot primitives: sequence-number
increments (the CC steady-state cost), ggid hashing, the DES event loop
(pure-callback dispatch, thread-handoff process resumes), the indexed
message-matching engine, and the collective cost solvers — the pieces
whose cheapness the whole reproduction relies on.

Two entry points:

* ``pytest benchmarks/bench_micro.py --benchmark-only`` — statistical
  runs under pytest-benchmark.
* ``python benchmarks/bench_micro.py --emit BENCH_hotpath.json`` — the
  standalone hot-path emitter: appends one labelled metrics entry to the
  JSON trajectory file (``--label``), and with ``--check BASELINE
  --min-ratio 0.7`` exits non-zero if the kernel event rate regressed
  more than 30% versus the baseline's latest entry (the CI smoke gate).

The emitter also runs ``bench_resume``, the per-execution-backend
suspend/resume microbenchmark (``--gate-resume RATIO`` exits non-zero
unless the best same-thread backend beats the ``threads`` reference by
RATIO×), and ``bench_warm_restart``, the restart-chain
macrobenchmark: a cold probe → checkpoint → restart chain versus the
image-tier warm path that re-executes only the restart cell.  It raises
(and ``--gate-warm-restart`` exits non-zero) if the warm path simulated
any parent job, asserted via ``EngineStats`` — the same spirit as the
sweep-smoke warm-rerun-zero check.
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core import SeqNumTable, compute_ggid
from repro.des import Simulator, available_backends
from repro.netmodel import CollectiveTuning, make_solver, make_topology
from repro.simmpi.datatypes import ANY_SOURCE
from repro.simmpi.matching import MatchingEngine

#: Metric names gated by ``--check`` (others are informational).
GATED_METRICS = (
    "kernel_timer_events_per_sec",
    "kernel_process_events_per_sec",
)


# --------------------------------------------------------------------- #
# Hot-path workloads (shared by pytest-benchmark and the emitter)
# --------------------------------------------------------------------- #

def _timer_chain(n: int = 100_000, delay: float = 1e-6) -> int:
    """Pure-callback timer chain via the fire-and-forget defer path."""
    with Simulator() as sim:
        state = {"left": n}

        def tick():
            state["left"] -= 1
            if state["left"] > 0:
                sim.defer(delay, tick)

        sim.defer(delay, tick)
        sim.run()
        return sim.event_count


def _nowq_chain(n: int = 100_000) -> int:
    """Zero-delay callback chain: exercises the now-queue heap bypass."""
    return _timer_chain(n, delay=0.0)


def _process_pingpong(n: int = 10_000) -> int:
    """Thread-handoff cost: one process sleeping n times."""
    with Simulator() as sim:
        def body():
            for _ in range(n):
                sim.sleep(1e-6)

        sim.spawn(body)
        sim.run()
        return sim.event_count


def _resume_loop(backend: str, n: int = 10_000) -> int:
    """Suspend/resume round-trips under one execution backend.

    Single process, n sleeps: every event is a process resume, so the
    measured rate is almost pure backend transfer cost — two lock
    handoffs (threads), one stack switch (greenlet), or a plain
    function return (inline, where the resumed process *is* the
    driver)."""
    with Simulator(backend=backend) as sim:
        def body():
            for _ in range(n):
                sim.sleep(1e-6)

        sim.spawn(body)
        sim.run()
        return sim.event_count


def bench_resume() -> "dict[str, float]":
    """Per-backend resume throughput + speedup of the best same-thread
    backend over the ``threads`` reference (the PR 6 headline)."""
    metrics: dict[str, float] = {}
    for backend in available_backends():
        metrics[f"kernel_resume_{backend}_events_per_sec"] = round(
            _rate(lambda: _resume_loop(backend))
        )
    threads = metrics["kernel_resume_threads_events_per_sec"]
    fast = max(
        value
        for name, value in metrics.items()
        if name != "kernel_resume_threads_events_per_sec"
    )
    metrics["resume_speedup_vs_threads"] = round(fast / threads, 2)
    return metrics


def _matching_deep(depth: int = 256, rounds: int = 20) -> int:
    """Deep unexpected queue, receives in reverse tag order (the
    pattern where a linear-scan matcher degrades to O(depth) per op)."""
    topo = make_topology(2, ppn=2)
    with Simulator() as sim:
        eng = MatchingEngine(sim, topo, (0, 1))
        ops = 0

        def body():
            nonlocal ops
            for _ in range(rounds):
                for tag in range(depth):
                    eng.send(1, 0, tag, b"x")
                for tag in range(depth - 1, -1, -1):
                    eng.post_recv(0, 1, tag).wait()
                ops += 2 * depth

        sim.spawn(body)
        sim.run()
        return ops


def _matching_wildcard(depth: int = 128, rounds: int = 20) -> int:
    """ANY_SOURCE receives over many-source traffic (the wildcard
    fallback path: bucket-head minimum instead of a full scan)."""
    nprocs = 8
    topo = make_topology(nprocs, ppn=nprocs)
    with Simulator() as sim:
        eng = MatchingEngine(sim, topo, tuple(range(nprocs)))
        ops = 0

        def body():
            nonlocal ops
            for _ in range(rounds):
                for i in range(depth):
                    eng.send(1 + i % (nprocs - 1), 0, i % 7, b"x")
                for i in range(depth):
                    eng.post_recv(0, ANY_SOURCE, i % 7).wait()
                ops += 2 * depth

        sim.spawn(body)
        sim.run()
        return ops


def _warm_restart_specs():
    """One checkpoint → restart chain (fraction-scheduled, so the cold
    path also pays a probe run — three simulations against the warm
    path's one)."""
    from repro.harness.spec import RunSpec
    from repro.netmodel import StorageModel

    storage = StorageModel(
        per_node_bandwidth=8.0e9, aggregate_bandwidth=2.0e10, base_latency=1e-3
    )
    kwargs = {"niters": 8, "memory_bytes": 4 << 20}
    parent = RunSpec.create(
        "comd", 4, app_kwargs=kwargs, protocol="cc", ppn=2,
        checkpoint_fractions=(0.5,), storage=storage,
    )
    restart = RunSpec.create(
        "comd", 4, app_kwargs=kwargs, protocol="cc", ppn=2,
        storage=storage, restart_of=parent,
    )
    return parent, restart


def bench_warm_restart(repeats: int = 3) -> dict[str, float]:
    """Macrobenchmark: cold restart-chain execution vs the image-tier
    warm path (the paper's headline checkpoint-then-restart scenario).

    Cold = fresh cache, the whole probe → checkpoint → restart chain
    simulates.  Warm = the restart cell alone re-executes against a
    cache whose image tier already holds the parent's committed images.
    Raises if the warm path simulated anything but the one restart job
    (the engine-stats gate CI runs via ``--gate-warm-restart``).
    """
    import shutil
    import tempfile
    from pathlib import Path as _Path

    from repro.harness import ExperimentEngine, ResultCache

    parent, restart = _warm_restart_specs()
    workdir = _Path(tempfile.mkdtemp(prefix="repro-warm-restart-"))
    try:
        t0 = time.perf_counter()
        cold_engine = ExperimentEngine(cache=ResultCache(workdir))
        cold_engine.run_batch([parent, restart])
        cold = time.perf_counter() - t0

        warm = float("inf")
        for _ in range(repeats):
            # Evict only the restart's own result: the parent's entry
            # and image blob stay, which is exactly the "new restart
            # cell against a warm study" shape.
            ResultCache(workdir).prune([restart])
            t0 = time.perf_counter()
            warm_engine = ExperimentEngine(cache=ResultCache(workdir))
            warm_engine.run_batch([parent, restart])
            warm = min(warm, time.perf_counter() - t0)
            stats = warm_engine.last_stats
            if stats.executed != 1 or stats.images_reused != 1:
                raise RuntimeError(
                    "warm restart path re-simulated parent jobs: "
                    + stats.summary()
                )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return {
        "warm_restart_cold_ms": round(cold * 1000.0, 2),
        "warm_restart_warm_ms": round(warm * 1000.0, 2),
        "warm_restart_speedup": round(cold / warm, 2),
    }


def _rate(workload, *, repeats: int = 5) -> float:
    """Best-of-N operations/second for a workload returning an op count.

    Best-of (not mean-of): simulations are deterministic, so variance is
    pure scheduler/load noise and the minimum-time run is the honest
    measurement of the code.
    """
    best = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        count = workload()
        elapsed = time.perf_counter() - t0
        best = max(best, count / elapsed)
    return best


def collect_metrics() -> "dict[str, float]":
    """One emitter pass over every hot-path workload."""
    metrics: dict[str, float] = {
        "kernel_timer_events_per_sec": round(_rate(_timer_chain)),
        "kernel_nowq_events_per_sec": round(_rate(_nowq_chain)),
        "kernel_process_events_per_sec": round(_rate(_process_pingpong)),
        "matching_deep_ops_per_sec": round(_rate(_matching_deep)),
        "matching_wildcard_ops_per_sec": round(_rate(_matching_wildcard)),
    }
    metrics.update(bench_resume())
    metrics.update(bench_warm_restart())
    return metrics


# --------------------------------------------------------------------- #
# pytest-benchmark entry points
# --------------------------------------------------------------------- #

def test_seq_increment_cost(benchmark):
    """The paper's central claim: counting collectives is nearly free."""
    table = SeqNumTable()
    table.ensure_group(0xABCDEF)
    benchmark(table.increment, 0xABCDEF)


def test_ggid_hash_cost(benchmark):
    ranks = tuple(range(512))
    benchmark(compute_ggid, ranks)


def test_kernel_timer_throughput(benchmark):
    """Events/sec of the pure-callback (switchless) scheduler path."""
    count = benchmark.pedantic(_timer_chain, rounds=3, iterations=1)
    assert count >= 100_000


def test_kernel_nowq_throughput(benchmark):
    """Events/sec of the zero-delay now-queue fast path."""
    count = benchmark.pedantic(_nowq_chain, rounds=3, iterations=1)
    assert count >= 100_000


def test_des_event_throughput(benchmark):
    """Events per second of the simulation kernel (sleep ping-pong)."""

    def run_events():
        with Simulator() as sim:
            def body():
                for _ in range(500):
                    sim.sleep(1e-6)

            sim.spawn(body)
            sim.run()
            return sim.event_count

    count = benchmark(run_events)
    assert count >= 500


def test_kernel_resume_fast_backend_throughput(benchmark):
    """Resume round-trips on the fastest same-thread backend."""
    backend = "greenlet" if "greenlet" in available_backends() else "inline"
    count = benchmark.pedantic(
        _resume_loop, args=(backend,), rounds=3, iterations=1
    )
    assert count >= 10_000


def test_matching_deep_queue_throughput(benchmark):
    """Indexed matching vs a 256-deep unexpected queue."""
    ops = benchmark.pedantic(_matching_deep, rounds=3, iterations=1)
    assert ops > 0


def test_matching_wildcard_throughput(benchmark):
    """ANY_SOURCE matching over the bucket-head fallback path."""
    ops = benchmark.pedantic(_matching_wildcard, rounds=3, iterations=1)
    assert ops > 0


def test_warm_restart_macro(benchmark):
    """Cold chain vs image-tier warm restart; also asserts the warm
    path simulated nothing but the restart job itself."""
    metrics = benchmark.pedantic(
        bench_warm_restart, kwargs={"repeats": 1}, rounds=1, iterations=1
    )
    assert metrics["warm_restart_speedup"] > 1.0


def test_bcast_solver_cost(benchmark):
    """Cost of resolving one 512-rank broadcast's exit times."""
    topo = make_topology(512, ppn=128)
    tuning = CollectiveTuning()

    def resolve():
        solver = make_solver("bcast", tuple(range(512)), topo, tuning, 1024)
        for i in range(512):
            solver.on_arrival(i, 0.0)
        return solver.complete

    assert benchmark(resolve)


def test_alltoall_solver_cost(benchmark):
    topo = make_topology(256, ppn=128)
    tuning = CollectiveTuning()

    def resolve():
        solver = make_solver("alltoall", tuple(range(256)), topo, tuning, 4096)
        for i in range(256):
            solver.on_arrival(i, float(i) * 1e-9)
        return solver.complete

    assert benchmark(resolve)


# --------------------------------------------------------------------- #
# Standalone emitter / regression gate
# --------------------------------------------------------------------- #

def _load_trajectory(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
        if isinstance(data, dict) and isinstance(data.get("entries"), list):
            return data
    except (OSError, ValueError):
        pass
    return {"schema": 1, "entries": []}


def emit(path: Path, label: str) -> dict[str, int]:
    """Measure the hot paths and append a labelled entry to ``path``."""
    metrics = collect_metrics()
    trajectory = _load_trajectory(path)
    trajectory["entries"].append({"label": label, "metrics": metrics})
    path.write_text(json.dumps(trajectory, indent=2) + "\n")
    return metrics


def check(metrics: dict[str, int], baseline_path: Path, min_ratio: float) -> int:
    """Exit status 1 if a gated metric fell below min_ratio × baseline."""
    trajectory = _load_trajectory(baseline_path)
    if not trajectory["entries"]:
        print(f"check: no baseline entries in {baseline_path}; skipping")
        return 0
    reference = trajectory["entries"][-1]
    base = reference["metrics"]
    failures = 0
    for name, value in sorted(metrics.items()):
        if name.endswith("_ms"):
            # Wall-time metrics are lower-is-better; the ratio gate
            # below reads higher-is-better.  The derived speedup metric
            # carries the comparable signal.
            continue
        if name not in base or base[name] <= 0:
            continue
        ratio = value / base[name]
        gated = name in GATED_METRICS
        verdict = "ok"
        if ratio < min_ratio:
            verdict = "REGRESSION" if gated else "slow (ungated)"
            failures += 1 if gated else 0
        print(
            f"check: {name}: {value} vs {base[name]} "
            f"({reference['label']}) = {ratio:.2f}x [{verdict}]"
        )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Hot-path microbenchmark emitter / regression gate"
    )
    parser.add_argument("--emit", type=Path, default=None,
                        help="append a metrics entry to this trajectory file")
    parser.add_argument("--label", type=str, default="local",
                        help="label for the emitted entry")
    parser.add_argument("--check", type=Path, default=None,
                        help="compare against this baseline trajectory's "
                             "latest entry")
    parser.add_argument("--min-ratio", type=float, default=0.7,
                        help="minimum current/baseline ratio for gated "
                             "kernel metrics (default 0.7 = fail on >30%% "
                             "regression)")
    parser.add_argument("--gate-warm-restart", action="store_true",
                        help="run only the warm-restart macrobenchmark and "
                             "fail if the warm path re-simulated any parent "
                             "job (determinism gate, not a perf gate)")
    parser.add_argument("--gate-resume", type=float, default=None,
                        metavar="RATIO",
                        help="run only the per-backend resume microbenchmark "
                             "and fail unless the best same-thread backend "
                             "reaches RATIO x the threads reference resume "
                             "throughput (e.g. 5.0)")
    args = parser.parse_args(argv)
    if args.gate_resume is not None:
        metrics = bench_resume()
        for name, value in sorted(metrics.items()):
            print(f"  {name}: {value}")
        speedup = metrics["resume_speedup_vs_threads"]
        if speedup < args.gate_resume:
            print(
                f"resume gate: FAIL: {speedup:.2f}x < {args.gate_resume}x "
                "required over the threads reference"
            )
            return 1
        print(f"resume gate: ok ({speedup:.2f}x >= {args.gate_resume}x)")
        return 0
    if args.gate_warm_restart:
        try:
            metrics = bench_warm_restart(repeats=1)
        except RuntimeError as exc:
            print(f"warm-restart gate: FAIL: {exc}")
            return 1
        for name, value in sorted(metrics.items()):
            print(f"  {name}: {value}")
        print("warm-restart gate: ok (zero parent simulations)")
        return 0
    if args.emit is None and args.check is None:
        parser.error("nothing to do: pass --emit and/or --check")

    if args.emit is not None:
        metrics = emit(args.emit, args.label)
        print(f"emitted {args.label!r} to {args.emit}:")
    else:
        metrics = collect_metrics()
    for name, value in sorted(metrics.items()):
        print(f"  {name}: {value}")

    if args.check is not None:
        return check(metrics, args.check, args.min_ratio)
    return 0


if __name__ == "__main__":
    sys.exit(main())
