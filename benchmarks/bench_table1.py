"""Regenerates paper Table 1: communication call rates per application.

Expected shape (validated below): collective rates ordered
OSU >> miniVASP >> Poisson >> CoMD > LAMMPS > SW4; Poisson has no p2p;
LAMMPS is p2p-dominant.
"""

from repro.harness import table1


def test_table1(bench_once, engine):
    result = bench_once(table1, nprocs=16, ppn=8, engine=engine)
    print()
    print(result.render())

    rates = {row[0]: float(row[1]) for row in result.rows}
    assert rates["osu (bcast 4B)"] > 10 * rates["minivasp"]
    assert rates["minivasp"] > 10 * rates["poisson"]
    assert rates["poisson"] > rates["comd"]
    assert rates["comd"] > rates["lammps"] > rates["sw4"]
    poisson_row = next(r for r in result.rows if r[0] == "poisson")
    assert poisson_row[2] == "NA", "Poisson reports no p2p traffic (paper: NA)"
