"""Regenerates paper Figure 8: miniVASP overhead vs process count.

Expected shape: CC stays near zero at every scale while 2PC grows with
the process count; 2PC exceeds CC everywhere (the paper's 2% vs 5.2%
CC / ~7-10.6% 2PC relationship at its scales).
"""

from conftest import PROC_SWEEP

from repro.harness import fig8


def test_fig8(bench_once, engine):
    result = bench_once(fig8, procs=PROC_SWEEP, repeats=1, niters=10, engine=engine)
    print()
    print(result.render())

    by_name = {s.name: s for s in result.series}
    s2, sc = by_name["2PC %"], by_name["CC %"]
    for o2pc, occ in zip(s2.ys, sc.ys):
        assert o2pc > occ, "2PC must exceed CC at every scale"
    assert max(sc.ys) < 2.0, "CC overhead stays small at all scales"
    assert s2.ys[-1] > s2.ys[0], "2PC overhead grows with process count"
