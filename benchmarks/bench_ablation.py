"""Ablation benchmarks for the design choices called out in DESIGN.md §5.

1. Non-blocking SEQ increment at initiation vs completion (§4.3.1): the
   paper increments at initiation; we measure what initiation-counting
   buys — with waits deferred across steps, a completion-counted clock
   would under-count in-flight operations at the cut (asserted via the
   invariant that all initiated collectives complete at snapshots).
2. 2PC barrier kind: poll-gap sensitivity of the trivial barrier (the
   Ibarrier+Test loop vs an idealized zero-gap barrier).
3. Compute jitter sensitivity: 2PC's overhead on Bcast comes from turning
   per-rank skew into waiting; with jitter off, its overhead collapses
   toward the pure barrier rounds.
"""

import dataclasses

from repro.apps import make_app_factory
from repro.harness.runner import launch_run
from repro.netmodel import ModelParams
from repro.util.stats import overhead_pct


def _osu_run(protocol, params=None, *, jitter=None, poll_gap=None, seed=0,
             gap_compute=2.0e-7):
    if params is None:
        params = ModelParams.perlmutter_like()
    if jitter is not None:
        params = dataclasses.replace(
            params, compute=dataclasses.replace(params.compute, jitter_cv=jitter)
        )
    if poll_gap is not None:
        params = dataclasses.replace(
            params,
            overheads=dataclasses.replace(params.overheads, ibarrier_poll_gap=poll_gap),
        )
    factory = make_app_factory(
        "osu", niters=40, kind="bcast", nbytes=4, gap_compute=gap_compute
    )
    return launch_run(factory, 16, protocol=protocol, params=params, ppn=8, seed=seed)


def test_ablation_jitter_drives_2pc_overhead(bench_once):
    """2PC's Bcast pain includes jitter-to-waiting conversion: with real
    compute between broadcasts, per-rank skew develops and the inserted
    barrier makes everyone wait for the slowest; a native Bcast lets the
    root and early ranks leave.  (With no compute between collectives the
    effect vanishes — the OSU default — so a gap is configured here.)"""

    def run():
        out = {}
        for cv in (0.0, 0.08, 0.2):
            native = _osu_run("native", jitter=cv, gap_compute=3e-5)
            tpc = _osu_run("2pc", jitter=cv, gap_compute=3e-5)
            out[cv] = overhead_pct(tpc.runtime, native.runtime)
        return out

    overheads = bench_once(run)
    print(f"\n2PC bcast overhead vs jitter_cv (30us gaps): {overheads}")
    assert overheads[0.2] > overheads[0.0], "more jitter -> more 2PC pain"


def test_ablation_poll_gap(bench_once):
    """The trivial barrier's test-loop granularity is a real cost knob."""

    def run():
        out = {}
        for gap in (1e-7, 1e-6, 5e-6):
            native = _osu_run("native", poll_gap=gap)
            tpc = _osu_run("2pc", poll_gap=gap)
            out[gap] = overhead_pct(tpc.runtime, native.runtime)
        return out

    overheads = bench_once(run)
    print(f"\n2PC bcast overhead vs ibarrier poll gap: {overheads}")
    assert overheads[5e-6] > overheads[1e-7], "coarser polling -> more overhead"


def test_ablation_cc_wrapper_cost_scaling(bench_once):
    """CC's only steady-state cost is the wrapper + increment: doubling it
    should move CC overhead visibly while leaving it << 2PC."""

    def run():
        base = ModelParams.perlmutter_like()
        fat = dataclasses.replace(
            base,
            overheads=dataclasses.replace(
                base.overheads,
                wrapper_call=base.overheads.wrapper_call * 10,
                seq_increment=base.overheads.seq_increment * 10,
            ),
        )
        native = _osu_run("native")
        cc_thin = _osu_run("cc")
        cc_fat = _osu_run("cc", params=fat)
        tpc = _osu_run("2pc")
        return {
            "cc": overhead_pct(cc_thin.runtime, native.runtime),
            "cc_10x_wrappers": overhead_pct(cc_fat.runtime, native.runtime),
            "2pc": overhead_pct(tpc.runtime, native.runtime),
        }

    o = bench_once(run)
    print(f"\nCC wrapper-cost ablation: {o}")
    assert o["cc_10x_wrappers"] > o["cc"]
    assert o["cc_10x_wrappers"] < o["2pc"], "even 10x wrappers stay below 2PC"
