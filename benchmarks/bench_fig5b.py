"""Regenerates paper Figure 5b: non-blocking OSU collectives under CC.

Expected shape: 2PC is NA everywhere (it cannot wrap non-blocking
collectives); CC overhead is higher for small messages (two wrapper
crossings per operation, Section 5.1.2) and decays as the message size
grows.
"""

from conftest import MSG_SIZES, OSU_ITERS, PROC_SWEEP

from repro.harness import fig5b


def test_fig5b(bench_once, engine):
    result = bench_once(
        fig5b, procs=PROC_SWEEP[:2], sizes=MSG_SIZES, iters=OSU_ITERS, engine=engine
    )
    print()
    print(result.render())

    assert all(row[3] == "NA" for row in result.rows), "2PC must be NA"
    by_key = {(r[0], r[1], r[2]): float(r[4]) for r in result.rows}
    for kind in ("ibcast", "ialltoall", "iallreduce", "iallgather"):
        small = by_key[(kind, "4B", PROC_SWEEP[0])]
        large = by_key[(kind, "1MB", PROC_SWEEP[0])]
        assert large < small, f"{kind}: overhead must decay with size"
        assert large < 5.0
