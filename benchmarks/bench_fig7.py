"""Regenerates paper Figure 7: five real-world applications.

Expected shape: VASP (the collective-intensive code) shows the largest
2PC overhead with CC well below it; SW4/CoMD/LAMMPS are ~0% under both;
Poisson runs under CC but is NA under 2PC.
"""

from repro.harness import fig7


def test_fig7(bench_once, engine):
    result = bench_once(fig7, nprocs=16, ppn=8, repeats=1, engine=engine)
    print()
    print(result.render())

    rows = {r[0]: r for r in result.rows}
    vasp = rows["minivasp"]
    assert float(vasp[4]) > 2 * float(vasp[5]), "2PC must cost >2x CC on VASP"
    assert float(vasp[5]) < 2.0, "CC overhead on VASP should be small"
    assert rows["poisson"][2] == "NA", "2PC cannot run Poisson"
    for app in ("sw4", "comd", "lammps"):
        assert abs(float(rows[app][4])) < 1.0
        assert abs(float(rows[app][5])) < 1.0
