"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures at a
scaled-down size (process counts 8-32 instead of 128-2048) and asserts
the paper's qualitative *shape* (who wins, where NA appears, growth
directions).  Set ``REPRO_BENCH_SCALE=large`` for bigger runs.

The figure benchmarks share one :class:`ExperimentEngine` per session,
configured by two environment knobs:

* ``REPRO_BENCH_JOBS=N`` — fan each figure's simulations out over N
  worker processes;
* ``REPRO_BENCH_CACHE=DIR`` — persist results on disk.  This is what
  makes cells repeated *across* benchmark files (each file submits its
  own batch) simulate once, and makes re-benchmarking a shape change
  in one figure free for the others.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import os

import pytest

LARGE = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "large"

#: Scaled stand-ins for the paper's 128/256/512(/1024/2048) sweeps.
PROC_SWEEP = (8, 16, 32) if not LARGE else (16, 32, 64, 128)
#: Paper's message sizes: 4 B, 1 KB, 1 MB.
MSG_SIZES = (4, 1024, 1 << 20)
OSU_ITERS = 40 if not LARGE else 100


@pytest.fixture(scope="session")
def engine():
    """Session-shared experiment engine for the figure benchmarks."""
    from repro.harness import ExperimentEngine, ResultCache

    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache_dir = os.environ.get("REPRO_BENCH_CACHE")
    cache = ResultCache(cache_dir) if cache_dir else None
    return ExperimentEngine(jobs=jobs, cache=cache)


@pytest.fixture
def bench_once(benchmark):
    """Run a whole experiment exactly once under pytest-benchmark.

    Experiments are deterministic simulations; statistical rounds would
    only re-measure Python overhead, so one round is the honest setting.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
