"""Regenerates paper Figure 5a: blocking OSU collectives, 2PC vs CC.

Expected shape: 2PC overhead is large for small messages (hundreds of
percent on Bcast — the inserted barrier destroys the loose tree
structure), moderate for naturally synchronizing Alltoall, and near zero
at 1 MB for the synchronizing kinds; CC stays far below 2PC everywhere.
"""

from conftest import MSG_SIZES, OSU_ITERS, PROC_SWEEP

from repro.harness import fig5a


def test_fig5a(bench_once, engine):
    result = bench_once(
        fig5a, procs=PROC_SWEEP[:2], sizes=MSG_SIZES, iters=OSU_ITERS, engine=engine
    )
    print()
    print(result.render())

    rows = {
        (r[0], r[1], r[2]): (float(r[3]), float(r[4])) for r in result.rows
    }
    for (kind, msg, procs), (o2pc, occ) in rows.items():
        # CC must always beat 2PC, usually by a lot.
        assert occ < o2pc, f"{kind}/{msg}/{procs}: CC {occ} !< 2PC {o2pc}"
    # Small-message bcast: the paper's flagship blowup (>100% for 2PC).
    for procs in PROC_SWEEP[:2]:
        o2pc, occ = rows[("bcast", "4B", procs)]
        assert o2pc > 100.0
        assert occ < 30.0
    # 1MB alltoall/allreduce: both algorithms near-native (paper §5.1.1).
    for kind in ("alltoall", "allreduce"):
        o2pc, occ = rows[(kind, "1MB", PROC_SWEEP[0])]
        assert o2pc < 10.0
        assert occ < 5.0
