"""Regenerates paper Figure 6: communication/computation overlap.

Expected shape: CC preserves the native overlap of non-blocking
collectives (the background progress of initiated operations is
untouched by the wrappers).
"""

from conftest import PROC_SWEEP

from repro.harness import fig6


def test_fig6(bench_once, engine):
    result = bench_once(
        fig6, procs=PROC_SWEEP[:1], sizes=(1024, 1 << 20), iters=30, engine=engine
    )
    print()
    print(result.render())

    for row in result.rows:
        native, cc = float(row[3]), float(row[4])
        assert cc >= native - 10.0, f"{row[0]}/{row[1]}: CC lost overlap"
        if row[1] == "1MB":
            assert native > 80.0 and cc > 80.0
