"""Regenerates paper Figure 9: miniVASP checkpoint and restart times.

Expected shape: checkpoint/restart times are nearly identical between
2PC and CC (the write dominates) and grow with the node count once the
parallel file system's aggregate bandwidth saturates.
"""

from conftest import LARGE

from repro.harness import fig9


def test_fig9(bench_once, engine):
    nodes = (1, 2, 4, 8) if not LARGE else (1, 2, 4, 8, 16)
    result = bench_once(fig9, nodes=nodes, ppn=4, niters=8, engine=engine)
    print()
    print(result.render())

    by_name = {s.name: s for s in result.series}
    for phase in ("ckpt", "restart"):
        cc = by_name[f"CC {phase} (s)"]
        tpc = by_name[f"2PC {phase} (s)"]
        # Growth with node count (post-saturation).
        assert cc.ys[-1] > cc.ys[0]
        assert tpc.ys[-1] > tpc.ys[0]
        # The two protocols' times stay close (within 2x): the drain is
        # cheap relative to the image write, as in the paper.
        for a, b in zip(cc.ys, tpc.ys):
            assert 0.5 < a / b < 2.0
