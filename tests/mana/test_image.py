"""Tests for the checkpoint image format and set persistence."""

import pickle

import numpy as np
import pytest

from repro.mana import (
    CheckpointImage,
    ImageError,
    load_checkpoint_set,
    read_image_file,
    save_checkpoint_set,
    write_image_file,
)


def make_image(rank=0, nprocs=4, ckpt_id=0, **kw):
    return CheckpointImage(
        rank=rank, nprocs=nprocs, protocol="cc", ckpt_id=ckpt_id,
        app_state={"iter": 7, "x": np.arange(4.0)}, **kw,
    )


class TestImageFile:
    def test_roundtrip(self, tmp_path):
        img = make_image()
        path = write_image_file(img, tmp_path)
        assert path.name == "ckpt_0_rank0.manapy"
        loaded = read_image_file(path)
        assert loaded.rank == 0
        assert loaded.app_state["iter"] == 7
        assert loaded.app_state["x"].tolist() == [0.0, 1.0, 2.0, 3.0]

    def test_corruption_detected(self, tmp_path):
        path = write_image_file(make_image(), tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-3] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(raw))
        with pytest.raises(ImageError, match="CRC"):
            read_image_file(path)

    def test_truncation_detected(self, tmp_path):
        path = write_image_file(make_image(), tmp_path)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(ImageError, match="truncated"):
            read_image_file(path)

    def test_bad_magic_detected(self, tmp_path):
        path = write_image_file(make_image(), tmp_path)
        raw = bytearray(path.read_bytes())
        raw[0] = 0x00
        path.write_bytes(bytes(raw))
        with pytest.raises(ImageError, match="magic"):
            read_image_file(path)

    def test_missing_header(self, tmp_path):
        p = tmp_path / "x.manapy"
        p.write_bytes(b"abc")
        with pytest.raises(ImageError):
            read_image_file(p)


class TestCheckpointSet:
    def test_save_load_roundtrip(self, tmp_path):
        images = {r: make_image(rank=r) for r in range(4)}
        paths = save_checkpoint_set(images, tmp_path)
        assert len(paths) == 4
        loaded = load_checkpoint_set(tmp_path, ckpt_id=0)
        assert sorted(loaded) == [0, 1, 2, 3]

    def test_incomplete_set_rejected_on_save(self, tmp_path):
        images = {r: make_image(rank=r) for r in (0, 2)}  # missing 1, 3
        with pytest.raises(ImageError, match="cover"):
            save_checkpoint_set(images, tmp_path)

    def test_incomplete_set_rejected_on_load(self, tmp_path):
        images = {r: make_image(rank=r) for r in range(4)}
        paths = save_checkpoint_set(images, tmp_path)
        paths[2].unlink()
        with pytest.raises(ImageError, match="missing"):
            load_checkpoint_set(tmp_path)

    def test_empty_set_rejected(self, tmp_path):
        with pytest.raises(ImageError):
            save_checkpoint_set({}, tmp_path)
        with pytest.raises(ImageError):
            load_checkpoint_set(tmp_path)

    def test_multiple_checkpoint_ids_coexist(self, tmp_path):
        save_checkpoint_set({r: make_image(rank=r, nprocs=2, ckpt_id=0) for r in range(2)}, tmp_path)
        save_checkpoint_set({r: make_image(rank=r, nprocs=2, ckpt_id=1) for r in range(2)}, tmp_path)
        a = load_checkpoint_set(tmp_path, ckpt_id=0)
        b = load_checkpoint_set(tmp_path, ckpt_id=1)
        assert a[0].ckpt_id == 0 and b[0].ckpt_id == 1


class TestEndToEndImagePersistence:
    def test_disk_roundtrip_restart(self, tmp_path):
        """Checkpoint to real files, load, restart — full MANA loop."""
        from repro.apps.base import MpiApp
        from repro.harness.runner import launch_run, restart_run
        from repro.netmodel import StorageModel

        class Counter(MpiApp):
            name = "counter"

            def setup(self, ctx):
                ctx.state["total"] = 0

            def step(self, ctx, i):
                ctx.compute_jittered(1e-6, i)
                v = ctx.world.allreduce(ctx.rank + i)
                ctx.state["total"] = ctx.state["total"] + v

            def finalize(self, ctx):
                return ctx.state["total"]

        storage = StorageModel(base_latency=1e-4)
        native = launch_run(lambda: Counter(niters=20), 4, protocol="native", seed=9)
        r = launch_run(
            lambda: Counter(niters=20), 4, protocol="cc", seed=9,
            checkpoint_at=[native.runtime / 2], storage=storage,
        )
        save_checkpoint_set(r.committed_images(), tmp_path)
        images = load_checkpoint_set(tmp_path)
        rs = restart_run(lambda: Counter(niters=20), images, seed=9, storage=storage)
        assert rs.per_rank == native.per_rank
