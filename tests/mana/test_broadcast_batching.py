"""Batched coordinator control-plane broadcasts (PR 4 follow-up).

Every coordinator fan-out (intent / targets / confirm / commit /
drain_p2p / snapshot / resume) now enters the event queue as ONE
``defer_batch_at`` entry that *counts* as one logical event per rank
delivery (plus one per interrupt nudge).  Three pins:

* **differential** — the batched path must produce results
  byte-identical to the retained per-rank reference fan-out
  (``_broadcast_unbatched``), including ``sim_events`` and every
  checkpoint-phase timestamp;
* **fingerprint** — absolute event counts for fixed checkpointed
  scenarios are pinned, so an accidental change to the event accounting
  (the fingerprints every determinism test builds on) fails loudly;
* **mechanism** — the batch entries actually reach the kernel with the
  full per-rank event count fused into one entry.
"""

import pytest

from repro.apps import CoMD, EarlyExit
from repro.des import Simulator
from repro.harness.runner import launch_run
from repro.harness.spec import run_result_to_dict
from repro.mana.coordinator import CheckpointCoordinator
from repro.netmodel import StorageModel

STORAGE = StorageModel(base_latency=1e-4)

#: Event counts for _checkpointed_run(protocol) captured on the batched
#: coordinator; byte-identical to the per-rank fan-out by construction
#: (the differential test below proves it on every run).
EXPECTED_EVENTS = {"cc": 15307, "2pc": 22395}


def _checkpointed_run(protocol):
    factory = lambda: CoMD(niters=8, memory_bytes=1 << 20)
    probe = launch_run(factory, 4, protocol=protocol, seed=5)
    return launch_run(
        factory,
        4,
        protocol=protocol,
        seed=5,
        checkpoint_at=[probe.runtime * 0.4, probe.runtime * 0.8],
        storage=STORAGE,
    )


def _completion_race_run():
    factory = lambda: EarlyExit(niters=12, shared=4, leavers=1)
    probe = launch_run(factory, 4, protocol="cc", seed=5)
    return launch_run(
        factory,
        4,
        protocol="cc",
        seed=5,
        checkpoint_at=[min(probe.rank_finish_times) * 0.999],
        storage=STORAGE,
    )


@pytest.mark.parametrize("protocol", ["cc", "2pc"])
def test_batched_broadcast_matches_unbatched_reference(protocol, monkeypatch):
    batched = _checkpointed_run(protocol)
    assert [c.committed for c in batched.checkpoints] == [True, True]
    assert batched.sim_events == EXPECTED_EVENTS[protocol]

    monkeypatch.setattr(
        CheckpointCoordinator,
        "_broadcast_each",
        CheckpointCoordinator._broadcast_unbatched,
    )
    reference = _checkpointed_run(protocol)
    # Byte-identical: every measurement, every phase timestamp, every
    # event count.
    assert run_result_to_dict(batched) == run_result_to_dict(reference)


def test_batched_broadcast_matches_reference_through_rank_completion(monkeypatch):
    """The proxy path (finished ranks serviced at delivery time) must be
    order-identical under both fan-out schemes too."""
    batched = _completion_race_run()
    assert [c.committed for c in batched.checkpoints] == [True]

    monkeypatch.setattr(
        CheckpointCoordinator,
        "_broadcast_each",
        CheckpointCoordinator._broadcast_unbatched,
    )
    reference = _completion_race_run()
    assert run_result_to_dict(batched) == run_result_to_dict(reference)


def test_broadcasts_fuse_into_single_queue_entries(monkeypatch):
    """With 4 live ranks a broadcast is one entry counting 8 logical
    events (4 deliveries + 4 interrupt nudges) — distinguishable from
    the collective-exit batches, which never exceed the member count."""
    counts = []
    original = Simulator.defer_batch_at

    def spy(self, time, fn, count):
        counts.append(count)
        return original(self, time, fn, count)

    monkeypatch.setattr(Simulator, "defer_batch_at", spy)
    _checkpointed_run("cc")
    assert 8 in counts
