"""Unit tests for the session's record/replay machinery and the
virtual-request helpers — the substitute for MANA's raw memory snapshot."""

import pytest

from repro.apps.base import MpiApp
from repro.core.protocol import ProtocolError
from repro.des import ProcessFailed
from repro.harness.runner import launch_run, restart_run
from repro.mana.vcomm import test_all as v_test_all
from repro.mana.vcomm import wait_all as v_wait_all
from repro.mana.vcomm import wait_any as v_wait_any
from repro.netmodel import StorageModel

STORAGE = StorageModel(base_latency=1e-4)


class WaitFamilyApp(MpiApp):
    """Uses the Waitall/Waitany/Testall helpers over non-blocking ops
    (the paper's Example 6.35 pattern: many outstanding collectives)."""

    name = "waitfamily"

    def setup(self, ctx):
        ctx.state["acc"] = 0.0

    def step(self, ctx, i):
        reqs = [ctx.world.iallreduce(float(ctx.rank + i + k)) for k in range(4)]
        ctx.compute_jittered(3e-6, i)
        mode = i % 3
        if mode == 0:
            values = v_wait_all(reqs)
            total = sum(values)
        elif mode == 1:
            total = 0.0
            remaining = list(reqs)
            while remaining:
                idx, value = v_wait_any(remaining)
                total += value
                remaining.pop(idx)
        else:
            while True:
                flag, values = v_test_all(reqs)
                if flag:
                    total = sum(values)
                    break
                ctx.compute(1e-6)
        ctx.state["acc"] = ctx.state["acc"] + total

    def finalize(self, ctx):
        return ctx.state["acc"]


class TestWaitFamily:
    def test_results_match_native(self):
        n = launch_run(lambda: WaitFamilyApp(niters=9), 4, protocol="native", seed=4)
        c = launch_run(lambda: WaitFamilyApp(niters=9), 4, protocol="cc", seed=4)
        assert c.per_rank == n.per_rank

    @pytest.mark.parametrize("frac", [0.3, 0.7])
    def test_checkpoint_restart(self, frac):
        factory = lambda: WaitFamilyApp(niters=9)
        native = launch_run(factory, 4, protocol="native", seed=4)
        ck = launch_run(
            factory, 4, protocol="cc", seed=4,
            checkpoint_at=[native.runtime * frac], storage=STORAGE,
        )
        rs = restart_run(factory, ck.committed_images(), seed=4, storage=STORAGE)
        assert rs.per_rank == native.per_rank

    def test_wait_any_empty_rejected(self):
        class Bad(MpiApp):
            name = "bad"

            def step(self, ctx, i):
                v_wait_any([])

        with pytest.raises(ProcessFailed) as ei:
            launch_run(lambda: Bad(niters=1), 2, protocol="cc", seed=0)
        assert isinstance(ei.value.original, ValueError)


class NonDeterministicStep(MpiApp):
    """Violates the replay contract: mutates state *before* its MPI calls
    and branches on that state, so re-executing an interrupted step takes
    a different path than the original.  The machinery must fail loudly
    instead of silently corrupting state."""

    name = "nondet"

    def setup(self, ctx):
        ctx.state["acc"] = 0.0

    def step(self, ctx, i):
        ctx.compute_jittered(3e-6, i)
        first_time = not ctx.state.get(f"started_{i}", False)
        ctx.state[f"started_{i}"] = True  # contract violation: pre-call write
        if first_time:
            ctx.state["acc"] = ctx.state["acc"] + ctx.world.allreduce(1.0)
        else:
            # Replay path: a different MPI call than the original.
            ctx.world.recv(source=(ctx.rank + 1) % ctx.nprocs)
        ctx.world.barrier()

    def finalize(self, ctx):
        return ctx.state["acc"]


def test_divergent_replay_detected():
    from repro.des import DeadlockError

    factory = lambda: NonDeterministicStep(niters=10)
    probe = launch_run(factory, 2, protocol="cc", seed=0)
    ck = launch_run(
        factory, 2, protocol="cc", seed=0,
        checkpoint_at=[probe.runtime * 0.5], storage=STORAGE,
    )
    images = ck.committed_images()
    # Only meaningful when the snapshot landed mid-step with calls to
    # replay; guaranteed here because every step has three wrapped calls.
    if all(im.call_index == im.boundary_index for im in images.values()):
        pytest.skip("cut landed exactly on a boundary")
    # The violation must fail LOUDLY: either the replay machinery flags
    # the divergence (cut inside the replay window) or the mismatched
    # communication deadlocks the simulation (cut at the window edge).
    with pytest.raises((ProcessFailed, DeadlockError)) as ei:
        restart_run(factory, images, seed=0, storage=STORAGE)
    if isinstance(ei.value, ProcessFailed):
        assert isinstance(ei.value.original, ProtocolError)
        msg = str(ei.value.original)
        assert "divergence" in msg or "replay" in msg


class TestImageWindowContents:
    def test_replay_window_positions(self):
        """boundary_index <= call_index and the log covers the window."""

        class Stepper(MpiApp):
            name = "stepper"

            def setup(self, ctx):
                ctx.state["x"] = 0.0

            def step(self, ctx, i):
                ctx.compute_jittered(4e-6, i)
                a = ctx.world.allreduce(1.0)
                b = ctx.world.allreduce(2.0)
                ctx.state["x"] = ctx.state["x"] + a + b

            def finalize(self, ctx):
                return ctx.state["x"]

        factory = lambda: Stepper(niters=12)
        probe = launch_run(factory, 4, protocol="cc", seed=1)
        ck = launch_run(
            factory, 4, protocol="cc", seed=1,
            checkpoint_at=[probe.runtime * 0.5], storage=STORAGE,
        )
        for im in ck.committed_images().values():
            assert im.boundary_index <= im.call_index
            assert len(im.call_log) >= im.call_index - im.boundary_index
