"""Tests for split-process semantics: upper half saved, lower half not."""

import pytest

from repro.apps.base import MpiApp
from repro.harness.runner import launch_run
from repro.mana import verify_image_is_upper_half_only
from repro.mana.splitproc import lower_half_of, split_view, upper_half_of
from repro.netmodel import StorageModel

STORAGE = StorageModel(base_latency=1e-4)


class SmallApp(MpiApp):
    name = "small"

    def setup(self, ctx):
        ctx.state["acc"] = 0
        ctx.state["sub"] = ctx.world.split(color=ctx.rank % 2, key=ctx.rank)

    def step(self, ctx, i):
        ctx.compute_jittered(2e-6, i)
        ctx.state["acc"] = ctx.state["acc"] + ctx.state["sub"].allreduce(1)

    def finalize(self, ctx):
        return ctx.state["acc"]


@pytest.fixture(scope="module")
def checkpointed_run():
    probe = launch_run(lambda: SmallApp(niters=16), 4, protocol="cc", seed=0)
    return launch_run(
        lambda: SmallApp(niters=16), 4, protocol="cc", seed=0,
        checkpoint_at=[probe.runtime / 2], storage=STORAGE,
    )


def test_images_contain_no_lower_half(checkpointed_run):
    """The decisive property: images pickle cleanly, which is impossible
    if any lower-half object (simulator, world, engine, thread) leaked."""
    for rank, image in checkpointed_run.committed_images().items():
        nbytes = verify_image_is_upper_half_only(image)
        assert nbytes > 0


def test_image_carries_wrapper_state(checkpointed_run):
    images = checkpointed_run.committed_images()
    for rank, im in images.items():
        assert im.seq_table["seq"], "SEQ table must be checkpointed"
        assert im.ggid_peers, "group registry must be checkpointed"
        assert im.creation_log, "comm-creation log must be checkpointed"
        assert im.app_state["acc"] > 0


def test_image_app_state_contains_virtual_comm(checkpointed_run):
    from repro.mana import VirtualComm

    im = checkpointed_run.committed_images()[0]
    assert isinstance(im.app_state["sub"], VirtualComm)


def test_image_is_frozen_at_snapshot(checkpointed_run):
    """Post-resume execution must not mutate the captured image."""
    images = checkpointed_run.committed_images()
    # The app ran 16 iterations total, but the snapshot was mid-run.
    iters = {im.app_state["iter"] for im in images.values()}
    assert iters != {16}, "image captured final state, not snapshot state"


def test_split_view_inventories():
    """upper_half_of/lower_half_of classify state correctly on a live
    session (constructed directly, no run needed)."""
    from repro.des import Simulator
    from repro.mana import Session
    from repro.simmpi import World

    with Simulator() as sim:
        world = World(sim, nprocs=2)
        sess = Session(world, 0, "cc")
        sess.app_state["k"] = 1
        view = split_view(sess)
        assert view.upper["app_state"] == {"k": 1}
        assert "seq_table" in view.upper
        assert view.lower["world"] is world
        assert view.lower["simulator"] is sim
        import pickle

        with pytest.raises(Exception):
            pickle.dumps(view.lower)  # the lower half must NOT pickle
        pickle.dumps(view.upper)  # the upper half must
