"""Unit and scenario tests for the checkpoint coordinator state machine."""

import pytest

from repro.apps.base import MpiApp
from repro.core.protocol import ProtocolError
from repro.des import Simulator
from repro.harness.runner import launch_run, restart_run
from repro.mana import CheckpointCoordinator
from repro.netmodel import StorageModel

STORAGE = StorageModel(base_latency=1e-4)


class Chain(MpiApp):
    """All-collective app for chained checkpoint scenarios."""

    name = "chain"

    def setup(self, ctx):
        ctx.state["acc"] = 0.0
        ctx.declare_memory(8 << 20)

    def step(self, ctx, i):
        ctx.compute_jittered(4e-6, i)
        v = ctx.world.allreduce(float(ctx.rank + i))
        ctx.state["acc"] = ctx.state["acc"] + v

    def finalize(self, ctx):
        return ctx.state["acc"]


class TestCoordinatorUnit:
    def test_request_without_sessions_rejected(self):
        with Simulator() as sim:
            coord = CheckpointCoordinator(sim, "cc")
            with pytest.raises(ProtocolError):
                coord.request_checkpoint()

    def test_unknown_protocol_rejected(self):
        with Simulator() as sim:
            with pytest.raises(ValueError):
                CheckpointCoordinator(sim, "3pc")

    def test_idle_coordinator_rejects_stray_messages(self):
        with Simulator() as sim:
            coord = CheckpointCoordinator(sim, "cc")
            with pytest.raises(ProtocolError):
                coord.deliver(("parked", 0, 1, 0, 0))

    def test_finished_tracked_while_idle(self):
        with Simulator() as sim:
            coord = CheckpointCoordinator(sim, "cc")
            coord.deliver(("finished", 0))
            assert coord.finished_ranks == {0}


class TestCheckpointLifecycles:
    def test_phase_timestamps_ordered(self):
        probe = launch_run(lambda: Chain(niters=20), 4, protocol="cc", seed=1)
        r = launch_run(
            lambda: Chain(niters=20), 4, protocol="cc", seed=1,
            checkpoint_at=[probe.runtime * 0.5], storage=STORAGE,
        )
        rec = r.checkpoints[0]
        assert rec.t_request <= rec.t_targets <= rec.t_quiesced
        assert rec.t_quiesced <= rec.t_drained <= rec.t_written <= rec.t_resumed
        assert rec.drain_time >= 0
        assert rec.total_image_bytes == 4 * (8 << 20)

    def test_2pc_has_no_target_phase(self):
        probe = launch_run(lambda: Chain(niters=20), 4, protocol="2pc", seed=1)
        r = launch_run(
            lambda: Chain(niters=20), 4, protocol="2pc", seed=1,
            checkpoint_at=[probe.runtime * 0.5], storage=STORAGE,
        )
        rec = r.checkpoints[0]
        assert rec.committed
        assert rec.t_targets is None  # 2PC skips Algorithm 1
        assert not rec.seq_reports

    def test_deferred_second_request(self):
        """A request landing mid-checkpoint is queued, not refused."""
        probe = launch_run(lambda: Chain(niters=30), 4, protocol="cc", seed=1)
        t = probe.runtime * 0.3
        r = launch_run(
            lambda: Chain(niters=30), 4, protocol="cc", seed=1,
            checkpoint_at=[t, t * 1.0001], storage=STORAGE,  # nearly simultaneous
        )
        committed = [c for c in r.checkpoints if c.committed]
        assert len(committed) == 2
        assert committed[0].t_written <= committed[1].t_request

    def test_job_chaining(self):
        """The paper's motivating use case: chain resource allocations by
        checkpoint -> restart -> checkpoint -> restart."""
        factory = lambda: Chain(niters=40)
        native = launch_run(factory, 4, protocol="native", seed=8)
        leg1 = launch_run(
            factory, 4, protocol="cc", seed=8,
            checkpoint_at=[native.runtime * 0.25], storage=STORAGE,
        )
        images1 = leg1.committed_images()
        leg2 = restart_run(
            factory, images1, seed=8, storage=STORAGE,
            checkpoint_at=[leg1.restart_ready_time + native.runtime * 0.3],
        )
        images2 = leg2.committed_images()
        # The second leg's snapshot is strictly later in the program.
        assert images2[0].app_state["iter"] >= images1[0].app_state["iter"]
        leg3 = restart_run(factory, images2, seed=8, storage=STORAGE)
        assert leg3.per_rank == native.per_rank

    def test_checkpoint_counts_per_session(self):
        probe = launch_run(lambda: Chain(niters=25), 4, protocol="cc", seed=1)
        ts = [probe.runtime * 0.2, probe.runtime * 0.6]
        r = launch_run(
            lambda: Chain(niters=25), 4, protocol="cc", seed=1,
            checkpoint_at=ts, storage=STORAGE,
        )
        assert len([c for c in r.checkpoints if c.committed]) == 2


class TestRestartValidation:
    def test_wrong_protocol_restart_rejected(self):
        probe = launch_run(lambda: Chain(niters=10), 4, protocol="cc", seed=1)
        r = launch_run(
            lambda: Chain(niters=10), 4, protocol="cc", seed=1,
            checkpoint_at=[probe.runtime / 2], storage=STORAGE,
        )
        images = r.committed_images()
        with pytest.raises(ValueError, match="taken under"):
            launch_run(
                lambda: Chain(niters=10), 4, protocol="2pc",
                restore_images=images,
            )

    def test_wrong_nprocs_restart_rejected(self):
        probe = launch_run(lambda: Chain(niters=10), 4, protocol="cc", seed=1)
        r = launch_run(
            lambda: Chain(niters=10), 4, protocol="cc", seed=1,
            checkpoint_at=[probe.runtime / 2], storage=STORAGE,
        )
        images = r.committed_images()
        partial = {k: v for k, v in images.items() if k < 2}
        with pytest.raises(ValueError):
            launch_run(lambda: Chain(niters=10), 2, protocol="cc",
                       restore_images=partial)


class UnevenTail(MpiApp):
    """Ranks share ``shared`` collective steps, then every rank except 0
    computes a communication-free tail — rank 0 finishes first, opening
    the request-races-completion window."""

    name = "uneven_tail"

    def __init__(self, niters=12, shared=6):
        super().__init__(niters)
        self.shared = shared

    def setup(self, ctx):
        ctx.state["acc"] = 0.0

    def step(self, ctx, i):
        if i < self.shared:
            ctx.compute(2e-6)
            ctx.state["acc"] = ctx.state["acc"] + ctx.world.allreduce(float(i))
        elif ctx.rank != 0:
            ctx.compute(5e-6)

    def finalize(self, ctx):
        return ctx.now()


class TestCheckpointThroughCompletion:
    """A rank exiting before the cut quiesces is checkpointed *through*:
    its proxy reports it trivially parked and the round commits a
    terminal image for it (the round used to abort — and before that,
    deadlock every surviving rank on its control mailbox)."""

    def _finish_times(self, protocol):
        r = launch_run(lambda: UnevenTail(), 4, protocol=protocol, seed=3)
        return r, list(r.rank_finish_times)

    @pytest.mark.parametrize("protocol", ["cc", "2pc"])
    def test_request_racing_first_finisher_commits(self, protocol):
        base, finish = self._finish_times(protocol)
        t_first = min(finish)
        # Request just before rank 0 exits: the intent is still in flight
        # (one control latency away) when the rank is gone.
        t_req = t_first - 1e-6
        r = launch_run(
            lambda: UnevenTail(), 4, protocol=protocol, seed=3,
            checkpoint_at=[t_req], storage=STORAGE,
        )
        assert len(r.checkpoints) == 1
        rec = r.checkpoints[0]
        assert rec.committed
        assert not rec.aborted and not rec.abort_reason
        assert rec.images[0].finished  # the early finisher's terminal image
        # The survivors resumed and the job completed every iteration.
        assert r.per_rank  # finalize ran on every rank

    def test_request_before_window_still_commits(self):
        base, finish = self._finish_times("cc")
        r = launch_run(
            lambda: UnevenTail(), 4, protocol="cc", seed=3,
            checkpoint_at=[min(finish) * 0.5], storage=STORAGE,
        )
        assert [c.committed for c in r.checkpoints] == [True]
        assert not any(im.finished for im in r.checkpoints[0].images.values())

    def test_deferred_requests_behind_completion_round_all_commit(self):
        """Every deferred request drains to its own committed record,
        each snapshotting a (progressively more) finished world."""
        base, finish = self._finish_times("cc")
        t_req = min(finish) - 1e-6
        r = launch_run(
            lambda: UnevenTail(), 4, protocol="cc", seed=3,
            checkpoint_at=[t_req, t_req + 1e-7, t_req + 2e-7], storage=STORAGE,
        )
        # All three attempts exist; none deadlocked; all committed.
        assert len(r.checkpoints) == 3
        assert all(c.committed and not c.abort_reason for c in r.checkpoints)
        assert all(c.images[0].finished for c in r.checkpoints)

    def test_request_after_all_finished_commits_terminal_set(self):
        from repro.mana import set_is_terminal

        base, finish = self._finish_times("cc")
        r = launch_run(
            lambda: UnevenTail(), 4, protocol="cc", seed=3,
            checkpoint_at=[max(finish) + 1e-4], storage=STORAGE,
        )
        rec = r.checkpoints[0]
        assert rec.committed
        assert set_is_terminal(rec.images)

    def test_abort_round_still_releases_parked_ranks(self):
        """The abort path is no longer reached by the state machine but
        stays wired as a safety valve: drive it directly and check the
        record + release semantics survive."""
        from repro.des import Simulator
        from repro.mana import CheckpointCoordinator

        with Simulator() as sim:
            coord = CheckpointCoordinator(sim, "cc")
            coord.sessions = {}  # no ranks: exercise the bookkeeping only
            coord._record = rec = __import__(
                "repro.mana.coordinator", fromlist=["CheckpointRecord"]
            ).CheckpointRecord(ckpt_id=0, protocol="cc", t_request=0.0)
            coord.records.append(rec)
            coord._state = "draining"
            coord._abort_round("injected fault")
            assert rec.aborted and rec.abort_reason == "injected fault"
            assert coord.state == "idle"
