"""Tests for the drain machinery: in-flight p2p, pending receives,
non-blocking collectives across checkpoints."""

import numpy as np
import pytest

from repro.apps.base import MpiApp
from repro.harness.runner import launch_run, restart_run
from repro.netmodel import StorageModel

STORAGE = StorageModel(base_latency=1e-4)


class CrossCutSender(MpiApp):
    """Rank 0 sends late in each step; rank 1 receives at the start of the
    next — messages are routinely in flight when the cut lands, so the
    drain must buffer them and restart must deliver from the buffer."""

    name = "crosscut"

    def setup(self, ctx):
        ctx.state["got"] = []

    def step(self, ctx, i):
        me, n = ctx.rank, ctx.nprocs
        got = ctx.state["got"]
        if me == 1 and i > 0:
            got = got + [ctx.world.recv(source=0, tag=i - 1)]
        ctx.compute_jittered(5e-6, i)
        ctx.world.allreduce(1)
        if me == 0:
            ctx.world.send(("payload", i), dest=1, tag=i)
        ctx.world.allreduce(2)
        ctx.state["got"] = got

    def finalize(self, ctx):
        if ctx.rank == 1:
            missing = ctx.world.recv(source=0, tag=self.niters - 1)
            return tuple(ctx.state["got"]) + (missing,)
        return None


class PendingIrecv(MpiApp):
    """Posts an irecv whose matching send happens a step later — the
    request is pending at most cuts and must be re-posted on restart."""

    name = "pendingirecv"

    def setup(self, ctx):
        ctx.state["sum"] = 0.0

    def step(self, ctx, i):
        me, n = ctx.rank, ctx.nprocs
        left = (me - 1) % n
        right = (me + 1) % n
        req = ctx.world.irecv(source=left, tag=7)
        ctx.compute_jittered(4e-6, i)
        ctx.world.allreduce(1.0)  # give the cut somewhere to land
        ctx.world.send(float(me * 100 + i), dest=right, tag=7)
        payload = req.wait()  # MANA-level irecv requests yield the payload
        ctx.state["sum"] = ctx.state["sum"] + payload

    def finalize(self, ctx):
        return ctx.state["sum"]


class OutstandingNbc(MpiApp):
    """Initiates non-blocking collectives and waits a step later: the
    Section 4.3.2 drain must complete them at the cut."""

    name = "nbcdrain"

    def setup(self, ctx):
        ctx.state["acc"] = 0.0

    def step(self, ctx, i):
        reqs = [ctx.world.iallreduce(float(ctx.rank + i + k)) for k in range(3)]
        ctx.compute_jittered(3e-6, i)
        total = 0.0
        for r in reqs:
            total += r.wait()
        ctx.state["acc"] = ctx.state["acc"] + total

    def finalize(self, ctx):
        return ctx.state["acc"]


@pytest.mark.parametrize(
    "app_cls,nprocs",
    [(CrossCutSender, 2), (PendingIrecv, 4), (OutstandingNbc, 4)],
)
@pytest.mark.parametrize("frac", [0.2, 0.5, 0.8])
def test_drain_and_restart_equivalence(app_cls, nprocs, frac):
    factory = lambda: app_cls(niters=14)
    native = launch_run(factory, nprocs, protocol="native", seed=6)
    ck = launch_run(
        factory, nprocs, protocol="cc", seed=6,
        checkpoint_at=[native.runtime * frac], storage=STORAGE,
    )
    assert repr(ck.per_rank) == repr(native.per_rank)
    rs = restart_run(factory, ck.committed_images(), seed=6, storage=STORAGE)
    assert repr(rs.per_rank) == repr(native.per_rank)


def test_drained_messages_recorded_in_images():
    factory = lambda: CrossCutSender(niters=14)
    native = launch_run(factory, 2, protocol="native", seed=6)
    ck = launch_run(
        factory, 2, protocol="cc", seed=6,
        checkpoint_at=[native.runtime * 0.5], storage=STORAGE,
    )
    images = ck.committed_images()
    drained_total = sum(len(im.drained) for im in images.values())
    stats = images[1].stats
    assert drained_total >= 1 or stats.get("drained_p2p", 0) >= 0


def test_no_incomplete_collective_requests_in_images():
    """Invariant 2 / Section 4.3.2: every initiated non-blocking
    collective is complete at the snapshot."""
    factory = lambda: OutstandingNbc(niters=14)
    native = launch_run(factory, 4, protocol="native", seed=6)
    ck = launch_run(
        factory, 4, protocol="cc", seed=6,
        checkpoint_at=[native.runtime * 0.4], storage=STORAGE,
    )
    for im in ck.committed_images().values():
        for vrid, (kind, desc, done, value) in im.vreq_table.items():
            if kind == "coll":
                assert done, f"incomplete collective request {vrid} in image"


def test_rendezvous_send_across_cut():
    """A large (rendezvous) send blocked on an unposted receive completes
    during the drain; the payload crosses via the receiver's buffer."""

    class BigSend(MpiApp):
        name = "bigsend"

        def setup(self, ctx):
            ctx.state["sum"] = 0.0

        def step(self, ctx, i):
            me = ctx.rank
            new_sum = ctx.state["sum"]
            if me == 0:
                # 128 KiB: above the eager threshold, so this blocks in
                # the rendezvous until rank 1 posts (long after us).
                ctx.world.send(np.full(1 << 14, float(i)), dest=1, tag=2)
            else:
                ctx.compute_jittered(4e-5, i)  # cut often lands here
                arr = ctx.world.recv(source=0, tag=2)
                new_sum = new_sum + float(arr[0])
            ctx.world.allreduce(1.0)
            # ---- commit block ----
            ctx.state["sum"] = new_sum

        def finalize(self, ctx):
            return ctx.state["sum"]

    factory = lambda: BigSend(niters=10)
    native = launch_run(factory, 2, protocol="native", seed=3)
    ck = launch_run(
        factory, 2, protocol="cc", seed=3,
        checkpoint_at=[native.runtime * 0.5], storage=STORAGE,
    )
    assert ck.per_rank == native.per_rank
    rs = restart_run(factory, ck.committed_images(), seed=3, storage=STORAGE)
    assert rs.per_rank == native.per_rank
