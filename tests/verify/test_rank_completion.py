"""Acceptance oracle: checkpoint rounds racing rank completion COMMIT,
and restarting from the committed images is byte-identical (determinism
fingerprint) to the uninterrupted run.

This is the ``rank-completion`` oracle swept over 20+ fault-schedule
seeds — each seed drawing its own protocol (cc/2pc), world size,
completion-window request instants (before, at, and after the first
rank exit), deferred-request stacking, and restart depth (including
restart-of-restart chains through terminal snapshots).
"""

import pytest

from repro.harness import ExperimentEngine, FaultSchedule
from repro.harness.verify import ORACLES, RankCompletionOracle

N_SEEDS = 24

#: One engine for the whole sweep (no cache: every seed simulates).
ENGINE = ExperimentEngine(jobs=1)


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_request_racing_completion_commits_and_restarts_identically(seed):
    report = ORACLES["rank-completion"].check(seed, ENGINE)
    assert report.ok, f"seed {seed}: {report.detail}\nreproduce: {report.repro}"
    # The detail line documents what the seed exercised.
    assert "commit" in report.detail and "fingerprint ok" in report.detail


def test_sweep_actually_exercises_finished_rank_images():
    """Guard against the sweep silently degenerating: a healthy share of
    schedules must land requests in the window where some rank's image
    is a terminal one — and such a schedule really must produce one."""
    from repro.harness.spec import execute

    racing = [
        seed
        for seed in range(N_SEEDS)
        if max(FaultSchedule.draw(seed).completion_fracs) >= 1.0
    ]
    assert len(racing) >= N_SEEDS // 4

    def finished_images(seed):
        result = execute(FaultSchedule.draw(seed).checkpoint_spec())
        return [
            im
            for rec in result.checkpoints
            for im in rec.images.values()
            if im.finished
        ]

    # A racing anchor is necessary but not sufficient: checkpoint
    # overhead (amplified under drawn scenarios like degraded-link)
    # pushes real finish times past the probe's, so some racing seeds
    # legitimately land mid-run.  The sweep degenerates only if NO
    # racing seed commits a terminal image.
    assert any(finished_images(seed) for seed in racing), (
        "no racing schedule committed a finished-rank image"
    )


def test_oracle_reports_are_reproducible():
    oracle = RankCompletionOracle()
    a = oracle.check(7, ExperimentEngine())
    b = oracle.check(7, ExperimentEngine())
    assert a.ok and b.ok
    assert a.detail == b.detail
    assert a.repro == "repro-mpi verify --oracle rank-completion --seeds 1 --base-seed 7"
