"""The recovery-chain oracle and the fault-schedule recovery axis.

Pinned here: the ``recovery-chain`` oracle sweeps clean over 25+
fuzz-drawn multi-hop schedules, restart-leg crash schedules recover
under a :class:`RecoveryPolicy`, a hypothesis property that *any*
single-crash schedule's recovered fingerprint equals the uninterrupted
run's, draw/serialization stability of the new ``recovery_crash_fracs``
axis, and the ``recovery`` anomaly classification.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.fuzz import _shrink_candidates
from repro.harness.recovery import RecoveryError, RecoveryPolicy, run_recovery
from repro.harness.spec import RunSpec, execute
from repro.harness.verify import (
    ORACLES,
    FaultSchedule,
    _classify_exception,
    result_fingerprint,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.netmodel import StorageModel

KW = dict(
    app_kwargs={
        "niters": 60, "shared": 4, "leavers": 1, "memory_bytes": 1 << 10,
    },
    protocol="cc",
    seed=3,
    storage=StorageModel(base_latency=1e-6),
)

_BASE_FP = None


def _mk(**overrides):
    kwargs = dict(KW)
    kwargs.update(overrides)
    return RunSpec.create("earlyexit", 4, **kwargs)


def _base_fp():
    global _BASE_FP
    if _BASE_FP is None:
        _BASE_FP = result_fingerprint(execute(_mk()))
    return _BASE_FP


class TestRecoveryChainOracle:
    """The new oracle over a healthy tree: every drawn multi-hop chain
    must end fingerprint-identical to the uninterrupted run, leak no
    images, and conserve drained messages on every hop."""

    @pytest.mark.parametrize("seed", range(25))
    def test_oracle_sweeps_clean(self, seed):
        report = ORACLES["recovery-chain"].check(seed)
        assert report.ok, f"seed {seed}: {report.detail}\n{report.repro}"

    def test_oracle_exercises_restart_leg_crashes(self):
        # Across a pile of seeds the oracle must actually reach the
        # tentpole scenario: a crash landing on a restart leg.
        details = [ORACLES["recovery-chain"].check(s).detail
                   for s in range(12)]
        assert any("restart-leg crash" in d for d in details), details


class TestSeededRestartLegCrash:
    def test_restart_leg_crash_recovers_under_policy(self):
        # The acceptance scenario, straight-line: checkpoint, commit,
        # crash the restart leg mid-flight, recover under a bounded
        # policy, end byte-identical to the uninterrupted run.
        parent = _mk(checkpoint_fractions=(0.2,))
        leg = _mk(restart_of=parent, restart_ckpt=0,
                  crash_fracs=((2, 0.3),))
        outcome = run_recovery(leg, RecoveryPolicy(max_attempts=3))
        assert outcome.completed
        assert outcome.attempts[0].crashed
        assert result_fingerprint(outcome.final_result) == _base_fp()


class TestSingleCrashProperty:
    @settings(max_examples=25)
    @given(
        rank=st.integers(0, 3),
        frac=st.floats(0.05, 1.2),
        ckpt=st.booleans(),
    )
    def test_any_single_crash_recovers_to_uninterrupted(
        self, rank, frac, ckpt
    ):
        # Whatever rank dies, whenever it dies, with or without a
        # checkpoint schedule to restart from: a bounded chain always
        # reaches the uninterrupted run's exact fingerprint.
        overrides = {"crash_fracs": ((rank, round(frac, 4)),)}
        if ckpt:
            overrides["checkpoint_fractions"] = (0.2,)
        outcome = run_recovery(
            _mk(**overrides), RecoveryPolicy(max_attempts=3)
        )
        assert outcome.completed, outcome.describe()
        assert result_fingerprint(outcome.final_result) == _base_fp()


class TestRecoveryScheduleAxis:
    def test_draw_arms_hops_only_with_crashes(self):
        drawn = [FaultSchedule.draw(s) for s in range(80)]
        with_hops = [d for d in drawn if d.recovery_crash_fracs]
        assert with_hops, "the draw never arms a recovery hop"
        assert len(with_hops) < len(drawn), "the draw always arms hops"
        for schedule in with_hops:
            assert schedule.crash_fracs, (
                "recovery hops without an initial crash are meaningless"
            )
            assert 1 <= len(schedule.recovery_crash_fracs) <= 2
            for hop in schedule.recovery_crash_fracs:
                for rank, frac in hop:
                    assert 0 <= rank < schedule.nprocs
                    assert frac > 0
        assert any(len(d.recovery_crash_fracs) == 2 for d in drawn), (
            "multi-hop storms never drawn"
        )

    def test_draw_is_seed_stable(self):
        for seed in range(20):
            assert FaultSchedule.draw(seed) == FaultSchedule.draw(seed)

    def test_serialization_round_trips_and_omits_empty(self):
        for seed in range(40):
            schedule = FaultSchedule.draw(seed)
            doc = schedule_to_dict(schedule)
            # Corpus-key stability: schedules without hops serialize to
            # exactly the bytes they had before the axis existed.
            if not schedule.recovery_crash_fracs:
                assert "recovery_crash_fracs" not in doc
            assert schedule_from_dict(doc) == schedule

    def test_shrinker_drops_hops_first(self):
        import dataclasses

        armed = dataclasses.replace(
            FaultSchedule.draw(0),
            crash_fracs=((0, 0.4),),
            recovery_crash_fracs=(((1, 0.5),), ((2, 0.6),)),
        )
        candidates = list(_shrink_candidates(armed))
        assert any(not c.recovery_crash_fracs for c in candidates)
        assert any(len(c.recovery_crash_fracs) == 1 for c in candidates)


class TestAnomalyClassification:
    def test_recovery_error_classifies_as_recovery(self):
        exc = RecoveryError("retry budget (3) exhausted: ...")
        assert _classify_exception(exc) == "recovery"
        # Stringified across a process boundary it must still classify.
        wrapped = RuntimeError(
            "worker died: RecoveryError: retry budget (3) exhausted"
        )
        assert _classify_exception(wrapped) == "recovery"


_SCENARIO_FP = {}


def _scenario_fp(scenario):
    """Uninterrupted-run fingerprint under ``scenario`` (cached).

    A scenario changes the simulated physics, so a faulted chain run
    under one must be compared against a baseline run under the *same*
    scenario — never against the scenario-free fingerprint.
    """
    if scenario not in _SCENARIO_FP:
        _SCENARIO_FP[scenario] = result_fingerprint(
            execute(_mk(scenario=scenario))
        )
    return _SCENARIO_FP[scenario]


class TestScenarioFaultChains:
    """Scenario x fault composition: perturbed physics, same recovery
    guarantees."""

    def test_scenario_baselines_differ_from_flat(self):
        # Sanity for everything below: these chains really do run under
        # perturbed physics, not silently under the flat cluster.  The
        # *application-visible* fingerprint is time-independent by
        # design, so compare the full serialized results (which carry
        # runtimes) instead.
        from repro.harness.spec import run_result_to_dict
        from repro.util.hashing import stable_json_hash

        def full_hash(scenario):
            res = execute(_mk(scenario=scenario))
            return stable_json_hash(run_result_to_dict(res))

        flat = full_hash(None)
        assert full_hash("straggler") != flat
        assert full_hash("degraded-link") != flat

    def test_straggler_crash_recovers_to_straggler_baseline(self):
        # Rank 0 computes 4x slower *and* rank 2 dies mid-run: the
        # bounded chain must still land byte-identical to the
        # uninterrupted straggler run.
        spec = _mk(
            scenario="straggler",
            checkpoint_fractions=(0.2,),
            crash_fracs=((2, 0.5),),
        )
        outcome = run_recovery(spec, RecoveryPolicy(max_attempts=3))
        assert outcome.completed, outcome.describe()
        assert outcome.attempts[0].crashed
        fp = result_fingerprint(outcome.final_result)
        assert fp == _scenario_fp("straggler")

    def test_degraded_link_restart_leg_crash_recovers(self):
        # The acceptance composition: a degraded fabric, a committed
        # checkpoint, and a crash landing on the *restart leg* itself.
        # The scenario rides restart ancestry (with_scenario/replace),
        # so every leg of the chain sees the same broken link.
        parent = _mk(scenario="degraded-link", checkpoint_fractions=(0.2,))
        leg = _mk(
            scenario="degraded-link",
            restart_of=parent,
            restart_ckpt=0,
            crash_fracs=((2, 0.3),),
        )
        outcome = run_recovery(leg, RecoveryPolicy(max_attempts=3))
        assert outcome.completed, outcome.describe()
        assert outcome.attempts[0].crashed
        fp = result_fingerprint(outcome.final_result)
        assert fp == _scenario_fp("degraded-link")

    def test_with_scenario_stamps_restart_ancestry(self):
        parent = _mk(checkpoint_fractions=(0.2,))
        leg = _mk(restart_of=parent, restart_ckpt=0)
        stamped = leg.with_scenario("degraded-link")
        assert stamped.scenario == "degraded-link"
        assert stamped.restart_of.scenario == "degraded-link"


class TestScenarioScheduleAxis:
    """The ``scenario`` fault-schedule axis mirrors the recovery axis:
    drawn sometimes, serialized only when set, shrunk away first."""

    def test_draw_arms_scenarios_sometimes(self):
        from repro.scenarios import SCENARIOS

        drawn = [FaultSchedule.draw(s) for s in range(80)]
        armed = [d for d in drawn if d.scenario]
        assert armed, "the draw never arms a scenario"
        assert len(armed) < len(drawn), "the draw always arms a scenario"
        for schedule in armed:
            assert schedule.scenario in SCENARIOS
        assert len({d.scenario for d in armed}) > 1, (
            "the draw is stuck on one scenario"
        )

    def test_serialization_omits_absent_scenario(self):
        for seed in range(40):
            schedule = FaultSchedule.draw(seed)
            doc = schedule_to_dict(schedule)
            # Corpus-key stability: scenario-free schedules serialize
            # to exactly the bytes they had before the axis existed.
            if not schedule.scenario:
                assert "scenario" not in doc
            assert schedule_from_dict(doc) == schedule

    def test_shrinker_drops_scenario_first(self):
        import dataclasses

        armed = dataclasses.replace(
            FaultSchedule.draw(0), scenario="degraded-link"
        )
        first = next(iter(_shrink_candidates(armed)))
        assert first.scenario is None
        assert first == dataclasses.replace(armed, scenario=None)

    def test_recovery_oracle_passes_under_scenario(self):
        # A scenario-armed schedule with a real crash chain: the
        # recovery-chain oracle must still verify the perturbed run
        # against its own (same-scenario) uninterrupted baseline.
        import dataclasses

        base = FaultSchedule.draw(0)
        schedule = dataclasses.replace(
            base,
            scenario="straggler",
            crash_fracs=((1, 0.4),),
            recovery_crash_fracs=(((2, 0.5),),),
        )
        report = ORACLES["recovery-chain"].check_schedule(schedule)
        assert report.ok, report.detail
