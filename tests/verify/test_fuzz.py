"""The fault fuzzer: corpus DB, shrinking, classification, CLI, and a
real mutation check (a deliberately-broken session must yield a corpus
entry whose repro command reproduces in one paste)."""

import json
import shutil
import tempfile

import pytest
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
    run_state_machine_as_test,
)

from repro.cli import main
from repro.harness.fuzz import (
    CorpusDB,
    CorpusEntry,
    replay_entry,
    run_fuzz,
    schedule_from_dict,
    schedule_key,
    schedule_to_dict,
    shrink_schedule,
)
from repro.harness.verify import (
    ORACLES,
    FaultSchedule,
    Oracle,
    OracleMismatch,
    _classify_exception,
)


def _entry(schedule: FaultSchedule, oracle: str = "stub", **overrides) -> CorpusEntry:
    fields = dict(
        key=schedule_key(schedule, oracle),
        oracle=oracle,
        seed=schedule.seed,
        kind="mismatch",
        detail="stub detail",
        repro=f"repro-mpi verify --oracle {oracle} --seeds 1 "
              f"--base-seed {schedule.seed}",
        schedule=schedule_to_dict(schedule),
        shrunk_from=schedule_to_dict(schedule),
        shrink_steps=0,
        found_at=0.0,
    )
    fields.update(overrides)
    return CorpusEntry(**fields)


class TestScheduleSerialization:
    @pytest.mark.parametrize("seed", range(12))
    def test_round_trip_is_identity(self, seed):
        schedule = FaultSchedule.draw(seed)
        assert schedule_from_dict(schedule_to_dict(schedule)) == schedule

    def test_key_is_content_addressed(self):
        a = FaultSchedule(seed=1)
        b = FaultSchedule(seed=1, crash_fracs=((0, 0.5),))
        assert schedule_key(a, "x") != schedule_key(b, "x")
        assert schedule_key(a, "x") != schedule_key(a, "y")
        assert schedule_key(a, "x") == schedule_key(a, "x")


class TestCorpusDB:
    def test_add_load_round_trip(self, tmp_path):
        db = CorpusDB(tmp_path / "corpus")
        entry = _entry(FaultSchedule(seed=7))
        assert db.add(entry)
        assert entry.key in db
        assert db.load(entry.key) == entry
        assert len(db) == 1

    def test_duplicate_minimized_schedule_dedupes(self, tmp_path):
        db = CorpusDB(tmp_path / "corpus")
        schedule = FaultSchedule(seed=7)
        assert db.add(_entry(schedule))
        # Re-finding the same minimized anomaly (even from a different
        # originating seed) must not grow the corpus.
        assert not db.add(_entry(schedule, seed=99))
        assert len(db) == 1

    def test_unknown_key_raises_with_inventory(self, tmp_path):
        db = CorpusDB(tmp_path / "corpus")
        with pytest.raises(KeyError, match="no corpus entry"):
            db.load("feedbeef")

    def test_cost_model_round_trip(self, tmp_path):
        db = CorpusDB(tmp_path / "corpus")
        assert db.load_cost_model() == {}
        db.save_cost_model({"safe-cut": [0.1, 0.2], "junk": list(range(100))})
        model = db.load_cost_model()
        assert model["safe-cut"] == [0.1, 0.2]
        assert len(model["junk"]) == 64  # bounded tail


class CorpusLifecycle(RuleBasedStateMachine):
    """Insert / dedupe / reload must agree with an in-memory model."""

    def __init__(self):
        super().__init__()
        self.root = tempfile.mkdtemp(prefix="corpus-state-")
        self.db = CorpusDB(self.root)
        self.model: dict = {}

    schedules = st.builds(
        FaultSchedule,
        seed=st.integers(0, 5),
        nprocs=st.integers(3, 5),
        restart_depth=st.integers(1, 2),
        crash_fracs=st.sampled_from([(), ((0, 0.5),), ((1, 0.25),)]),
    )

    @rule(schedule=schedules, oracle=st.sampled_from(["a", "b"]))
    def add(self, schedule, oracle):
        entry = _entry(schedule, oracle)
        added = self.db.add(entry)
        assert added == (entry.key not in self.model)
        self.model.setdefault(entry.key, entry)

    @rule()
    def reload_from_disk(self):
        fresh = CorpusDB(self.root)
        assert set(fresh.keys()) == set(self.model)

    @invariant()
    def entries_match_model(self):
        assert len(self.db) == len(self.model)
        for key, entry in self.model.items():
            assert self.db.load(key) == entry

    def teardown(self):
        shutil.rmtree(self.root, ignore_errors=True)


def test_corpus_lifecycle_stateful():
    run_state_machine_as_test(CorpusLifecycle)


# --------------------------------------------------------------------- #
# Stub oracles for loop/shrink/replay behaviour
# --------------------------------------------------------------------- #

class _FailsOnCrash(Oracle):
    """Fails iff the schedule carries a crash — shrinkable down to a
    single crash event on the minimal world."""

    name = "fails-on-crash"
    description = "test stub"
    cache_aware = False

    def verify(self, schedule, engine):
        if schedule.crash_fracs:
            raise OracleMismatch(f"crash present: {schedule.crash_fracs}")
        return "no crash, ok"


class _Wedges(Oracle):
    name = "wedges"
    description = "test stub"
    cache_aware = False

    def verify(self, schedule, engine):
        from repro.des.errors import SchedulingError

        raise SchedulingError("simulation exceeded max_events=50000")


@pytest.fixture
def stub_oracles(monkeypatch):
    monkeypatch.setitem(ORACLES, "fails-on-crash", _FailsOnCrash())
    monkeypatch.setitem(ORACLES, "wedges", _Wedges())


class TestClassification:
    def test_deadlock_classes(self):
        from repro.des.errors import DeadlockError, SchedulingError

        assert _classify_exception(DeadlockError("stuck")) == "deadlock"
        assert _classify_exception(SchedulingError("max_events hit")) == "deadlock"
        assert _classify_exception(RuntimeError("... max_events ...")) == "deadlock"
        assert _classify_exception(RuntimeError("DeadlockError: x")) == "deadlock"
        assert _classify_exception(ValueError("boom")) == "crash"

    def test_wedged_schedule_is_a_deadlock_anomaly_with_repro(self, stub_oracles):
        report = ORACLES["wedges"].check(5)
        assert not report.ok
        assert report.kind == "deadlock"
        assert "simulation wedged" in report.detail
        assert "--base-seed 5" in report.repro


class TestShrinking:
    def test_shrink_strictly_reduces(self, stub_oracles):
        original = FaultSchedule(
            seed=4,
            nprocs=5,
            niters=14,
            shared=5,
            leavers=3,
            completion_fracs=(0.913371, 1.04489),
            mid_fracs=(0.41,),
            restart_depth=2,
            restart_ckpt=1,
            crash_fracs=((3, 0.777777),),
        )
        minimized, steps = shrink_schedule(
            ORACLES["fails-on-crash"], original, "mismatch"
        )
        assert steps >= 1
        # Everything irrelevant to the failure is gone; the crash stays.
        assert minimized.crash_fracs
        assert minimized.mid_fracs == ()
        assert len(minimized.completion_fracs) == 1
        assert minimized.restart_depth == 1
        assert minimized.restart_ckpt == 0
        assert minimized.nprocs == 3
        assert minimized.crash_fracs == ((0, 0.8),)
        # And the minimized schedule still fails the same way.
        report = ORACLES["fails-on-crash"].check_schedule(minimized)
        assert not report.ok and report.kind == "mismatch"

    def test_shrink_keeps_original_when_kind_would_change(self, monkeypatch):
        class FlipsKind(Oracle):
            name = "flips"
            description = "stub"

            def verify(self, schedule, engine):
                # Any simplification turns the mismatch into a crash —
                # a *different* anomaly the shrinker must not chase.
                if schedule == original:
                    raise OracleMismatch("original fails")
                raise ValueError("simplified schedules crash instead")

        original = FaultSchedule(seed=0, crash_fracs=((0, 0.5),))
        minimized, steps = shrink_schedule(FlipsKind(), original, "mismatch")
        assert minimized == original
        assert steps == 0


class TestFuzzLoop:
    def test_healthy_oracle_yields_no_anomalies(self, tmp_path, stub_oracles):
        corpus = CorpusDB(tmp_path / "corpus")
        stats = run_fuzz(
            corpus, iters=3, base_seed=100, oracles=["fails-on-crash"],
        )
        # Seeds 100.. may or may not draw crashes; any drawn crash IS
        # the stub's trigger, so select seeds without one.
        crashy = [
            s for s in range(100, 103) if FaultSchedule.draw(s).crash_fracs
        ]
        assert len(stats.anomalies) == len(crashy)
        assert stats.iterations == 3
        assert stats.checks == 3

    def test_anomaly_is_shrunk_persisted_and_deduped(self, tmp_path, stub_oracles):
        corpus = CorpusDB(tmp_path / "corpus")
        # Find a seed whose draw carries a crash (the stub's trigger).
        seed = next(s for s in range(100) if FaultSchedule.draw(s).crash_fracs)
        stats = run_fuzz(
            corpus, iters=1, base_seed=seed, oracles=["fails-on-crash"],
        )
        assert len(stats.anomalies) == 1 and stats.new_entries == 1
        entry = stats.anomalies[0]
        assert entry.kind == "mismatch"
        assert entry.shrink_steps >= 1
        assert entry.schedule != entry.shrunk_from
        assert schedule_from_dict(entry.schedule).crash_fracs
        assert corpus.load(entry.key) == entry
        # The same anomaly on a rerun dedupes instead of growing.
        again = run_fuzz(
            corpus, iters=1, base_seed=seed, oracles=["fails-on-crash"],
        )
        assert again.duplicates == 1 and again.new_entries == 0
        assert len(corpus) == 1

    def test_replay_reproduces_until_fixed(self, tmp_path, stub_oracles, monkeypatch):
        corpus = CorpusDB(tmp_path / "corpus")
        seed = next(s for s in range(100) if FaultSchedule.draw(s).crash_fracs)
        stats = run_fuzz(
            corpus, iters=1, base_seed=seed, oracles=["fails-on-crash"],
        )
        key = stats.anomalies[0].key
        assert not replay_entry(corpus, key).ok
        # "Fix the bug": the oracle stops failing; replay now passes.
        monkeypatch.setattr(
            _FailsOnCrash, "verify", lambda self, schedule, engine: "fixed"
        )
        assert replay_entry(corpus, key).ok

    def test_perf_outlier_against_recorded_cost_model(self, tmp_path, monkeypatch):
        class Passes(Oracle):
            name = "passes"
            description = "stub"

            def verify(self, schedule, engine):
                return "ok"

        monkeypatch.setitem(ORACLES, "passes", Passes())
        corpus = CorpusDB(tmp_path / "corpus")
        # Recorded model: this oracle historically takes ~10 ms...
        corpus.save_cost_model({"passes": [0.01] * 8})
        # ...but the injected clock makes every check look like 5 s.
        ticks = iter(range(0, 10_000, 5))

        def clock():
            return float(next(ticks))

        stats = run_fuzz(
            corpus, iters=1, oracles=["passes"], clock=clock,
        )
        assert len(stats.anomalies) == 1
        entry = stats.anomalies[0]
        assert entry.kind == "perf-outlier"
        assert "recorded median" in entry.detail
        assert entry.shrink_steps == 0  # outliers persist unshrunk

    def test_budget_stops_the_loop(self, tmp_path, stub_oracles):
        corpus = CorpusDB(tmp_path / "corpus")
        ticks = iter(x * 10.0 for x in range(1000))
        stats = run_fuzz(
            corpus, budget=25.0, oracles=["fails-on-crash"],
            clock=lambda: next(ticks),
        )
        assert stats.iterations >= 1
        assert stats.iterations < 1000

    def test_requires_some_budget(self, tmp_path):
        with pytest.raises(ValueError, match="iters, budget, or both"):
            run_fuzz(CorpusDB(tmp_path / "corpus"))

    def test_unknown_oracle_rejected(self, tmp_path):
        with pytest.raises(KeyError, match="unknown oracle"):
            run_fuzz(CorpusDB(tmp_path / "c"), iters=1, oracles=["nope"])


class TestBrokenSessionMutation:
    """Acceptance: a deliberately-broken tree yields a corpus entry whose
    repro command reproduces in one paste, and shrinking reduced it."""

    @pytest.fixture
    def lossy_session(self, monkeypatch):
        # The bug: messages taken out of the drain buffer are no longer
        # counted as consumed — the conservation ledger leaks.
        from repro.mana.session import Session

        real_take = Session._buffer_take

        def lossy_take(self, vcid, source, tag):
            hit = real_take(self, vcid, source, tag)
            if hit is not None:
                self.drain_consumed -= 1
            return hit

        monkeypatch.setattr(Session, "_buffer_take", lossy_take)

    def test_fuzzer_finds_shrinks_and_reproduces(
        self, tmp_path, lossy_session, capsys
    ):
        corpus = CorpusDB(tmp_path / "corpus")
        # Seed 1's schedule drains messages through its cut, so the
        # broken ledger is visible to the conservation oracle.
        stats = run_fuzz(
            corpus, iters=1, base_seed=1, oracles=["drain-conservation"],
        )
        assert len(stats.anomalies) == 1
        entry = stats.anomalies[0]
        assert entry.kind == "mismatch"
        assert "imbalance" in entry.detail
        # Shrinking strictly reduced the schedule (and what remains
        # still fails the same way — shrink_schedule guarantees it).
        assert entry.shrink_steps >= 1
        assert entry.schedule != entry.shrunk_from

        # The repro command is one paste: run it through the real CLI.
        argv = entry.repro.split()
        assert argv[0] == "repro-mpi"
        rc = main(argv[1:] + ["--no-cache", "--quiet",
                              "--artifact", str(tmp_path / "art.json")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "drain imbalance" in out


class TestFuzzCli:
    def test_iters_run_exits_zero_when_clean(self, tmp_path, capsys):
        rc = main([
            "fuzz", "--iters", "1", "--oracle", "safe-cut",
            "--corpus", str(tmp_path / "corpus"), "--quiet",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "0 anomalies" in out

    def test_anomaly_exits_one_and_prints_replay(
        self, tmp_path, stub_oracles, capsys
    ):
        seed = next(s for s in range(100) if FaultSchedule.draw(s).crash_fracs)
        args = [
            "fuzz", "--iters", "1", "--base-seed", str(seed),
            "--oracle", "fails-on-crash",
            "--corpus", str(tmp_path / "corpus"), "--quiet",
        ]
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "mismatch: fails-on-crash" in out
        assert "--replay" in out
        # Duplicates still fail the run: a known-failing corpus entry
        # is still an anomaly on this tree.
        assert main(args) == 1
        assert "1 duplicate" in capsys.readouterr().out

    def test_replay_cli_round_trip(self, tmp_path, stub_oracles, capsys):
        seed = next(s for s in range(100) if FaultSchedule.draw(s).crash_fracs)
        corpus_dir = str(tmp_path / "corpus")
        main([
            "fuzz", "--iters", "1", "--base-seed", str(seed),
            "--oracle", "fails-on-crash", "--corpus", corpus_dir, "--quiet",
        ])
        capsys.readouterr()
        key = CorpusDB(corpus_dir).keys()[0]
        rc = main(["fuzz", "--corpus", corpus_dir, "--replay", key])
        assert rc == 1
        assert "still fails" in capsys.readouterr().out

    def test_replay_unknown_key_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fuzz", "--corpus", str(tmp_path / "c"),
                  "--replay", "feedbeef"])

    def test_list_renders_inventory(self, tmp_path, capsys):
        corpus = CorpusDB(tmp_path / "corpus")
        corpus.add(_entry(FaultSchedule(seed=3)))
        rc = main(["fuzz", "--corpus", str(tmp_path / "corpus"), "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mismatch" in out and "1 corpus entry" in out

    def test_missing_budget_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["fuzz", "--corpus", str(tmp_path / "c")])

    def test_entries_are_valid_json_with_schema(self, tmp_path, stub_oracles):
        seed = next(s for s in range(100) if FaultSchedule.draw(s).crash_fracs)
        corpus_dir = tmp_path / "corpus"
        main([
            "fuzz", "--iters", "1", "--base-seed", str(seed),
            "--oracle", "fails-on-crash", "--corpus", str(corpus_dir),
            "--quiet",
        ])
        (path,) = (corpus_dir / "entries").glob("*.json")
        data = json.loads(path.read_text())
        assert data["schema"] == 1
        assert data["key"] == path.stem
        assert schedule_from_dict(data["schedule"]).crash_fracs
