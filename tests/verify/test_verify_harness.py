"""The verification subsystem itself: schedules, oracle API, catalog."""

import pytest

from repro.harness import ExperimentEngine, FaultSchedule, ResultCache
from repro.harness.spec import RunSpec, spec_hash
from repro.harness.verify import (
    ORACLES,
    OracleMismatch,
    program_position_for,
    result_fingerprint,
    run_oracles,
)


class TestFaultSchedule:
    def test_draw_is_deterministic(self):
        assert FaultSchedule.draw(11) == FaultSchedule.draw(11)
        assert FaultSchedule.draw(11) != FaultSchedule.draw(12)

    def test_draw_covers_both_protocols_and_depths(self):
        drawn = [FaultSchedule.draw(s) for s in range(40)]
        assert {d.protocol for d in drawn} == {"cc", "2pc"}
        assert {d.restart_depth for d in drawn} == {1, 2}
        assert any(d.mid_fracs for d in drawn)
        assert any(not d.mid_fracs for d in drawn)
        # The racing window is actually sampled on both sides of 1.0.
        fracs = [f for d in drawn for f in d.completion_fracs]
        assert min(fracs) < 1.0 < max(fracs)

    def test_specs_are_valid_and_deduplicable(self):
        schedule = FaultSchedule.draw(3)
        base = schedule.uninterrupted_spec()
        ckpt = schedule.checkpoint_spec()
        # The checkpoint run's probe IS the baseline: one simulation.
        assert ckpt.probe_spec() == base
        chain = schedule.restart_chain(base_runtime=1.0)
        assert len(chain) == schedule.restart_depth
        assert chain[0].restart_of == ckpt

    def test_fault_fields_enter_the_content_hash(self):
        """Perturbing only the completion-race instants must change the
        spec hash (cache cells are per fault schedule), while a spec
        without the field keeps its pre-existing hash shape."""
        plain = RunSpec.create("earlyexit", 4, protocol="cc", seed=0)
        a = RunSpec.create(
            "earlyexit", 4, protocol="cc", seed=0,
            checkpoint_completion_fracs=(0.99,),
        )
        b = RunSpec.create(
            "earlyexit", 4, protocol="cc", seed=0,
            checkpoint_completion_fracs=(1.01,),
        )
        assert len({spec_hash(plain), spec_hash(a), spec_hash(b)}) == 3

    def test_completion_fracs_validated(self):
        from repro.harness.spec import SpecError

        with pytest.raises(SpecError, match="positive"):
            RunSpec.create(
                "earlyexit", 4, protocol="cc",
                checkpoint_completion_fracs=(-0.5,),
            )
        with pytest.raises(SpecError, match="native"):
            RunSpec.create(
                "earlyexit", 4, checkpoint_completion_fracs=(0.9,)
            )


class TestOracleCatalog:
    def test_catalog_names_and_descriptions(self):
        assert set(ORACLES) == {
            "rank-completion",
            "safe-cut",
            "engine",
            "image-tier",
            "drain-conservation",
            "crash-fault",
            "recovery-chain",
            "scenario-invariance",
        }
        for name, oracle in ORACLES.items():
            assert oracle.name == name
            assert oracle.description

    def test_unknown_oracle_rejected(self):
        with pytest.raises(KeyError, match="unknown oracle"):
            run_oracles(["no-such-oracle"], [0])

    @pytest.mark.parametrize("name", ["safe-cut", "image-tier"])
    def test_single_seed_check_passes(self, name):
        report = ORACLES[name].check(1)
        assert report.ok, report.detail
        assert report.detail

    def test_engine_oracle_single_seed(self):
        report = ORACLES["engine"].check(0)
        assert report.ok, report.detail

    def test_run_oracles_progress_and_order(self):
        seen = []
        reports = run_oracles(
            ["safe-cut"], [0, 1], progress=lambda r: seen.append(r.seed)
        )
        assert seen == [0, 1]
        assert all(r.ok for r in reports)

    def test_oracle_crash_becomes_a_failing_report(self):
        """A simulator-level fault (ProtocolError, deadlock, spec error)
        must surface as a failing report with its repro command — not
        crash the sweep and lose the remaining seeds + artifact."""
        from repro.core.protocol import ProtocolError
        from repro.harness.verify import Oracle

        class Crashes(Oracle):
            name = "crashes"
            description = "stub"

            def verify(self, schedule, engine):
                raise ProtocolError("rank 2 wedged")

        report = Crashes().check(9)
        assert not report.ok
        assert "oracle crashed: ProtocolError: rank 2 wedged" in report.detail
        assert "--base-seed 9" in report.repro

    def test_parallel_fanout_byte_identical_to_serial(self):
        """--jobs N is a pure wall-time knob: the (oracle, seed) grid
        fans out over spawned workers, but the report sequence and every
        field in it must match the serial sweep exactly."""
        names, seeds = ["safe-cut", "drain-conservation"], [0, 1]
        serial_seen, parallel_seen = [], []
        serial = run_oracles(
            names, seeds, jobs=1,
            progress=lambda r: serial_seen.append((r.oracle, r.seed)),
        )
        parallel = run_oracles(
            names, seeds, jobs=2,
            progress=lambda r: parallel_seen.append((r.oracle, r.seed)),
        )
        assert [r.as_dict() for r in serial] == [r.as_dict() for r in parallel]
        assert serial_seen == parallel_seen

    def test_cache_aware_oracle_serves_warm_reruns(self, tmp_path):
        cold_engine = ExperimentEngine(cache=ResultCache(tmp_path))
        assert ORACLES["rank-completion"].check(2, cold_engine).ok
        warm_engine = ExperimentEngine(cache=ResultCache(tmp_path))
        assert ORACLES["rank-completion"].check(2, warm_engine).ok
        assert warm_engine.last_stats.executed == 0


class TestHelpers:
    def test_position_inversion_round_trip(self):
        from repro.apps.scheduled import ScheduledMix

        app = ScheduledMix(niters=6, nprocs=4, schedule_seed=9)
        program = app.offline_program()
        for rank in range(4):
            for pos in range(len(program.ops[rank]) + 1):
                counts = program.counts_at(rank, pos)
                assert program_position_for(program, rank, counts) == pos

    def test_unreachable_counts_raise(self):
        from repro.apps.scheduled import ScheduledMix

        program = ScheduledMix(niters=4, nprocs=4, schedule_seed=0).offline_program()
        with pytest.raises(OracleMismatch):
            program_position_for(program, 0, {0xDEAD: 3})

    def test_result_fingerprint_ignores_timing(self):
        from repro.harness.runner import RunResult

        a = RunResult(app="x", protocol="cc", nprocs=2, nnodes=1,
                      runtime=1.0, per_rank=[1.5, 2.5], coll_calls=10,
                      p2p_calls=0, sim_events=100)
        b = RunResult(app="x", protocol="cc", nprocs=2, nnodes=1,
                      runtime=9.0, per_rank=[1.5, 2.5], coll_calls=99,
                      p2p_calls=5, sim_events=7)
        assert result_fingerprint(a) == result_fingerprint(b)
        b.per_rank = [1.5, 2.50001]
        assert result_fingerprint(a) != result_fingerprint(b)
