"""Crash-fault injection, differentially.

A hard-killed rank must behave like a rank that *never participated*
from the kill instant on: no finish, no result, no proxy answering for
it, in-flight rounds aborted with a crash-specific reason (and no
leaked images), later requests aborted instantly — while everything
that committed *before* the crash stays a valid restart point whose
recovery is fingerprint-identical to a graceful run's.
"""

import pytest

from repro.harness import FaultSchedule
from repro.harness.spec import RunSpec, SpecError, execute
from repro.harness.verify import ORACLES, result_fingerprint
from repro.netmodel import StorageModel

STORAGE = StorageModel(base_latency=1e-4)
APP_KWARGS = {"niters": 12, "shared": 4, "leavers": 1, "memory_bytes": 1 << 20}


def _spec(**overrides):
    kwargs = dict(
        app_kwargs=APP_KWARGS, protocol="cc", seed=3, storage=STORAGE
    )
    kwargs.update(overrides)
    return RunSpec.create("earlyexit", 4, **kwargs)


@pytest.fixture(scope="module")
def base_result():
    return execute(_spec())


class TestCrashSemantics:
    def test_crashed_rank_is_not_a_finished_rank(self, base_result):
        spec = _spec(crash_fracs=((1, 0.4),))
        res = execute(spec, {_spec(): base_result})
        assert res.crashed_ranks == [1]
        assert res.per_rank[1] is None
        assert res.rank_finish_times[1] is None
        # The other ranks genuinely ran (either finished before being
        # torn down with the job, or died blocked on the corpse).
        assert res.runtime > 0

    def test_crash_racing_completion_loses_gracefully(self, base_result):
        # A kill scheduled long after every rank finished is a no-op:
        # same results as the uninterrupted run, no corpse.
        spec = _spec(crash_fracs=((2, 50.0),))
        res = execute(spec, {_spec(): base_result})
        assert res.crashed_ranks == []
        assert result_fingerprint(res) == result_fingerprint(base_result)

    def test_request_after_crash_aborts_as_never_participated(self, base_result):
        # Crash early, request late: the coordinator must refuse the
        # round outright — the corpse cannot intend, quiesce, or drain.
        spec = _spec(
            crash_fracs=((1, 0.2),), checkpoint_completion_fracs=(0.95,)
        )
        res = execute(spec, {_spec(): base_result})
        assert res.crashed_ranks == [1]
        assert len(res.checkpoints) == 1
        rec = res.checkpoints[0]
        assert rec.aborted and not rec.committed
        assert "crashed" in rec.abort_reason
        assert not rec.images

    def test_mid_round_crash_aborts_with_crash_reason(self, base_result):
        # Request at t=0 (round in flight immediately), crash mid-round:
        # the abort reason must name the crash, not a generic failure,
        # and the record must hold no partial images.
        spec = _spec(
            crash_fracs=((2, 0.5),), checkpoint_fractions=(0.01,)
        )
        res = execute(spec, {_spec(): base_result})
        assert res.crashed_ranks == [2]
        assert len(res.checkpoints) == 1
        rec = res.checkpoints[0]
        assert rec.aborted
        assert "crashed" in rec.abort_reason
        assert not rec.images

    def test_restart_specs_accept_crash_faults(self):
        # Crash faults on restart legs are first-class: the fractions
        # anchor on the restart leg's *own* crash-free runtime (its
        # probe_spec keeps restart_of but drops schedules and crash).
        parent = _spec(checkpoint_completion_fracs=(0.9,))
        spec = _spec(restart_of=parent, crash_fracs=((0, 0.5),))
        assert spec.crash_fracs == ((0, 0.5),)
        assert "(restart)" in spec.label() and "(crash)" in spec.label()
        probe = spec.probe_spec()
        assert probe is not None
        assert probe.restart_of == parent and not probe.crash_fracs

    def test_crash_fracs_validated(self):
        with pytest.raises(SpecError, match="nonexistent rank"):
            _spec(crash_fracs=((7, 0.5),))
        with pytest.raises(SpecError, match="more than once"):
            _spec(crash_fracs=((1, 0.5), (1, 0.7)))
        with pytest.raises(SpecError, match="positive"):
            _spec(crash_fracs=((1, -0.5),))


class TestCrashDifferential:
    """Crash-after-commit vs graceful: the committed image can't tell."""

    def test_restart_past_crash_matches_graceful_restart(self, base_result):
        # Graceful leg: checkpoint, commit, restart.
        graceful = _spec(checkpoint_fractions=(0.3,))
        deps = {_spec(): base_result}
        graceful_res = execute(graceful, deps)
        commits = [r for r in graceful_res.checkpoints if r.committed]
        assert commits, "graceful run must commit for this differential"
        deps[graceful] = graceful_res
        graceful_restart = execute(
            _spec(restart_of=graceful, restart_ckpt=0), deps
        )

        # Crash leg: same request, but a rank dies *after* the commit
        # completes (anchored off the graceful run's resume instant, in
        # units of the probe runtime — exactly how crash_fracs convert).
        late_frac = commits[0].t_resumed * 1.1 / base_result.runtime
        crashed = _spec(
            checkpoint_fractions=(0.3,),
            crash_fracs=((1, round(late_frac, 6)),),
        )
        crashed_res = execute(crashed, deps)
        crash_commits = [r for r in crashed_res.checkpoints if r.committed]
        assert crash_commits, "the pre-crash commit must survive the crash"
        assert crash_commits[0].ckpt_id == commits[0].ckpt_id
        deps[crashed] = crashed_res
        crash_restart = execute(_spec(restart_of=crashed, restart_ckpt=0), deps)

        want = result_fingerprint(base_result)
        assert result_fingerprint(graceful_restart) == want
        assert result_fingerprint(crash_restart) == want

    def test_crash_mid_restart_leg_leaves_image_intact(self, base_result):
        # Kill a rank *during the restart leg itself* — while survivors
        # rebuild their lower half, replay comm creation, and drain
        # restored p2p.  The leg must tear down like any crashed run
        # (corpse recorded, drains conserved) and the parent's committed
        # image must stay a valid restart point afterwards.
        parent = _spec(checkpoint_fractions=(0.3,))
        deps = {_spec(): base_result}
        parent_res = execute(parent, deps)
        assert [r for r in parent_res.checkpoints if r.committed]
        deps[parent] = parent_res

        leg = _spec(restart_of=parent, restart_ckpt=0,
                    crash_fracs=((1, 0.3),))
        res = execute(leg, deps)
        assert res.crashed_ranks == [1]
        assert res.per_rank[1] is None
        for rank in range(res.nprocs):
            assert (
                res.drain_restored[rank] + res.drain_buffered[rank]
                == res.drain_consumed[rank] + res.drain_leftover[rank]
            ), f"rank {rank} leaked or forged drained messages"

        # The crash consumed nothing: relaunching the same restart leg
        # (crash-free) from the same image still reproduces the base run.
        clean = execute(_spec(restart_of=parent, restart_ckpt=0), deps)
        assert result_fingerprint(clean) == result_fingerprint(base_result)

    def test_drain_conservation_holds_across_crash(self, base_result):
        spec = _spec(
            crash_fracs=((1, 0.6),), checkpoint_completion_fracs=(0.9,)
        )
        res = execute(spec, {_spec(): base_result})
        for rank in range(res.nprocs):
            assert (
                res.drain_restored[rank] + res.drain_buffered[rank]
                == res.drain_consumed[rank] + res.drain_leftover[rank]
            ), f"rank {rank} leaked or forged drained messages"


class TestCrashOracles:
    """The two new oracles sweep clean over a healthy tree."""

    @pytest.mark.parametrize("seed", range(6))
    def test_crash_fault_oracle(self, seed):
        report = ORACLES["crash-fault"].check(seed)
        assert report.ok, f"seed {seed}: {report.detail}\n{report.repro}"
        assert "late leg" in report.detail

    @pytest.mark.parametrize("seed", range(6))
    def test_drain_conservation_oracle(self, seed):
        report = ORACLES["drain-conservation"].check(seed)
        assert report.ok, f"seed {seed}: {report.detail}\n{report.repro}"

    def test_schedule_draw_covers_crashes(self):
        drawn = [FaultSchedule.draw(s) for s in range(40)]
        with_crash = [d for d in drawn if d.crash_fracs]
        assert with_crash, "the draw never arms a crash"
        assert len(with_crash) < len(drawn), "the draw always arms a crash"
        for d in with_crash:
            assert 1 <= len(d.crash_fracs) <= 2
            for rank, frac in d.crash_fracs:
                assert 0 <= rank < d.nprocs
                assert frac > 0


class TestMultiRankCrashes:
    """Two corpses in one job: the coordinator must reclaim *both*
    debt sets, not just the first casualty's."""

    def test_two_corpses_in_one_round_reclaim_both(self, base_result):
        # Request immediately so the round is in flight when both kills
        # land.  The first corpse aborts the round; the second arrives
        # with the coordinator already idle and must be absorbed (its
        # drain/commit debt was cleared with the round) rather than
        # tripping a protocol error.
        spec = _spec(
            crash_fracs=((1, 0.5), (2, 0.55)),
            checkpoint_fractions=(0.01,),
        )
        res = execute(spec, {_spec(): base_result})
        assert res.crashed_ranks == [1, 2]
        assert len(res.checkpoints) == 1
        rec = res.checkpoints[0]
        assert rec.aborted and not rec.committed
        assert "crashed" in rec.abort_reason
        assert not rec.images

    def test_two_corpses_then_late_request_still_aborts_cleanly(
        self, base_result
    ):
        # A request issued after both deaths: neither corpse can intend
        # or drain, so the round aborts instantly — and the fact that it
        # *can* abort (instead of waiting on state a dead rank still
        # "owes") is the reclamation under test.
        spec = _spec(
            crash_fracs=((0, 0.2), (3, 0.25)),
            checkpoint_completion_fracs=(0.95,),
        )
        res = execute(spec, {_spec(): base_result})
        assert res.crashed_ranks == [0, 3]
        assert len(res.checkpoints) == 1
        rec = res.checkpoints[0]
        assert rec.aborted and "crashed" in rec.abort_reason

    def test_double_crash_conserves_drained_messages(self, base_result):
        spec = _spec(
            crash_fracs=((1, 0.45), (2, 0.5)),
            checkpoint_completion_fracs=(0.9,),
        )
        res = execute(spec, {_spec(): base_result})
        for rank in range(res.nprocs):
            assert (
                res.drain_restored[rank] + res.drain_buffered[rank]
                == res.drain_consumed[rank] + res.drain_leftover[rank]
            ), f"rank {rank} leaked or forged drained messages"

    def test_draw_emits_multi_rank_crashes_on_distinct_ranks(self):
        drawn = [FaultSchedule.draw(s) for s in range(300)]
        multi = [s for s in drawn if len(s.crash_fracs) >= 2]
        assert multi, "the draw must exercise simultaneous failures"
        for schedule in multi:
            ranks = [r for r, _ in schedule.crash_fracs]
            assert len(set(ranks)) == len(ranks)
            assert all(0 <= r < schedule.nprocs for r in ranks)
