"""``repro-mpi verify`` CLI: verdict lines, exit codes, failing-seed
artifacts, bench records."""

import json

import pytest

from repro.cli import main
from repro.harness.verify import ORACLES, Oracle, OracleMismatch


class _AlwaysFails(Oracle):
    name = "always-fails"
    description = "test stub"
    cache_aware = False

    def verify(self, schedule, engine):
        raise OracleMismatch(f"injected mismatch for seed {schedule.seed}")


class _AlwaysPasses(Oracle):
    name = "always-passes"
    description = "test stub"
    cache_aware = False

    def verify(self, schedule, engine):
        return "stub ok"


@pytest.fixture
def stub_oracles(monkeypatch):
    monkeypatch.setitem(ORACLES, "always-fails", _AlwaysFails())
    monkeypatch.setitem(ORACLES, "always-passes", _AlwaysPasses())


def test_passing_run_exits_zero(stub_oracles, tmp_path, capsys):
    artifact = tmp_path / "failures.json"
    rc = main([
        "verify", "--oracle", "always-passes", "--seeds", "3",
        "--no-cache", "--artifact", str(artifact),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "oracle always-passes: 3/3 seeds ok" in out
    assert not artifact.exists()


def test_mismatch_exits_one_and_writes_derandomized_artifact(
    stub_oracles, tmp_path, capsys
):
    artifact = tmp_path / "failures.json"
    rc = main([
        "verify", "--oracle", "always-fails", "--seeds", "2",
        "--base-seed", "40", "--no-cache", "--quiet",
        "--artifact", str(artifact),
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "oracle always-fails: 0/2 seeds ok" in out
    assert "injected mismatch for seed 40" in out
    payload = json.loads(artifact.read_text())
    assert [f["seed"] for f in payload["failures"]] == [40, 41]
    for failure in payload["failures"]:
        assert failure["repro"] == (
            "repro-mpi verify --oracle always-fails --seeds 1 "
            f"--base-seed {failure['seed']}"
        )


def test_mixed_oracles_report_separately(stub_oracles, tmp_path, capsys):
    rc = main([
        "verify", "--oracle", "always-passes", "--oracle", "always-fails",
        "--seeds", "1", "--no-cache", "--quiet",
        "--artifact", str(tmp_path / "f.json"),
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "oracle always-passes: 1/1 seeds ok" in out
    assert "oracle always-fails: 0/1 seeds ok" in out


def test_bench_json_records_verdicts(stub_oracles, tmp_path):
    bench = tmp_path / "bench.json"
    rc = main([
        "verify", "--oracle", "always-passes", "--seeds", "2",
        "--no-cache", "--quiet", "--bench-json", str(bench),
        "--artifact", str(tmp_path / "f.json"),
    ])
    assert rc == 0
    records = json.loads(bench.read_text())
    assert records[-1]["figures"] == ["verify:always-passes"]
    assert records[-1]["checks"] == 2
    assert records[-1]["mismatches"] == 0
    assert records[-1]["seeds"] == [0, 2]


def test_unknown_oracle_flag_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["verify", "--oracle", "nope"])
    assert exc.value.code == 2
    assert "invalid choice" in capsys.readouterr().err


def test_real_oracle_through_the_cli(tmp_path, capsys):
    rc = main([
        "verify", "--oracle", "rank-completion", "--seeds", "1",
        "--base-seed", "5", "--cache-dir", str(tmp_path), "--quiet",
        "--artifact", str(tmp_path / "f.json"),
    ])
    assert rc == 0
    assert "oracle rank-completion: 1/1 seeds ok" in capsys.readouterr().out


def test_jobs_flag_fans_out_with_identical_summary(tmp_path, capsys):
    # Real oracles only: spawned workers re-import the catalog, so
    # monkeypatched stubs don't exist over there.
    argv_tail = [
        "--oracle", "safe-cut", "--seeds", "2", "--no-cache", "--quiet",
        "--artifact", str(tmp_path / "f.json"),
    ]
    assert main(["verify", *argv_tail]) == 0
    serial_out = capsys.readouterr().out.splitlines()[0]
    assert main(["verify", "--jobs", "2", *argv_tail]) == 0
    parallel_out = capsys.readouterr().out.splitlines()[0]
    assert serial_out == parallel_out == "oracle safe-cut: 2/2 seeds ok"
