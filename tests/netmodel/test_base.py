"""Tests for link parameters and model bundles."""

import pytest

from repro.netmodel import LinkParams, ModelParams


def test_transfer_time_formula():
    link = LinkParams(latency=1e-6, bandwidth=1e9)
    assert link.transfer_time(0) == pytest.approx(1e-6)
    assert link.transfer_time(1000) == pytest.approx(1e-6 + 1e-6)


def test_link_validation():
    with pytest.raises(ValueError):
        LinkParams(latency=-1.0, bandwidth=1e9)
    with pytest.raises(ValueError):
        LinkParams(latency=0.0, bandwidth=0.0)
    link = LinkParams(1e-6, 1e9)
    with pytest.raises(ValueError):
        link.transfer_time(-5)


def test_perlmutter_like_faster_than_slow_network():
    fast = ModelParams.perlmutter_like()
    slow = ModelParams.slow_network()
    assert fast.inter.latency < slow.inter.latency
    assert fast.inter.bandwidth > slow.inter.bandwidth


def test_intra_faster_than_inter():
    p = ModelParams.perlmutter_like()
    assert p.intra.latency < p.inter.latency
    assert p.intra.bandwidth > p.inter.bandwidth
