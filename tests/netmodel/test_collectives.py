"""Tests for the causal collective cost engines.

These verify the *structural* properties the paper's argument rests on:
broadcast is loose (early ranks exit before late leaves arrive), the
synchronizing collectives are tight (nobody exits before the last
arrival), and trees are well formed.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netmodel import (
    CollectiveTuning,
    BcastSolver,
    ReduceSolver,
    SynchronizingSolver,
    binomial_children,
    binomial_parent,
    make_solver,
    make_topology,
)
from repro.netmodel.collectives import subtree_size


@pytest.fixture
def topo():
    return make_topology(8, ppn=4)


@pytest.fixture
def tuning():
    return CollectiveTuning()


def all_exits(solver, arrivals):
    """Feed arrivals in time order; return {index: exit}."""
    exits = {}
    order = sorted(range(len(arrivals)), key=lambda i: (arrivals[i], i))
    for i in order:
        exits.update(solver.on_arrival(i, arrivals[i]))
    assert solver.complete
    return exits


class TestBinomialTree:
    def test_parent_of_small_vranks(self):
        assert binomial_parent(1) == 0
        assert binomial_parent(2) == 0
        assert binomial_parent(3) == 1
        assert binomial_parent(4) == 0
        assert binomial_parent(5) == 1
        assert binomial_parent(6) == 2
        assert binomial_parent(7) == 3

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            binomial_parent(0)

    def test_children_of_root_p8(self):
        # Largest subtree first: 4 (size 4), 2 (size 2), 1 (size 1).
        assert binomial_children(0, 8) == [4, 2, 1]

    def test_children_respect_bound(self):
        assert binomial_children(0, 5) == [4, 2, 1]
        assert binomial_children(4, 5) == []
        # vrank 3's parent is 1 (3 - 2^1), so 2 is a leaf in a 5-tree.
        assert binomial_children(2, 5) == []
        assert binomial_children(1, 5) == [3]

    @given(st.integers(min_value=1, max_value=200))
    def test_tree_spans_all_vranks(self, p):
        seen = set()

        def walk(v):
            seen.add(v)
            for c in binomial_children(v, p):
                walk(c)

        walk(0)
        assert seen == set(range(p))

    @given(st.integers(min_value=2, max_value=128))
    def test_parent_child_consistency(self, p):
        for v in range(1, p):
            assert v in binomial_children(binomial_parent(v), p)

    def test_subtree_sizes_sum(self):
        p = 13
        assert subtree_size(0, p) == p


class TestSynchronizingSolver:
    @pytest.mark.parametrize(
        "kind", ["barrier", "allreduce", "alltoall", "allgather", "scan", "reduce_scatter"]
    )
    def test_no_exit_before_last_arrival(self, topo, tuning, kind):
        solver = make_solver(kind, tuple(range(8)), topo, tuning, 64)
        arrivals = [0.0, 5.0, 1.0, 2.0, 0.5, 3.0, 0.1, 4.0]
        exits = all_exits(solver, arrivals)
        last = max(arrivals)
        assert all(t > last for t in exits.values())

    def test_partial_arrivals_resolve_nothing(self, topo, tuning):
        solver = make_solver("barrier", tuple(range(4)), topo, tuning, 0)
        assert solver.on_arrival(0, 0.0) == {}
        assert solver.on_arrival(1, 1.0) == {}
        assert not solver.complete

    def test_alltoall_scales_linearly_with_p(self, tuning):
        t_small = make_solver(
            "alltoall", tuple(range(4)), make_topology(4, ppn=4), tuning, 1024
        )
        t_large = make_solver(
            "alltoall", tuple(range(16)), make_topology(16, ppn=16), tuning, 1024
        )
        cost_small = t_small.algorithm_cost()
        cost_large = t_large.algorithm_cost()
        assert cost_large > cost_small * 3  # (p-1) scaling: 15/3 = 5x

    def test_barrier_scales_logarithmically(self, tuning):
        c8 = make_solver(
            "barrier", tuple(range(8)), make_topology(8, ppn=8), tuning, 0
        ).algorithm_cost()
        c64 = make_solver(
            "barrier", tuple(range(64)), make_topology(64, ppn=64), tuning, 0
        ).algorithm_cost()
        assert c64 == pytest.approx(c8 * 2)  # log2: 3 rounds -> 6 rounds

    def test_allreduce_message_size_increases_cost(self, topo, tuning):
        small = make_solver("allreduce", tuple(range(8)), topo, tuning, 4)
        large = make_solver("allreduce", tuple(range(8)), topo, tuning, 1 << 20)
        assert large.algorithm_cost() > small.algorithm_cost() * 10

    def test_singleton_group_cheap(self, topo, tuning):
        solver = make_solver("allreduce", (3,), topo, tuning, 1024)
        exits = all_exits(solver, [2.0])
        assert exits[0] == pytest.approx(2.0 + tuning.min_stage)

    def test_unknown_kind_rejected(self, topo, tuning):
        with pytest.raises(ValueError):
            make_solver("gossip", (0, 1), topo, tuning, 0)


class TestBcastSolver:
    def test_root_exits_before_late_leaf_arrives(self, topo, tuning):
        """The defining non-synchronizing behaviour."""
        solver = make_solver("bcast", tuple(range(8)), topo, tuning, 4)
        # Root arrives at 0; exits should resolve immediately.
        newly = solver.on_arrival(0, 0.0)
        assert 0 in newly
        assert newly[0] < 1.0  # long before the leaf arrives at t=100

    def test_all_members_exit_after_own_arrival(self, topo, tuning):
        solver = make_solver("bcast", tuple(range(8)), topo, tuning, 1024)
        arrivals = [0.0, 10.0, 0.2, 0.1, 7.0, 0.3, 0.4, 0.5]
        exits = all_exits(solver, arrivals)
        for i, a in enumerate(arrivals):
            assert exits[i] > a

    def test_children_wait_for_root(self, topo, tuning):
        solver = make_solver("bcast", tuple(range(4)), topo, tuning, 64)
        # Non-roots arrive first; nothing resolves until the root shows up.
        assert solver.on_arrival(1, 0.0) == {}
        assert solver.on_arrival(2, 0.0) == {}
        assert solver.on_arrival(3, 0.0) == {}
        newly = solver.on_arrival(0, 5.0)
        assert set(newly) == {0, 1, 2, 3}
        assert all(t > 5.0 for t in newly.values())

    def test_nonzero_root_rotation(self, topo, tuning):
        solver = make_solver("bcast", tuple(range(4)), topo, tuning, 64, root_index=2)
        newly = solver.on_arrival(2, 0.0)
        assert 2 in newly  # the root resolves on its own arrival

    def test_deeper_ranks_exit_later(self, tuning):
        topo = make_topology(8, ppn=8)
        solver = make_solver("bcast", tuple(range(8)), topo, tuning, 4)
        exits = all_exits(solver, [0.0] * 8)
        # vrank 7 is depth 3; vrank 4 is depth 1.
        assert exits[7] > exits[4]

    def test_message_size_increases_depth_cost(self, topo, tuning):
        small = all_exits(
            make_solver("bcast", tuple(range(8)), topo, tuning, 4), [0.0] * 8
        )
        large = all_exits(
            make_solver("bcast", tuple(range(8)), topo, tuning, 1 << 20), [0.0] * 8
        )
        assert max(large.values()) > max(small.values()) * 5

    def test_duplicate_arrival_rejected(self, topo, tuning):
        solver = make_solver("bcast", tuple(range(4)), topo, tuning, 4)
        solver.on_arrival(0, 0.0)
        with pytest.raises(ValueError):
            solver.on_arrival(0, 1.0)

    def test_index_out_of_range(self, topo, tuning):
        solver = make_solver("bcast", tuple(range(4)), topo, tuning, 4)
        with pytest.raises(ValueError):
            solver.on_arrival(4, 0.0)


class TestReduceSolver:
    def test_leaves_exit_early_root_exits_last(self, topo, tuning):
        solver = make_solver("reduce", tuple(range(8)), topo, tuning, 1024)
        exits = all_exits(solver, [0.0] * 8)
        assert exits[0] == max(exits.values())  # root waits for the whole tree
        # vrank 7 is a leaf: exits long before the root.
        assert exits[7] < exits[0]

    def test_root_waits_for_late_leaf(self, topo, tuning):
        # Tree over p=4: 0 <- {2, 1}, 1 <- {3}.  So member 3's lateness
        # delays its ancestor 1 and the root, but not leaf 2.
        solver = make_solver("reduce", tuple(range(4)), topo, tuning, 64)
        arrivals = [0.0, 0.0, 0.0, 50.0]
        exits = all_exits(solver, arrivals)
        assert exits[0] > 50.0
        assert exits[1] > 50.0  # ancestor of the late leaf
        assert exits[2] < 1.0  # independent leaf leaves early

    def test_gather_aggregates_sizes(self, topo, tuning):
        """With size aggregation on (gather), messages near the root carry
        whole subtrees and the root exit is strictly later."""
        from repro.netmodel import ReduceSolver

        kwargs = dict(reduce_gamma=False)
        flat = ReduceSolver(
            tuple(range(8)), topo, tuning, 1 << 16, 0, aggregate_sizes=False, **kwargs
        )
        agg = ReduceSolver(
            tuple(range(8)), topo, tuning, 1 << 16, 0, aggregate_sizes=True, **kwargs
        )
        flat_exits = all_exits(flat, [0.0] * 8)
        agg_exits = all_exits(agg, [0.0] * 8)
        assert agg_exits[0] > flat_exits[0]

    def test_partial_resolution_is_causal(self, topo, tuning):
        solver = make_solver("reduce", tuple(range(4)), topo, tuning, 64)
        # Leaf 3 (child of 2) arrives: resolves only itself.
        newly = solver.on_arrival(3, 0.0)
        assert set(newly) == {3}
        # Member 1 (leaf child of root) arrives: resolves itself.
        newly = solver.on_arrival(1, 0.0)
        assert set(newly) == {1}
        # Member 2 arrives: has its child 3 done -> resolves.
        newly = solver.on_arrival(2, 0.0)
        assert set(newly) == {2}
        # Root arrives last.
        newly = solver.on_arrival(0, 1.0)
        assert set(newly) == {0}


class TestCausalityProperty:
    """Exit times never precede the arrivals they depend on."""

    @given(
        kind=st.sampled_from(["bcast", "reduce", "barrier", "allreduce", "alltoall"]),
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=16
        ),
        nbytes=st.sampled_from([0, 4, 1024, 1 << 20]),
    )
    def test_exits_after_own_arrival(self, kind, arrivals, nbytes):
        p = len(arrivals)
        topo = make_topology(p, ppn=max(1, p // 2))
        solver = make_solver(kind, tuple(range(p)), topo, CollectiveTuning(), nbytes)
        exits = all_exits(solver, arrivals)
        assert set(exits) == set(range(p))
        for i in range(p):
            assert exits[i] > arrivals[i]

    @given(
        arrivals=st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=2, max_size=12
        )
    )
    def test_resolution_only_uses_seen_arrivals(self, arrivals):
        """Incremental exits must match the batch answer (no lookahead)."""
        p = len(arrivals)
        topo = make_topology(p, ppn=p)
        tuning = CollectiveTuning()
        s1 = make_solver("bcast", tuple(range(p)), topo, tuning, 64)
        incremental = all_exits(s1, arrivals)
        s2 = make_solver("bcast", tuple(range(p)), topo, tuning, 64)
        batch = {}
        for i in range(p):  # arbitrary different feed order by index
            batch.update(s2.on_arrival(i, arrivals[i]))
        assert incremental == batch
