"""Tests for the Lustre-like storage model."""

import pytest

from repro.netmodel import StorageModel


def test_effective_bandwidth_scales_then_saturates():
    sm = StorageModel(per_node_bandwidth=2e9, aggregate_bandwidth=8e9)
    assert sm.effective_bandwidth(1) == 2e9
    assert sm.effective_bandwidth(3) == 6e9
    assert sm.effective_bandwidth(4) == 8e9
    assert sm.effective_bandwidth(16) == 8e9


def test_write_time_grows_past_saturation():
    """Figure 9's shape: per-node data is constant, so below saturation the
    time is flat; above it, more nodes = more total data over a capped
    pipe = longer checkpoints."""
    sm = StorageModel(per_node_bandwidth=2e9, aggregate_bandwidth=8e9, base_latency=0.0)
    bytes_per_node = 50e9
    t = [sm.write_time(bytes_per_node * n, n) for n in (1, 2, 4, 8, 16)]
    assert t[0] == pytest.approx(t[1])  # below saturation: flat
    assert t[2] < t[3] < t[4]  # above saturation: grows


def test_read_faster_than_write():
    sm = StorageModel(read_factor=1.5)
    b, n = 100e9, 4
    assert sm.read_time(b, n) < sm.write_time(b, n)


def test_base_latency_floor():
    sm = StorageModel(base_latency=2.0)
    assert sm.write_time(0, 1) == pytest.approx(2.0)


def test_validation():
    with pytest.raises(ValueError):
        StorageModel(per_node_bandwidth=0)
    with pytest.raises(ValueError):
        StorageModel(read_factor=0)
    sm = StorageModel()
    with pytest.raises(ValueError):
        sm.write_time(-1, 1)
    with pytest.raises(ValueError):
        sm.effective_bandwidth(0)
