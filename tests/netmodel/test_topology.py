"""Tests for cluster topology and link selection."""

import pytest

from repro.netmodel import ClusterTopology, ModelParams, make_topology


@pytest.fixture
def topo16():
    return make_topology(16, ppn=4)


def test_node_assignment(topo16):
    assert topo16.nnodes == 4
    assert topo16.node_of(0) == 0
    assert topo16.node_of(3) == 0
    assert topo16.node_of(4) == 1
    assert topo16.node_of(15) == 3


def test_node_of_out_of_range(topo16):
    with pytest.raises(ValueError):
        topo16.node_of(16)
    with pytest.raises(ValueError):
        topo16.node_of(-1)


def test_same_node(topo16):
    assert topo16.same_node(0, 3)
    assert not topo16.same_node(3, 4)


def test_link_selection(topo16):
    p = topo16.params
    assert topo16.link(0, 1) is p.intra
    assert topo16.link(0, 4) is p.inter


def test_p2p_time_intra_vs_inter(topo16):
    m = 1024
    assert topo16.p2p_time(0, 1, m) < topo16.p2p_time(0, 4, m)


def test_p2p_self_send_is_cheap(topo16):
    assert topo16.p2p_time(2, 2, 1024) < topo16.p2p_time(0, 1, 1024)


def test_ceil_nnodes():
    topo = make_topology(10, ppn=4)
    assert topo.nnodes == 3


def test_single_node_mean_alpha_is_intra():
    topo = make_topology(8, ppn=8)
    assert topo.mean_alpha() == pytest.approx(topo.params.intra.latency)


def test_multi_node_mean_alpha_between_bounds(topo16):
    a = topo16.mean_alpha()
    assert topo16.params.intra.latency < a < topo16.params.inter.latency


def test_mean_alpha_subgroup_single_node(topo16):
    # Group entirely on node 0.
    a = topo16.mean_alpha((0, 1, 2, 3))
    assert a == pytest.approx(topo16.params.intra.latency)


def test_mean_alpha_subgroup_spread(topo16):
    # One rank per node: every pair is inter-node.
    a = topo16.mean_alpha((0, 4, 8, 12))
    assert a == pytest.approx(topo16.params.inter.latency)


def test_mean_alpha_more_nodes_is_slower():
    params = ModelParams.perlmutter_like()
    one = ClusterTopology(128, 128, params)
    two = ClusterTopology(256, 128, params)
    four = ClusterTopology(512, 128, params)
    assert one.mean_alpha() < two.mean_alpha() < four.mean_alpha()


def test_invalid_construction():
    params = ModelParams.perlmutter_like()
    with pytest.raises(ValueError):
        ClusterTopology(0, 4, params)
    with pytest.raises(ValueError):
        ClusterTopology(4, 0, params)


def test_default_ppn_single_node_when_small():
    topo = make_topology(32)
    assert topo.nnodes == 1
    topo = make_topology(256)
    assert topo.nnodes == 2
