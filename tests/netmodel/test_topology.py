"""Tests for cluster topology and link selection."""

import pytest

from repro.netmodel import ClusterTopology, ModelParams, make_topology


@pytest.fixture
def topo16():
    return make_topology(16, ppn=4)


def test_node_assignment(topo16):
    assert topo16.nnodes == 4
    assert topo16.node_of(0) == 0
    assert topo16.node_of(3) == 0
    assert topo16.node_of(4) == 1
    assert topo16.node_of(15) == 3


def test_node_of_out_of_range(topo16):
    with pytest.raises(ValueError):
        topo16.node_of(16)
    with pytest.raises(ValueError):
        topo16.node_of(-1)


def test_same_node(topo16):
    assert topo16.same_node(0, 3)
    assert not topo16.same_node(3, 4)


def test_link_selection(topo16):
    p = topo16.params
    assert topo16.link(0, 1) is p.intra
    assert topo16.link(0, 4) is p.inter


def test_p2p_time_intra_vs_inter(topo16):
    m = 1024
    assert topo16.p2p_time(0, 1, m) < topo16.p2p_time(0, 4, m)


def test_p2p_self_send_is_cheap(topo16):
    assert topo16.p2p_time(2, 2, 1024) < topo16.p2p_time(0, 1, 1024)


def test_ceil_nnodes():
    topo = make_topology(10, ppn=4)
    assert topo.nnodes == 3


def test_single_node_mean_alpha_is_intra():
    topo = make_topology(8, ppn=8)
    assert topo.mean_alpha() == pytest.approx(topo.params.intra.latency)


def test_multi_node_mean_alpha_between_bounds(topo16):
    a = topo16.mean_alpha()
    assert topo16.params.intra.latency < a < topo16.params.inter.latency


def test_mean_alpha_subgroup_single_node(topo16):
    # Group entirely on node 0.
    a = topo16.mean_alpha((0, 1, 2, 3))
    assert a == pytest.approx(topo16.params.intra.latency)


def test_mean_alpha_subgroup_spread(topo16):
    # One rank per node: every pair is inter-node.
    a = topo16.mean_alpha((0, 4, 8, 12))
    assert a == pytest.approx(topo16.params.inter.latency)


def test_mean_alpha_more_nodes_is_slower():
    params = ModelParams.perlmutter_like()
    one = ClusterTopology(128, 128, params)
    two = ClusterTopology(256, 128, params)
    four = ClusterTopology(512, 128, params)
    assert one.mean_alpha() < two.mean_alpha() < four.mean_alpha()


def test_invalid_construction():
    params = ModelParams.perlmutter_like()
    with pytest.raises(ValueError):
        ClusterTopology(0, 4, params)
    with pytest.raises(ValueError):
        ClusterTopology(4, 0, params)


def test_default_ppn_single_node_when_small():
    topo = make_topology(32)
    assert topo.nnodes == 1
    topo = make_topology(256)
    assert topo.nnodes == 2


# ---------------------------------------------------------------------------
# Property suite over every registered topology class (hypothesis).
# ---------------------------------------------------------------------------

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.netmodel import TOPOLOGIES, DragonflyTopology, FatTreeTopology

_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Per-class extra shape knob (field name, strategy) beyond (nprocs, ppn).
_EXTRA_SHAPE = {
    "fat-tree": ("nodes_per_pod", st.integers(min_value=1, max_value=4)),
    "dragonfly": ("nodes_per_group", st.integers(min_value=1, max_value=4)),
}


@st.composite
def topologies(draw):
    """A random registered topology with a random small shape."""
    name = draw(st.sampled_from(sorted(TOPOLOGIES)))
    nprocs = draw(st.integers(min_value=1, max_value=24))
    ppn = draw(st.integers(min_value=1, max_value=6))
    kwargs = {}
    if name in _EXTRA_SHAPE:
        field_name, strategy = _EXTRA_SHAPE[name]
        kwargs[field_name] = draw(strategy)
    params = (
        ModelParams.perlmutter_like()
        if draw(st.booleans())
        else ModelParams.slow_network()
    )
    return TOPOLOGIES[name](nprocs, ppn, params, **kwargs)


class TestTopologyProperties:
    @_settings
    @given(topo=topologies())
    def test_link_symmetry(self, topo):
        """link(a, b) == link(b, a) for every rank pair."""
        for a in range(topo.nprocs):
            for b in range(topo.nprocs):
                assert topo.link(a, b) == topo.link(b, a)

    @_settings
    @given(topo=topologies())
    def test_node_of_total_on_world(self, topo):
        """node_of maps every rank into [0, nnodes) and rejects others."""
        for rank in range(topo.nprocs):
            node = topo.node_of(rank)
            assert 0 <= node < topo.nnodes
        with pytest.raises(ValueError):
            topo.node_of(topo.nprocs)
        with pytest.raises(ValueError):
            topo.node_of(-1)

    @_settings
    @given(topo=topologies())
    def test_mean_alpha_within_link_bounds(self, topo):
        """mean_alpha is a convex combination of the links actually used."""
        links = [
            topo.link(a, b)
            for a in range(topo.nprocs)
            for b in range(topo.nprocs)
        ]
        lo = min(l.latency for l in links)
        hi = max(l.latency for l in links)
        a = topo.mean_alpha()
        assert lo <= a <= hi or a == pytest.approx(lo) or a == pytest.approx(hi)
        if topo.nprocs <= 1:
            assert a == pytest.approx(topo.params.intra.latency)

    @_settings
    @given(topo=topologies())
    def test_mean_inv_bandwidth_within_link_bounds(self, topo):
        """mean_inv_bandwidth lies between the best and worst link."""
        links = [
            topo.link(a, b)
            for a in range(topo.nprocs)
            for b in range(topo.nprocs)
        ]
        lo = min(1.0 / l.bandwidth for l in links)
        hi = max(1.0 / l.bandwidth for l in links)
        beta = topo.mean_inv_bandwidth()
        assert (
            lo <= beta <= hi
            or beta == pytest.approx(lo)
            or beta == pytest.approx(hi)
        )

    @_settings
    @given(topo=topologies())
    def test_explicit_world_group_matches_default(self, topo):
        """ranks=(0..n-1) and ranks=None agree for every class.

        For ClusterTopology this cross-checks the closed-form divmod
        mean against the generic pair enumeration.
        """
        world = tuple(range(topo.nprocs))
        assert topo.mean_alpha(world) == pytest.approx(topo.mean_alpha())
        assert topo.mean_inv_bandwidth(world) == pytest.approx(
            topo.mean_inv_bandwidth()
        )


class TestEmptyGroupRejected:
    @pytest.mark.parametrize("name", sorted(TOPOLOGIES))
    def test_mean_alpha_empty_ranks(self, name):
        topo = TOPOLOGIES[name](8, 2, ModelParams.perlmutter_like())
        with pytest.raises(ValueError, match="empty rank group"):
            topo.mean_alpha(())
        with pytest.raises(ValueError, match="empty rank group"):
            topo.mean_inv_bandwidth(())


class TestHierarchicalTiers:
    def test_fat_tree_core_slower_than_pod(self):
        params = ModelParams.perlmutter_like()
        topo = FatTreeTopology(8, 1, params, nodes_per_pod=2)
        intra = topo.link(0, 0)
        pod = topo.link(0, 1)     # nodes 0,1: same pod
        core = topo.link(0, 2)    # nodes 0,2: across pods
        assert intra.latency < pod.latency < core.latency
        assert intra.bandwidth > pod.bandwidth > core.bandwidth

    def test_dragonfly_global_slower_than_group(self):
        params = ModelParams.perlmutter_like()
        topo = DragonflyTopology(8, 1, params, nodes_per_group=2)
        local = topo.link(0, 1)
        global_ = topo.link(0, 2)
        assert local.latency < global_.latency
        assert local.bandwidth > global_.bandwidth

    def test_fat_tree_mean_alpha_exceeds_cluster(self):
        """Crossing the core raises the average latency vs a flat cluster."""
        params = ModelParams.perlmutter_like()
        flat = ClusterTopology(8, 1, params)
        tree = FatTreeTopology(8, 1, params, nodes_per_pod=2)
        assert tree.mean_alpha() > flat.mean_alpha()
