"""Differential scenario battery: every scenario, every execution seam.

Each registered scenario is run under both checkpoint protocols and
pinned to a result hash captured at introduction time — a scenario that
silently changes its simulated physics moves a constant here.  The same
specs are then pushed through every seam the harness offers: serial vs
parallel workers, and ``inline`` vs ``local-pool`` vs ``service``
dispatch.  A scenario may change *what* the simulation does, never
*whether* it is reproducible.
"""

import threading

import pytest

from repro.harness.engine import ExperimentEngine
from repro.harness.service import ExperimentServer, run_worker
from repro.harness.spec import RunSpec, run_result_to_dict
from repro.scenarios import SCENARIOS
from repro.util.hashing import stable_json_hash

# Captured when the scenario subsystem landed.  All ten constants are
# distinct: every scenario genuinely perturbs the run, under both
# protocols, and none of them collides with another's physics.  The
# app is minivasp (collectives *and* blocking p2p on the critical
# path), so fabric scenarios *and* the per-message jitter are all
# observable — eager sends consumed long after arrival would absorb a
# sub-microsecond latency wobble.
PINNED = {
    ("degraded-link", "2pc"): "05e7af30ac39f073",
    ("degraded-link", "cc"): "2504168d3c31d640",
    ("dragonfly", "2pc"): "69f6b0c21ed6bdf4",
    ("dragonfly", "cc"): "409429d6a8cece08",
    ("fat-tree", "2pc"): "f6ab0778564067e3",
    ("fat-tree", "cc"): "b6bd09e7bab4c736",
    ("jitter", "2pc"): "d5b8bc4011dd31b9",
    ("jitter", "cc"): "8cf4293de339a93e",
    ("straggler", "2pc"): "8b975c9b83dbdbd0",
    ("straggler", "cc"): "af4a05ebc990264f",
}

CELLS = sorted(PINNED)


def _mk(scenario, protocol):
    return RunSpec.create(
        "minivasp", 4,
        app_kwargs={"niters": 6},
        protocol=protocol,
        checkpoint_fractions=(0.5,),
        scenario=scenario,
    )


def _hash(result):
    return stable_json_hash(run_result_to_dict(result))


def test_battery_covers_every_registered_scenario():
    # A scenario added to the registry without a pinned fingerprint
    # here fails loudly instead of silently escaping the battery.
    assert {name for name, _ in PINNED} == set(SCENARIOS)
    assert {proto for _, proto in PINNED} == {"2pc", "cc"}


@pytest.mark.parametrize("scenario,protocol", CELLS)
def test_scenario_fingerprint_pinned(scenario, protocol):
    res = ExperimentEngine().run(_mk(scenario, protocol))
    assert not res.na_reason
    assert any(r.committed for r in res.checkpoints)
    assert _hash(res) == PINNED[(scenario, protocol)]


def test_parallel_workers_match_pins():
    specs = {cell: _mk(*cell) for cell in CELLS}
    results = ExperimentEngine(jobs=2).run_batch(list(specs.values()))
    for cell, spec in specs.items():
        assert _hash(results[spec]) == PINNED[cell], cell


def test_local_pool_dispatch_matches_pins():
    specs = {cell: _mk(*cell) for cell in CELLS}
    engine = ExperimentEngine(jobs=2, dispatch="local-pool")
    results = engine.run_batch(list(specs.values()))
    for cell, spec in specs.items():
        assert _hash(results[spec]) == PINNED[cell], cell


def test_service_dispatch_matches_pins(tmp_path):
    specs = {cell: _mk(*cell) for cell in CELLS}
    server = ExperimentServer("127.0.0.1", 0, cache_dir=tmp_path / "store")
    host, port = server.start()
    worker = threading.Thread(
        target=run_worker, args=((host, port),), daemon=True
    )
    worker.start()
    try:
        engine = ExperimentEngine(dispatch="service",
                                  service=f"{host}:{port}")
        results = engine.run_batch(list(specs.values()))
        for cell, spec in specs.items():
            assert _hash(results[spec]) == PINNED[cell], cell
    finally:
        server.shutdown()
        worker.join(timeout=10)


@pytest.mark.parametrize("protocol", ("2pc", "cc"))
def test_scenario_changes_the_run(protocol):
    # The baseline (scenario-free) run must differ from every scenario
    # run: a scenario whose hooks are never reached would alias the
    # baseline hash and the whole battery would be vacuous.
    base = _hash(ExperimentEngine().run(_mk(None, protocol)))
    assert base not in PINNED.values()
