"""Tests for run records and table rendering."""

from repro.util.records import RunRecord, Series, format_series_table, format_table


def test_run_record_rates():
    rec = RunRecord(
        app="minivasp", protocol="cc", nprocs=8, nnodes=1,
        runtime=2.0, coll_calls=1600, p2p_calls=320,
    )
    assert rec.coll_rate == 100.0  # 1600 / 8 ranks / 2 s
    assert rec.p2p_rate == 20.0


def test_run_record_zero_runtime():
    rec = RunRecord("a", "native", 4, 1, 0.0, 10, 10)
    assert rec.coll_rate == 0.0
    assert rec.p2p_rate == 0.0


def test_series_add_and_pairs():
    s = Series("cc")
    s.add(128, 2.0)
    s.add(256, 1.4)
    assert s.as_pairs() == [(128, 2.0), (256, 1.4)]


def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1], ["long-name", 23.5]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0] and "value" in lines[0]
    # All rows same width.
    assert len({len(line) for line in lines}) == 1


def test_format_table_title():
    out = format_table(["h"], [[1]], title="Table 1")
    assert out.startswith("Table 1\n")


def test_format_series_table_na_for_missing():
    s1 = Series("2PC")
    s1.add(128, 7.0)
    s2 = Series("CC")
    s2.add(128, 2.0)
    s2.add(256, 1.5)
    out = format_series_table([s1, s2], x_label="procs")
    assert "NA" in out
    assert "2PC" in out and "CC" in out
    # x values appear sorted
    rows = out.splitlines()
    assert rows[-2].strip().startswith("128")
    assert rows[-1].strip().startswith("256")
