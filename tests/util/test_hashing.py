"""Tests for the stable rank-set hash underlying ggids."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.hashing import fnv1a_64, stable_hash_ranks


def test_known_fnv_vector():
    # FNV-1a 64-bit of empty input is the offset basis.
    assert fnv1a_64(b"") == 0xCBF29CE484222325


def test_order_independence():
    assert stable_hash_ranks([3, 1, 2]) == stable_hash_ranks([1, 2, 3])
    assert stable_hash_ranks((2, 0)) == stable_hash_ranks((0, 2))


def test_different_sets_differ():
    assert stable_hash_ranks([0, 1]) != stable_hash_ranks([0, 2])
    assert stable_hash_ranks([0]) != stable_hash_ranks([0, 1])


def test_negative_rank_rejected():
    with pytest.raises(ValueError):
        stable_hash_ranks([-1, 0])


def test_stability_across_calls():
    # Pin an exact value: the hash must never change across releases
    # (checkpoint images store ggids).
    assert stable_hash_ranks([0, 1, 2, 3]) == stable_hash_ranks([3, 2, 1, 0])
    v1 = stable_hash_ranks(range(8))
    v2 = stable_hash_ranks(list(range(8)))
    assert v1 == v2


@given(st.lists(st.integers(min_value=0, max_value=4096), min_size=1, max_size=64))
def test_permutation_invariance_property(ranks):
    import random

    shuffled = ranks[:]
    random.Random(0).shuffle(shuffled)
    assert stable_hash_ranks(ranks) == stable_hash_ranks(shuffled)


@given(
    st.sets(st.integers(min_value=0, max_value=512), min_size=1, max_size=32),
    st.sets(st.integers(min_value=0, max_value=512), min_size=1, max_size=32),
)
def test_distinct_sets_rarely_collide(a, b):
    if a != b:
        assert stable_hash_ranks(a) != stable_hash_ranks(b)
