"""Tests for statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import OnlineStats, mean, overhead_pct, stddev


def test_mean_basic():
    assert mean([1.0, 2.0, 3.0]) == 2.0


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])


def test_stddev_known():
    assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == pytest.approx(
        math.sqrt(32 / 7)
    )


def test_stddev_single_is_zero():
    assert stddev([5.0]) == 0.0


def test_overhead_pct():
    assert overhead_pct(110.0, 100.0) == pytest.approx(10.0)
    assert overhead_pct(100.0, 100.0) == pytest.approx(0.0)
    assert overhead_pct(95.0, 100.0) == pytest.approx(-5.0)


def test_overhead_pct_zero_baseline_raises():
    with pytest.raises(ValueError):
        overhead_pct(1.0, 0.0)


def test_online_stats_matches_batch():
    data = [1.5, 2.5, -3.0, 7.25, 0.0, 2.0]
    s = OnlineStats()
    s.extend(data)
    assert s.n == len(data)
    assert s.mean == pytest.approx(mean(data))
    assert s.stddev == pytest.approx(stddev(data))
    assert s.min == -3.0
    assert s.max == 7.25


def test_online_stats_empty_mean_raises():
    with pytest.raises(ValueError):
        OnlineStats().mean


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=100))
def test_online_stats_property(data):
    s = OnlineStats()
    s.extend(data)
    assert s.mean == pytest.approx(mean(data), rel=1e-9, abs=1e-9)
    assert s.stddev == pytest.approx(stddev(data), rel=1e-6, abs=1e-6)
