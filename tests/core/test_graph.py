"""Tests for the offline topological-sort safe-cut oracle (Figures 2-3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CollectiveProgram, build_dependency_graph, compute_safe_cut


def make_program(ops, members):
    return CollectiveProgram(
        ops=tuple(tuple(seq) for seq in ops), members=dict(members)
    )


class TestFigureExamples:
    def test_figure_3a_simple_targets(self):
        """Paper Figure 3a: groups {1,2},{2,3},{3,4,5},{5,6} with local
        targets 5, 7, 2, 3 — ranks continue to exactly those counts."""
        # 0-indexed ranks 0..5 for the paper's 1..6.
        g12, g23, g345, g56 = "a", "b", "c", "d"
        members = {g12: (0, 1), g23: (1, 2), g345: (2, 3, 4), g56: (4, 5)}
        ops = [
            [g12] * 5,
            [g12] * 5 + [g23] * 7,
            [g23] * 7 + [g345] * 2,
            [g345] * 2,
            [g345] * 2 + [g56] * 3,
            [g56] * 3,
        ]
        program = make_program(ops, members)
        # Request-time positions: rank1 finished g12 ops (5); rank2 did 5
        # of its g23 ops; rank3/4 behind on g345; rank6 has done all three
        # g56 ops, setting that group's target to 3 as in the figure.
        start = (5, 10, 7, 1, 2, 3)
        cut = compute_safe_cut(program, start)
        assert cut.targets[g12] == 5
        assert cut.targets[g23] == 7
        assert cut.targets[g345] == 2
        assert cut.targets[g56] == 3
        # All members agree on per-group counts at the cut.
        for g, t in cut.targets.items():
            for r in program.members[g]:
                assert program.counts_at(r, cut.positions[r]).get(g, 0) == t

    def test_figure_2b_target_propagation(self):
        """Paper Figure 2b: advancing P2 to N3 forces it through a new
        node N5, which pulls P4 forward too (Condition A applied twice)."""
        gA, gB, gC = "nA", "nB", "nC"
        members = {gA: (0, 1), gB: (1, 2), gC: (1, 3)}
        # P1(0): [gA]; P2(1): [gA? ...]; Use: rank0: gA,  rank1: gB, gC, gA
        ops = [
            [gA],
            [gB, gC, gA],
            [gB],
            [gC],
        ]
        program = make_program(ops, members)
        # rank0 already visited gA's op (count 1); rank1 has done nothing.
        start = (1, 0, 0, 0)
        cut = compute_safe_cut(program, start)
        # rank1 must advance through gB and gC to reach gA -> their
        # targets rise to 1, pulling ranks 2 and 3 forward as well.
        assert cut.targets == {gA: 1, gB: 1, gC: 1}
        assert cut.positions == (1, 3, 1, 1)


class TestBasicProperties:
    def test_aligned_positions_need_no_advance(self):
        g = "g"
        program = make_program([[g, g], [g, g]], {g: (0, 1)})
        cut = compute_safe_cut(program, (1, 1))
        assert cut.positions == (1, 1)
        assert cut.advanced_from((1, 1)) == [0, 0]

    def test_lagging_rank_advances(self):
        g = "g"
        program = make_program([[g, g], [g, g]], {g: (0, 1)})
        cut = compute_safe_cut(program, (2, 1))
        assert cut.positions == (2, 2)

    def test_invalid_positions_rejected(self):
        g = "g"
        program = make_program([[g]], {g: (0,)})
        with pytest.raises(ValueError):
            compute_safe_cut(program, (2,))
        with pytest.raises(ValueError):
            compute_safe_cut(program, (0, 0))

    def test_nonmember_op_rejected(self):
        program = make_program([["g"]], {"g": (1,)})
        with pytest.raises(ValueError):
            compute_safe_cut(program, (0,))

    def test_illegal_program_detected(self):
        """A rank whose program ends before reaching a target is illegal."""
        g = "g"
        program = make_program([[g, g], [g]], {g: (0, 1)})
        with pytest.raises(RuntimeError):
            compute_safe_cut(program, (2, 0))


def random_legal_program(draw, max_ranks=6, max_groups=4, max_ops=12):
    """Generate per-group global schedules and interleave them per rank."""
    nranks = draw(st.integers(2, max_ranks))
    ngroups = draw(st.integers(1, max_groups))
    members = {}
    for gi in range(ngroups):
        size = draw(st.integers(1, nranks))
        ranks = tuple(sorted(draw(st.permutations(list(range(nranks))))[:size]))
        members[f"g{gi}"] = ranks
    counts = {g: draw(st.integers(0, max_ops)) for g in members}
    # Build per-rank op lists: for each group, its members call it
    # `counts[g]` times; interleave groups round-robin (a legal order).
    ops = [[] for _ in range(nranks)]
    for g, c in counts.items():
        for _ in range(c):
            for r in members[g]:
                ops[r].append(g)
    return make_program(ops, members)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_safe_cut_fixpoint_properties(data):
    """On random legal programs: the cut exists, is >= the start, and all
    members of every group agree on the executed-op count."""
    program = random_legal_program(data.draw)
    start = tuple(
        data.draw(st.integers(0, len(program.ops[r]))) for r in range(program.nranks)
    )
    # Align start positions to something reachable: clamp via cut itself.
    cut = compute_safe_cut(program, start)
    for r in range(program.nranks):
        assert cut.positions[r] >= start[r]
    for g, t in cut.targets.items():
        for r in program.members[g]:
            assert program.counts_at(r, cut.positions[r]).get(g, 0) == t


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_dependency_graph_is_dag(data):
    program = random_legal_program(data.draw)
    import networkx as nx

    g = build_dependency_graph(program)
    assert nx.is_directed_acyclic_graph(g)


class TestPrefixCountMemoization:
    """`counts_at` memoizes per-rank prefix counts (regression: it used
    to rescan the whole prefix per call, making the fixpoint quadratic
    in program length)."""

    def _long_program(self, nranks=3, nops=4000):
        # Round-robin over a world group and per-pair groups: legal by
        # construction (every member calls each group's ops in order).
        members = {"w": tuple(range(nranks))}
        ops = [[] for _ in range(nranks)]
        for k in range(nops):
            for r in range(nranks):
                ops[r].append("w")
        return make_program(ops, members)

    def test_counts_match_naive_reference(self):
        program = self._long_program()
        for rank in range(program.nranks):
            for position in (0, 1, 127, 128, 129, 1000, 2500, 4000):
                naive = {}
                for g in program.ops[rank][:position]:
                    naive[g] = naive.get(g, 0) + 1
                assert program.counts_at(rank, position) == naive

    def test_snapshots_built_once_and_reused(self):
        program = self._long_program()
        program.counts_at(0, 10)
        first = program._prefix_snapshots(0)
        program.counts_at(0, 3999)
        assert program._prefix_snapshots(0) is first

    def test_returned_counts_are_private_copies(self):
        """Mutating a counts_at result (as compute_safe_cut does) must
        not corrupt the cached snapshots."""
        program = self._long_program(nops=300)
        counts = program.counts_at(0, 256)
        counts["w"] += 100
        assert program.counts_at(0, 256)["w"] == 256

    def test_long_program_oracle_fixpoint(self):
        """The oracle still resolves correctly on a long mixed program."""
        nranks, blocks = 4, 600
        members = {"w": (0, 1, 2, 3), "lo": (0, 1), "hi": (2, 3)}
        ops = [[] for _ in range(nranks)]
        for k in range(blocks):
            for r in range(nranks):
                ops[r].append("w")
            for r in members["lo" if k % 2 == 0 else "hi"]:
                ops[r].append("lo" if k % 2 == 0 else "hi")
        program = make_program(ops, members)
        # Rank 0 is far ahead; everyone else must be pulled to its cut.
        start = (len(ops[0]), 5, 3, 0)
        cut = compute_safe_cut(program, start)
        for g, t in cut.targets.items():
            for r in program.members[g]:
                assert program.counts_at(r, cut.positions[r]).get(g, 0) == t
        assert cut.positions[0] == len(ops[0])
