"""Tests for SEQ/TARGET tables and ggid registry (the seq_num.cpp state)."""

import pytest

from repro.core import GgidRegistry, SeqNumTable, compute_ggid
from repro.util.hashing import stable_hash_ranks


class TestGgid:
    def test_compute_matches_stable_hash(self):
        assert compute_ggid((3, 1, 2)) == stable_hash_ranks([1, 2, 3])

    def test_registry_register_and_members(self):
        reg = GgidRegistry()
        g = reg.register((4, 2, 6))
        assert g in reg
        assert reg.members(g) == (2, 4, 6)

    def test_registry_idempotent(self):
        reg = GgidRegistry()
        a = reg.register((0, 1))
        b = reg.register((1, 0))
        assert a == b
        assert len(reg.known_ggids()) == 1

    def test_unknown_ggid_raises(self):
        with pytest.raises(KeyError):
            GgidRegistry().members(123)

    def test_snapshot_restore_roundtrip(self):
        reg = GgidRegistry()
        reg.register((0, 1, 2))
        reg.register((3, 4))
        restored = GgidRegistry.restore(reg.snapshot())
        assert restored.peers == reg.peers


class TestSeqNumTable:
    def test_increment_from_zero(self):
        t = SeqNumTable()
        assert t.seq_of(7) == 0
        assert t.increment(7) == 1
        assert t.increment(7) == 2
        assert t.seq_of(7) == 2

    def test_ensure_group_initializes_zero(self):
        t = SeqNumTable()
        t.ensure_group(5)
        assert t.seq_of(5) == 0
        t.increment(5)
        t.ensure_group(5)  # must not reset
        assert t.seq_of(5) == 1

    def test_set_targets_and_reached(self):
        t = SeqNumTable()
        t.increment(1)
        t.set_targets({1: 3})
        assert t.unreached() == [1]
        assert not t.all_targets_reached()
        t.increment(1)
        t.increment(1)
        assert t.all_targets_reached()

    def test_set_targets_never_lowers(self):
        t = SeqNumTable()
        t.set_targets({1: 5})
        t.set_targets({1: 3})
        assert t.target_of(1) == 5

    def test_raise_target_reports_change(self):
        t = SeqNumTable()
        t.set_targets({1: 2})
        assert t.raise_target(1, 4) is True
        assert t.raise_target(1, 4) is False
        assert t.raise_target(1, 3) is False
        assert t.target_of(1) == 4

    def test_overshoot(self):
        t = SeqNumTable()
        t.set_targets({1: 1})
        t.increment(1)
        assert not t.overshoot(1)
        t.increment(1)
        assert t.overshoot(1)

    def test_clear_targets(self):
        t = SeqNumTable()
        t.increment(1)
        t.set_targets({1: 5})
        t.clear_targets()
        assert t.all_targets_reached()
        assert t.seq_of(1) == 1  # SEQ survives a checkpoint

    def test_snapshot_restore(self):
        t = SeqNumTable()
        t.increment(1)
        t.increment(2)
        t.set_targets({1: 3})
        r = SeqNumTable.restore(t.snapshot())
        assert r.seq == t.seq
        assert r.target == t.target

    def test_multiple_groups_independent(self):
        t = SeqNumTable()
        t.increment(1)
        t.increment(2)
        t.increment(2)
        t.set_targets({1: 1, 2: 3})
        assert t.unreached() == [2]
