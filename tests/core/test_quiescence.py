"""Tests for the coordinator-side quiescence tracker."""

from repro.core import QuiescenceTracker


def test_candidate_requires_all_parked():
    t = QuiescenceTracker(nprocs=3)
    t.on_parked(0, 1, 0, 0)
    t.on_parked(1, 1, 0, 0)
    assert not t.candidate()
    t.on_parked(2, 1, 0, 0)
    assert t.candidate()


def test_candidate_requires_balanced_counters():
    t = QuiescenceTracker(nprocs=2)
    t.on_parked(0, 1, 3, 1)
    t.on_parked(1, 1, 0, 1)  # total sent 3, received 2 -> message in flight
    assert not t.candidate()
    t.on_parked(1, 2, 0, 2)
    assert t.candidate()


def test_unpark_removes_rank():
    t = QuiescenceTracker(nprocs=2)
    t.on_parked(0, 1, 0, 0)
    t.on_parked(1, 1, 0, 0)
    t.on_unparked(0)
    assert not t.candidate()


def test_stale_generation_ignored():
    t = QuiescenceTracker(nprocs=1)
    t.on_parked(0, 5, 2, 2)
    t.on_parked(0, 3, 9, 9)  # stale: lower generation
    assert t.parked[0].sent == 2


def test_confirm_round_success():
    t = QuiescenceTracker(nprocs=2)
    t.on_parked(0, 1, 1, 1)
    t.on_parked(1, 1, 1, 1)
    assert t.candidate()
    t.begin_confirm()
    t.on_confirm_vote(0, True, 1, 1)
    assert not t.confirmed()
    t.on_confirm_vote(1, True, 1, 1)
    assert t.confirmed()


def test_confirm_aborts_on_negative_vote():
    t = QuiescenceTracker(nprocs=2)
    t.on_parked(0, 1, 0, 0)
    t.on_parked(1, 1, 0, 0)
    t.begin_confirm()
    t.on_confirm_vote(0, False, 0, 0)
    assert not t.confirming
    assert not t.confirmed()
    assert 0 not in t.parked


def test_confirm_aborts_on_counter_drift():
    t = QuiescenceTracker(nprocs=2)
    t.on_parked(0, 1, 0, 0)
    t.on_parked(1, 1, 0, 0)
    t.begin_confirm()
    t.on_confirm_vote(0, True, 0, 1)  # counters moved since park report
    assert not t.confirming


def test_confirm_aborts_on_new_park_event():
    t = QuiescenceTracker(nprocs=2)
    t.on_parked(0, 1, 0, 0)
    t.on_parked(1, 1, 0, 0)
    t.begin_confirm()
    t.on_parked(0, 2, 1, 1)  # state changed mid-round
    assert not t.confirming


def test_votes_outside_round_ignored():
    t = QuiescenceTracker(nprocs=1)
    t.on_confirm_vote(0, True, 0, 0)  # no round open
    assert not t.confirmed()


def test_reset():
    t = QuiescenceTracker(nprocs=1)
    t.on_parked(0, 1, 0, 0)
    t.reset()
    assert not t.parked
    assert not t.candidate() or True  # candidate needs all parked again
