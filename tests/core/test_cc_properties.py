"""Property-based tests: the CC protocol on randomly generated programs.

The crown-jewel invariant: for arbitrary legal collective programs and
arbitrary checkpoint request times, the CC drain terminates, the cut
satisfies the paper's safe-state invariants, and restarting from the
images reproduces the uninterrupted run's results exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.base import MpiApp
from repro.harness.runner import launch_run, restart_run
from repro.netmodel import StorageModel

FAST_STORAGE = StorageModel(
    base_latency=1e-4, per_node_bandwidth=50e9, aggregate_bandwidth=200e9
)

_settings = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class RandomProgram(MpiApp):
    """Executes a randomized but rank-consistent mix of collectives.

    The per-step op schedule is derived deterministically from the seed,
    so every rank runs the same global program (a legal MPI execution)
    while different seeds explore different interleavings of world ops,
    subgroup ops, p2p, and non-blocking collectives.
    """

    name = "randprog"

    def __init__(self, niters, *, program_seed, use_subgroups=True, use_nbc=True):
        super().__init__(niters)
        self.program_seed = program_seed
        self.use_subgroups = use_subgroups
        self.use_nbc = use_nbc

    def setup(self, ctx):
        if self.use_subgroups:
            ctx.state["even_odd"] = ctx.world.split(color=ctx.rank % 2, key=ctx.rank)
            ctx.state["halves"] = ctx.world.split(
                color=0 if ctx.rank < ctx.nprocs // 2 else 1, key=ctx.rank
            )
        ctx.state["acc"] = 0.0

    def step(self, ctx, i):
        rng = np.random.default_rng((self.program_seed, i))
        ops = rng.choice(["world_ar", "sub_ar", "bcast", "p2p", "nbc"], size=3)
        me, n = ctx.rank, ctx.nprocs
        acc = 0.0
        ctx.compute_jittered(2e-6 * (1 + me % 3), i)
        for k, op in enumerate(ops):
            if op == "world_ar":
                acc += ctx.world.allreduce(float(me + i))
            elif op == "sub_ar" and self.use_subgroups:
                comm = ctx.state["even_odd"] if k % 2 == 0 else ctx.state["halves"]
                acc += comm.allreduce(float(i))
            elif op == "bcast":
                root = int(rng.integers(0, n))
                acc += ctx.world.bcast(float(i * 7) if me == root else None, root=root)
            elif op == "p2p":
                got = ctx.world.sendrecv(
                    float(me), dest=(me + 1) % n, source=(me - 1) % n,
                    sendtag=k, recvtag=k,
                )
                acc += got
            elif op == "nbc" and self.use_nbc:
                req = ctx.world.iallgather(float(me + k))
                ctx.compute(5e-7)
                acc += sum(req.wait())
            else:
                acc += ctx.world.allreduce(1.0)
        # ---- commit block ----
        ctx.state["acc"] = ctx.state["acc"] + acc

    def finalize(self, ctx):
        return round(ctx.state["acc"], 6)


@_settings
@given(
    program_seed=st.integers(0, 10_000),
    nprocs=st.sampled_from([4, 6]),
    frac=st.floats(0.1, 0.9),
)
def test_cc_checkpoint_restart_equivalence(program_seed, nprocs, frac):
    factory = lambda: RandomProgram(niters=12, program_seed=program_seed)
    native = launch_run(factory, nprocs, protocol="native", seed=1)
    ck = launch_run(
        factory, nprocs, protocol="cc", seed=1,
        checkpoint_at=[native.runtime * frac], storage=FAST_STORAGE,
    )
    assert ck.per_rank == native.per_rank
    committed = [c for c in ck.checkpoints if c.committed]
    assert committed, "checkpoint failed to commit"
    images = committed[0].images
    # Invariant: per-group SEQ equality across members.
    for rank, im in images.items():
        for g, members in im.ggid_peers.items():
            for peer in members:
                assert images[peer].seq_table["seq"].get(g, 0) == im.seq_table[
                    "seq"
                ].get(g, 0)
    rs = restart_run(factory, images, seed=1, storage=FAST_STORAGE)
    assert rs.per_rank == native.per_rank


@_settings
@given(program_seed=st.integers(0, 10_000), frac=st.floats(0.15, 0.85))
def test_2pc_checkpoint_restart_equivalence(program_seed, frac):
    factory = lambda: RandomProgram(
        niters=10, program_seed=program_seed, use_nbc=False
    )
    native = launch_run(factory, 4, protocol="native", seed=1)
    ck = launch_run(
        factory, 4, protocol="2pc", seed=1,
        checkpoint_at=[native.runtime * frac], storage=FAST_STORAGE,
    )
    assert ck.per_rank == native.per_rank
    rs = restart_run(factory, ck.committed_images(), seed=1, storage=FAST_STORAGE)
    assert rs.per_rank == native.per_rank


@_settings
@given(program_seed=st.integers(0, 10_000))
def test_cc_no_checkpoint_matches_native(program_seed):
    factory = lambda: RandomProgram(niters=8, program_seed=program_seed)
    native = launch_run(factory, 4, protocol="native", seed=4)
    cc = launch_run(factory, 4, protocol="cc", seed=4)
    assert cc.per_rank == native.per_rank
    assert cc.runtime >= native.runtime
