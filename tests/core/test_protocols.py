"""Integration tests of the CC and 2PC protocols through the full stack."""

import numpy as np
import pytest

from repro.apps.base import MpiApp
from repro.core import PROTOCOLS, UnsupportedOperationError
from repro.des import ProcessFailed
from repro.harness.runner import launch_run, restart_run
from repro.netmodel import StorageModel

FAST_STORAGE = StorageModel(
    base_latency=1e-4, per_node_bandwidth=50e9, aggregate_bandwidth=200e9
)


class CollectiveMix(MpiApp):
    """World + overlapping subgroup collectives + p2p + non-blocking ops."""

    name = "mix"

    def setup(self, ctx):
        ctx.state["sub"] = ctx.world.split(color=ctx.rank % 2, key=ctx.rank)
        ctx.state["acc"] = 0.0

    def step(self, ctx, i):
        ctx.compute_jittered(3e-6 * (1 + ctx.rank % 2), i)
        me, n = ctx.rank, ctx.nprocs
        got = ctx.world.sendrecv(
            float(me * 10 + i), dest=(me + 1) % n, source=(me - 1) % n,
            sendtag=3, recvtag=3,
        )
        a = ctx.state["sub"].allreduce(got)
        w = ctx.world.allreduce(1.0)
        # ---- commit block ----
        ctx.state["acc"] = ctx.state["acc"] + a + w

    def finalize(self, ctx):
        return round(ctx.state["acc"], 9)


class NonBlockingMix(CollectiveMix):
    name = "nbmix"

    def step(self, ctx, i):
        ctx.compute_jittered(3e-6, i)
        req = ctx.world.iallreduce(float(ctx.rank + i))
        ctx.compute(1e-6)
        v = req.wait()
        ctx.state["acc"] = ctx.state["acc"] + v


@pytest.fixture(scope="module")
def native_result():
    return launch_run(lambda: CollectiveMix(niters=30), 6, protocol="native", seed=2)


class TestRuntimeEquivalence:
    """Protocols must not change application results, only timing."""

    @pytest.mark.parametrize("protocol", ["2pc", "cc"])
    def test_results_match_native(self, protocol, native_result):
        r = launch_run(lambda: CollectiveMix(niters=30), 6, protocol=protocol, seed=2)
        assert r.per_rank == native_result.per_rank

    def test_overhead_ordering_native_cc_2pc(self, native_result):
        cc = launch_run(lambda: CollectiveMix(niters=30), 6, protocol="cc", seed=2)
        tpc = launch_run(lambda: CollectiveMix(niters=30), 6, protocol="2pc", seed=2)
        assert native_result.runtime <= cc.runtime <= tpc.runtime

    def test_2pc_rejects_nonblocking(self):
        with pytest.raises(ProcessFailed) as ei:
            launch_run(lambda: NonBlockingMix(niters=3), 4, protocol="2pc", seed=0)
        assert isinstance(ei.value.original, UnsupportedOperationError)

    def test_cc_supports_nonblocking(self):
        n = launch_run(lambda: NonBlockingMix(niters=10), 4, protocol="native", seed=0)
        c = launch_run(lambda: NonBlockingMix(niters=10), 4, protocol="cc", seed=0)
        assert c.per_rank == n.per_rank


class TestCheckpointSafety:
    """The safe-state invariants of paper Section 4.1."""

    @pytest.mark.parametrize("protocol", ["2pc", "cc"])
    @pytest.mark.parametrize("frac", [0.25, 0.6])
    def test_snapshot_invariants(self, protocol, frac, native_result):
        r = launch_run(
            lambda: CollectiveMix(niters=30), 6, protocol=protocol, seed=2,
            checkpoint_at=[native_result.runtime * frac], storage=FAST_STORAGE,
        )
        committed = [c for c in r.checkpoints if c.committed]
        assert len(committed) == 1
        images = committed[0].images
        # Invariant: for every group, every member's SEQ agrees.
        per_group: dict[int, set[int]] = {}
        for rank, im in images.items():
            for ggid_str, seq in im.seq_table["seq"].items():
                per_group.setdefault(ggid_str, set()).add(seq)
        for ggid, seqs in per_group.items():
            # Members of the same group must agree; different groups may
            # differ.  Collect per-group across members only:
            pass
        # Stronger check: group membership from the images themselves.
        for rank, im in images.items():
            for g, members in im.ggid_peers.items():
                seq_here = im.seq_table["seq"].get(g, 0)
                for peer in members:
                    peer_seq = images[peer].seq_table["seq"].get(g, 0)
                    assert peer_seq == seq_here, (
                        f"group {g:#x}: rank {rank} at {seq_here} but "
                        f"rank {peer} at {peer_seq}"
                    )

    @pytest.mark.parametrize("protocol", ["2pc", "cc"])
    def test_run_through_checkpoint_preserves_results(self, protocol, native_result):
        r = launch_run(
            lambda: CollectiveMix(niters=30), 6, protocol=protocol, seed=2,
            checkpoint_at=[native_result.runtime * 0.5], storage=FAST_STORAGE,
        )
        assert r.per_rank == native_result.per_rank

    def test_checkpoint_time_recorded(self, native_result):
        r = launch_run(
            lambda: CollectiveMix(niters=30), 6, protocol="cc", seed=2,
            checkpoint_at=[native_result.runtime * 0.5], storage=FAST_STORAGE,
        )
        rec = r.checkpoints[0]
        assert rec.committed
        assert rec.checkpoint_time > 0
        assert rec.t_request <= rec.t_quiesced <= rec.t_drained <= rec.t_written

    def test_multiple_sequential_checkpoints(self, native_result):
        ts = [native_result.runtime * 0.3, native_result.runtime * 0.9]
        r = launch_run(
            lambda: CollectiveMix(niters=30), 6, protocol="cc", seed=2,
            checkpoint_at=ts, storage=FAST_STORAGE,
        )
        committed = [c for c in r.checkpoints if c.committed]
        assert len(committed) == 2
        assert r.per_rank == native_result.per_rank

    def test_checkpoint_after_finish_commits_terminal_snapshot(self, native_result):
        """A request landing after every rank returned commits through
        rank completion: every image is a terminal (finished) one and a
        restart reproduces the completed job's results without running
        a single application step."""
        r = launch_run(
            lambda: CollectiveMix(niters=30), 6, protocol="cc", seed=2,
            checkpoint_at=[native_result.runtime * 50],  # way past the end
            storage=FAST_STORAGE,
        )
        rec = r.checkpoints[0]
        assert rec.committed and not rec.aborted
        assert all(im.finished for im in rec.images.values())
        rs = restart_run(
            lambda: CollectiveMix(niters=30), rec.images, seed=2,
            storage=FAST_STORAGE,
        )
        assert rs.per_rank == native_result.per_rank


class TestRestartEquivalence:
    @pytest.mark.parametrize("protocol", ["2pc", "cc"])
    @pytest.mark.parametrize("frac", [0.2, 0.5, 0.85])
    def test_restart_produces_native_results(self, protocol, frac, native_result):
        r = launch_run(
            lambda: CollectiveMix(niters=30), 6, protocol=protocol, seed=2,
            checkpoint_at=[native_result.runtime * frac], storage=FAST_STORAGE,
        )
        images = r.committed_images()
        rs = restart_run(lambda: CollectiveMix(niters=30), images, seed=2,
                         storage=FAST_STORAGE)
        assert rs.per_rank == native_result.per_rank

    def test_restart_from_nonblocking_app(self):
        native = launch_run(lambda: NonBlockingMix(niters=20), 4, protocol="native", seed=3)
        r = launch_run(
            lambda: NonBlockingMix(niters=20), 4, protocol="cc", seed=3,
            checkpoint_at=[native.runtime * 0.5], storage=FAST_STORAGE,
        )
        rs = restart_run(lambda: NonBlockingMix(niters=20), r.committed_images(),
                         seed=3, storage=FAST_STORAGE)
        assert rs.per_rank == native.per_rank

    def test_restart_then_checkpoint_again(self, native_result):
        r1 = launch_run(
            lambda: CollectiveMix(niters=30), 6, protocol="cc", seed=2,
            checkpoint_at=[native_result.runtime * 0.3], storage=FAST_STORAGE,
        )
        rs = restart_run(
            lambda: CollectiveMix(niters=30), r1.committed_images(), seed=2,
            storage=FAST_STORAGE,
            checkpoint_at=[r1.restart_ready_time + native_result.runtime * 0.4],
        )
        assert rs.per_rank == native_result.per_rank
        assert any(c.committed for c in rs.checkpoints)


class TestProtocolRegistry:
    def test_registry_contents(self):
        assert set(PROTOCOLS) == {"native", "2pc", "cc"}

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            launch_run(lambda: CollectiveMix(niters=1), 2, protocol="tpc")

    def test_native_checkpoint_rejected(self):
        with pytest.raises(ValueError):
            launch_run(
                lambda: CollectiveMix(niters=1), 2, protocol="native",
                checkpoint_at=[1.0],
            )
