"""The online CC protocol must stop at the offline topological-sort cut.

We run an application whose per-rank collective-call schedule is known a
priori, checkpoint it at random times, and verify that the per-group
sequence numbers in the snapshot equal the fixpoint computed by the
offline oracle (`repro.core.graph.compute_safe_cut`) from the
request-time SEQ reports.  This ties the implementation (Algorithms 1-3)
to the paper's formal model (Section 4.2.2) end to end.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.apps.base import MpiApp
from repro.core import CollectiveProgram, compute_safe_cut
from repro.harness.runner import launch_run
from repro.netmodel import StorageModel
from repro.util.hashing import stable_hash_ranks

STORAGE = StorageModel(base_latency=1e-4)


def build_schedule(nprocs: int, niters: int, seed: int):
    """Per-step group schedule, identical on every rank (a legal program).

    Groups: world, evens, odds, low half, high half — a Figure-3-like
    overlapping mix.  Returns (groups dict name->ranks, per-step op list).
    """
    groups = {
        "world": tuple(range(nprocs)),
        "even": tuple(r for r in range(nprocs) if r % 2 == 0),
        "odd": tuple(r for r in range(nprocs) if r % 2 == 1),
        "low": tuple(range(nprocs // 2)),
        "high": tuple(range(nprocs // 2, nprocs)),
    }
    rng = np.random.default_rng(seed)
    steps = []
    for _ in range(niters):
        names = list(rng.choice(["world", "even", "odd", "low", "high"], size=3))
        steps.append(names)
    return groups, steps


class ScheduledApp(MpiApp):
    """Executes the precomputed schedule; each op is an allreduce on the
    named group's communicator."""

    name = "scheduled"

    def __init__(self, niters, nprocs, seed):
        super().__init__(niters)
        self.groups, self.steps = build_schedule(nprocs, niters, seed)

    def setup(self, ctx):
        comms = {"world": ctx.world}
        comms["even"] = ctx.world.split(color=ctx.rank % 2 == 0, key=ctx.rank)
        comms["odd"] = comms["even"]  # each rank holds its own parity comm
        comms["low"] = ctx.world.split(
            color=0 if ctx.rank < ctx.nprocs // 2 else 1, key=ctx.rank
        )
        comms["high"] = comms["low"]
        ctx.state["comms"] = comms
        ctx.state["acc"] = 0.0

    def _my_group(self, ctx, name):
        if name == "world":
            return "world"
        if name in ("even", "odd"):
            mine = "even" if ctx.rank % 2 == 0 else "odd"
            return mine if name == mine else None
        mine = "low" if ctx.rank < ctx.nprocs // 2 else "high"
        return mine if name == mine else None

    def step(self, ctx, i):
        ctx.compute_jittered(2e-6 * (1 + ctx.rank % 3), i)
        acc = 0.0
        for name in self.steps[i]:
            mine = self._my_group(ctx, name)
            if mine is None:
                continue
            key = "world" if name == "world" else ("even" if name in ("even", "odd") else "low")
            acc += ctx.state["comms"][key].allreduce(float(i))
        ctx.state["acc"] = ctx.state["acc"] + acc

    def finalize(self, ctx):
        return ctx.state["acc"]

    # -- offline model ---------------------------------------------------- #

    def offline_program(self) -> CollectiveProgram:
        """Project the global schedule onto per-rank op sequences.

        Communicator-creation calls count as collectives on the parent
        group (world) — the implementation counts them too.
        """
        nprocs = len(self.groups["world"])
        ggid = {name: stable_hash_ranks(ranks) for name, ranks in self.groups.items()}
        ops = [[] for _ in range(nprocs)]
        members = {ggid[name]: self.groups[name] for name in self.groups}
        for r in range(nprocs):
            # setup: two splits = two collectives on world.
            ops[r].append(ggid["world"])
            ops[r].append(ggid["world"])
        for step_names in self.steps:
            for name in step_names:
                for r in self.groups[name]:
                    ops[r].append(ggid[name])
        return CollectiveProgram(
            ops=tuple(tuple(o) for o in ops), members=members
        )


def positions_from_counts(program: CollectiveProgram, counts: dict) -> int:
    """Find the program position matching the per-group executed counts."""
    raise NotImplementedError  # replaced by per-rank helper below


def position_for(program, rank, counts):
    remaining = dict(counts)
    pos = 0
    for g in program.ops[rank]:
        if all(v <= 0 for v in remaining.values()):
            break
        if remaining.get(g, 0) > 0:
            remaining[g] -= 1
            pos += 1
        else:
            # The next op is on a group whose count is exhausted: the
            # rank stopped before it.
            if any(v > 0 for v in remaining.values()):
                # counts not yet satisfied but next op doesn't match —
                # impossible for counts taken from a legal execution.
                raise AssertionError(
                    f"rank {rank}: counts {counts} unreachable in program"
                )
            break
    assert all(v == 0 for v in remaining.values()), (rank, counts, remaining)
    return pos


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    schedule_seed=st.integers(0, 1000),
    frac=st.floats(0.15, 0.85),
)
def test_online_cut_matches_offline_oracle(schedule_seed, frac):
    nprocs, niters = 6, 10
    factory = lambda: ScheduledApp(niters, nprocs, schedule_seed)
    native = launch_run(factory, nprocs, protocol="native", seed=2)
    ck = launch_run(
        factory, nprocs, protocol="cc", seed=2,
        checkpoint_at=[native.runtime * frac], storage=STORAGE,
    )
    # A late request can race job completion: a rank may finish before
    # the cut quiesces, and the coordinator (correctly) aborts the round.
    # The oracle comparison is only meaningful for committed checkpoints.
    committed = [c for c in ck.checkpoints if c.committed]
    assume(committed)
    rec = committed[0]
    app = factory()
    program = app.offline_program()

    # Request-time positions from the out-of-band SEQ reports.
    start = tuple(
        position_for(program, r, rec.seq_reports.get(r, {})) for r in range(nprocs)
    )
    cut = compute_safe_cut(program, start)

    # The snapshot's per-group SEQ must equal the oracle's targets for
    # every group that appears in the cut.
    images = rec.images
    for g, target in cut.targets.items():
        for r in program.members[g]:
            snap_seq = images[r].seq_table["seq"].get(g, 0)
            assert snap_seq == target, (
                f"group {g:#x}: rank {r} snapshot seq {snap_seq} != "
                f"oracle target {target}"
            )


def test_oracle_comparison_smoke():
    """Non-hypothesis single case, for fast failure diagnosis."""
    nprocs, niters = 4, 8
    factory = lambda: ScheduledApp(niters, nprocs, seed=5)
    native = launch_run(factory, nprocs, protocol="native", seed=2)
    ck = launch_run(
        factory, nprocs, protocol="cc", seed=2,
        checkpoint_at=[native.runtime * 0.5], storage=STORAGE,
    )
    rec = [c for c in ck.checkpoints if c.committed][0]
    assert rec.seq_reports and rec.initial_targets
    # Targets are per-ggid maxima of the reports.
    for g, t in rec.initial_targets.items():
        assert t == max(rep.get(g, 0) for rep in rec.seq_reports.values())
