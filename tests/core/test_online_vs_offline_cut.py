"""The online CC protocol must stop at the offline topological-sort cut.

We run an application whose per-rank collective-call schedule is known a
priori (:class:`repro.apps.ScheduledMix`, shared with the ``safe-cut``
verification oracle), checkpoint it at random times, and verify that the
per-group sequence numbers in the snapshot equal the fixpoint computed
by the offline oracle (`repro.core.graph.compute_safe_cut`) from the
request-time SEQ reports.  This ties the implementation (Algorithms 1-3)
to the paper's formal model (Section 4.2.2) end to end.

The reusable pieces (the app, the counts→position inversion, the
seeded-sweep driver) live in :mod:`repro.apps.scheduled` and
:mod:`repro.harness.verify`; this file keeps the hypothesis property
form plus a fast smoke case.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.scheduled import ScheduledMix
from repro.core import compute_safe_cut
from repro.harness.runner import launch_run
from repro.harness.verify import ORACLES, program_position_for
from repro.netmodel import StorageModel

STORAGE = StorageModel(base_latency=1e-4)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    schedule_seed=st.integers(0, 1000),
    frac=st.floats(0.15, 0.85),
)
def test_online_cut_matches_offline_oracle(schedule_seed, frac):
    nprocs, niters = 6, 10
    factory = lambda: ScheduledMix(niters, nprocs=nprocs, schedule_seed=schedule_seed)
    native = launch_run(factory, nprocs, protocol="native", seed=2)
    ck = launch_run(
        factory, nprocs, protocol="cc", seed=2,
        checkpoint_at=[native.runtime * frac], storage=STORAGE,
    )
    # Every request commits — a round racing job completion checkpoints
    # *through* the finished ranks rather than aborting.
    committed = [c for c in ck.checkpoints if c.committed]
    assert len(committed) == 1
    rec = committed[0]
    program = factory().offline_program()

    # Request-time positions from the out-of-band SEQ reports.
    start = tuple(
        program_position_for(program, r, rec.seq_reports.get(r, {}))
        for r in range(nprocs)
    )
    cut = compute_safe_cut(program, start)

    # The snapshot's per-group SEQ must equal the oracle's targets for
    # every group that appears in the cut.
    images = rec.images
    for g, target in cut.targets.items():
        for r in program.members[g]:
            snap_seq = images[r].seq_table["seq"].get(g, 0)
            assert snap_seq == target, (
                f"group {g:#x}: rank {r} snapshot seq {snap_seq} != "
                f"oracle target {target}"
            )


def test_oracle_comparison_smoke():
    """Non-hypothesis single case, for fast failure diagnosis."""
    nprocs, niters = 4, 8
    factory = lambda: ScheduledMix(niters, nprocs=nprocs, schedule_seed=5)
    native = launch_run(factory, nprocs, protocol="native", seed=2)
    ck = launch_run(
        factory, nprocs, protocol="cc", seed=2,
        checkpoint_at=[native.runtime * 0.5], storage=STORAGE,
    )
    rec = [c for c in ck.checkpoints if c.committed][0]
    assert rec.seq_reports and rec.initial_targets
    # Targets are per-ggid maxima of the reports.
    for g, t in rec.initial_targets.items():
        assert t == max(rep.get(g, 0) for rep in rec.seq_reports.values())


def test_safe_cut_oracle_subsystem_agrees():
    """The packaged oracle (used by `repro-mpi verify`) runs the same
    comparison; one seed here keeps the wiring honest."""
    report = ORACLES["safe-cut"].check(3)
    assert report.ok, report.detail
