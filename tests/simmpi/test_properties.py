"""Property-based tests of simulated-MPI semantics (hypothesis)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.des import Simulator
from repro.netmodel import make_topology
from repro.simmpi import SUM, World

_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_world(nprocs, app, seed=0):
    with Simulator(seed=seed) as sim:
        world = World(sim, make_topology(nprocs))
        return world.run(app)


class TestMessageOrderProperty:
    @_settings
    @given(
        tags=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=12)
    )
    def test_same_tag_streams_are_fifo(self, tags):
        """For each tag value, payloads are received in send order."""

        def app(comm):
            if comm.rank() == 0:
                for i, tag in enumerate(tags):
                    comm.send((tag, i), dest=1, tag=tag)
                return None
            got = {t: [] for t in set(tags)}
            for tag in tags:
                payload = comm.recv(source=0, tag=tag)
                got[tag].append(payload)
            return got

        results = run_world(2, app)
        got = results[1]
        for tag, items in got.items():
            indices = [i for (t, i) in items]
            assert indices == sorted(indices)
            assert all(t == tag for (t, _i) in items)

    @_settings
    @given(
        n_msgs=st.integers(min_value=1, max_value=10),
        sizes=st.lists(
            st.sampled_from([8, 1024, 32768]), min_size=10, max_size=10
        ),
    )
    def test_mixed_sizes_never_overtake(self, n_msgs, sizes):
        def app(comm):
            if comm.rank() == 0:
                for i in range(n_msgs):
                    comm.send(np.full(sizes[i] // 8, float(i)), dest=1, tag=0)
                return None
            order = []
            for _ in range(n_msgs):
                arr = comm.recv(source=0, tag=0)
                order.append(int(arr[0]))
            return order

        results = run_world(2, app)
        assert results[1] == list(range(n_msgs))


class TestCollectiveCorrectnessProperty:
    @_settings
    @given(
        nprocs=st.integers(min_value=2, max_value=9),
        values=st.data(),
    )
    def test_allreduce_equals_numpy(self, nprocs, values):
        contributions = values.draw(
            st.lists(
                st.integers(min_value=-1000, max_value=1000),
                min_size=nprocs,
                max_size=nprocs,
            )
        )

        def app(comm):
            return comm.allreduce(contributions[comm.rank()], op=SUM)

        results = run_world(nprocs, app)
        assert all(r == sum(contributions) for r in results)

    @_settings
    @given(nprocs=st.integers(min_value=2, max_value=8), root=st.data())
    def test_bcast_delivers_root_value(self, nprocs, root):
        r = root.draw(st.integers(min_value=0, max_value=nprocs - 1))

        def app(comm):
            value = ("payload", r) if comm.rank() == r else None
            return comm.bcast(value, root=r)

        results = run_world(nprocs, app)
        assert all(x == ("payload", r) for x in results)

    @_settings
    @given(nprocs=st.integers(min_value=2, max_value=7))
    def test_alltoall_is_transpose(self, nprocs):
        def app(comm):
            me = comm.rank()
            return comm.alltoall([(me, j) for j in range(comm.size)])

        results = run_world(nprocs, app)
        for me, row in enumerate(results):
            assert row == [(j, me) for j in range(nprocs)]

    @_settings
    @given(
        nprocs=st.integers(min_value=2, max_value=6),
        nops=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_random_collective_sequences_terminate_consistently(
        self, nprocs, nops, seed
    ):
        """A random but identical sequence of collectives on every rank
        runs to completion and produces rank-consistent results."""
        rng = np.random.default_rng(seed)
        ops = rng.choice(["barrier", "allreduce", "bcast", "allgather"], size=nops)
        roots = rng.integers(0, nprocs, size=nops)

        def app(comm):
            out = []
            me = comm.rank()
            for op, root in zip(ops, roots):
                if op == "barrier":
                    comm.barrier()
                    out.append("b")
                elif op == "allreduce":
                    out.append(comm.allreduce(me + 1, op=SUM))
                elif op == "bcast":
                    out.append(comm.bcast(("v", int(root)) if me == root else None, root=int(root)))
                elif op == "allgather":
                    out.append(tuple(comm.allgather(me)))
            return out

        results = run_world(nprocs, app)
        for r in results[1:]:
            # Collective outputs agree across ranks for these rootless /
            # root-consistent ops.
            assert r == results[0]


class TestClockMonotonicity:
    @_settings
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_virtual_time_nonnegative_and_deterministic(self, seed):
        def app(comm):
            comm.barrier()
            comm.allreduce(comm.rank(), op=SUM)
            return None

        def run_once():
            with Simulator(seed=seed) as sim:
                world = World(sim, make_topology(5))
                world.run(app)
                return sim.now(), sim.event_count

        a = run_once()
        b = run_once()
        assert a == b
        assert a[0] > 0
