"""Tests for MPI groups: identity, translation, set operations, ggid."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simmpi import Group, IDENT, SIMILAR, UNEQUAL
from repro.simmpi.errors import CommunicatorError


class TestConstruction:
    def test_basic(self):
        g = Group([4, 2, 7])
        assert g.size == 3
        assert g.world_ranks == (4, 2, 7)

    def test_empty_rejected(self):
        with pytest.raises(CommunicatorError):
            Group([])

    def test_duplicates_rejected(self):
        with pytest.raises(CommunicatorError):
            Group([1, 1])

    def test_negative_rejected(self):
        with pytest.raises(CommunicatorError):
            Group([0, -1])


class TestRankTranslation:
    def test_rank_of_and_world_rank_roundtrip(self):
        g = Group([10, 20, 30])
        for i, w in enumerate([10, 20, 30]):
            assert g.rank_of(w) == i
            assert g.world_rank(i) == w

    def test_rank_of_nonmember_raises(self):
        with pytest.raises(CommunicatorError):
            Group([1, 2]).rank_of(3)

    def test_world_rank_out_of_range(self):
        with pytest.raises(CommunicatorError):
            Group([1, 2]).world_rank(2)

    def test_translate_ranks(self):
        """The MPI_Group_translate_ranks the CC algorithm uses to find
        group peers locally (paper Section 4.2.4)."""
        a = Group([0, 1, 2, 3])
        b = Group([2, 3, 4])
        assert a.translate_ranks([0, 1, 2, 3], b) == [None, None, 0, 1]
        assert b.translate_ranks([0, 2], a) == [2, None]


class TestCompare:
    def test_ident(self):
        assert Group([1, 2, 3]).compare(Group([1, 2, 3])) == IDENT

    def test_similar_same_set_different_order(self):
        assert Group([1, 2, 3]).compare(Group([3, 1, 2])) == SIMILAR

    def test_unequal(self):
        assert Group([1, 2]).compare(Group([1, 3])) == UNEQUAL


class TestGgid:
    def test_similar_groups_share_ggid(self):
        """The paper's requirement: MPI_SIMILAR groups get the same ggid."""
        assert Group([5, 1, 9]).ggid == Group([9, 5, 1]).ggid

    def test_different_sets_different_ggid(self):
        assert Group([0, 1]).ggid != Group([0, 2]).ggid

    @given(st.permutations(list(range(8))))
    def test_ggid_permutation_invariant(self, perm):
        assert Group(perm).ggid == Group(range(8)).ggid


class TestSetOperations:
    def test_include(self):
        g = Group([10, 20, 30, 40])
        sub = g.include([2, 0])
        assert sub.world_ranks == (30, 10)

    def test_exclude(self):
        g = Group([10, 20, 30])
        assert g.exclude([1]).world_ranks == (10, 30)

    def test_exclude_all_raises(self):
        with pytest.raises(CommunicatorError):
            Group([5]).exclude([0])

    def test_union(self):
        u = Group([1, 2]).union(Group([2, 3]))
        assert u.world_ranks == (1, 2, 3)

    def test_intersection(self):
        i = Group([1, 2, 3]).intersection(Group([2, 3, 4]))
        assert i.world_ranks == (2, 3)

    def test_empty_intersection_raises(self):
        with pytest.raises(CommunicatorError):
            Group([1]).intersection(Group([2]))

    def test_difference(self):
        d = Group([1, 2, 3]).difference(Group([2]))
        assert d.world_ranks == (1, 3)

    def test_contains(self):
        g = Group([3, 5])
        assert 3 in g
        assert 4 not in g

    def test_equality_and_hash(self):
        assert Group([1, 2]) == Group([1, 2])
        assert Group([1, 2]) != Group([2, 1])
        assert hash(Group([1, 2])) == hash(Group([1, 2]))
