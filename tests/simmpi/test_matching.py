"""Tests for the p2p matching engine via the communicator API."""

import numpy as np
import pytest

from repro.des import DeadlockError, Simulator
from repro.netmodel import make_topology
from repro.simmpi import ANY_SOURCE, ANY_TAG, World


def run_world(nprocs, app, *, ppn=None, eager_threshold=65536, seed=0):
    with Simulator(seed=seed) as sim:
        topo = make_topology(nprocs, ppn=ppn)
        world = World(sim, topo, eager_threshold=eager_threshold)
        results = world.run(app)
        return results, world, sim.now()


class TestBasicSendRecv:
    def test_simple_pair(self):
        def app(comm):
            if comm.rank() == 0:
                comm.send({"x": 42}, dest=1, tag=3)
                return None
            return comm.recv(source=0, tag=3)

        results, _, _ = run_world(2, app)
        assert results[1] == {"x": 42}

    def test_numpy_payload(self):
        def app(comm):
            if comm.rank() == 0:
                comm.send(np.arange(5), dest=1)
                return None
            return comm.recv(source=0)

        results, _, _ = run_world(2, app)
        assert results[1].tolist() == [0, 1, 2, 3, 4]

    def test_recv_before_send(self):
        """Receive posted first; completes when the message lands."""

        def app(comm):
            if comm.rank() == 1:
                return comm.recv(source=0, tag=9)
            comm.world.sim.sleep(1e-3)
            comm.send("late", dest=1, tag=9)
            return None

        results, _, end = run_world(2, app)
        assert results[1] == "late"
        assert end >= 1e-3

    def test_transfer_takes_time(self):
        def app(comm):
            if comm.rank() == 0:
                comm.send(b"x" * 1000, dest=1)
                return None
            comm.recv(source=0)
            return comm.world.sim.now()

        _, world, _ = run_world(2, app)
        # Receiver finished strictly after t=0: latency + transfer.
        # (Result captured per rank; fetch from results instead.)

    def test_recv_status_reports_source_and_tag(self):
        def app(comm):
            if comm.rank() == 0:
                comm.send(b"abc", dest=1, tag=17)
                return None
            payload, status = comm.recv_status(source=ANY_SOURCE, tag=ANY_TAG)
            return (payload, status.source, status.tag, status.nbytes)

        results, _, _ = run_world(2, app)
        assert results[1] == (b"abc", 0, 17, 3)


class TestMatchingSemantics:
    def test_tag_selectivity(self):
        def app(comm):
            if comm.rank() == 0:
                comm.send("tag5", dest=1, tag=5)
                comm.send("tag6", dest=1, tag=6)
                return None
            first = comm.recv(source=0, tag=6)
            second = comm.recv(source=0, tag=5)
            return (first, second)

        results, _, _ = run_world(2, app)
        assert results[1] == ("tag6", "tag5")

    def test_non_overtaking_same_tag(self):
        """Messages with the same (src, tag) must match in send order even
        though the first is big (slow) and the second small (fast)."""

        def app(comm):
            if comm.rank() == 0:
                comm.send(np.zeros(1 << 13), dest=1, tag=1)  # 64 KiB, slow
                comm.send("small", dest=1, tag=1)
                return None
            first = comm.recv(source=0, tag=1)
            second = comm.recv(source=0, tag=1)
            return (type(first).__name__, second)

        results, _, _ = run_world(2, app)
        assert results[1] == ("ndarray", "small")

    def test_any_source_matches_earliest_sent(self):
        def app(comm):
            me = comm.rank()
            if me == 1:
                comm.world.sim.sleep(1e-6)
                comm.send("from1", dest=0, tag=2)
            elif me == 2:
                comm.send("from2", dest=0, tag=2)
            else:
                comm.world.sim.sleep(1e-3)  # let both arrive
                a = comm.recv(source=ANY_SOURCE, tag=2)
                b = comm.recv(source=ANY_SOURCE, tag=2)
                return (a, b)
            return None

        results, _, _ = run_world(3, app)
        assert results[0] == ("from2", "from1")

    def test_wildcard_tag(self):
        def app(comm):
            if comm.rank() == 0:
                comm.send("x", dest=1, tag=44)
                return None
            payload, status = comm.recv_status(source=0, tag=ANY_TAG)
            return status.tag

        results, _, _ = run_world(2, app)
        assert results[1] == 44


class TestIsendIrecv:
    def test_isend_irecv_roundtrip(self):
        def app(comm):
            if comm.rank() == 0:
                req = comm.isend([1, 2, 3], dest=1, tag=0)
                req.wait()
                return None
            req = comm.irecv(source=0, tag=0)
            payload, status = req.wait()
            return payload

        results, _, _ = run_world(2, app)
        assert results[1] == [1, 2, 3]

    def test_irecv_test_polls(self):
        def app(comm):
            if comm.rank() == 0:
                comm.world.sim.sleep(1e-4)
                comm.send("eventually", dest=1)
                return None
            req = comm.irecv(source=0)
            polls = 0
            while True:
                flag, value = req.test()
                if flag:
                    return (polls, value[0])
                polls += 1
                comm.world.sim.sleep(1e-5)

        results, _, _ = run_world(2, app)
        polls, payload = results[1]
        assert payload == "eventually"
        assert polls >= 5

    def test_eager_send_completes_immediately(self):
        def app(comm):
            if comm.rank() == 0:
                req = comm.isend(b"small", dest=1)
                return req.done
            comm.world.sim.sleep(1.0)
            comm.recv(source=0)
            return None

        results, _, _ = run_world(2, app)
        assert results[0] is True


class TestRendezvous:
    def test_large_send_blocks_until_recv_posted(self):
        def app(comm):
            if comm.rank() == 0:
                big = np.zeros(1 << 17)  # 1 MiB > 64 KiB threshold
                comm.send(big, dest=1)
                return comm.world.sim.now()
            comm.world.sim.sleep(0.5)
            comm.recv(source=0)
            return None

        results, _, _ = run_world(2, app)
        assert results[0] >= 0.5  # sender waited for the receiver

    def test_small_send_does_not_block(self):
        def app(comm):
            if comm.rank() == 0:
                comm.send(b"tiny", dest=1)
                return comm.world.sim.now()
            comm.world.sim.sleep(0.5)
            comm.recv(source=0)
            return None

        results, _, _ = run_world(2, app)
        assert results[0] < 0.1

    def test_threshold_configurable(self):
        def app(comm):
            if comm.rank() == 0:
                comm.send(b"x" * 100, dest=1)  # above a 10-byte threshold
                return comm.world.sim.now()
            comm.world.sim.sleep(0.25)
            comm.recv(source=0)
            return None

        results, _, _ = run_world(2, app, eager_threshold=10)
        assert results[0] >= 0.25


class TestProbe:
    def test_iprobe_sees_only_arrived(self):
        def app(comm):
            if comm.rank() == 0:
                comm.send(np.zeros(1 << 12), dest=1, tag=8)  # 32 KiB eager
                return None
            # Immediately: message in flight but not arrived.
            early = comm.iprobe(source=0, tag=8)
            comm.world.sim.sleep(1.0)
            late = comm.iprobe(source=0, tag=8)
            payload = comm.recv(source=0, tag=8)
            gone = comm.iprobe(source=0, tag=8)
            return (early, late is not None, gone)

        results, _, _ = run_world(2, app)
        early, late, gone = results[1]
        assert early is None
        assert late is True
        assert gone is None

    def test_blocking_probe_waits_for_arrival(self):
        def app(comm):
            if comm.rank() == 0:
                comm.world.sim.sleep(2e-3)
                comm.send("probe-me", dest=1, tag=3)
                return None
            status = comm.probe(source=ANY_SOURCE, tag=3)
            t = comm.world.sim.now()
            payload = comm.recv(source=status.source, tag=3)
            return (t >= 2e-3, payload)

        results, _, _ = run_world(2, app)
        assert results[1] == (True, "probe-me")


class TestDeadlocks:
    def test_mutual_recv_deadlock_detected(self):
        def app(comm):
            comm.recv(source=(comm.rank() + 1) % 2)

        with pytest.raises(DeadlockError):
            run_world(2, app)

    def test_rendezvous_head_to_head_deadlock_detected(self):
        """Two ranks doing blocking large sends to each other: classic."""

        def app(comm):
            other = 1 - comm.rank()
            comm.send(np.zeros(1 << 17), dest=other)
            comm.recv(source=other)

        with pytest.raises(DeadlockError):
            run_world(2, app)


class TestCounters:
    def test_p2p_counted_per_rank(self):
        def app(comm):
            if comm.rank() == 0:
                comm.send(1, dest=1)
                comm.send(2, dest=1)
            elif comm.rank() == 1:
                comm.recv(source=0)
                comm.recv(source=0)
            return None

        _, world, _ = run_world(2, app)
        assert world.stats.p2p_calls[0] == 2
        assert world.stats.p2p_calls[1] == 2
        assert world.stats.total_p2p() == 4
