"""Tests for the request family: test/wait/waitall/waitany/waitsome."""

import pytest

from repro.des import Simulator
from repro.simmpi import Request, completed_request, wait_all, wait_any, wait_some
from repro.simmpi import test_all as request_test_all
from repro.simmpi.errors import RequestError


def in_sim(fn):
    """Run fn() inside a one-process simulation, returning its result."""
    with Simulator() as sim:
        proc = sim.spawn(lambda: fn(sim))
        sim.run()
        return proc.result


def test_request_lifecycle():
    def body(sim):
        req = Request(sim, "x")
        assert not req.done
        assert req.test() == (False, None)
        req.complete(42)
        assert req.done
        assert req.test() == (True, 42)
        assert req.wait() == 42
        return True

    assert in_sim(body)


def test_double_complete_rejected():
    def body(sim):
        req = Request(sim, "x")
        req.complete(1)
        with pytest.raises(RequestError):
            req.complete(2)
        return True

    assert in_sim(body)


def test_complete_at_future_time():
    def body(sim):
        req = Request(sim, "x")
        req.complete_at(5.0, "later")
        value = req.wait()
        return (value, sim.now())

    assert in_sim(body) == ("later", 5.0)


def test_completed_request_is_null_like():
    def body(sim):
        req = completed_request(sim, value="v")
        assert req.done
        assert req.wait() == "v"
        return True

    assert in_sim(body)


def test_wait_all_blocks_for_slowest():
    def body(sim):
        reqs = [Request(sim, f"r{i}") for i in range(3)]
        for i, r in enumerate(reqs):
            r.complete_at(float(i + 1), i * 10)
        values = wait_all(sim, reqs)
        return (values, sim.now())

    assert in_sim(body) == ([0, 10, 20], 3.0)


def test_wait_all_empty():
    def body(sim):
        return wait_all(sim, [])

    assert in_sim(body) == []


def test_wait_any_returns_earliest():
    def body(sim):
        reqs = [Request(sim, f"r{i}") for i in range(3)]
        reqs[2].complete_at(1.0, "fast")
        reqs[0].complete_at(9.0, "slow")
        reqs[1].complete_at(5.0, "mid")
        idx, value = wait_any(sim, reqs)
        return (idx, value, sim.now())

    assert in_sim(body) == (2, "fast", 1.0)


def test_wait_any_prefers_lowest_completed_index():
    def body(sim):
        reqs = [completed_request(sim, i) for i in range(3)]
        return wait_any(sim, reqs)

    assert in_sim(body) == (0, 0)


def test_wait_any_empty_raises():
    def body(sim):
        with pytest.raises(RequestError):
            wait_any(sim, [])
        return True

    assert in_sim(body)


def test_wait_some_collects_simultaneous():
    def body(sim):
        reqs = [Request(sim, f"r{i}") for i in range(4)]
        reqs[1].complete_at(2.0, "b")
        reqs[3].complete_at(2.0, "d")
        reqs[0].complete_at(7.0, "a")
        reqs[2].complete_at(9.0, "c")
        ready = wait_some(sim, reqs)
        return (ready, sim.now())

    ready, t = in_sim(body)
    assert t == 2.0
    assert sorted(ready) == [(1, "b"), (3, "d")]


def test_test_all():
    def body(sim):
        reqs = [Request(sim, "a"), Request(sim, "b")]
        flag, values = request_test_all(reqs)
        assert not flag and values is None
        reqs[0].complete(1)
        reqs[1].complete(2)
        return request_test_all(reqs)

    assert in_sim(body) == (True, [1, 2])


def test_on_complete_observer_order():
    def body(sim):
        req = Request(sim, "x")
        log = []
        req.on_complete(lambda r: log.append("first"))
        req.on_complete(lambda r: log.append("second"))
        req.complete(None)
        req.on_complete(lambda r: log.append("post"))
        return log

    assert in_sim(body) == ["first", "second", "post"]
