"""End-to-end tests of every collective through the communicator API."""

import numpy as np
import pytest

from repro.des import ProcessFailed, Simulator
from repro.netmodel import make_topology
from repro.simmpi import MAX, MIN, PROD, SUM, World
from repro.simmpi.errors import CollectiveMismatchError


def run_world(nprocs, app, *, ppn=None, seed=0):
    with Simulator(seed=seed) as sim:
        world = World(sim, make_topology(nprocs, ppn=ppn))
        results = world.run(app)
        return results, world, sim.now()


class TestBarrier:
    def test_barrier_synchronizes(self):
        def app(comm):
            comm.world.sim.sleep(float(comm.rank()))
            comm.barrier()
            return comm.world.sim.now()

        results, _, _ = run_world(4, app)
        # Everyone exits after the slowest arrival (t=3).
        assert all(t > 3.0 for t in results)
        assert max(results) - min(results) < 1e-9


class TestBcast:
    def test_value_propagates(self):
        def app(comm):
            data = {"k": 7} if comm.rank() == 0 else None
            return comm.bcast(data, root=0)

        results, _, _ = run_world(4, app)
        assert all(r == {"k": 7} for r in results)

    def test_nonzero_root(self):
        def app(comm):
            data = "payload" if comm.rank() == 3 else None
            return comm.bcast(data, root=3)

        results, _, _ = run_world(5, app)
        assert all(r == "payload" for r in results)

    def test_root_does_not_wait_for_stragglers(self):
        def app(comm):
            me = comm.rank()
            if me == comm.size - 1:
                comm.world.sim.sleep(10.0)  # straggler leaf
            comm.bcast(b"x" if me == 0 else None, root=0)
            return comm.world.sim.now()

        results, _, _ = run_world(8, app)
        assert results[0] < 1.0  # root exits fast
        assert results[7] >= 10.0

    def test_numpy_broadcast(self):
        def app(comm):
            arr = np.arange(4.0) if comm.rank() == 0 else None
            return comm.bcast(arr, root=0).sum()

        results, _, _ = run_world(3, app)
        assert results == [6.0, 6.0, 6.0]


class TestReduceFamily:
    def test_reduce_to_root(self):
        def app(comm):
            return comm.reduce(comm.rank() + 1, op=SUM, root=0)

        results, _, _ = run_world(4, app)
        assert results[0] == 10
        assert results[1:] == [None, None, None]

    def test_reduce_ops(self):
        def app(comm):
            me = comm.rank()
            return (
                comm.allreduce(me + 1, op=PROD),
                comm.allreduce(me, op=MAX),
                comm.allreduce(me, op=MIN),
            )

        results, _, _ = run_world(3, app)
        assert results[0] == (6, 2, 0)

    def test_allreduce_arrays(self):
        def app(comm):
            return comm.allreduce(np.full(3, float(comm.rank())), op=SUM)

        results, _, _ = run_world(4, app)
        for r in results:
            assert r.tolist() == [6.0, 6.0, 6.0]

    def test_scan_prefix(self):
        def app(comm):
            return comm.scan(comm.rank() + 1, op=SUM)

        results, _, _ = run_world(4, app)
        assert results == [1, 3, 6, 10]

    def test_reduce_scatter(self):
        def app(comm):
            contributions = [comm.rank() * 10 + j for j in range(comm.size)]
            return comm.reduce_scatter(contributions, op=SUM)

        results, _, _ = run_world(3, app)
        # Element j is sum over i of (i*10 + j).
        assert results == [30 + 0 * 3, 30 + 1 * 3, 30 + 2 * 3]


class TestAlltoallAllgather:
    def test_alltoall_transpose(self):
        def app(comm):
            return comm.alltoall([(comm.rank(), j) for j in range(comm.size)])

        results, _, _ = run_world(4, app)
        for me, r in enumerate(results):
            assert r == [(j, me) for j in range(4)]

    def test_allgather(self):
        def app(comm):
            return comm.allgather(comm.rank() ** 2)

        results, _, _ = run_world(5, app)
        assert all(r == [0, 1, 4, 9, 16] for r in results)

    def test_alltoall_wrong_length_raises(self):
        def app(comm):
            comm.alltoall([0])  # must be comm.size items

        with pytest.raises(ProcessFailed) as ei:
            run_world(3, app)
        assert isinstance(ei.value.original, CollectiveMismatchError)


class TestGatherScatter:
    def test_gather(self):
        def app(comm):
            return comm.gather(chr(ord("a") + comm.rank()), root=1)

        results, _, _ = run_world(3, app)
        assert results[1] == ["a", "b", "c"]
        assert results[0] is None and results[2] is None

    def test_scatter(self):
        def app(comm):
            objs = [i * 100 for i in range(comm.size)] if comm.rank() == 2 else None
            return comm.scatter(objs, root=2)

        results, _, _ = run_world(4, app)
        assert results == [0, 100, 200, 300]

    def test_scatter_requires_list_at_root(self):
        def app(comm):
            comm.scatter("not-a-list", root=0)

        with pytest.raises(ProcessFailed) as ei:
            run_world(2, app)
        assert isinstance(ei.value.original, CollectiveMismatchError)


class TestMismatchDetection:
    def test_kind_mismatch(self):
        def app(comm):
            if comm.rank() == 0:
                comm.barrier()
            else:
                comm.allreduce(1, op=SUM)

        with pytest.raises(ProcessFailed) as ei:
            run_world(2, app)
        assert isinstance(ei.value.original, CollectiveMismatchError)

    def test_root_mismatch(self):
        def app(comm):
            comm.bcast("x", root=comm.rank())  # different roots!

        with pytest.raises(ProcessFailed) as ei:
            run_world(2, app)
        assert isinstance(ei.value.original, CollectiveMismatchError)

    def test_op_mismatch(self):
        def app(comm):
            comm.allreduce(1, op=SUM if comm.rank() == 0 else MAX)

        with pytest.raises(ProcessFailed) as ei:
            run_world(2, app)
        assert isinstance(ei.value.original, CollectiveMismatchError)

    def test_blocking_nonblocking_mix_rejected(self):
        def app(comm):
            if comm.rank() == 0:
                comm.barrier()
            else:
                comm.ibarrier().wait()

        with pytest.raises(ProcessFailed) as ei:
            run_world(2, app)
        assert isinstance(ei.value.original, CollectiveMismatchError)


class TestNonBlockingCollectives:
    def test_ibcast_overlaps_compute(self):
        def app(comm):
            me = comm.rank()
            req = comm.ibcast(np.zeros(1 << 14) if me == 0 else None, root=0)
            comm.world.sim.sleep(1e-3)  # compute while the bcast progresses
            req.wait()
            return comm.world.sim.now()

        results, _, _ = run_world(4, app)
        # The bcast costs far less than the compute: total ~ compute time.
        assert all(abs(t - 1e-3) < 2e-4 for t in results)

    def test_iallreduce_result(self):
        def app(comm):
            req = comm.iallreduce(comm.rank(), op=SUM)
            return req.wait()

        results, _, _ = run_world(4, app)
        assert results == [6, 6, 6, 6]

    def test_ialltoall_and_iallgather(self):
        def app(comm):
            r1 = comm.ialltoall([comm.rank()] * comm.size)
            r2 = comm.iallgather(comm.rank() * 2)
            return (r1.wait(), r2.wait())

        results, _, _ = run_world(3, app)
        a2a, ag = results[0]
        assert a2a == [0, 1, 2]
        assert ag == [0, 2, 4]

    def test_multiple_outstanding_independent_progress(self):
        """Paper Section 3: outstanding non-blocking collectives progress
        independently; initiating several then waiting works."""

        def app(comm):
            reqs = [comm.iallreduce(comm.rank(), op=SUM) for _ in range(4)]
            from repro.simmpi import wait_all

            return wait_all(comm.world.sim, reqs)

        results, _, _ = run_world(3, app)
        assert results[0] == [3, 3, 3, 3]

    def test_ibarrier_test_loop(self):
        def app(comm):
            me = comm.rank()
            if me == 1:
                comm.world.sim.sleep(5e-4)
            req = comm.ibarrier()
            polls = 0
            while not req.test()[0]:
                polls += 1
                comm.world.sim.sleep(1e-5)
            return polls

        results, _, _ = run_world(2, app)
        assert results[0] > 10  # rank 0 polled while waiting for rank 1
        assert results[1] <= 2

    def test_outstanding_tracker_clears(self):
        def app(comm):
            req = comm.iallreduce(1, op=SUM)
            req.wait()
            return None

        _, world, _ = run_world(2, app)
        assert all(len(s) == 0 for s in world.outstanding_nbc)


class TestSubCommunicatorCollectives:
    def test_collective_on_split_comm(self):
        def app(comm):
            half = comm.split(color=comm.rank() // 2, key=comm.rank())
            return half.allreduce(comm.rank(), op=SUM)

        results, _, _ = run_world(4, app)
        assert results == [1, 1, 5, 5]

    def test_overlapping_groups_via_create_group(self):
        from repro.simmpi import Group

        def app(comm):
            me = comm.rank()
            out = {}
            if me in (0, 1):
                sub = comm.create_group(Group([0, 1]))
                out["a"] = sub.allreduce(me, op=SUM)
            if me in (1, 2):
                sub = comm.create_group(Group([1, 2]))
                out["b"] = sub.allreduce(me, op=SUM)
            return out

        results, _, _ = run_world(3, app)
        assert results[0] == {"a": 1}
        assert results[1] == {"a": 1, "b": 3}
        assert results[2] == {"b": 3}


class TestCollectiveCounters:
    def test_coll_calls_counted(self):
        def app(comm):
            comm.barrier()
            comm.allreduce(1, op=SUM)
            comm.ibcast("x" if comm.rank() == 0 else None, root=0).wait()
            return None

        _, world, _ = run_world(3, app)
        assert world.stats.coll_calls.tolist() == [3, 3, 3]

    def test_in_collective_cleared_after_run(self):
        def app(comm):
            comm.barrier()

        _, world, _ = run_world(3, app)
        assert not world.any_in_collective()
        assert world.open_sites() == 0
