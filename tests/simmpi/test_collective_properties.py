"""Property-based correctness of the remaining collectives vs numpy."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.des import Simulator
from repro.netmodel import make_topology
from repro.simmpi import MAX, MIN, PROD, SUM, World

_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def run_world(nprocs, app, seed=0):
    with Simulator(seed=seed) as sim:
        world = World(sim, make_topology(nprocs))
        return world.run(app)


@_settings
@given(
    nprocs=st.integers(2, 8),
    data=st.data(),
)
def test_scan_matches_prefix_sums(nprocs, data):
    values = data.draw(
        st.lists(st.integers(-100, 100), min_size=nprocs, max_size=nprocs)
    )

    def app(comm):
        return comm.scan(values[comm.rank()], op=SUM)

    results = run_world(nprocs, app)
    expected = np.cumsum(values).tolist()
    assert results == expected


@_settings
@given(nprocs=st.integers(2, 6), data=st.data())
def test_reduce_scatter_matches_columnwise_sum(nprocs, data):
    matrix = data.draw(
        st.lists(
            st.lists(st.integers(-50, 50), min_size=nprocs, max_size=nprocs),
            min_size=nprocs,
            max_size=nprocs,
        )
    )

    def app(comm):
        return comm.reduce_scatter(matrix[comm.rank()], op=SUM)

    results = run_world(nprocs, app)
    expected = np.sum(matrix, axis=0).tolist()
    assert results == expected


@_settings
@given(nprocs=st.integers(2, 8), data=st.data())
def test_gather_scatter_roundtrip(nprocs, data):
    root = data.draw(st.integers(0, nprocs - 1))
    values = data.draw(
        st.lists(st.integers(-1000, 1000), min_size=nprocs, max_size=nprocs)
    )

    def app(comm):
        me = comm.rank()
        gathered = comm.gather(values[me], root=root)
        # Root redistributes what it gathered; everyone must get back
        # exactly their own contribution.
        back = comm.scatter(gathered if me == root else None, root=root)
        return back

    results = run_world(nprocs, app)
    assert results == values


@_settings
@given(
    nprocs=st.integers(2, 6),
    op=st.sampled_from([SUM, PROD, MAX, MIN]),
    data=st.data(),
)
def test_reduce_root_matches_allreduce(nprocs, op, data):
    root = data.draw(st.integers(0, nprocs - 1))
    values = data.draw(
        st.lists(st.integers(1, 6), min_size=nprocs, max_size=nprocs)
    )

    def app(comm):
        me = comm.rank()
        r = comm.reduce(values[me], op=op, root=root)
        a = comm.allreduce(values[me], op=op)
        return (r, a)

    results = run_world(nprocs, app)
    for me, (r, a) in enumerate(results):
        if me == root:
            assert r == a
        else:
            assert r is None


@_settings
@given(nprocs=st.integers(2, 6), rounds=st.integers(1, 4))
def test_nonblocking_initiation_order_consistency(nprocs, rounds):
    """Several outstanding non-blocking collectives initiated in the same
    order on every rank complete with correct, round-specific values."""

    def app(comm):
        me = comm.rank()
        reqs = []
        for k in range(rounds):
            reqs.append(comm.iallreduce(me * 10 + k))
        return [r.wait() for r in reqs]

    results = run_world(nprocs, app)
    base = sum(r * 10 for r in range(nprocs))
    expected = [base + k * nprocs for k in range(rounds)]
    assert all(r == expected for r in results)


@_settings
@given(
    nprocs=st.integers(3, 7),
    colors=st.data(),
)
def test_split_partition_property(nprocs, colors):
    """comm_split produces a partition: every rank lands in exactly one
    sub-communicator whose members share its color, ordered by key."""
    assignment = colors.draw(
        st.lists(st.integers(0, 2), min_size=nprocs, max_size=nprocs)
    )

    def app(comm):
        me = comm.rank()
        sub = comm.split(color=assignment[me], key=-me)  # reverse order
        return (sub.group.world_ranks, sub.rank())

    results = run_world(nprocs, app)
    for me, (members, subrank) in enumerate(results):
        same_color = [r for r in range(nprocs) if assignment[r] == assignment[me]]
        assert sorted(members) == same_color
        # key=-rank reverses the ordering within the new communicator.
        assert list(members) == sorted(same_color, reverse=True)
        assert members[subrank] == me
