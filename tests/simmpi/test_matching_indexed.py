"""Differential test: indexed matcher vs the pre-PR linear-scan matcher.

``_ReferenceMatcher`` below is the seed repo's ``MatchingEngine`` (linear
scans over unexpected/posted queues), kept verbatim as the semantic
oracle.  Randomized traffic — wildcards, rendezvous, probes, iprobes —
is replayed against both engines in twin simulations; every observable
(completion values, statuses, times, queue introspection) must agree.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np
import pytest

from repro.des import Simulator
from repro.netmodel import make_topology
from repro.simmpi.datatypes import ANY_SOURCE, ANY_TAG
from repro.simmpi.matching import Envelope, MatchingEngine, Status
from repro.simmpi.request import Request


@dataclass
class _RefPostedRecv:
    seq: int
    dst: int
    source: int
    tag: int
    request: Request
    posted_at: float


@dataclass
class _RefProbeWait:
    dst: int
    source: int
    tag: int
    request: Request


class _ReferenceMatcher:
    """The seed repo's linear-scan matching engine (semantic oracle)."""

    def __init__(self, sim, topo, world_ranks, *, eager_threshold=65536):
        self.sim = sim
        self.topo = topo
        self.world_ranks = world_ranks
        self.eager_threshold = eager_threshold
        self._seq = itertools.count()
        self._unexpected: dict[int, list[Envelope]] = {}
        self._posted: dict[int, list[_RefPostedRecv]] = {}
        self._probes: dict[int, list[_RefProbeWait]] = {}

    def in_flight_to(self, dst):
        return list(self._unexpected.get(dst, ()))

    def total_unmatched(self):
        return sum(len(v) for v in self._unexpected.values())

    def pending_recvs(self, dst):
        return len(self._posted.get(dst, ()))

    def send(self, src, dst, tag, payload):
        from repro.simmpi.datatypes import payload_nbytes

        now = self.sim.now()
        nbytes = payload_nbytes(payload)
        transit = self.topo.p2p_time(
            self.world_ranks[src], self.world_ranks[dst], nbytes
        )
        rendezvous = nbytes > self.eager_threshold
        send_req = Request(self.sim, "send")
        env = Envelope(
            seq=next(self._seq),
            src=src,
            dst=dst,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            sent_at=now,
            available_at=now + transit,
            rendezvous=rendezvous,
            send_request=send_req if rendezvous else None,
        )
        if not rendezvous:
            send_req.complete(None)
        matched = self._try_match_posted(env)
        if not matched:
            self._unexpected.setdefault(dst, []).append(env)
            self._notify_probes(env)
        return send_req

    def post_recv(self, dst, source, tag):
        now = self.sim.now()
        queue = self._unexpected.get(dst, [])
        for i, env in enumerate(queue):
            if env.matches(source, tag):
                queue.pop(i)
                req = Request(self.sim, "recv")
                self._complete_transfer(env, req, posted_at=now)
                return req
        req = Request(self.sim, "recv")
        self._posted.setdefault(dst, []).append(
            _RefPostedRecv(
                seq=next(self._seq),
                dst=dst,
                source=source,
                tag=tag,
                request=req,
                posted_at=now,
            )
        )
        return req

    def iprobe(self, dst, source, tag):
        now = self.sim.now()
        for env in self._unexpected.get(dst, ()):
            if env.matches(source, tag) and env.available_at <= now + 1e-18:
                return Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
        return None

    def probe(self, dst, source, tag):
        now = self.sim.now()
        req = Request(self.sim, "probe")
        for env in self._unexpected.get(dst, ()):
            if env.matches(source, tag):
                status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
                req.complete_at(max(env.available_at, now), status)
                return req
        self._probes.setdefault(dst, []).append(_RefProbeWait(dst, source, tag, req))
        return req

    def _try_match_posted(self, env):
        posted = self._posted.get(env.dst)
        if not posted:
            return False
        for i, pr in enumerate(posted):
            if env.matches(pr.source, pr.tag):
                posted.pop(i)
                self._complete_transfer(env, pr.request, posted_at=pr.posted_at)
                return True
        return False

    def _complete_transfer(self, env, recv_req, posted_at):
        now = self.sim.now()
        if env.rendezvous:
            start = max(env.sent_at, posted_at, now)
            transit = self.topo.p2p_time(
                self.world_ranks[env.src], self.world_ranks[env.dst], env.nbytes
            )
            done = start + transit
            env.send_request.complete_at(done, None)
        else:
            done = max(env.available_at, now)
        status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
        recv_req.complete_at(done, (env.payload, status))

    def _notify_probes(self, env):
        probes = self._probes.get(env.dst)
        if not probes:
            return
        remaining = []
        for pw in probes:
            if env.matches(pw.source, pw.tag):
                status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
                pw.request.complete_at(env.available_at, status)
            else:
                remaining.append(pw)
        self._probes[env.dst] = remaining


# --------------------------------------------------------------------- #
# Random traffic scripts
# --------------------------------------------------------------------- #

def _random_script(seed: int, nprocs: int, n_ops: int):
    """A deterministic list of matching-engine operations."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(n_ops):
        kind = rng.choice(
            ["send", "send_big", "recv", "recv_wild", "iprobe", "probe", "tick"],
            p=[0.3, 0.05, 0.3, 0.1, 0.1, 0.05, 0.1],
        )
        src = int(rng.integers(nprocs))
        dst = int(rng.integers(nprocs))
        tag = int(rng.integers(4))
        size = int(rng.integers(1, 512))
        ops.append((str(kind), src, dst, tag, size))
    return ops


def _replay(engine_factory, ops, nprocs):
    """Run one script against a fresh engine; return the observation log."""
    topo = make_topology(nprocs, ppn=max(nprocs // 2, 1))
    observations = []
    with Simulator(seed=1) as sim:
        eng = engine_factory(sim, topo, tuple(range(nprocs)))
        pending = []

        def driver():
            for kind, src, dst, tag, size in ops:
                if kind == "send":
                    req = eng.send(src, dst, tag, b"x" * size)
                    pending.append(("send", req))
                elif kind == "send_big":
                    # Above the (lowered) eager threshold: rendezvous.
                    req = eng.send(src, dst, tag, b"y" * (size + 2048))
                    pending.append(("send_big", req))
                elif kind == "recv":
                    pending.append(("recv", eng.post_recv(dst, src, tag)))
                elif kind == "recv_wild":
                    source = ANY_SOURCE if tag % 2 == 0 else src
                    wtag = ANY_TAG if tag % 3 == 0 else tag
                    pending.append(("recv", eng.post_recv(dst, source, wtag)))
                elif kind == "iprobe":
                    status = eng.iprobe(dst, src if tag % 2 else ANY_SOURCE, tag)
                    observations.append(("iprobe", sim.now(), status))
                elif kind == "probe":
                    pending.append(("probe", eng.probe(dst, ANY_SOURCE, tag)))
                elif kind == "tick":
                    sim.sleep(1e-5)
                    observations.append(
                        ("queues", sim.now(), eng.total_unmatched(),
                         tuple(eng.pending_recvs(d) for d in range(nprocs)),
                         tuple(tuple((e.seq, e.src, e.tag) for e in eng.in_flight_to(d))
                               for d in range(nprocs)))
                    )
            # Drain what completed; leave genuinely unmatched ops pending.
            sim.sleep(1.0)
            for kind, req in pending:
                observations.append((kind, req.done, req.value if req.done else None))

        sim.spawn(driver, name="driver")
        sim.run()
    return observations


def _norm(obs):
    """Completion values contain Status dataclasses; make them comparable."""
    out = []
    for item in obs:
        out.append(repr(item))
    return out


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_indexed_matcher_equals_reference_on_random_traffic(seed):
    nprocs = 4
    ops = _random_script(seed, nprocs, n_ops=160)

    def indexed(sim, topo, ranks):
        return MatchingEngine(sim, topo, ranks, eager_threshold=2048)

    def reference(sim, topo, ranks):
        return _ReferenceMatcher(sim, topo, ranks, eager_threshold=2048)

    got = _norm(_replay(indexed, ops, nprocs))
    want = _norm(_replay(reference, ops, nprocs))
    assert got == want


def _wildcard_flood_script(seed: int, nprocs: int, n_ops: int):
    """Traffic shaped to stress the wildcard index: many distinct
    ``(src, tag)`` buckets per destination, wildcard-heavy receives, and
    enough concrete receives in between to leave tombstones (and trigger
    compaction) in the index views."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(n_ops):
        kind = rng.choice(
            ["send", "recv", "recv_wild", "iprobe", "probe", "tick"],
            p=[0.42, 0.1, 0.28, 0.1, 0.05, 0.05],
        )
        src = int(rng.integers(nprocs))
        dst = int(rng.integers(nprocs))
        tag = int(rng.integers(16))  # up to nprocs*16 buckets per dst
        size = int(rng.integers(1, 64))
        ops.append((str(kind), src, dst, tag, size))
    return ops


@pytest.mark.parametrize("seed", [10, 11, 12, 13, 14, 15])
def test_indexed_matcher_equals_reference_on_wildcard_floods(seed):
    nprocs = 4
    ops = _wildcard_flood_script(seed, nprocs, n_ops=240)

    def indexed(sim, topo, ranks):
        return MatchingEngine(sim, topo, ranks, eager_threshold=2048)

    def reference(sim, topo, ranks):
        return _ReferenceMatcher(sim, topo, ranks, eager_threshold=2048)

    got = _norm(_replay(indexed, ops, nprocs))
    want = _norm(_replay(reference, ops, nprocs))
    assert got == want


def test_wildcard_index_survives_concrete_tombstones_and_compaction():
    # Build a large index, then drain mostly through *concrete* receives
    # so the index views fill with tombstones (forcing compaction), and
    # check the interleaved wildcard receives still see the exact
    # earliest-send order the reference semantics require.
    topo = make_topology(4, ppn=4)
    with Simulator() as sim:
        eng = MatchingEngine(sim, topo, (0, 1, 2, 3))

        def body():
            n = 300
            for i in range(n):
                eng.send(1 + (i % 3), 0, i % 25, ("msg", i))
            # First wildcard op builds the index over all ~75 buckets.
            eng.iprobe(0, ANY_SOURCE, ANY_TAG)
            expect = list(range(n))
            # Alternate 3 concrete takes (tombstones) with 1 wildcard
            # take; both must always yield the earliest remaining send.
            while expect:
                i = expect.pop(0)
                if len(expect) % 4 == 0:
                    payload, _ = eng.post_recv(0, ANY_SOURCE, ANY_TAG).wait()
                else:
                    payload, _ = eng.post_recv(0, 1 + (i % 3), i % 25).wait()
                assert payload[1] == i
            assert eng.total_unmatched() == 0
            wild = eng._wild[0]
            assert wild.live == 0
            # Compaction (4:1 stale:live above the 64-entry floor) kept
            # the stale views bounded well below the flood size.
            assert len(wild.order) <= 65

        sim.spawn(body)
        sim.run()


def test_indexed_matcher_preserves_non_overtaking_within_source_tag():
    topo = make_topology(2, ppn=2)
    with Simulator() as sim:
        eng = MatchingEngine(sim, topo, (0, 1))
        got = []

        def body():
            for i in range(10):
                eng.send(1, 0, 7, ("msg", i))
            for _ in range(10):
                payload, status = eng.post_recv(0, 1, 7).wait()
                got.append(payload[1])

        sim.spawn(body)
        sim.run()
        assert got == list(range(10))


def test_wildcard_recv_takes_global_earliest_across_sources():
    topo = make_topology(4, ppn=4)
    with Simulator() as sim:
        eng = MatchingEngine(sim, topo, (0, 1, 2, 3))
        got = []

        def body():
            # Interleave senders; ANY_SOURCE must drain in send order.
            eng.send(2, 0, 5, "a")
            eng.send(1, 0, 5, "b")
            eng.send(3, 0, 5, "c")
            eng.send(1, 0, 5, "d")
            for _ in range(4):
                payload, status = eng.post_recv(0, ANY_SOURCE, 5).wait()
                got.append((payload, status.source))

        sim.spawn(body)
        sim.run()
        assert got == [("a", 2), ("b", 1), ("c", 3), ("d", 1)]


def test_posted_wildcard_buckets_match_earliest_posted():
    topo = make_topology(3, ppn=3)
    with Simulator() as sim:
        eng = MatchingEngine(sim, topo, (0, 1, 2))

        def body():
            r_wild = eng.post_recv(0, ANY_SOURCE, ANY_TAG)
            r_tag = eng.post_recv(0, ANY_SOURCE, 4)
            r_src = eng.post_recv(0, 2, ANY_TAG)
            # Earliest matching post wins: the full wildcard.
            eng.send(2, 0, 4, "first")
            sim.sleep(0.5)
            assert r_wild.done and r_wild.value[0] == "first"
            assert not r_tag.done and not r_src.done
            eng.send(2, 0, 4, "second")
            sim.sleep(0.5)
            assert r_tag.done and r_tag.value[0] == "second"
            assert not r_src.done
            eng.send(2, 0, 9, "third")
            sim.sleep(0.5)
            assert r_src.done and r_src.value[0] == "third"

        sim.spawn(body)
        sim.run()
