"""Vectorized collective completion and shared result assembly.

The batching itself is pinned by the determinism fingerprints (event
counts and result hashes must be byte-identical to the per-member
schedule — see tests/harness/test_determinism_fingerprint.py); these
tests cover the structural claims: same-instant exits fuse into one
queue entry, counts stay fingerprint-stable, and allreduce/allgather
hand every member the same assembled object instead of rebuilding an
identical one per member.
"""

import numpy as np

from repro.des import Simulator
from repro.netmodel import make_topology
from repro.simmpi import SUM, World


def run_world(nprocs, app, *, seed=0):
    with Simulator(seed=seed) as sim:
        world = World(sim, make_topology(nprocs, ppn=nprocs))
        results = world.run(app)
        return results, sim.event_count


def test_allreduce_result_is_shared_across_members():
    def app(comm):
        return comm.allreduce([comm.rank()], op=SUM)

    results, _ = run_world(4, app)
    expected = [0 + 1 + 2 + 3]
    assert all(r == expected for r in results)
    # One assembly per site: every member holds the same object.
    assert all(r is results[0] for r in results)


def test_allgather_result_is_shared_across_members():
    def app(comm):
        return comm.allgather(comm.rank() * 10)

    results, _ = run_world(4, app)
    assert all(r == [0, 10, 20, 30] for r in results)
    assert all(r is results[0] for r in results)


def test_scan_results_stay_distinct():
    """Prefix reductions differ per member — no sharing."""

    def app(comm):
        return comm.scan(comm.rank() + 1, op=SUM)

    results, _ = run_world(4, app)
    assert results == [1, 3, 6, 10]


def test_numpy_allreduce_values_unchanged():
    def app(comm):
        return comm.allreduce(np.full(8, float(comm.rank())), op=SUM)

    results, _ = run_world(4, app)
    for r in results:
        assert np.array_equal(r, np.full(8, 6.0))


def test_barrier_event_count_is_batch_independent():
    """A barrier releases all members at one instant; the batched
    completion must report the same event count as per-member events
    (one logical completion per member)."""

    def app(comm):
        comm.barrier()
        return comm.world.sim.now()

    _, small = run_world(2, app)
    _, large = run_world(6, app)
    # Each extra rank adds its own logical completion event (plus its
    # spawn/arrival events); if batching collapsed the count, adding
    # ranks would add fewer events than the per-member schedule.
    assert large > small


def test_mixed_exit_times_complete_per_solver_schedule():
    """Tree-bcast exits are staggered with partial ties: batching only
    groups same-instant exits, so distinct exit times stay distinct and
    every member still sees the root's value."""

    def app(comm):
        value = comm.bcast("v" if comm.rank() == 0 else None, root=0)
        return (value, comm.world.sim.now())

    results, _ = run_world(5, app)
    assert all(v == "v" for v, _ in results)
    times = [t for _, t in results]
    assert len(set(times)) > 1  # staggered exits survived batching
