"""Tests for communicator management: split, dup, create_group, free."""

import pytest

from repro.des import ProcessFailed, Simulator
from repro.netmodel import make_topology
from repro.simmpi import Group, IDENT, SIMILAR, SUM, World
from repro.simmpi.errors import CommunicatorError


def run_world(nprocs, app, *, seed=0):
    with Simulator(seed=seed) as sim:
        world = World(sim, make_topology(nprocs))
        results = world.run(app)
        return results, world


class TestSplit:
    def test_split_by_parity(self):
        def app(comm):
            sub = comm.split(color=comm.rank() % 2, key=comm.rank())
            return (sub.size, sub.rank(), sub.group.world_ranks)

        results, _ = run_world(4, app)
        assert results[0] == (2, 0, (0, 2))
        assert results[1] == (2, 0, (1, 3))
        assert results[2] == (2, 1, (0, 2))
        assert results[3] == (2, 1, (1, 3))

    def test_split_key_reorders(self):
        def app(comm):
            # Reverse ordering within the new communicator.
            sub = comm.split(color=0, key=-comm.rank())
            return sub.rank()

        results, _ = run_world(3, app)
        assert results == [2, 1, 0]

    def test_split_undefined_color(self):
        def app(comm):
            sub = comm.split(color=None if comm.rank() == 0 else 1, key=comm.rank())
            return None if sub is None else sub.size

        results, _ = run_world(3, app)
        assert results == [None, 2, 2]

    def test_members_share_context(self):
        def app(comm):
            sub = comm.split(color=0, key=comm.rank())
            return sub.context_id

        results, _ = run_world(3, app)
        assert len(set(results)) == 1

    def test_two_sequential_splits_distinct(self):
        def app(comm):
            a = comm.split(color=0, key=comm.rank())
            b = comm.split(color=0, key=comm.rank())
            return (a.context_id, b.context_id)

        results, _ = run_world(2, app)
        a_ctx, b_ctx = results[0]
        assert a_ctx != b_ctx


class TestDup:
    def test_dup_is_ident_but_new_context(self):
        def app(comm):
            d = comm.dup()
            return (d.compare(comm), d.context_id != comm.context_id)

        results, _ = run_world(3, app)
        assert all(r == (IDENT, True) for r in results)

    def test_dup_isolates_p2p_traffic(self):
        """A message on the dup'd comm must not match a recv on the parent."""

        def app(comm):
            d = comm.dup()
            if comm.rank() == 0:
                d.send("on-dup", dest=1, tag=5)
                comm.send("on-world", dest=1, tag=5)
                return None
            got_world = comm.recv(source=0, tag=5)
            got_dup = d.recv(source=0, tag=5)
            return (got_world, got_dup)

        results, _ = run_world(2, app)
        assert results[1] == ("on-world", "on-dup")


class TestCreateGroup:
    def test_subgroup_comm(self):
        def app(comm):
            if comm.rank() >= 2:
                return None
            sub = comm.create_group(Group([0, 1]))
            return sub.allreduce(comm.rank() + 1, op=SUM)

        results, _ = run_world(4, app)
        assert results == [3, 3, None, None]

    def test_similar_subgroup_shares_ggid_with_parent_subset(self):
        def app(comm):
            if comm.rank() >= 2:
                return None
            sub = comm.create_group(Group([1, 0]))  # reversed order
            return sub.ggid

        results, _ = run_world(3, app)
        assert results[0] == results[1] == Group([0, 1]).ggid

    def test_nonmember_call_rejected(self):
        def app(comm):
            comm.create_group(Group([0]))  # rank 1 is not a member

        with pytest.raises(ProcessFailed) as ei:
            run_world(2, lambda comm: app(comm) if comm.rank() == 1 else None)
        assert isinstance(ei.value.original, CommunicatorError)

    def test_repeated_create_group_instances_distinct(self):
        def app(comm):
            a = comm.create_group(Group([0, 1]))
            b = comm.create_group(Group([0, 1]))
            return (a.context_id, b.context_id)

        results, _ = run_world(2, app)
        a_ctx, b_ctx = results[0]
        assert a_ctx != b_ctx
        assert results[0] == results[1]

    def test_group_outside_parent_rejected(self):
        def app(comm):
            half = comm.split(color=0 if comm.rank() < 2 else 1, key=comm.rank())
            if comm.rank() == 0:
                # Group member 3 is not in `half` (ranks {0,1}).
                half.create_group(Group([0, 3]))
            return None

        with pytest.raises(ProcessFailed) as ei:
            run_world(4, app)
        assert isinstance(ei.value.original, CommunicatorError)


class TestFree:
    def test_freed_comm_rejects_use(self):
        def app(comm):
            d = comm.dup()
            d.free()
            d.barrier()

        with pytest.raises(ProcessFailed) as ei:
            run_world(2, app)
        assert isinstance(ei.value.original, CommunicatorError)


class TestRankErrors:
    def test_nonmember_rank_call(self):
        def app(comm):
            sub = comm.split(color=0 if comm.rank() == 0 else 1, key=0)
            if comm.rank() == 1:
                other = comm.world.comm_world  # fine
                # Using rank 0's sub-communicator from rank 1 must fail:
                # we simulate the bug by looking the comm up via split of
                # color 0 — unreachable here, so instead check membership
                # error through a direct call on a non-member comm.
            return sub.rank()

        results, _ = run_world(2, app)
        assert results == [0, 0]
