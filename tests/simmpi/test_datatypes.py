"""Tests for payload sizing and reduction operations."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simmpi import BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM, payload_nbytes, reduce_payloads
from repro.simmpi.datatypes import lookup_op
from repro.simmpi.errors import ReduceOpError


class TestPayloadNbytes:
    def test_numpy_array(self):
        assert payload_nbytes(np.zeros(10, dtype=np.float64)) == 80
        assert payload_nbytes(np.zeros((4, 4), dtype=np.int32)) == 64

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4
        assert payload_nbytes(bytearray(16)) == 16

    def test_scalars(self):
        assert payload_nbytes(7) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(None) == 0

    def test_str(self):
        assert payload_nbytes("hello") == 5

    def test_containers(self):
        assert payload_nbytes([1, 2]) == 8 * 2 + 16
        assert payload_nbytes({"a": 1}) == 1 + 8 + 16

    def test_arbitrary_object_positive(self):
        class Blob:
            pass

        assert payload_nbytes(Blob()) > 0


class TestReduceOps:
    def test_sum_scalars(self):
        assert reduce_payloads([1, 2, 3], SUM) == 6

    def test_sum_arrays_elementwise(self):
        out = reduce_payloads([np.array([1.0, 2.0]), np.array([3.0, 4.0])], SUM)
        assert out.tolist() == [4.0, 6.0]

    def test_sum_does_not_mutate_inputs(self):
        a = np.array([1.0, 1.0])
        b = np.array([2.0, 2.0])
        reduce_payloads([a, b], SUM)
        assert a.tolist() == [1.0, 1.0]

    def test_prod(self):
        assert reduce_payloads([2, 3, 4], PROD) == 24

    def test_max_min(self):
        assert reduce_payloads([5, -2, 3], MAX) == 5
        assert reduce_payloads([5, -2, 3], MIN) == -2

    def test_logical(self):
        assert bool(reduce_payloads([True, True, False], LAND)) is False
        assert bool(reduce_payloads([False, True, False], LOR)) is True

    def test_bitwise(self):
        assert reduce_payloads([0b1100, 0b1010], BAND) == 0b1000
        assert reduce_payloads([0b1100, 0b1010], BOR) == 0b1110

    def test_lookup_by_name(self):
        assert lookup_op("sum") is SUM
        assert lookup_op(MAX) is MAX

    def test_lookup_unknown_raises(self):
        with pytest.raises(ReduceOpError):
            lookup_op("xor-ish")

    def test_empty_reduce_raises(self):
        with pytest.raises(ReduceOpError):
            reduce_payloads([], SUM)

    def test_scalar_result_is_python_number(self):
        out = reduce_payloads([1, 2], SUM)
        assert isinstance(out, int)

    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=20))
    def test_sum_matches_builtin(self, xs):
        assert reduce_payloads(xs, SUM) == sum(xs)

    @given(
        st.lists(
            st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=3, max_size=3),
            min_size=1,
            max_size=8,
        )
    )
    def test_array_sum_matches_numpy(self, rows):
        arrays = [np.array(r) for r in rows]
        out = reduce_payloads(arrays, SUM)
        np.testing.assert_allclose(out, np.sum(rows, axis=0))
