"""Execution-backend seam: selection rules + cross-backend determinism.

Every backend must reproduce the ``threads`` reference schedule exactly
— same virtual end time, same ``event_count`` fingerprint, same
process-visible interleavings.  These tests run a representative
workload mix (sleeps, wake/block handoffs, kills, interrupts, failures,
close-mid-run) under each backend importable in this interpreter and
compare against hard-coded expectations so a lone backend in a stripped
environment is still checked against the reference, not just itself.
"""

import pytest

from repro.des import (
    INTERRUPTED,
    DeadlockError,
    ProcessFailed,
    Simulator,
    available_backends,
    get_default_backend,
    greenlet_available,
    resolve_backend,
    set_default_backend,
)
from repro.des.backends import ENV_VAR

def _churn_workload(sim):
    """A deterministic mix of sleeps, handoffs, and spawn churn.

    Returns the trace list; the exact contents (and the simulator's
    ``event_count``) are pinned by the tests below.
    """
    trace = []

    def ticker(tag, dt, n):
        for _ in range(n):
            sim.sleep(dt)
            trace.append((tag, sim.now()))

    def spawner():
        for i in range(3):
            sim.sleep(1.0)
            sim.spawn(ticker, f"child{i}", 0.25, 2)

    sim.spawn(ticker, "a", 1.0, 4)
    sim.spawn(ticker, "b", 0.7, 5)
    sim.spawn(spawner)
    return trace


@pytest.mark.parametrize("backend", available_backends())
class TestCrossBackendDeterminism:
    EXPECTED_END = 4.0
    EXPECTED_EVENTS = 42

    def test_churn_schedule_pinned(self, backend):
        with Simulator(backend=backend) as sim:
            trace = _churn_workload(sim)
            end = sim.run()
            events = sim.event_count
        assert end == self.EXPECTED_END
        assert events == self.EXPECTED_EVENTS
        # Same-instant ties break by schedule order on every backend.
        assert trace[:3] == [("b", 0.7), ("a", 1.0), ("child0", 1.25)]
        assert ("child2", 3.5) in trace

    def test_block_wake_handoff(self, backend):
        with Simulator(backend=backend) as sim:
            order = []

            def sleeper():
                order.append(("blocked", sim.now()))
                sim.block()
                order.append(("woken", sim.now()))

            proc = sim.spawn(sleeper)

            def waker():
                sim.sleep(2.0)
                sim.wake(proc)

            sim.spawn(waker)
            end = sim.run()
        assert end == 2.0
        assert order == [("blocked", 0.0), ("woken", 2.0)]

    def test_interrupt_cuts_sleep_short(self, backend):
        with Simulator(backend=backend) as sim:
            got = []

            def sleeper():
                got.append((sim.sleep(10.0, interruptible=True), sim.now()))

            proc = sim.spawn(sleeper)
            sim.spawn(lambda: (sim.sleep(1.0), proc.interrupt()))
            end = sim.run()
        assert got == [(INTERRUPTED, 1.0)]
        assert end == 1.0

    def test_process_failure_propagates(self, backend):
        with Simulator(backend=backend) as sim:

            def boom():
                sim.sleep(1.0)
                raise RuntimeError("kaput")

            sim.spawn(boom, name="bomb")
            with pytest.raises(ProcessFailed, match="bomb"):
                sim.run()

    def test_deadlock_detected(self, backend):
        with Simulator(backend=backend) as sim:
            sim.spawn(sim.block)
            with pytest.raises(DeadlockError):
                sim.run()

    def test_close_reaps_blocked_processes(self, backend):
        sim = Simulator(backend=backend)
        cleanup = []

        def body():
            try:
                sim.block()
            finally:
                cleanup.append("reaped")

        sim.spawn(body)
        with pytest.raises(DeadlockError):
            sim.run()
        sim.close()
        assert cleanup == ["reaped"]

    def test_backend_property_reports_concrete_name(self, backend):
        with Simulator(backend=backend) as sim:
            assert sim.backend == backend

    def test_run_result_and_exception_surfacing(self, backend):
        # run() return value must come back through the backend's
        # scheduler-handoff path, not just the no-process fast path.
        with Simulator(backend=backend) as sim:
            sim.spawn(lambda: sim.sleep(3.25))
            assert sim.run() == 3.25
            # A second run() on the drained sim stays consistent.
            assert sim.run() == 3.25


class TestResolution:
    def test_auto_prefers_greenlet_else_threads(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        expected = "greenlet" if greenlet_available() else "threads"
        assert resolve_backend(None) == expected
        assert resolve_backend("auto") == expected

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "inline")
        assert resolve_backend(None) == "inline"
        with Simulator() as sim:
            assert sim.backend == "inline"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "inline")
        assert resolve_backend("threads") == "threads"

    def test_default_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "inline")
        set_default_backend("threads")
        try:
            assert resolve_backend(None) == "threads"
        finally:
            set_default_backend(None)
        assert get_default_backend() is None

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("fibers")
        with pytest.raises(ValueError, match="unknown execution backend"):
            set_default_backend("fibers")

    @pytest.mark.skipif(greenlet_available(), reason="greenlet is installed")
    def test_explicit_greenlet_missing_is_loud(self):
        with pytest.raises(ImportError, match="greenlet"):
            resolve_backend("greenlet")

    def test_available_backends_always_has_reference(self):
        avail = available_backends()
        assert "threads" in avail and "inline" in avail
        assert ("greenlet" in avail) == greenlet_available()
