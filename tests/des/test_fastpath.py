"""Hot-path kernel behaviour: determinism fingerprints, lazy tracing,
the defer/defer_at fire-and-forget API, front-slot/now-queue ordering,
and same-time resume coalescing.

The fingerprint constants below were captured by running the mixed
scenario on the pre-fast-path kernel (single heap, Semaphore handoff,
eager tracing).  The fast-path kernel must reproduce them exactly:
``event_count`` and ``(time, seq)`` dispatch order are the determinism
contract every cached experiment result relies on.
"""

import pytest

from repro.des import (
    INTERRUPTED,
    Mailbox,
    SchedulingError,
    Simulator,
    Tracer,
)
from repro.util.hashing import stable_json_hash

# Captured on the pre-fast-path kernel (see module docstring).
EXPECTED_END = 26.0
EXPECTED_EVENT_COUNT = 176
EXPECTED_LOG_HASH = "dab4cc8e94341767"
EXPECTED_TRACE_LEN = 214
EXPECTED_TRACE_HASH = "2bc8d863df99886b"


def _mixed_scenario():
    """Timers, sleeps, cancels, mailboxes, interrupts — one fixed run."""
    tracer = Tracer()
    sim = Simulator(seed=7, tracer=tracer)
    box = Mailbox(sim, label="m")
    log = []

    def producer():
        for i in range(50):
            sim.sleep(0.5)
            box.put(("msg", i))
        t = sim.call_after(100.0, lambda: log.append("never"))
        t.cancel()

    def consumer():
        for _ in range(50):
            item = box.get()
            log.append((sim.now(), item))
        r = sim.sleep(3.0, interruptible=True)
        log.append((sim.now(), repr(r)))

    def interrupter():
        sim.sleep(26.0)
        for p in sim.processes:
            if p.name == "cons":
                p.interrupt()

    sim.spawn(producer, name="prod")
    sim.spawn(consumer, name="cons")
    sim.spawn(interrupter, name="intr")
    for i in range(20):
        sim.call_at(float(i), lambda i=i: log.append(("tick", i, sim.now())))
    end = sim.run()
    sim.close()
    return sim, end, log, tracer


def test_mixed_scenario_fingerprint_matches_pre_fastpath_kernel():
    sim, end, log, tracer = _mixed_scenario()
    assert end == EXPECTED_END
    assert sim.event_count == EXPECTED_EVENT_COUNT
    assert stable_json_hash([repr(x) for x in log]) == EXPECTED_LOG_HASH
    records = [(r.time, r.kind, r.process) for r in tracer]
    assert len(records) == EXPECTED_TRACE_LEN
    assert stable_json_hash([list(r) for r in records]) == EXPECTED_TRACE_HASH


def test_mixed_scenario_is_run_to_run_deterministic():
    _, end1, log1, _ = _mixed_scenario()
    _, end2, log2, _ = _mixed_scenario()
    assert end1 == end2
    assert log1 == log2


# --------------------------------------------------------------------- #
# defer / defer_at
# --------------------------------------------------------------------- #

def test_defer_orders_with_call_after_by_schedule_order():
    with Simulator() as sim:
        order = []
        sim.call_after(1.0, lambda: order.append("a"))
        sim.defer(1.0, lambda: order.append("b"))
        sim.call_after(0.5, lambda: order.append("c"))
        sim.defer(0.0, lambda: order.append("d"))
        sim.run()
        assert order == ["d", "c", "a", "b"]


def test_defer_at_clamps_to_now_and_rejects_past():
    with Simulator() as sim:
        hits = []
        sim.defer_at(0.0, lambda: hits.append(sim.now()))
        sim.call_after(1.0, lambda: None)
        sim.run()
        assert hits == [0.0]
        with pytest.raises(SchedulingError):
            sim.defer_at(0.5, lambda: None)
        with pytest.raises(SchedulingError):
            sim.defer(-1.0, lambda: None)


def test_defer_counts_events_like_call_after():
    def run(schedule_name):
        with Simulator() as sim:
            state = {"left": 100}
            sched = getattr(sim, schedule_name)

            def tick():
                state["left"] -= 1
                if state["left"] > 0:
                    sched(0.25, tick)

            sched(0.25, tick)
            sim.run()
            return sim.event_count

    assert run("defer") == run("call_after") == 100


# --------------------------------------------------------------------- #
# Front slot / now-queue merge order
# --------------------------------------------------------------------- #

def test_interleaved_future_and_zero_delay_events_keep_global_order():
    with Simulator() as sim:
        order = []

        def at(t, tag):
            sim.call_at(t, lambda: order.append((sim.now(), tag)))

        # Out-of-order inserts across front slot, heap, and now-queue.
        at(3.0, "c")
        at(1.0, "a")
        at(2.0, "b")
        sim.defer(0.0, lambda: order.append((sim.now(), "z")))
        at(1.0, "a2")
        sim.run()
        assert order == [
            (0.0, "z"),
            (1.0, "a"),
            (1.0, "a2"),
            (2.0, "b"),
            (3.0, "c"),
        ]


def test_run_until_resumes_without_losing_front_event():
    with Simulator() as sim:
        order = []
        sim.call_at(1.0, lambda: order.append(1.0))
        sim.call_at(5.0, lambda: order.append(5.0))
        assert sim.run(until=2.0) == 2.0
        assert order == [1.0]
        sim.call_at(3.0, lambda: order.append(3.0))
        assert sim.run() == 5.0
        assert order == [1.0, 3.0, 5.0]


def test_cancelled_timer_is_dropped_lazily_not_dispatched():
    with Simulator() as sim:
        hits = []
        keep = sim.call_after(1.0, lambda: hits.append("keep"))
        drop = sim.call_after(0.5, lambda: hits.append("drop"))
        drop.cancel()
        sim.run()
        assert hits == ["keep"]
        assert not keep.cancelled
        # Cancelled entries do not count as executed events.
        assert sim.event_count == 1


# --------------------------------------------------------------------- #
# Same-time resume coalescing
# --------------------------------------------------------------------- #

def test_double_wake_at_same_instant_coalesces_no_spurious_wakeup():
    with Simulator() as sim:
        trail = []

        def sleeper():
            sim.block("first")
            trail.append(("woke_first", sim.now()))
            # If the duplicate wake were not coalesced, this second
            # block would be cut short at t=0 by the stale resume.
            sim.block("second")
            trail.append(("woke_second", sim.now()))

        proc = sim.spawn(sleeper, name="s")

        def double_wake():
            sim.wake(proc)
            sim.wake(proc)  # same instant: must coalesce

        def later_wake():
            sim.wake(proc)

        sim.call_at(1.0, double_wake)
        sim.call_at(2.0, later_wake)
        sim.run()
        assert trail == [("woke_first", 1.0), ("woke_second", 2.0)]


# --------------------------------------------------------------------- #
# Lazy tracing
# --------------------------------------------------------------------- #

def test_trace_emit_defers_formatting_until_tracer_attached():
    calls = []

    def expensive_detail():
        calls.append(1)
        return "built"

    with Simulator() as sim:
        sim._trace_emit("kind", "proc", expensive_detail)
        assert calls == []  # no tracer: detail never built

    tracer = Tracer()
    with Simulator(tracer=tracer) as sim:
        sim._trace_emit("kind", "proc", expensive_detail)
        sim._trace_emit("fmt", "proc", "x=%g y=%d", 1.5, 2)
    assert calls == [1]
    details = [r.detail for r in tracer]
    assert details == ["built", "x=1.5 y=2"]


def test_untraced_run_produces_same_result_as_traced_run():
    def run(tracer):
        with Simulator(seed=3, tracer=tracer) as sim:
            out = []

            def body():
                for i in range(5):
                    sim.sleep(0.5)
                    out.append((i, sim.now()))

            sim.spawn(body, name="b")
            end = sim.run()
            return end, out, sim.event_count

    assert run(None) == run(Tracer())
