"""Unit tests for the simulation-side synchronization primitives."""

import pytest

from repro.des import TIMEOUT, Gate, Mailbox, ProcessFailed, SimEvent, Simulator, Waiter
from repro.des.errors import SchedulingError


class TestWaiter:
    def test_fire_then_wait_returns_value(self):
        with Simulator() as sim:
            results = []

            def body():
                w = Waiter(sim)
                w.fire("early")
                results.append(w.wait())

            sim.spawn(body)
            sim.run()
        assert results == ["early"]

    def test_wait_then_fire_wakes(self):
        with Simulator() as sim:
            w = Waiter(sim, label="x")
            results = []

            def waiter_proc():
                results.append((w.wait(), sim.now()))

            def firer():
                sim.sleep(3.0)
                w.fire(99)

            sim.spawn(waiter_proc)
            sim.spawn(firer)
            sim.run()
        assert results == [(99, 3.0)]

    def test_double_fire_raises(self):
        with Simulator() as sim:
            w = Waiter(sim)
            w.fire(1)
            with pytest.raises(SchedulingError):
                w.fire(2)

    def test_timeout_expires(self):
        with Simulator() as sim:
            w = Waiter(sim)
            results = []

            def body():
                results.append((w.wait(timeout=2.0), sim.now()))

            sim.spawn(body)
            sim.run()
        assert results == [(TIMEOUT, 2.0)]

    def test_fire_before_timeout_cancels_timer(self):
        with Simulator() as sim:
            w = Waiter(sim)
            results = []

            def body():
                results.append((w.wait(timeout=10.0), sim.now()))

            def firer():
                sim.sleep(1.0)
                w.fire("ok")

            sim.spawn(body)
            sim.spawn(firer)
            end = sim.run()
        assert results == [("ok", 1.0)]
        assert end == 1.0  # the timeout timer must not keep the sim alive

    def test_two_waiters_on_one_cell_rejected(self):
        with Simulator() as sim:
            w = Waiter(sim)

            def one():
                w.wait()

            def two():
                sim.sleep(0.1)
                w.wait()

            sim.spawn(one)
            sim.spawn(two)
            with pytest.raises(ProcessFailed):
                sim.run()

    def test_peek_and_fired(self):
        with Simulator() as sim:
            w = Waiter(sim)
            assert not w.fired
            w.fire({"k": 1})
            assert w.fired
            assert w.peek() == {"k": 1}


class TestSimEvent:
    def test_broadcast_wakes_all(self):
        with Simulator() as sim:
            ev = SimEvent(sim)
            woke = []

            def waiter(i):
                ev.wait()
                woke.append((i, sim.now()))

            for i in range(4):
                sim.spawn(waiter, i)

            def setter():
                sim.sleep(5.0)
                ev.set("go")

            sim.spawn(setter)
            sim.run()
        assert sorted(woke) == [(0, 5.0), (1, 5.0), (2, 5.0), (3, 5.0)]

    def test_wait_after_set_is_immediate(self):
        with Simulator() as sim:
            ev = SimEvent(sim)
            ev.set(7)
            got = []

            def body():
                got.append((ev.wait(), sim.now()))

            sim.spawn(body)
            sim.run()
        assert got == [(7, 0.0)]

    def test_set_idempotent(self):
        with Simulator() as sim:
            ev = SimEvent(sim)
            ev.set(1)
            ev.set(2)  # ignored
            got = []
            sim.spawn(lambda: got.append(ev.wait()))
            sim.run()
        assert got == [1]

    def test_clear_reblocks(self):
        with Simulator() as sim:
            ev = SimEvent(sim)
            ev.set()
            assert ev.is_set
            ev.clear()
            assert not ev.is_set


class TestMailbox:
    def test_fifo_order(self):
        with Simulator() as sim:
            mb = Mailbox(sim)
            got = []

            def consumer():
                for _ in range(3):
                    got.append(mb.get())

            def producer():
                for i in range(3):
                    sim.sleep(1.0)
                    mb.put(i)

            sim.spawn(consumer)
            sim.spawn(producer)
            sim.run()
        assert got == [0, 1, 2]

    def test_put_before_get(self):
        with Simulator() as sim:
            mb = Mailbox(sim)
            mb.put("a")
            mb.put("b")
            got = []
            sim.spawn(lambda: got.extend([mb.get(), mb.get()]))
            sim.run()
        assert got == ["a", "b"]

    def test_delayed_put_models_latency(self):
        with Simulator() as sim:
            mb = Mailbox(sim)
            got = []

            def consumer():
                got.append((mb.get(), sim.now()))

            sim.spawn(consumer)
            mb.put("msg", delay=2.5)
            sim.run()
        assert got == [("msg", 2.5)]

    def test_get_timeout(self):
        with Simulator() as sim:
            mb = Mailbox(sim)
            got = []
            sim.spawn(lambda: got.append(mb.get(timeout=1.5)))
            sim.run()
        assert got == [TIMEOUT]

    def test_delivery_racing_expiry_requeues_item(self):
        # Regression: a deliver landing at the *same instant* as a get
        # timeout — after the expiry event but before the getter's
        # resume — used to fire the timed-out getter's waiter, handing
        # the item to a process that observes itself as having given up.
        # The expiry event must deregister the getter immediately so the
        # item is re-queued for the next taker, not lost into a dead
        # waiter.
        with Simulator() as sim:
            mb = Mailbox(sim)
            got = []

            def getter():
                got.append((mb.get(timeout=1.0), sim.now()))

            def putter():
                # Wake event scheduled after the getter's timeout timer:
                # at t=1.0 the timer fires first, then this delivery,
                # then the getter's resume.
                sim.sleep(1.0)
                mb.put("late")

            sim.spawn(getter)
            sim.spawn(putter)
            sim.run()
            assert got == [(TIMEOUT, 1.0)]
            assert len(mb) == 1
            assert mb.try_get() == (True, "late")

    def test_try_get(self):
        with Simulator() as sim:
            mb = Mailbox(sim)
            assert mb.try_get() == (False, None)
            mb.put(5)
            assert mb.try_get() == (True, 5)
            assert len(mb) == 0

    def test_multiple_getters_fifo(self):
        with Simulator() as sim:
            mb = Mailbox(sim)
            got = []

            def consumer(i):
                got.append((i, mb.get()))

            sim.spawn(consumer, 0)
            sim.spawn(consumer, 1)

            def producer():
                sim.sleep(1.0)
                mb.put("x")
                mb.put("y")

            sim.spawn(producer)
            sim.run()
        assert got == [(0, "x"), (1, "y")]


class TestGate:
    def test_gate_releases_all_at_last_arrival(self):
        with Simulator() as sim:
            gate = Gate(sim, 3)
            times = []

            def body(i):
                sim.sleep(float(i))
                gate.arrive_and_wait()
                times.append((i, sim.now()))

            for i in range(3):
                sim.spawn(body, i)
            sim.run()
        assert sorted(times) == [(0, 2.0), (1, 2.0), (2, 2.0)]

    def test_gate_overfill_raises(self):
        with Simulator() as sim:
            gate = Gate(sim, 1)

            def body():
                gate.arrive_and_wait()
                gate.arrive_and_wait()

            sim.spawn(body)
            with pytest.raises(ProcessFailed):
                sim.run()

    def test_gate_needs_positive_n(self):
        with Simulator() as sim:
            with pytest.raises(SchedulingError):
                Gate(sim, 0)
