"""Unit tests for the discrete-event kernel: clock, processes, determinism."""

import pytest

from repro.des import (
    INTERRUPTED,
    DeadlockError,
    NotInProcessError,
    ProcessFailed,
    SchedulingError,
    SimClosedError,
    Simulator,
    Tracer,
)


def test_empty_run_returns_zero():
    with Simulator() as sim:
        assert sim.run() == 0.0
        assert sim.now() == 0.0


def test_single_process_advances_clock():
    with Simulator() as sim:
        times = []

        def body():
            times.append(sim.now())
            sim.sleep(2.5)
            times.append(sim.now())
            sim.sleep(0.5)
            times.append(sim.now())

        sim.spawn(body)
        end = sim.run()
    assert times == [0.0, 2.5, 3.0]
    assert end == 3.0


def test_process_result_stored():
    with Simulator() as sim:
        proc = sim.spawn(lambda: 41 + 1)
        sim.run()
    assert proc.done
    assert proc.result == 42


def test_two_processes_interleave_in_time_order():
    with Simulator() as sim:
        order = []

        def worker(tag, dt):
            for i in range(3):
                sim.sleep(dt)
                order.append((tag, sim.now()))

        sim.spawn(worker, "a", 1.0)
        sim.spawn(worker, "b", 0.4)
        sim.run()
    assert [tag for tag, _ in order] == ["b", "b", "a", "b", "a", "a"]
    assert [t for _, t in order] == pytest.approx([0.4, 0.8, 1.0, 1.2, 2.0, 3.0])


def test_same_time_ties_broken_by_schedule_order():
    with Simulator() as sim:
        order = []

        def worker(tag):
            sim.sleep(1.0)
            order.append(tag)

        sim.spawn(worker, "first")
        sim.spawn(worker, "second")
        sim.spawn(worker, "third")
        sim.run()
    assert order == ["first", "second", "third"]


def test_spawn_start_at_defers_start():
    with Simulator() as sim:
        started = []
        sim.spawn(lambda: started.append(sim.now()), start_at=5.0)
        sim.run()
    assert started == [5.0]


def test_run_until_pauses_clock():
    with Simulator() as sim:
        hits = []

        def body():
            for _ in range(10):
                sim.sleep(1.0)
                hits.append(sim.now())

        sim.spawn(body)
        t = sim.run(until=3.5)
        assert t == 3.5
        assert hits == [1.0, 2.0, 3.0]
        t = sim.run()
        assert t == 10.0
        assert len(hits) == 10


def test_exception_in_process_propagates_with_name():
    with Simulator() as sim:
        def bad():
            sim.sleep(1.0)
            raise ValueError("boom")

        sim.spawn(bad, name="failing-rank")
        with pytest.raises(ProcessFailed) as exc_info:
            sim.run()
    assert "failing-rank" in str(exc_info.value)
    assert isinstance(exc_info.value.original, ValueError)


def test_deadlock_detected_and_reported():
    with Simulator() as sim:
        def stuck():
            sim.block("waiting-for-godot")

        sim.spawn(stuck, name="estragon")
        with pytest.raises(DeadlockError) as exc_info:
            sim.run()
    msg = str(exc_info.value)
    assert "estragon" in msg
    assert "waiting-for-godot" in msg


def test_block_and_wake_between_processes():
    with Simulator() as sim:
        log = []

        def sleeper():
            sim.block("handoff")
            log.append(("woke", sim.now()))

        proc = sim.spawn(sleeper)

        def waker():
            sim.sleep(2.0)
            sim.wake(proc)
            log.append(("waker-done", sim.now()))

        sim.spawn(waker)
        sim.run()
    assert ("woke", 2.0) in log


def test_interruptible_sleep_cut_short():
    with Simulator() as sim:
        outcome = {}

        def sleeper():
            res = sim.sleep(100.0, interruptible=True)
            outcome["result"] = res
            outcome["time"] = sim.now()

        target = sim.spawn(sleeper)

        def interrupter():
            sim.sleep(3.0)
            assert target.interrupt() is True

        sim.spawn(interrupter)
        sim.run()
    assert outcome["result"] is INTERRUPTED
    assert outcome["time"] == 3.0


def test_non_interruptible_sleep_ignores_interrupt():
    with Simulator() as sim:
        outcome = {}

        def sleeper():
            res = sim.sleep(5.0)
            outcome["result"] = res
            outcome["time"] = sim.now()

        target = sim.spawn(sleeper)

        def interrupter():
            sim.sleep(1.0)
            assert target.interrupt() is False

        sim.spawn(interrupter)
        sim.run()
    assert outcome["result"] is None
    assert outcome["time"] == 5.0


def test_call_after_runs_callback_in_order():
    with Simulator() as sim:
        hits = []
        sim.call_after(2.0, lambda: hits.append(("b", sim.now())))
        sim.call_after(1.0, lambda: hits.append(("a", sim.now())))
        sim.run()
    assert hits == [("a", 1.0), ("b", 2.0)]


def test_timer_cancel():
    with Simulator() as sim:
        hits = []
        timer = sim.call_after(1.0, lambda: hits.append("fired"))
        timer.cancel()
        sim.run()
    assert hits == []


def test_call_at_past_raises():
    with Simulator() as sim:
        def body():
            sim.sleep(5.0)

        sim.spawn(body)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.call_at(1.0, lambda: None)


def test_negative_sleep_raises():
    with Simulator() as sim:
        def body():
            sim.sleep(-1.0)

        sim.spawn(body)
        with pytest.raises(ProcessFailed):
            sim.run()


def test_process_side_ops_require_process_context():
    with Simulator() as sim:
        with pytest.raises(NotInProcessError):
            sim.sleep(1.0)
        with pytest.raises(NotInProcessError):
            sim.current_process()


def test_closed_simulator_rejects_operations():
    sim = Simulator()
    sim.close()
    with pytest.raises(SimClosedError):
        sim.spawn(lambda: None)
    with pytest.raises(SimClosedError):
        sim.run()
    sim.close()  # idempotent


def test_close_kills_blocked_processes():
    sim = Simulator()
    cleanup = []

    def stuck():
        try:
            sim.block("never")
        finally:
            cleanup.append("unwound")

    proc = sim.spawn(stuck)
    with pytest.raises(DeadlockError):
        sim.run()
    sim.close()
    assert cleanup == ["unwound"]
    assert not proc.alive


def test_determinism_event_count_fingerprint():
    def build_and_run():
        with Simulator(seed=7) as sim:
            order = []

            def worker(tag, dt, n):
                for _ in range(n):
                    sim.sleep(dt)
                    order.append((tag, sim.now()))

            for i in range(5):
                sim.spawn(worker, i, 0.1 * (i + 1), 4)
            sim.run()
            return order, sim.event_count

    first = build_and_run()
    second = build_and_run()
    assert first == second


def test_rng_streams_deterministic_and_independent():
    sim1 = Simulator(seed=123)
    sim2 = Simulator(seed=123)
    a1 = sim1.rng("jitter:0").random(5)
    a2 = sim2.rng("jitter:0").random(5)
    b1 = sim1.rng("jitter:1").random(5)
    assert a1.tolist() == a2.tolist()
    assert a1.tolist() != b1.tolist()
    sim1.close()
    sim2.close()


def test_rng_same_name_returns_same_stream_object():
    with Simulator(seed=1) as sim:
        assert sim.rng("x") is sim.rng("x")


def test_max_events_guard():
    with Simulator(max_events=10) as sim:
        def spin():
            while True:
                sim.sleep(1.0)

        sim.spawn(spin)
        with pytest.raises(SchedulingError, match="max_events"):
            sim.run()


def test_tracer_records_lifecycle():
    tracer = Tracer()
    with Simulator(tracer=tracer) as sim:
        def body():
            sim.sleep(1.0)

        sim.spawn(body, name="tracee")
        sim.run()
    kinds = {r.kind for r in tracer}
    assert "spawn" in kinds
    assert "sleep" in kinds
    assert "exit" in kinds
    assert all(r.process in ("tracee", "<kernel>") for r in tracer)


def test_many_processes_scale():
    # 300 processes each sleeping a few times: exercises the thread
    # handshake at a scale comparable to a mid-size simulated job.
    with Simulator() as sim:
        done = []

        def body(i):
            sim.sleep(float(i % 7) * 0.01)
            sim.sleep(0.5)
            done.append(i)

        for i in range(300):
            sim.spawn(body, i)
        sim.run()
    assert len(done) == 300


def test_nested_run_rejected():
    with Simulator() as sim:
        def body():
            with pytest.raises(SchedulingError):
                sim.run()

        sim.spawn(body)
        sim.run()


def test_checkpoint_yield_lets_same_time_events_run():
    with Simulator() as sim:
        log = []

        def a():
            log.append("a1")
            sim.checkpoint_yield()
            log.append("a2")

        def b():
            log.append("b1")

        sim.spawn(a)
        sim.spawn(b)
        sim.run()
    assert log == ["a1", "b1", "a2"]


def test_on_exit_callback():
    with Simulator() as sim:
        events = []

        def short():
            sim.sleep(1.0)

        proc = sim.spawn(short)
        proc.on_exit(lambda: events.append(("exited", sim.now())))
        sim.run()
    assert events == [("exited", 1.0)]


def test_on_exit_after_done_fires_immediately():
    with Simulator() as sim:
        proc = sim.spawn(lambda: None)
        sim.run()
        fired = []
        proc.on_exit(lambda: fired.append(True))
        assert fired == [True]
