"""``Simulator.defer_batch_at``: one queue entry, N logical events.

The batch primitive exists so vectorized hot paths (collective
completions) can cut queue traffic without perturbing the determinism
fingerprint: a batch of N callbacks must count as N events and dispatch
in exactly the order N consecutive ``defer_at`` calls would have.
"""

import pytest

from repro.des import Simulator
from repro.des.errors import SchedulingError


def test_batch_counts_as_n_events():
    with Simulator() as sim:
        fired = []

        def batch():
            fired.extend(["a", "b", "c"])

        sim.defer_batch_at(1.0, batch, 3)
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.event_count == 3


def test_batch_count_matches_unbatched_schedule():
    def unbatched():
        with Simulator() as sim:
            order = []
            for name in "abc":
                sim.defer_at(2.0, lambda name=name: order.append(name))
            sim.defer_at(2.0, lambda: order.append("tail"))
            sim.run()
            return order, sim.event_count

    def batched():
        with Simulator() as sim:
            order = []

            def batch():
                order.extend("abc")

            sim.defer_batch_at(2.0, batch, 3)
            sim.defer_at(2.0, lambda: order.append("tail"))
            sim.run()
            return order, sim.event_count

    assert unbatched() == batched()


def test_batch_of_one_is_plain_defer_at():
    with Simulator() as sim:
        fired = []
        sim.defer_batch_at(0.5, lambda: fired.append(1), 1)
        sim.run()
        assert fired == [1]
        assert sim.event_count == 1


def test_batch_preserves_order_against_same_time_events():
    """Events scheduled before/after the batch at the same instant keep
    their seq-relative positions."""
    with Simulator() as sim:
        order = []
        sim.defer_at(1.0, lambda: order.append("before"))
        sim.defer_batch_at(1.0, lambda: order.extend(["b1", "b2"]), 2)
        sim.defer_at(1.0, lambda: order.append("after"))
        sim.run()
        assert order == ["before", "b1", "b2", "after"]
        assert sim.event_count == 4


def test_batch_rejects_nonpositive_count():
    with Simulator() as sim:
        with pytest.raises(SchedulingError):
            sim.defer_batch_at(1.0, lambda: None, 0)


def test_zero_delay_batch_runs_now_queue():
    with Simulator() as sim:
        fired = []

        def body():
            sim.defer_batch_at(sim.now(), lambda: fired.extend([1, 2]), 2)
            sim.sleep(1e-9)

        sim.spawn(body)
        sim.run()
        assert fired == [1, 2]
