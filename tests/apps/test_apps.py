"""Tests for the five mini-apps and the OSU kernels."""

import numpy as np
import pytest

from repro.apps import (
    APP_FACTORIES,
    CoMD,
    LammpsLJ,
    MiniVasp,
    OsuCollective,
    OsuOverlap,
    PoissonCG,
    REAL_WORLD_APPS,
    SW4,
    make_app_factory,
)
from repro.core import UnsupportedOperationError
from repro.des import ProcessFailed
from repro.harness.runner import launch_run

SMALL = {
    "minivasp": dict(niters=5, npw=32),
    "poisson": dict(niters=8, local_n=32),
    "comd": dict(niters=8),
    "lammps": dict(niters=8),
    "sw4": dict(niters=5),
}


class TestRegistry:
    def test_all_real_world_apps_registered(self):
        for name in REAL_WORLD_APPS:
            assert name in APP_FACTORIES

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            make_app_factory("gromacs")

    def test_factory_applies_overrides(self):
        app = make_app_factory("comd", niters=3)()
        assert isinstance(app, CoMD)
        assert app.niters == 3

    def test_niters_validation(self):
        with pytest.raises(ValueError):
            MiniVasp(niters=0)


class TestAppCorrectness:
    def test_minivasp_energy_converges(self):
        r = launch_run(make_app_factory("minivasp", niters=8, npw=32), 4, seed=1)
        for out in r.per_rank:
            hist = out["hist_tail"]
            assert out["iters"] == 8
            assert all(np.isfinite(h) for h in hist)
        # All ranks agree on the reduced energy.
        assert len({round(o["energy"], 12) for o in r.per_rank}) == 1

    def test_poisson_cg_converges_and_is_correct(self):
        """The distributed CG must actually solve -u'' = f."""
        nprocs, local_n = 4, 24
        r = launch_run(
            make_app_factory("poisson", niters=200, local_n=local_n, rel_error=1e-8),
            nprocs, seed=1,
        )
        assert all(o["converged"] for o in r.per_rank)
        # Reference: direct solve of the global tridiagonal system.
        n = nprocs * local_n
        a = 2 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)
        x_ref = np.linalg.solve(a, np.ones(n))
        x_norm = np.sqrt(sum(o["x_norm"] ** 2 for o in r.per_rank))
        assert x_norm == pytest.approx(np.linalg.norm(x_ref), rel=1e-5)

    def test_comd_energy_samples_consistent(self):
        r = launch_run(make_app_factory("comd", niters=14), 4, seed=2)
        samples = {o["kinetic_samples"] for o in r.per_rank}
        assert len(samples) == 1  # allreduce agrees everywhere
        assert len(r.per_rank[0]["kinetic_samples"]) == 2  # i=0 and i=13

    def test_lammps_thermo_and_motion(self):
        r = launch_run(make_app_factory("lammps", niters=8), 4, seed=2)
        out = r.per_rank[0]
        assert len(out["thermo"]) == 1
        assert out["thermo"][0] > 0

    def test_sw4_wave_propagates(self):
        r = launch_run(make_app_factory("sw4", niters=6), 4, seed=2)
        for o in r.per_rank:
            assert np.isfinite(o["u_norm"])
        peaks = {o["peaks"] for o in r.per_rank}
        assert len(peaks) == 1


class TestCommunicationSignatures:
    """Each app must land in its Table 1 rate category."""

    #: Longer runs than SMALL: rates only stabilize once periodic
    #: collectives (thermo/stability reductions) repeat a few times.
    RATE_CONFIG = {
        "minivasp": dict(niters=8, npw=32),
        "poisson": dict(niters=16, local_n=32),
        "comd": dict(niters=40),
        "lammps": dict(niters=60),
        "sw4": dict(niters=12),
    }

    @pytest.fixture(scope="class")
    def rates(self):
        out = {}
        for name, kw in self.RATE_CONFIG.items():
            r = launch_run(make_app_factory(name, **kw), 8, seed=0)
            out[name] = (r.coll_rate, r.p2p_rate)
        return out

    def test_collective_rate_ordering(self, rates):
        """Paper Table 1: VASP >> Poisson >> CoMD > LAMMPS > SW4."""
        coll = {k: v[0] for k, v in rates.items()}
        assert coll["minivasp"] > 10 * coll["poisson"]
        assert coll["poisson"] > coll["comd"]
        assert coll["comd"] > coll["lammps"]
        assert coll["lammps"] > coll["sw4"]

    def test_poisson_has_no_p2p(self, rates):
        assert rates["poisson"][1] == 0.0

    def test_lammps_p2p_dominant(self, rates):
        coll, p2p = rates["lammps"]
        assert p2p > 100 * coll

    def test_minivasp_p2p_comparable_to_coll(self, rates):
        coll, p2p = rates["minivasp"]
        assert 0.2 < p2p / coll < 3.0

    def test_osu_rate_is_upper_limit(self, rates):
        r = launch_run(
            make_app_factory("osu", niters=100, kind="bcast", nbytes=4), 8, seed=0
        )
        assert r.coll_rate > 10 * rates["minivasp"][0]


class TestProtocolSupport:
    @pytest.mark.parametrize("name", ["minivasp", "comd", "lammps", "sw4"])
    def test_blocking_apps_run_under_2pc(self, name):
        r = launch_run(make_app_factory(name, **SMALL[name]), 4, protocol="2pc", seed=0)
        assert r.runtime > 0

    def test_poisson_rejected_by_2pc(self):
        with pytest.raises(ProcessFailed) as ei:
            launch_run(make_app_factory("poisson", **SMALL["poisson"]), 4,
                       protocol="2pc", seed=0)
        assert isinstance(ei.value.original, UnsupportedOperationError)

    @pytest.mark.parametrize("name", list(SMALL))
    def test_all_apps_run_under_cc_with_native_results(self, name):
        factory = make_app_factory(name, **SMALL[name])
        a = launch_run(factory, 4, protocol="native", seed=0)
        b = launch_run(factory, 4, protocol="cc", seed=0)
        assert repr(a.per_rank) == repr(b.per_rank)


class TestOsuKernels:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            OsuCollective(kind="gather9000")
        with pytest.raises(ValueError):
            OsuOverlap(kind="scan")

    def test_blocking_latency_positive_and_size_sensitive(self):
        small = launch_run(
            make_app_factory("osu", niters=30, kind="allreduce", nbytes=4), 4, seed=0
        )
        big = launch_run(
            make_app_factory("osu", niters=30, kind="allreduce", nbytes=1 << 20),
            4, seed=0,
        )
        assert big.per_rank[0]["avg_latency"] > 10 * small.per_rank[0]["avg_latency"]

    def test_nonblocking_variant_runs(self):
        r = launch_run(
            make_app_factory("osu", niters=20, kind="alltoall", nbytes=64,
                             blocking=False),
            4, seed=0,
        )
        assert r.per_rank[0]["iterations"] == 20

    def test_overlap_metric_bounds(self):
        r = launch_run(
            make_app_factory("osu_overlap", niters=25, kind="allreduce",
                             nbytes=1 << 16),
            4, seed=0,
        )
        for o in r.per_rank:
            assert 0.0 <= o["overlap_pct"] <= 100.0
            assert o["t_pure"] > 0

    def test_overlap_high_for_background_progress(self):
        """Non-blocking collectives progress independently (paper §3), so
        sized-to-latency compute should hide nearly all of it."""
        r = launch_run(
            make_app_factory("osu_overlap", niters=30, kind="alltoall",
                             nbytes=1 << 18),
            4, seed=0,
        )
        assert min(o["overlap_pct"] for o in r.per_rank) > 80.0


class TestCheckpointability:
    """Every bundled app must checkpoint and restart losslessly."""

    @pytest.mark.parametrize("name", list(SMALL))
    def test_checkpoint_restart_equivalence(self, name):
        from repro.harness.runner import restart_run
        from repro.netmodel import StorageModel

        storage = StorageModel(base_latency=1e-4)
        factory = make_app_factory(name, **SMALL[name])
        native = launch_run(factory, 4, protocol="native", seed=1)
        ck = launch_run(
            factory, 4, protocol="cc", seed=1,
            checkpoint_at=[native.runtime * 0.5], storage=storage,
        )
        assert repr(ck.per_rank) == repr(native.per_rank)
        rs = restart_run(factory, ck.committed_images(), seed=1, storage=storage)
        assert repr(rs.per_rank) == repr(native.per_rank)
