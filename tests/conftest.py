"""Shared test configuration: hypothesis profiles.

Three profiles, selected with ``HYPOTHESIS_PROFILE``:

* ``default`` — what developers get locally: derandomized (failures
  reproduce run-to-run) with each test's own example budget.
* ``ci`` — same settings, spelled out for the per-push CI job.
* ``nightly`` — the extended adversarial sweep: randomization ON (each
  night explores fresh schedules) and the example budget raised; a
  failure's reproduction command is printed by hypothesis and the
  ``repro-mpi verify`` step uploads its own derandomized failing-seed
  artifact.

Per-test ``@settings(max_examples=...)`` decorations intentionally
still win where present — the profile raises the budget only for tests
that inherit it.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile("default", deadline=None)
settings.register_profile("ci", deadline=None, derandomize=True)
settings.register_profile(
    "nightly",
    deadline=None,
    derandomize=False,
    max_examples=200,
    suppress_health_check=[HealthCheck.too_slow],
)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
