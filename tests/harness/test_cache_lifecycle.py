"""ResultCache lifecycle invariants under arbitrary operation orders.

A hypothesis *stateful* test drives one cache through interleaved
``put`` / ``get`` / ``prune`` / ``clear`` / timing-merge / reload
operations and asserts, after every step:

* the timings sidecar never resurrects a pruned hash (``prune`` evicts
  the hash and the merge-on-write must not bring it back) until the
  spec is genuinely re-put;
* image-tier blobs never orphan: every payload under ``blobs/`` is
  referenced by at least one pointer file (the GC runs whenever a
  pointer falls);
* ``get`` returns exactly the entries the model says are live, and the
  store's entry count matches.

The simulated results are computed once per test session (simulation is
the slow part; the lifecycle under test is pure file bookkeeping).
"""

import json
from functools import lru_cache

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.harness import ResultCache
from repro.harness.spec import RunSpec, execute, run_result_to_dict, spec_hash
from repro.netmodel import StorageModel

STORAGE = StorageModel(base_latency=1e-3)


@lru_cache(maxsize=1)
def _pool():
    """(spec, result) pairs: three image-bearing runs + one plain run.

    Seeds 0 and 1 share identical committed images *content* only if
    simulations coincide — they don't — so the pool exercises both
    unique and (via re-put of the same spec) shared blob references.
    """
    specs = [
        RunSpec.create(
            "earlyexit",
            3,
            app_kwargs={"niters": 8, "shared": 3, "memory_bytes": 1 << 18},
            protocol="cc",
            seed=seed,
            checkpoint_fractions=(0.5,),
            storage=STORAGE,
        )
        for seed in (0, 1)
    ] + [
        RunSpec.create(
            "earlyexit",
            3,
            app_kwargs={"niters": 8, "shared": 3, "memory_bytes": 1 << 18},
            protocol="2pc",
            seed=0,
            checkpoint_fractions=(0.4,),
            storage=STORAGE,
        ),
        RunSpec.create("comd", 2, app_kwargs={"niters": 3}),
    ]
    return [(spec, execute(spec)) for spec in specs]


_INDEX = st.integers(0, 3)


class CacheLifecycle(RuleBasedStateMachine):
    @initialize(tmp=st.uuids())
    def setup(self, tmp):
        import tempfile

        self._dir = tempfile.mkdtemp(prefix=f"cache-life-{tmp.hex[:8]}-")
        self.cache = ResultCache(self._dir)
        self.pool = _pool()
        self.hashes = [spec_hash(spec) for spec, _ in self.pool]
        #: Model state.
        self.live: set[int] = set()
        self.pruned_timing_hashes: set[str] = set()

    # -- operations ----------------------------------------------------- #

    @rule(i=_INDEX, elapsed=st.floats(0.001, 5.0))
    def put(self, i, elapsed):
        spec, result = self.pool[i]
        self.cache.put(spec, result, elapsed=elapsed)
        self.live.add(i)
        self.pruned_timing_hashes.discard(self.hashes[i])

    @rule(i=_INDEX)
    def get(self, i):
        spec, result = self.pool[i]
        hit = self.cache.get(spec)
        if i in self.live:
            assert hit is not None
            assert run_result_to_dict(hit) == json.loads(
                json.dumps(run_result_to_dict(result))
            )
        else:
            assert hit is None

    @rule(i=_INDEX)
    def prune_one(self, i):
        spec, _ = self.pool[i]
        removed = self.cache.prune([spec])
        assert removed == (1 if i in self.live else 0)
        self.live.discard(i)
        self.pruned_timing_hashes.add(self.hashes[i])

    @rule()
    def clear(self):
        self.cache.clear()
        # clear() keeps timings by design — only prune evicts them.
        self.live.clear()

    @rule(i=_INDEX, seconds=st.floats(0.001, 2.0))
    def merge_foreign_timing(self, i, seconds):
        """A concurrent engine sharing the directory records a time;
        our cache's next write must merge it without resurrecting
        anything our cache pruned."""
        foreign = ResultCache(self._dir)
        spec, _ = self.pool[i]
        if self.hashes[i] not in self.pruned_timing_hashes:
            foreign.record_time(spec, seconds)

    @rule(keep=st.integers(0, 3))
    def prune_to_max_entries(self, keep):
        before = len(self.live)
        removed = self.cache.prune_to_max_entries(keep)
        assert removed == max(0, before - keep)
        if removed:
            # Oldest-first eviction: the model only tracks membership, so
            # resync from disk (hash -> index is bijective).
            remaining = {p.stem for p in self.cache._entry_files()}
            evicted = {
                i for i in self.live if self.hashes[i] not in remaining
            }
            for i in evicted:
                self.pruned_timing_hashes.add(self.hashes[i])
            self.live -= evicted

    @rule()
    def reload(self):
        """A fresh process opens the same directory: disk state alone
        must uphold every invariant."""
        self.cache = ResultCache(self._dir)

    # -- invariants ------------------------------------------------------ #

    @invariant()
    def entry_count_matches_model(self):
        assert len(self.cache) == len(self.live)

    @invariant()
    def pruned_hashes_never_resurrect_in_timings(self):
        on_disk = ResultCache(self._dir)._read_timings_file()
        ghosts = self.pruned_timing_hashes & set(on_disk)
        assert not ghosts, f"pruned hashes back in the sidecar: {ghosts}"

    @invariant()
    def image_blobs_never_orphan(self):
        cache = self.cache
        blobs = {p.name[: -len(".blob")] for p in cache._blob_files()}
        if not blobs:
            return
        referenced = cache._referenced_digests()
        orphans = blobs - referenced
        assert not orphans, f"unreferenced image blobs on disk: {orphans}"

    @invariant()
    def live_entries_have_resolvable_images(self):
        for i in self.live:
            spec, result = self.pool[i]
            committed = [r for r in result.checkpoints if r.committed]
            for index in range(len(committed)):
                assert self.cache.has_images(spec, index)
                assert self.cache.get_images(spec, index) is not None


CacheLifecycle.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestCacheLifecycle = CacheLifecycle.TestCase


def test_prune_evicts_timing_recorded_by_concurrent_writer(tmp_path):
    """Deterministic form of the resurrection race the state machine
    found: cache A's timings view is loaded (and stale) when writer B
    records a time; A's prune must still evict it from *disk* — the
    stale in-memory pop finds nothing, so the rewrite has to happen on
    request, not on hit."""
    spec, result = _pool()[0]
    a = ResultCache(tmp_path)
    a.put(spec, result, elapsed=1.0)  # loads + writes A's timings view
    a.prune([spec])

    b = ResultCache(tmp_path)  # concurrent engine sharing the directory
    b.record_time(spec, 2.5)
    assert spec_hash(spec) in ResultCache(tmp_path)._read_timings_file()

    a.prune([spec])  # A's in-memory view no longer holds the hash
    on_disk = ResultCache(tmp_path)._read_timings_file()
    assert spec_hash(spec) not in on_disk


def test_dedupe_hit_refreshes_blob_age(tmp_path):
    """A blob an old put stored must not age-evict out from under a
    pointer a fresh put just created (the dedupe hit skips the write,
    so it must touch the mtime instead)."""
    import os
    import time as _time

    cache = ResultCache(tmp_path)
    spec, result = _pool()[0]
    cache.put(spec, result)
    blob = cache.image_path_for(spec, 0)
    stamp = _time.time() - 7200
    os.utime(blob, (stamp, stamp))

    cache.put(spec, result)  # dedupe hit: same digest, no rewrite
    assert blob.stat().st_mtime > stamp + 3600
    assert cache.prune_images_older_than(3600) == 0
    assert cache.get_images(spec, 0) is not None
