"""Cross-backend differential suite: every backend, same universe.

The execution backend only changes *how* a simulated process suspends —
never *what* the schedule does.  These tests run the pinned Figure 5a
fingerprint scenario and a fault-injection oracle seed under every
backend importable in this interpreter and require byte-identical
results: the same event counts and result hash the ``threads`` seed
kernel produced (the constants in ``test_determinism_fingerprint``),
and identical oracle verdict details.

CI runs this file under a greenlet-enabled interpreter so the optional
backend is held to the same fingerprint; locally it covers whatever
``available_backends()`` reports.
"""

import pytest

from repro.des import available_backends
from repro.harness import ExperimentEngine
from repro.harness.experiments import plan_fig5a
from repro.harness.spec import run_result_to_dict
from repro.harness.verify import run_oracles
from repro.util.hashing import stable_json_hash

from test_determinism_fingerprint import EXPECTED_EVENTS, EXPECTED_RESULT_HASH

@pytest.fixture(scope="module")
def plan():
    return plan_fig5a(procs=(4,), kinds=("bcast",), sizes=(1024,), iters=20)


def _fingerprint(plan, results):
    events = {spec.label(): results[spec].sim_events for spec in plan.specs}
    rhash = stable_json_hash(
        [run_result_to_dict(results[spec]) for spec in plan.specs]
    )
    return events, rhash


@pytest.mark.parametrize("backend", available_backends())
def test_fig5a_fingerprint_identical_across_backends(plan, backend):
    engine = ExperimentEngine(jobs=1, backend=backend)
    events, rhash = _fingerprint(plan, engine.run_batch(plan.specs))
    assert events == EXPECTED_EVENTS
    assert rhash == EXPECTED_RESULT_HASH


@pytest.mark.parametrize("backend", available_backends())
def test_fig5a_parallel_workers_inherit_backend(plan, backend):
    # Spawned pool workers must land on the *resolved* backend, not
    # re-derive their own — the fingerprint catches any divergence.
    engine = ExperimentEngine(jobs=2, backend=backend)
    events, rhash = _fingerprint(plan, engine.run_batch(plan.specs))
    assert events == EXPECTED_EVENTS
    assert rhash == EXPECTED_RESULT_HASH


def test_oracle_seed_verdict_identical_across_backends():
    # One fault-injection oracle seed, every backend: the serialized
    # verdict (verdict flag + detail string, which embeds simulated
    # quantities) must match the threads reference byte-for-byte.
    verdicts = {}
    for backend in available_backends():
        engine = ExperimentEngine(jobs=1, backend=backend)
        reports = run_oracles(["safe-cut"], [7], engine=engine)
        assert len(reports) == 1
        report = reports[0]
        assert report.ok, f"{backend}: {report.detail}"
        verdicts[backend] = report.as_dict()
    reference = verdicts["threads"]
    for backend, verdict in verdicts.items():
        assert verdict == reference, f"{backend} diverged from threads"
