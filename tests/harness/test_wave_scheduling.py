"""Cost-model wave scheduling: recorded times, heuristic fallback,
longest-pole-first ordering, and the prediction hit-rate stat."""

import json

import pytest

from repro.harness import ExperimentEngine, ResultCache
from repro.harness.engine import HEURISTIC_SECONDS_PER_UNIT, EngineStats
from repro.harness.spec import RunSpec, spec_hash


def _spec(nprocs=2, niters=4, seed=0, protocol="native"):
    return RunSpec.create(
        "osu",
        nprocs,
        app_kwargs={"niters": niters, "kind": "bcast", "nbytes": 8,
                    "blocking": True},
        protocol=protocol,
        seed=seed,
    )


# --------------------------------------------------------------------- #
# cost_hint
# --------------------------------------------------------------------- #

def test_cost_hint_scales_with_nprocs_and_niters():
    assert _spec(nprocs=4, niters=10).cost_hint() == 40.0
    assert _spec(nprocs=2, niters=10).cost_hint() < _spec(4, 10).cost_hint()
    assert _spec(nprocs=4, niters=5).cost_hint() < _spec(4, 10).cost_hint()


def test_cost_hint_surcharges_checkpoints_and_restarts():
    base = RunSpec.create("poisson", 4, protocol="cc", seed=1)
    ckpt = RunSpec.create(
        "poisson", 4, protocol="cc", seed=1, checkpoint_fractions=(0.5,)
    )
    assert ckpt.cost_hint() > base.cost_hint()
    parent = RunSpec.create(
        "poisson", 4, protocol="cc", seed=1, checkpoint_at=(0.5,)
    )
    restart = RunSpec.create(
        "poisson", 4, protocol="cc", seed=1, restart_of=parent
    )
    assert restart.cost_hint() > 0


# --------------------------------------------------------------------- #
# Recorded times in the cache
# --------------------------------------------------------------------- #

def test_execution_records_wall_time_in_cache(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    engine = ExperimentEngine(jobs=1, cache=cache)
    engine.run_batch([spec])
    recorded = cache.recorded_time(spec)
    assert recorded is not None and recorded > 0
    # Sidecar survives a cache clear.
    assert cache.clear() == 1
    fresh = ResultCache(tmp_path)
    assert fresh.recorded_time(spec) == pytest.approx(recorded)


def test_warm_get_harvests_elapsed_from_entry_document(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec(seed=3)
    ExperimentEngine(jobs=1, cache=cache).run_batch([spec])
    # Drop the sidecar; the entry document still carries "elapsed".
    cache.timings_path.unlink()
    fresh = ResultCache(tmp_path)
    assert fresh.recorded_time(spec) is None
    assert fresh.get(spec) is not None
    assert fresh.recorded_time(spec) is not None


def test_timings_file_is_not_counted_as_a_cache_entry(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec(seed=4)
    ExperimentEngine(jobs=1, cache=cache).run_batch([spec])
    assert len(cache) == 1
    assert cache.timings_path.exists()
    data = json.loads(cache.timings_path.read_text())
    assert list(data) == [spec_hash(spec)]


# --------------------------------------------------------------------- #
# Wave ordering
# --------------------------------------------------------------------- #

def test_wave_orders_longest_pole_first_by_heuristic(monkeypatch):
    executed = []
    from repro.harness import engine as engine_mod

    real = engine_mod._execute_job

    def spy(spec, deps, guard, *args):
        executed.append(spec)
        return real(spec, deps, guard, *args)

    monkeypatch.setattr(engine_mod, "_execute_job", spy)
    small = _spec(nprocs=2, niters=2, seed=5)
    large = _spec(nprocs=4, niters=6, seed=5)
    medium = _spec(nprocs=2, niters=6, seed=5)
    engine = ExperimentEngine(jobs=1)
    engine.run_batch([small, large, medium])
    assert executed == [large, medium, small]
    stats = engine.last_stats
    assert stats.predicted_heuristic == 3
    assert stats.predicted_recorded == 0
    assert stats.prediction_hit_rate == 0.0


def test_wave_prefers_recorded_times_over_heuristic(tmp_path, monkeypatch):
    executed = []
    from repro.harness import engine as engine_mod

    real = engine_mod._execute_job

    def spy(spec, deps, guard, *args):
        executed.append(spec)
        return real(spec, deps, guard, *args)

    monkeypatch.setattr(engine_mod, "_execute_job", spy)
    # Heuristic says `big` is the long pole; recorded history says the
    # opposite.  History must win.
    small = _spec(nprocs=2, niters=2, seed=6)
    big = _spec(nprocs=4, niters=8, seed=6)
    cache = ResultCache(tmp_path)
    cache.record_time(small, 30.0)
    cache.record_time(big, 0.001)
    engine = ExperimentEngine(jobs=1, cache=cache)
    engine.run_batch([small, big])
    assert executed == [small, big]
    stats = engine.last_stats
    assert stats.predicted_recorded == 2
    assert stats.prediction_hit_rate == 1.0
    assert "100% costs from history" in stats.summary()


def test_mixed_recorded_and_heuristic_costs_sort_together(tmp_path):
    # A recorded 1000s job must outrank any realistic heuristic value,
    # and a recorded 1µs job must sink below it.
    slow = _spec(nprocs=2, niters=2, seed=7)
    unknown = _spec(nprocs=4, niters=8, seed=7)
    cache = ResultCache(tmp_path)
    cache.record_time(slow, 1000.0)
    engine = ExperimentEngine(jobs=1, cache=cache)
    stats = EngineStats()
    cost_slow = engine._predicted_cost(slow, stats)
    cost_unknown = engine._predicted_cost(unknown, stats)
    assert cost_slow == 1000.0
    assert cost_unknown == pytest.approx(
        unknown.cost_hint() * HEURISTIC_SECONDS_PER_UNIT
    )
    assert cost_slow > cost_unknown


def test_parallel_results_unaffected_by_wave_order(tmp_path):
    specs = [_spec(nprocs=2, niters=3, seed=s) for s in (0, 1, 2, 3)]
    serial = ExperimentEngine(jobs=1).run_batch(specs)
    cache = ResultCache(tmp_path)
    # Seed adversarial recorded times to scramble the schedule.
    for i, spec in enumerate(specs):
        cache.record_time(spec, float(len(specs) - i))
    scrambled = ExperimentEngine(jobs=2, cache=cache).run_batch(specs)
    from repro.harness.spec import run_result_to_dict

    for spec in specs:
        assert run_result_to_dict(serial[spec]) == run_result_to_dict(
            scrambled[spec]
        )
