"""The job-dispatch seam: backend resolution and in-process differentials.

The seam's contract is absolute: dispatch may change *where* a job runs
and *how long* the batch takes, never a result.  These tests pin the
resolution precedence (explicit > process default > environment > auto)
and prove the `inline` and `local-pool` backends produce byte-identical
batches; the network backend gets the same treatment (plus its
service-only behaviors) in ``test_service.py``.
"""

import json

import pytest

from repro.harness.dispatch import (
    DISPATCH_BACKENDS,
    DispatchConfig,
    DispatchError,
    InlineDispatch,
    create_dispatch,
    parse_address,
    resolve_dispatch,
    resolve_service_addr,
    set_default_dispatch,
)
from repro.harness.engine import ExperimentEngine
from repro.harness.spec import RunSpec, run_result_to_dict


@pytest.fixture(autouse=True)
def _clean_dispatch_state(monkeypatch):
    monkeypatch.delenv("REPRO_DISPATCH", raising=False)
    monkeypatch.delenv("REPRO_SERVICE_ADDR", raising=False)
    set_default_dispatch(None)
    yield
    set_default_dispatch(None)


def _specs(n=3):
    return [
        RunSpec.create("comd", 2, app_kwargs={"niters": 3}, seed=seed)
        for seed in range(n)
    ]


def _batch_json(results):
    return json.dumps(
        [run_result_to_dict(results[s]) for s in sorted(results, key=str)],
        sort_keys=True,
    )


class TestResolution:
    def test_auto_defaults_to_local_pool(self):
        assert resolve_dispatch(None) == "local-pool"
        assert resolve_dispatch("auto") == "local-pool"

    def test_auto_prefers_service_when_addr_known(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_ADDR", "127.0.0.1:7463")
        assert resolve_dispatch(None) == "service"

    def test_explicit_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH", "local-pool")
        monkeypatch.setenv("REPRO_SERVICE_ADDR", "127.0.0.1:7463")
        set_default_dispatch("local-pool")
        assert resolve_dispatch("inline") == "inline"

    def test_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH", "local-pool")
        set_default_dispatch("inline")
        assert resolve_dispatch(None) == "inline"

    def test_env_beats_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISPATCH", "inline")
        assert resolve_dispatch(None) == "inline"

    def test_unknown_name_is_loud(self):
        with pytest.raises(ValueError, match="unknown dispatch backend"):
            resolve_dispatch("carrier-pigeon")
        with pytest.raises(ValueError):
            set_default_dispatch("carrier-pigeon")

    def test_every_advertised_backend_instantiates(self):
        for name in DISPATCH_BACKENDS:
            if name == "service":
                continue  # needs an address; covered below
            backend = create_dispatch(name, DispatchConfig())
            backend.close()

    def test_service_without_address_is_loud(self):
        with pytest.raises(DispatchError, match="HOST:PORT"):
            resolve_service_addr(None)
        with pytest.raises(DispatchError):
            create_dispatch("service", DispatchConfig())

    def test_parse_address(self):
        assert parse_address("localhost:80") == ("localhost", 80)
        with pytest.raises(DispatchError):
            parse_address("no-port")
        with pytest.raises(DispatchError):
            parse_address("host:notanint")

    def test_engine_resolves_service_addr_at_construction(self):
        # Asking for the service backend with no address anywhere must
        # fail when the engine is built, not waves later mid-batch.
        with pytest.raises(DispatchError):
            ExperimentEngine(cache=None, dispatch="service")


class TestBackendMechanics:
    def test_drain_yields_every_handle_exactly_once(self):
        backend = InlineDispatch(DispatchConfig())
        specs = _specs(3)
        handles = [backend.submit(spec, {}) for spec in specs]
        drained = list(backend.drain())
        assert sorted(id(j) for j in drained) == sorted(
            id(j) for j in handles
        )
        assert all(job.done for job in handles)

    def test_result_mixes_with_drain(self):
        backend = InlineDispatch(DispatchConfig())
        specs = _specs(2)
        first = backend.submit(specs[0], {})
        second = backend.submit(specs[1], {})
        result, elapsed, served, cached = second.result()
        assert result.runtime > 0 and not cached
        # The other handle still resolves (inline runs in order, so it
        # was executed on the way to `second`).
        assert first.done

    def test_check_job_reports_duration(self):
        from repro.harness.verify import FaultSchedule, schedule_to_dict

        backend = InlineDispatch(DispatchConfig())
        schedule = schedule_to_dict(FaultSchedule.draw(3))
        value = backend.submit_check("safe-cut", schedule).result()
        assert value["report"]["oracle"] == "safe-cut"
        assert value["duration"] > 0

    def test_pending_handles_do_not_accumulate(self):
        backend = InlineDispatch(DispatchConfig())
        for spec in _specs(3):
            backend.submit(spec, {}).result()
        # Resolved handles are pruned at the next submission, so a fuzz
        # run submitting thousands of checks stays O(outstanding).
        backend.submit(_specs(1)[0], {})
        assert len(backend._pending) == 1


class TestInProcessDifferential:
    """inline and local-pool engines produce byte-identical batches."""

    def test_inline_matches_local_pool(self, tmp_path):
        specs = _specs()
        with ExperimentEngine(
            cache=None, progress=False, dispatch="local-pool"
        ) as eng:
            reference = _batch_json(eng.run_batch(specs))
        with ExperimentEngine(
            cache=None, progress=False, dispatch="inline"
        ) as eng:
            assert _batch_json(eng.run_batch(specs)) == reference

    def test_inline_respects_warm_cache(self, tmp_path):
        from repro.harness.cache import ResultCache

        specs = _specs()
        with ExperimentEngine(
            cache=ResultCache(tmp_path), progress=False, dispatch="inline"
        ) as eng:
            cold = _batch_json(eng.run_batch(specs))
            assert eng.last_stats.executed == len(specs)
        with ExperimentEngine(
            cache=ResultCache(tmp_path), progress=False, dispatch="inline"
        ) as eng:
            warm = _batch_json(eng.run_batch(specs))
            assert eng.last_stats.executed == 0
            assert eng.last_stats.cache_hits == len(specs)
        assert warm == cold
