"""Tests for experiment memory-limit handling (mirroring the paper's own
omissions) and render formatting."""

from repro.harness.experiments import _fmt_size, _memory_limited


def test_memory_limited_cells_match_paper():
    """The paper: alltoall/allgather 'do not support a message size of
    1 MB over 1024 and 2048 processes'; our scaled analog caps at 16."""
    assert _memory_limited("alltoall", 1 << 20, 32)
    assert _memory_limited("allgather", 1 << 20, 32)
    assert not _memory_limited("alltoall", 1 << 20, 16)
    assert not _memory_limited("alltoall", 1024, 2048)
    assert not _memory_limited("bcast", 1 << 20, 2048)
    assert not _memory_limited("allreduce", 1 << 20, 2048)


def test_fig5a_skips_limited_cells():
    from repro.harness import fig5a

    res = fig5a(procs=(8, 32), kinds=("alltoall",), sizes=(1 << 20,), iters=4)
    procs_covered = {row[2] for row in res.rows}
    assert 8 in procs_covered
    assert 32 not in procs_covered
    assert "memory" in res.notes


def test_fmt_size():
    assert _fmt_size(4) == "4B"
    assert _fmt_size(1024) == "1KB"
    assert _fmt_size(1 << 20) == "1MB"
    assert _fmt_size(4 << 20) == "4MB"
