"""The experiment service, end to end in one process.

The server runs in a background thread, workers run :func:`run_worker`
in threads of their own, and clients go through the same
``ServiceDispatch``/engine path the CLI uses — so these tests exercise
the real protocol over real sockets, minus only process isolation.

Pinned here: byte-identity of service batches against the in-process
reference, zero re-simulation on a warm shared store, orphaned-job
requeue when a worker dies mid-job, index persistence across server
restarts, and the verify/fuzz fan-out through the seam.
"""

import json
import socket
import threading

import pytest

from repro.harness.cache import ResultCache
from repro.harness.engine import ExperimentEngine
from repro.harness.service import (
    PROTOCOL_VERSION,
    ExperimentServer,
    run_worker,
)
from repro.harness.spec import (
    RunSpec,
    job_to_dict,
    run_result_to_dict,
    spec_hash,
)


def _specs(n=3):
    return [
        RunSpec.create("comd", 2, app_kwargs={"niters": 3}, seed=seed)
        for seed in range(n)
    ]


def _batch_json(results):
    return json.dumps(
        [run_result_to_dict(results[s]) for s in sorted(results, key=str)],
        sort_keys=True,
    )


@pytest.fixture
def service(tmp_path):
    """A live server (shared store under ``tmp_path``) and its address."""
    server = ExperimentServer("127.0.0.1", 0, cache_dir=tmp_path / "store")
    host, port = server.start()
    yield server, f"{host}:{port}"
    server.shutdown()


def _worker_thread(addr_text, **kwargs):
    host, port = addr_text.rsplit(":", 1)
    thread = threading.Thread(
        target=run_worker,
        args=((host, int(port)),),
        kwargs=kwargs,
        daemon=True,
    )
    thread.start()
    return thread


class _RawConn:
    """Minimal protocol peer for poking the server directly."""

    def __init__(self, addr_text, role):
        host, port = addr_text.rsplit(":", 1)
        self.sock = socket.create_connection((host, int(port)))
        self.rfile = self.sock.makefile("rb")
        self.send({"type": "hello", "role": role,
                   "protocol": PROTOCOL_VERSION})
        self.welcome = self.recv()
        assert self.welcome["type"] == "welcome"

    def send(self, obj):
        self.sock.sendall(
            json.dumps(obj, separators=(",", ":")).encode() + b"\n"
        )

    def recv(self):
        line = self.rfile.readline()
        return json.loads(line) if line else None

    def close(self):
        self.rfile.close()
        self.sock.close()


class TestServiceDifferential:
    def test_batch_is_byte_identical_to_inline(self, service, tmp_path):
        server, addr = service
        specs = _specs()
        with ExperimentEngine(
            cache=None, progress=False, dispatch="inline"
        ) as eng:
            reference = _batch_json(eng.run_batch(specs))

        worker = _worker_thread(addr, max_jobs=len(specs))
        with ExperimentEngine(
            cache=None, progress=False, dispatch="service", service=addr
        ) as eng:
            got = _batch_json(eng.run_batch(specs))
            assert eng.last_stats.executed == len(specs)
            assert eng.last_stats.cache_hits == 0
        worker.join(timeout=30)
        assert got == reference

    def test_warm_service_rerun_simulates_zero(self, service):
        server, addr = service
        specs = _specs()
        worker = _worker_thread(addr, max_jobs=len(specs))
        with ExperimentEngine(
            cache=None, progress=False, dispatch="service", service=addr
        ) as eng:
            first = _batch_json(eng.run_batch(specs))
        worker.join(timeout=30)

        # A second cache-less client resubmits the same keys: the server
        # answers every one from the shared store without queueing, and
        # the client accounts them as store hits.  No worker is even
        # connected — nothing *can* simulate.
        with ExperimentEngine(
            cache=None, progress=False, dispatch="service", service=addr
        ) as eng:
            again = _batch_json(eng.run_batch(specs))
            assert eng.last_stats.executed == 0
            assert eng.last_stats.cache_hits == len(specs)
        assert again == first
        assert server.stats()["done"] == len(specs)

    def test_two_workers_share_one_batch(self, service):
        server, addr = service
        specs = _specs(4)
        workers = [_worker_thread(addr) for _ in range(2)]
        with ExperimentEngine(
            cache=None, progress=False, dispatch="service", service=addr
        ) as eng:
            results = eng.run_batch(specs)
        assert len(results) == len(specs)
        assert eng.last_stats.executed == len(specs)
        server.shutdown()  # releases the parked workers
        for worker in workers:
            worker.join(timeout=30)


class TestWorkerFailure:
    def test_orphaned_job_is_requeued_and_finished_elsewhere(self, service):
        server, addr = service
        spec = _specs(1)[0]
        key = spec_hash(spec)

        client = _RawConn(addr, "client")
        client.send({
            "type": "submit", "key": key, "job": job_to_dict(spec, []),
        })
        accepted = client.recv()
        assert accepted["state"] == "queued"

        # A worker fetches the job... and dies mid-execution (the
        # connection drops without a `done`).
        doomed = _RawConn(addr, "worker")
        doomed.send({"type": "fetch"})
        handed = doomed.recv()
        assert handed["type"] == "job" and handed["key"] == key
        assert server.stats()["running"] == 1
        doomed.close()

        # The reap runs on connection teardown; the job must come back.
        deadline = 50
        while server.stats()["running"] and deadline:
            threading.Event().wait(0.1)
            deadline -= 1
        assert server.stats()["queued"] == 1

        # A healthy worker picks it up and the waiting client gets the
        # result — the batch survived the casualty.
        worker = _worker_thread(addr, max_jobs=1)
        client.send({"type": "wait", "keys": [key]})
        reply = client.recv()
        assert reply["type"] == "result" and reply["key"] == key
        assert reply["value"]["result"]["runtime"] > 0
        worker.join(timeout=30)
        client.close()


class TestLeaseAndHeartbeat:
    """A hung-but-connected worker must not strand its job forever."""

    def test_stalled_worker_job_is_requeued_by_lease(self, tmp_path):
        server = ExperimentServer(
            "127.0.0.1", 0, cache_dir=tmp_path / "store", lease=0.5
        )
        addr = "%s:%d" % server.start()
        try:
            spec = _specs(1)[0]
            key = spec_hash(spec)
            client = _RawConn(addr, "client")
            client.send({
                "type": "submit", "key": key, "job": job_to_dict(spec, []),
            })
            assert client.recv()["state"] == "queued"

            # This worker fetches the job and then hangs: the TCP
            # connection stays open (so the vanished-worker reap never
            # fires) but no heartbeat and no `done` ever arrive.
            stalled = _RawConn(addr, "worker")
            stalled.send({"type": "fetch"})
            handed = stalled.recv()
            assert handed["type"] == "job" and handed["key"] == key
            assert server.stats()["running"] == 1

            # The lease reaper requeues it within ~a lease and a tick.
            deadline = 100
            while server.stats()["running"] and deadline:
                threading.Event().wait(0.05)
                deadline -= 1
            assert server.stats()["queued"] == 1

            # A healthy worker finishes it; the client never noticed.
            worker = _worker_thread(addr, max_jobs=1)
            client.send({"type": "wait", "keys": [key]})
            reply = client.recv()
            assert reply["type"] == "result" and reply["key"] == key
            assert reply["value"]["result"]["runtime"] > 0
            worker.join(timeout=30)
            stalled.close()
            client.close()
        finally:
            server.shutdown()

    def test_heartbeats_keep_a_slow_worker_leased(self, tmp_path):
        server = ExperimentServer("127.0.0.1", 0, lease=0.4)
        addr = "%s:%d" % server.start()
        try:
            client = _RawConn(addr, "client")
            client.send({
                "type": "submit", "key": "check-slow",
                "job": {"kind": "check", "oracle": "x", "schedule": {}},
            })
            assert client.recv()["state"] == "queued"

            # The lease is advertised in the handshake so real workers
            # can pace their heartbeats off it.
            slow = _RawConn(addr, "worker")
            assert slow.welcome.get("lease") == 0.4
            slow.send({"type": "fetch"})
            assert slow.recv()["type"] == "job"

            # Hold the job for several leases, heartbeating the whole
            # time: the job must stay leased to this worker.
            for _ in range(6):
                threading.Event().wait(0.2)
                slow.send({"type": "heartbeat"})  # fire-and-forget
                assert server.stats()["running"] == 1

            slow.send({"type": "done", "key": "check-slow",
                       "value": {"ok": True}})
            assert slow.recv()["type"] == "ack"
            assert server.stats()["done"] == 1
            slow.close()
            client.close()
        finally:
            server.shutdown()

    def test_late_done_from_expired_lease_is_harmless(self, tmp_path):
        # The stalled worker wakes up *after* its lease expired and the
        # job was requeued: its late `done` is accepted (idempotent) and
        # the stale queue entry must not hand the done job out again.
        server = ExperimentServer("127.0.0.1", 0, lease=0.3)
        addr = "%s:%d" % server.start()
        try:
            client = _RawConn(addr, "client")
            client.send({
                "type": "submit", "key": "check-late",
                "job": {"kind": "check", "oracle": "x", "schedule": {}},
            })
            assert client.recv()["state"] == "queued"

            stalled = _RawConn(addr, "worker")
            stalled.send({"type": "fetch"})
            assert stalled.recv()["type"] == "job"
            deadline = 100
            while server.stats()["running"] and deadline:
                threading.Event().wait(0.05)
                deadline -= 1
            assert server.stats()["queued"] == 1

            # Late completion lands while the key still sits in the queue.
            stalled.send({"type": "done", "key": "check-late",
                          "value": {"late": True}})
            assert stalled.recv()["type"] == "ack"
            assert server.stats()["done"] == 1

            # The next fetch must skip the stale queue entry (idle, not
            # a re-execution of the already-done job).
            other = _RawConn(addr, "worker")
            other.send({"type": "fetch"})
            assert other.recv()["type"] == "idle"
            assert server.stats()["done"] == 1
            stalled.close()
            other.close()
            client.close()
        finally:
            server.shutdown()


class TestConnectRetry:
    def test_worker_retries_until_server_appears(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        executed = []
        thread = threading.Thread(
            target=lambda: executed.append(
                run_worker(
                    ("127.0.0.1", port),
                    max_jobs=0,
                    connect_retries=40,
                    connect_backoff=0.05,
                )
            ),
            daemon=True,
        )
        thread.start()  # nothing is listening yet: the worker backs off
        threading.Event().wait(0.3)
        server = ExperimentServer("127.0.0.1", port)
        server.start()
        thread.join(timeout=15)
        server.shutdown()
        assert executed == [0], "worker never reached the late server"

    def test_zero_retries_fails_fast(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(OSError):
            run_worker(("127.0.0.1", port), max_jobs=0, connect_retries=0)


class TestIndexPersistence:
    def test_interrupted_jobs_resume_across_restart(self, tmp_path):
        index = tmp_path / "index"
        store = tmp_path / "store"
        spec = _specs(1)[0]
        key = spec_hash(spec)

        first = ExperimentServer(
            "127.0.0.1", 0, cache_dir=store, index_dir=index
        )
        addr = "%s:%d" % first.start()
        client = _RawConn(addr, "client")
        client.send({
            "type": "submit", "key": key, "job": job_to_dict(spec, []),
        })
        assert client.recv()["state"] == "queued"
        client.close()
        first.shutdown()

        # A restarted server finds the queued job in the index and a
        # worker finishes what the first server never started.
        second = ExperimentServer(
            "127.0.0.1", 0, cache_dir=store, index_dir=index
        )
        addr = "%s:%d" % second.start()
        assert second.stats()["queued"] == 1
        worker = _worker_thread(addr, max_jobs=1)
        client = _RawConn(addr, "client")
        client.send({"type": "wait", "keys": [key]})
        assert client.recv()["type"] == "result"
        worker.join(timeout=30)
        client.close()
        second.shutdown()

        # Third restart: the sim job is done; its result lives in the
        # store, so resubmission is answered without queueing.
        third = ExperimentServer(
            "127.0.0.1", 0, cache_dir=store, index_dir=index
        )
        addr = "%s:%d" % third.start()
        client = _RawConn(addr, "client")
        client.send({
            "type": "submit", "key": key, "job": job_to_dict(spec, []),
        })
        assert client.recv()["state"] == "done"
        client.close()
        third.shutdown()

    def test_corrupt_index_entries_are_quarantined_not_fatal(self, tmp_path):
        # A crash mid-write (or a disk fault) can leave truncated or
        # otherwise malformed entries behind.  Resume must shrug: log,
        # quarantine the bad record, load everything else — and the
        # damaged job requeues through idempotent resubmission.
        index = tmp_path / "index"
        index.mkdir()
        (index / "truncated.json").write_text('{"schema": 1, "key": "jo')
        (index / "notdict.json").write_text('[1, 2, 3]')
        (index / "nokey.json").write_text('{"schema": 1, "state": "queued"}')
        (index / "nopayload.json").write_text(json.dumps({
            "schema": 1, "key": "job-hurt", "state": "running",
            "payload": "not-a-dict",
        }))
        (index / "good.json").write_text(json.dumps({
            "schema": 1, "key": "check-good", "state": "queued",
            "payload": {"kind": "check", "oracle": "x", "schedule": {}},
            "submitted": 1.0,
        }))

        server = ExperimentServer("127.0.0.1", 0, index_dir=index)
        addr = "%s:%d" % server.start()
        try:
            # Only the intact entry resumed; every bad one is renamed
            # aside so the *next* restart is clean too.
            assert server.stats() == {
                "jobs": 1, "queued": 1, "running": 0, "done": 0,
            }
            names = sorted(p.name for p in index.iterdir())
            assert names == [
                "good.json",
                "nokey.json.corrupt",
                "nopayload.json.corrupt",
                "notdict.json.corrupt",
                "truncated.json.corrupt",
            ]

            # The job whose record was destroyed is simply unknown now:
            # resubmitting it queues it fresh instead of colliding.
            client = _RawConn(addr, "client")
            client.send({
                "type": "submit", "key": "job-hurt",
                "job": {"kind": "check", "oracle": "x", "schedule": {}},
            })
            assert client.recv()["state"] == "queued"
            assert server.stats()["queued"] == 2
            client.close()
        finally:
            server.shutdown()


class TestSeamFanout:
    def test_verify_reports_identical_over_service(self, service):
        from repro.harness.verify import run_oracles

        server, addr = service
        worker = _worker_thread(addr)
        serial = [r.as_dict() for r in run_oracles(["safe-cut"], range(2))]
        via_service = [
            r.as_dict()
            for r in run_oracles(
                ["safe-cut"], range(2), dispatch="service", service=addr
            )
        ]
        assert via_service == serial
        server.shutdown()
        worker.join(timeout=30)

    def test_fuzz_parallel_matches_serial(self, tmp_path):
        from repro.harness.fuzz import CorpusDB, run_fuzz

        serial_corpus = CorpusDB(tmp_path / "serial")
        serial = run_fuzz(
            serial_corpus, iters=3, oracles=["safe-cut", "engine"]
        )
        parallel_corpus = CorpusDB(tmp_path / "parallel")
        parallel = run_fuzz(
            parallel_corpus,
            iters=3,
            oracles=["safe-cut", "engine"],
            jobs=2,
            dispatch="inline",
        )
        assert parallel.iterations == serial.iterations
        assert parallel.checks == serial.checks
        assert sorted(e.key for e in parallel_corpus.entries()) == sorted(
            e.key for e in serial_corpus.entries()
        )
        assert [e.key for e in parallel.anomalies] == [
            e.key for e in serial.anomalies
        ]
