"""The experiment service, end to end in one process.

The server runs in a background thread, workers run :func:`run_worker`
in threads of their own, and clients go through the same
``ServiceDispatch``/engine path the CLI uses — so these tests exercise
the real protocol over real sockets, minus only process isolation.

Pinned here: byte-identity of service batches against the in-process
reference, zero re-simulation on a warm shared store, orphaned-job
requeue when a worker dies mid-job, index persistence across server
restarts, and the verify/fuzz fan-out through the seam.
"""

import json
import socket
import threading

import pytest

from repro.harness.cache import ResultCache
from repro.harness.engine import ExperimentEngine
from repro.harness.service import (
    PROTOCOL_VERSION,
    ExperimentServer,
    run_worker,
)
from repro.harness.spec import (
    RunSpec,
    job_to_dict,
    run_result_to_dict,
    spec_hash,
)


def _specs(n=3):
    return [
        RunSpec.create("comd", 2, app_kwargs={"niters": 3}, seed=seed)
        for seed in range(n)
    ]


def _batch_json(results):
    return json.dumps(
        [run_result_to_dict(results[s]) for s in sorted(results, key=str)],
        sort_keys=True,
    )


@pytest.fixture
def service(tmp_path):
    """A live server (shared store under ``tmp_path``) and its address."""
    server = ExperimentServer("127.0.0.1", 0, cache_dir=tmp_path / "store")
    host, port = server.start()
    yield server, f"{host}:{port}"
    server.shutdown()


def _worker_thread(addr_text, **kwargs):
    host, port = addr_text.rsplit(":", 1)
    thread = threading.Thread(
        target=run_worker,
        args=((host, int(port)),),
        kwargs=kwargs,
        daemon=True,
    )
    thread.start()
    return thread


class _RawConn:
    """Minimal protocol peer for poking the server directly."""

    def __init__(self, addr_text, role):
        host, port = addr_text.rsplit(":", 1)
        self.sock = socket.create_connection((host, int(port)))
        self.rfile = self.sock.makefile("rb")
        self.send({"type": "hello", "role": role,
                   "protocol": PROTOCOL_VERSION})
        assert self.recv()["type"] == "welcome"

    def send(self, obj):
        self.sock.sendall(
            json.dumps(obj, separators=(",", ":")).encode() + b"\n"
        )

    def recv(self):
        line = self.rfile.readline()
        return json.loads(line) if line else None

    def close(self):
        self.rfile.close()
        self.sock.close()


class TestServiceDifferential:
    def test_batch_is_byte_identical_to_inline(self, service, tmp_path):
        server, addr = service
        specs = _specs()
        with ExperimentEngine(
            cache=None, progress=False, dispatch="inline"
        ) as eng:
            reference = _batch_json(eng.run_batch(specs))

        worker = _worker_thread(addr, max_jobs=len(specs))
        with ExperimentEngine(
            cache=None, progress=False, dispatch="service", service=addr
        ) as eng:
            got = _batch_json(eng.run_batch(specs))
            assert eng.last_stats.executed == len(specs)
            assert eng.last_stats.cache_hits == 0
        worker.join(timeout=30)
        assert got == reference

    def test_warm_service_rerun_simulates_zero(self, service):
        server, addr = service
        specs = _specs()
        worker = _worker_thread(addr, max_jobs=len(specs))
        with ExperimentEngine(
            cache=None, progress=False, dispatch="service", service=addr
        ) as eng:
            first = _batch_json(eng.run_batch(specs))
        worker.join(timeout=30)

        # A second cache-less client resubmits the same keys: the server
        # answers every one from the shared store without queueing, and
        # the client accounts them as store hits.  No worker is even
        # connected — nothing *can* simulate.
        with ExperimentEngine(
            cache=None, progress=False, dispatch="service", service=addr
        ) as eng:
            again = _batch_json(eng.run_batch(specs))
            assert eng.last_stats.executed == 0
            assert eng.last_stats.cache_hits == len(specs)
        assert again == first
        assert server.stats()["done"] == len(specs)

    def test_two_workers_share_one_batch(self, service):
        server, addr = service
        specs = _specs(4)
        workers = [_worker_thread(addr) for _ in range(2)]
        with ExperimentEngine(
            cache=None, progress=False, dispatch="service", service=addr
        ) as eng:
            results = eng.run_batch(specs)
        assert len(results) == len(specs)
        assert eng.last_stats.executed == len(specs)
        server.shutdown()  # releases the parked workers
        for worker in workers:
            worker.join(timeout=30)


class TestWorkerFailure:
    def test_orphaned_job_is_requeued_and_finished_elsewhere(self, service):
        server, addr = service
        spec = _specs(1)[0]
        key = spec_hash(spec)

        client = _RawConn(addr, "client")
        client.send({
            "type": "submit", "key": key, "job": job_to_dict(spec, []),
        })
        accepted = client.recv()
        assert accepted["state"] == "queued"

        # A worker fetches the job... and dies mid-execution (the
        # connection drops without a `done`).
        doomed = _RawConn(addr, "worker")
        doomed.send({"type": "fetch"})
        handed = doomed.recv()
        assert handed["type"] == "job" and handed["key"] == key
        assert server.stats()["running"] == 1
        doomed.close()

        # The reap runs on connection teardown; the job must come back.
        deadline = 50
        while server.stats()["running"] and deadline:
            threading.Event().wait(0.1)
            deadline -= 1
        assert server.stats()["queued"] == 1

        # A healthy worker picks it up and the waiting client gets the
        # result — the batch survived the casualty.
        worker = _worker_thread(addr, max_jobs=1)
        client.send({"type": "wait", "keys": [key]})
        reply = client.recv()
        assert reply["type"] == "result" and reply["key"] == key
        assert reply["value"]["result"]["runtime"] > 0
        worker.join(timeout=30)
        client.close()


class TestIndexPersistence:
    def test_interrupted_jobs_resume_across_restart(self, tmp_path):
        index = tmp_path / "index"
        store = tmp_path / "store"
        spec = _specs(1)[0]
        key = spec_hash(spec)

        first = ExperimentServer(
            "127.0.0.1", 0, cache_dir=store, index_dir=index
        )
        addr = "%s:%d" % first.start()
        client = _RawConn(addr, "client")
        client.send({
            "type": "submit", "key": key, "job": job_to_dict(spec, []),
        })
        assert client.recv()["state"] == "queued"
        client.close()
        first.shutdown()

        # A restarted server finds the queued job in the index and a
        # worker finishes what the first server never started.
        second = ExperimentServer(
            "127.0.0.1", 0, cache_dir=store, index_dir=index
        )
        addr = "%s:%d" % second.start()
        assert second.stats()["queued"] == 1
        worker = _worker_thread(addr, max_jobs=1)
        client = _RawConn(addr, "client")
        client.send({"type": "wait", "keys": [key]})
        assert client.recv()["type"] == "result"
        worker.join(timeout=30)
        client.close()
        second.shutdown()

        # Third restart: the sim job is done; its result lives in the
        # store, so resubmission is answered without queueing.
        third = ExperimentServer(
            "127.0.0.1", 0, cache_dir=store, index_dir=index
        )
        addr = "%s:%d" % third.start()
        client = _RawConn(addr, "client")
        client.send({
            "type": "submit", "key": key, "job": job_to_dict(spec, []),
        })
        assert client.recv()["state"] == "done"
        client.close()
        third.shutdown()


class TestSeamFanout:
    def test_verify_reports_identical_over_service(self, service):
        from repro.harness.verify import run_oracles

        server, addr = service
        worker = _worker_thread(addr)
        serial = [r.as_dict() for r in run_oracles(["safe-cut"], range(2))]
        via_service = [
            r.as_dict()
            for r in run_oracles(
                ["safe-cut"], range(2), dispatch="service", service=addr
            )
        ]
        assert via_service == serial
        server.shutdown()
        worker.join(timeout=30)

    def test_fuzz_parallel_matches_serial(self, tmp_path):
        from repro.harness.fuzz import CorpusDB, run_fuzz

        serial_corpus = CorpusDB(tmp_path / "serial")
        serial = run_fuzz(
            serial_corpus, iters=3, oracles=["safe-cut", "engine"]
        )
        parallel_corpus = CorpusDB(tmp_path / "parallel")
        parallel = run_fuzz(
            parallel_corpus,
            iters=3,
            oracles=["safe-cut", "engine"],
            jobs=2,
            dispatch="inline",
        )
        assert parallel.iterations == serial.iterations
        assert parallel.checks == serial.checks
        assert sorted(e.key for e in parallel_corpus.entries()) == sorted(
            e.key for e in serial_corpus.entries()
        )
        assert [e.key for e in parallel.anomalies] == [
            e.key for e in serial.anomalies
        ]
