"""Determinism fingerprints across execution modes.

A scaled-down Figure 5a cell set is executed serially, in parallel
workers, and from a warm cache; all three must agree on every result
hash *and* on the kernel event counts — the constants below were
captured on the pre-fast-path kernel, so these tests also pin the
fast-path kernel to the seed kernel's exact event schedule.
"""

import pytest

from repro.harness import ExperimentEngine, ResultCache
from repro.harness.experiments import plan_fig5a
from repro.harness.spec import run_result_to_dict
from repro.util.hashing import stable_json_hash

# Captured on the pre-fast-path kernel for plan_fig5a(procs=(4,),
# kinds=("bcast",), sizes=(1024,), iters=20).
EXPECTED_EVENTS = {
    "osu/native p=4": 327,
    "osu/cc p=4": 491,
    "osu/2pc p=4": 1539,
}
# Hash of the serialized results.  Event counts and every measurement
# are still byte-identical to the pre-fast-path kernel; the hash moved
# once (PR 5) when ``rank_finish_times`` — the per-rank completion
# instants behind checkpoint_completion_fracs — joined the result form,
# and again (PR 7, schema v2) when ``crashed_ranks`` and the drain
# conservation counters joined it.
EXPECTED_RESULT_HASH = "78eb106e234d18fa"


@pytest.fixture(scope="module")
def plan():
    return plan_fig5a(procs=(4,), kinds=("bcast",), sizes=(1024,), iters=20)


def _fingerprint(plan, results):
    events = {spec.label(): results[spec].sim_events for spec in plan.specs}
    rhash = stable_json_hash(
        [run_result_to_dict(results[spec]) for spec in plan.specs]
    )
    return events, rhash


def test_serial_run_matches_pre_fastpath_fingerprint(plan):
    results = ExperimentEngine(jobs=1).run_batch(plan.specs)
    events, rhash = _fingerprint(plan, results)
    assert events == EXPECTED_EVENTS
    assert rhash == EXPECTED_RESULT_HASH


def test_parallel_run_matches_serial_fingerprint(plan):
    results = ExperimentEngine(jobs=2).run_batch(plan.specs)
    events, rhash = _fingerprint(plan, results)
    assert events == EXPECTED_EVENTS
    assert rhash == EXPECTED_RESULT_HASH


def test_warm_cache_run_matches_serial_fingerprint(plan, tmp_path):
    cache = ResultCache(tmp_path)
    cold_engine = ExperimentEngine(jobs=1, cache=cache)
    cold = cold_engine.run_batch(plan.specs)
    assert cold_engine.last_stats.executed == len(set(plan.specs))

    warm_engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
    warm = warm_engine.run_batch(plan.specs)
    assert warm_engine.last_stats.executed == 0
    assert warm_engine.last_stats.cache_hits == len(set(plan.specs))

    assert _fingerprint(plan, cold) == _fingerprint(plan, warm)
    events, rhash = _fingerprint(plan, warm)
    assert events == EXPECTED_EVENTS
    assert rhash == EXPECTED_RESULT_HASH
