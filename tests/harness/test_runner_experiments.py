"""Tests for the runner, experiment drivers, and CLI."""

import pytest

from repro.apps import make_app_factory
from repro.harness import EXPERIMENTS, fig5b, fig7, fig9, table1
from repro.harness.runner import RunResult, launch_run


class TestRunner:
    def test_run_result_fields(self):
        r = launch_run(make_app_factory("comd", niters=4), 4, seed=0)
        assert isinstance(r, RunResult)
        assert r.nprocs == 4
        assert r.runtime > 0
        assert r.coll_calls > 0 and r.p2p_calls > 0
        assert r.sim_events > 0
        assert len(r.per_rank) == 4

    def test_rates(self):
        r = launch_run(make_app_factory("comd", niters=8), 4, seed=0)
        assert r.coll_rate == pytest.approx(r.coll_calls / 4 / r.runtime)
        assert r.p2p_rate == pytest.approx(r.p2p_calls / 4 / r.runtime)

    def test_topology_mismatch_rejected(self):
        from repro.netmodel import make_topology

        with pytest.raises(ValueError):
            launch_run(
                make_app_factory("comd", niters=1), 4, topo=make_topology(8)
            )

    def test_committed_images_without_checkpoint_raises(self):
        r = launch_run(make_app_factory("comd", niters=2), 2, seed=0)
        with pytest.raises(ValueError):
            r.committed_images()

    def test_deterministic_runs(self):
        a = launch_run(make_app_factory("comd", niters=6), 4, seed=5)
        b = launch_run(make_app_factory("comd", niters=6), 4, seed=5)
        assert a.runtime == b.runtime
        assert a.sim_events == b.sim_events

    def test_seed_changes_timing(self):
        a = launch_run(make_app_factory("comd", niters=6), 4, seed=5)
        b = launch_run(make_app_factory("comd", niters=6), 4, seed=6)
        assert a.runtime != b.runtime


class TestExperiments:
    def test_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig5a", "fig5b", "fig6", "fig7", "fig8", "fig9"
        }

    def test_table1_shape(self):
        res = table1(nprocs=8)
        assert len(res.rows) == 6
        apps = [row[0] for row in res.rows]
        assert apps[0].startswith("osu")
        rendered = res.render()
        assert "coll calls/s" in rendered
        # Poisson's p2p column is NA, as in the paper.
        poisson_row = next(r for r in res.rows if r[0] == "poisson")
        assert poisson_row[2] == "NA"

    def test_fig5b_reports_na_for_2pc(self):
        res = fig5b(procs=(4,), kinds=("allreduce",), sizes=(4,), iters=10)
        assert all(row[3] == "NA" for row in res.rows)
        assert "NA" in res.render()

    def test_fig7_shape(self):
        res = fig7(nprocs=8, repeats=1)
        apps = [row[0] for row in res.rows]
        assert apps == ["minivasp", "sw4", "comd", "lammps", "poisson"]
        poisson = res.rows[-1]
        assert poisson[2] == "NA"  # 2PC column
        vasp = res.rows[0]
        assert float(vasp[4]) > float(vasp[5]), "2PC must cost more than CC on VASP"

    def test_fig9_checkpoint_and_restart_grow_with_nodes(self):
        res = fig9(nodes=(1, 4), ppn=2, niters=6)
        by_name = {s.name: s for s in res.series}
        cc_ckpt = by_name["CC ckpt (s)"]
        assert cc_ckpt.ys[-1] > cc_ckpt.ys[0]  # more nodes -> slower ckpt
        cc_restart = by_name["CC restart (s)"]
        assert all(y > 0 for y in cc_restart.ys)

    def test_render_series_table(self):
        res = fig9(nodes=(1, 2), ppn=2, niters=5)
        text = res.render()
        assert "nodes" in text
        assert "CC ckpt" in text


class TestCli:
    def test_cli_table1(self, capsys):
        from repro.cli import main

        assert main(["table1", "--nprocs", "8", "--no-cache", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "minivasp" in out
        # The engine-stats one-liner follows every experiment.
        assert "engine:" in out
        assert "jobs submitted" in out

    def test_cli_cache_and_jobs_flags(self, capsys, tmp_path):
        from repro.cli import main

        argv = ["table1", "--nprocs", "4", "--ppn", "4", "--quiet",
                "--cache-dir", str(tmp_path), "--jobs", "2"]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "0 cache hits" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "6 cache hits" in warm
        assert "0 simulated" in warm
        # Rendered tables identical between cold parallel and warm runs.
        assert cold.split("[table1")[0] == warm.split("[table1")[0]

    def test_cli_repeats_flag(self, capsys):
        from repro.cli import main

        assert main(["fig8", "--procs", "4", "--ppn", "4", "--repeats", "1",
                     "--no-cache", "--quiet"]) == 0
        out = capsys.readouterr().out
        # 1 repeat x 3 protocols x 1 proc count = 3 jobs.
        assert "3 jobs submitted" in out

    def test_cli_unknown_experiment(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["fig99"])
