"""Tests for the batch experiment engine: dedupe, waves, caching,
parallel equality, and the plan/fold experiment drivers."""

import pytest

from repro.des import SchedulingError
from repro.harness import (
    ExperimentEngine,
    ResultCache,
    RunSpec,
    run_plans,
)
from repro.harness.experiments import (
    plan_fig5b,
    plan_fig7,
    plan_fig8,
    plan_fig9,
    plan_table1,
)


def _spec(**overrides):
    base = dict(app="comd", nprocs=2, app_kwargs={"niters": 3}, seed=0)
    base.update(overrides)
    return RunSpec.create(base.pop("app"), base.pop("nprocs"), **base)


class TestEngineCore:
    def test_dedupes_identical_specs(self):
        engine = ExperimentEngine()
        results = engine.run_batch([_spec(), _spec(), _spec(seed=1)])
        stats = engine.last_stats
        assert stats.submitted == 3
        assert stats.unique == 2
        assert stats.deduped == 1
        assert stats.executed == 2
        assert set(results) == {_spec(), _spec(seed=1)}

    def test_chain_adds_dependency_jobs_once(self):
        ckpt = _spec(protocol="cc", checkpoint_fractions=(0.5,))
        restart = _spec(protocol="cc", restart_of=ckpt)
        engine = ExperimentEngine()
        results = engine.run_batch([ckpt, restart])
        stats = engine.last_stats
        # probe is the only extra job; ckpt itself was submitted.
        assert stats.chained == 1
        assert stats.executed == 3
        assert results[restart].restart_ready_time > 0
        committed = [r for r in results[ckpt].checkpoints if r.committed]
        assert committed

    def test_na_is_captured_not_raised(self):
        spec = RunSpec.create(
            "poisson", 2, app_kwargs={"niters": 3}, protocol="2pc"
        )
        result = ExperimentEngine().run(spec)
        assert not result.ok
        assert "non-blocking" in result.na_reason

    def test_max_events_guard_trips(self):
        engine = ExperimentEngine(max_events=10)
        with pytest.raises(SchedulingError, match="max_events"):
            engine.run(_spec())

    def test_cache_hit_skips_execution(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = ExperimentEngine(cache=cache)
        first = cold.run(_spec())
        assert cold.last_stats.executed == 1
        warm = ExperimentEngine(cache=cache)
        second = warm.run(_spec())
        assert warm.last_stats.executed == 0
        assert warm.last_stats.cache_hits == 1
        assert second.runtime == first.runtime


class TestParallel:
    def test_parallel_equals_serial(self):
        specs = [
            _spec(app_kwargs={"niters": n}, seed=s, protocol=proto)
            for n in (3, 4)
            for s in (0, 1)
            for proto in ("native", "cc")
        ]
        serial = ExperimentEngine(jobs=1).run_batch(specs)
        parallel = ExperimentEngine(jobs=2).run_batch(specs)
        assert set(serial) == set(parallel)
        for spec in serial:
            assert serial[spec].runtime == parallel[spec].runtime
            assert serial[spec].sim_events == parallel[spec].sim_events
            assert serial[spec].per_rank == parallel[spec].per_rank


class TestPlans:
    def test_cross_figure_dedupe(self):
        """Batching figures launches fewer unique jobs than cells: the
        miniVASP cells shared by Table 1, Figure 7, and Figure 8 (same
        app config, layout, protocol, and seed) simulate once."""
        plans = [
            plan_table1(nprocs=8, ppn=8),
            plan_fig7(nprocs=8, ppn=8, repeats=1),
            plan_fig8(procs=(8,), ppn=8, repeats=1),
        ]
        engine = ExperimentEngine()
        results = run_plans(plans, engine)
        stats = engine.last_stats
        assert stats.unique < stats.submitted
        assert stats.deduped >= 4  # vasp x3 protocols + poisson native
        assert [r.name for r in results] == ["table1", "fig7", "fig8"]

    def test_batched_equals_individual(self):
        """Folding from a shared batch gives the same tables as running
        each figure alone."""
        make = lambda: [
            plan_fig7(nprocs=4, ppn=4, repeats=1),
            plan_fig8(procs=(4,), ppn=4, repeats=1, niters=6),
        ]
        combined = run_plans(make(), ExperimentEngine())
        alone = [run_plans([p], ExperimentEngine())[0] for p in make()]
        assert [r.render() for r in combined] == [r.render() for r in alone]

    def test_warm_cache_runs_zero_simulations(self, tmp_path):
        cache = ResultCache(tmp_path)
        plans = lambda: [plan_fig9(nodes=(1,), ppn=2, niters=5)]
        cold = ExperimentEngine(cache=cache)
        first = run_plans(plans(), cold)[0]
        assert cold.last_stats.executed > 0
        warm = ExperimentEngine(cache=cache)
        second = run_plans(plans(), warm)[0]
        assert warm.last_stats.executed == 0
        assert warm.last_stats.cache_hits > 0
        assert second.render() == first.render()

    def test_fig5b_records_na_reason_in_notes(self):
        result = run_plans(
            [plan_fig5b(procs=(4,), kinds=("allreduce",), sizes=(4,), iters=8)],
            ExperimentEngine(),
        )[0]
        assert result.rows[0][3] == "NA"
        assert "NA[iallreduce/4B/4/2pc]" in result.notes
        assert "non-blocking" in result.notes

    def test_fig7_records_na_reason_in_notes(self):
        result = run_plans(
            [plan_fig7(nprocs=4, ppn=4, repeats=1)], ExperimentEngine()
        )[0]
        assert "NA[poisson/2pc]" in result.notes
