"""Tests for the on-disk result cache."""

import json

from repro.harness.cache import ResultCache, default_cache_dir
from repro.harness.spec import SCHEMA_VERSION, RunSpec, execute, spec_hash


def _spec(**overrides):
    base = dict(app="comd", nprocs=2, app_kwargs={"niters": 3}, seed=0)
    base.update(overrides)
    return RunSpec.create(base.pop("app"), base.pop("nprocs"), **base)


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    assert cache.get(spec) is None
    result = execute(spec)
    path = cache.put(spec, result)
    assert path.exists()
    # Sharded layout: v<SCHEMA>/<first-two-hex-of-hash>/<hash>.json
    assert path.parent.name == path.stem[:2]
    assert path.parent.parent.name == f"v{SCHEMA_VERSION}"
    assert path.stem == spec_hash(spec)
    cached = cache.get(spec)
    assert cached is not None
    assert cached.runtime == result.runtime
    assert cached.per_rank == result.per_rank
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_different_specs_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path)
    a, b = _spec(seed=0), _spec(seed=1)
    cache.put(a, execute(a))
    assert cache.get(b) is None


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    path = cache.put(spec, execute(spec))
    path.write_text("{not json")
    assert cache.get(spec) is None
    path.write_text(json.dumps({"spec": {}}))  # valid JSON, missing result
    assert cache.get(spec) is None


def test_entry_is_inspectable_json(tmp_path):
    """Cache entries carry the spec for debuggability."""
    cache = ResultCache(tmp_path)
    spec = _spec()
    path = cache.put(spec, execute(spec))
    document = json.loads(path.read_text())
    assert document["spec"]["app"] == "comd"
    assert document["result"]["nprocs"] == 2


def test_clear_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    assert len(cache) == 0
    for seed in range(3):
        spec = _spec(seed=seed)
        cache.put(spec, execute(spec))
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0
    assert cache.get(_spec(seed=0)) is None


def test_default_cache_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro-mpi"


class TestTimingEviction:
    """The timing sidecar is capped and tracks prune evictions
    (regression: it was merge-on-write only and grew without bound)."""

    def test_prune_drops_evicted_timings(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = _spec(seed=0), _spec(seed=1)
        cache.put(a, execute(a), elapsed=0.5)
        cache.put(b, execute(b), elapsed=0.7)
        assert cache.timing_count() == 2
        assert cache.prune([a]) == 1
        assert cache.recorded_time(a) is None
        assert cache.recorded_time(b) == 0.7
        fresh = ResultCache(tmp_path)
        assert fresh.timing_count() == 1
        assert fresh.recorded_time(b) == 0.7

    def test_clear_still_keeps_timings(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        cache.put(spec, execute(spec), elapsed=0.5)
        cache.clear()
        assert ResultCache(tmp_path).recorded_time(spec) == 0.5

    def test_legacy_float_sidecar_still_loads(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = _spec()
        from repro.harness.spec import spec_hash as _hash

        cache.timings_path.parent.mkdir(parents=True, exist_ok=True)
        cache.timings_path.write_text(json.dumps({_hash(spec): 1.5}))
        assert cache.recorded_time(spec) == 1.5
        # A new record upgrades the file format without losing the entry.
        other = _spec(seed=7)
        cache.record_time(other, 0.25)
        fresh = ResultCache(tmp_path)
        assert fresh.recorded_time(spec) == 1.5
        assert fresh.recorded_time(other) == 0.25

    def test_sidecar_capped_oldest_first(self, tmp_path, monkeypatch):
        import repro.harness.cache as cache_mod

        monkeypatch.setattr(cache_mod, "TIMINGS_MAX_ENTRIES", 5)
        cache = ResultCache(tmp_path)
        specs = [_spec(seed=i) for i in range(8)]
        for i, spec in enumerate(specs):
            cache.record_time(spec, 0.1 + i)
        assert cache.timing_count() == 5
        # The most recent records survive; the earliest were evicted.
        assert cache.recorded_time(specs[0]) is None
        assert cache.recorded_time(specs[-1]) == 0.1 + 7

    def test_merge_does_not_resurrect_dropped(self, tmp_path):
        cache = ResultCache(tmp_path)
        a, b = _spec(seed=0), _spec(seed=1)
        cache.record_time(a, 0.5)
        cache.drop_timings([spec_hash(a)])
        cache.record_time(b, 0.7)  # merge-on-write happens here
        fresh = ResultCache(tmp_path)
        assert fresh.recorded_time(a) is None
        assert fresh.recorded_time(b) == 0.7


class TestAgeAndSizePrune:
    def _populate(self, tmp_path, n=4):
        import os
        import time as _time

        cache = ResultCache(tmp_path)
        result = execute(_spec())
        paths = []
        for i in range(n):
            spec = _spec(seed=100 + i)
            path = cache.put(spec, result, elapsed=0.5)
            # Deterministic, well-separated mtimes: oldest first.
            stamp = _time.time() - (n - i) * 1000
            os.utime(path, (stamp, stamp))
            paths.append((spec, path))
        return cache, paths

    def test_prune_older_than(self, tmp_path):
        cache, paths = self._populate(tmp_path)
        # Entries are 4000/3000/2000/1000 seconds old: evict > 2500s.
        removed = cache.prune_older_than(2500)
        assert removed == 2
        assert not paths[0][1].exists() and not paths[1][1].exists()
        assert paths[2][1].exists() and paths[3][1].exists()
        assert cache.recorded_time(paths[0][0]) is None
        assert cache.recorded_time(paths[3][0]) == 0.5

    def test_prune_to_max_entries_keeps_newest(self, tmp_path):
        cache, paths = self._populate(tmp_path)
        assert cache.prune_to_max_entries(1) == 3
        assert len(cache) == 1
        assert paths[-1][1].exists()
        assert cache.recorded_time(paths[-1][0]) == 0.5

    def test_prune_to_max_entries_noop_when_under(self, tmp_path):
        cache, _paths = self._populate(tmp_path, n=2)
        assert cache.prune_to_max_entries(10) == 0
        assert len(cache) == 2

    def test_empty_cache_prunes_cleanly(self, tmp_path):
        cache = ResultCache(tmp_path / "nope")
        assert cache.prune_older_than(10) == 0
        assert cache.prune_to_max_entries(0) == 0


# --------------------------------------------------------------------- #
# Sharded layout + transparent migration of flat legacy caches
# --------------------------------------------------------------------- #

def _flatten_entry(cache, spec):
    """Rewrite ``spec``'s entry in the pre-sharding flat location, as a
    cache written by an older version would have left it."""
    sharded = cache.path_for(spec)
    legacy = cache.version_dir / sharded.name
    legacy.write_bytes(sharded.read_bytes())
    sharded.unlink()
    return legacy


def test_legacy_flat_entry_is_read_and_migrated(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    result = execute(spec)
    cache.put(spec, result)
    legacy = _flatten_entry(cache, spec)
    assert not cache.path_for(spec).exists()

    fresh = ResultCache(tmp_path)
    cached = fresh.get(spec)
    assert cached is not None
    assert cached.runtime == result.runtime
    # The hit moved the file into its shard; the flat copy is gone.
    assert fresh.path_for(spec).exists()
    assert not legacy.exists()
    # A second read comes straight from the shard.
    assert fresh.get(spec) is not None
    assert fresh.stats.hits == 2 and fresh.stats.misses == 0


def test_enumeration_spans_both_layouts(tmp_path):
    cache = ResultCache(tmp_path)
    a, b = _spec(seed=0), _spec(seed=1)
    cache.put(a, execute(a))
    cache.put(b, execute(b))
    _flatten_entry(cache, a)

    fresh = ResultCache(tmp_path)
    assert len(fresh) == 2
    assert fresh.total_bytes() > 0
    # clear() sweeps flat and sharded entries alike.
    assert fresh.clear() == 2
    assert len(fresh) == 0


def test_prune_removes_legacy_flat_entries(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    cache.put(spec, execute(spec))
    _flatten_entry(cache, spec)

    fresh = ResultCache(tmp_path)
    assert fresh.prune([spec]) == 1
    assert len(fresh) == 0
    assert fresh.get(spec) is None


def test_restore_supersedes_legacy_copy(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    cache.put(spec, execute(spec))
    legacy = _flatten_entry(cache, spec)
    # A re-store lands in the shard and drops the stale flat copy, so
    # the entry is never double-counted.
    cache.put(spec, execute(spec))
    assert cache.path_for(spec).exists()
    assert not legacy.exists()
    assert len(cache) == 1
