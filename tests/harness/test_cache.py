"""Tests for the on-disk result cache."""

import json

from repro.harness.cache import ResultCache, default_cache_dir
from repro.harness.spec import SCHEMA_VERSION, RunSpec, execute, spec_hash


def _spec(**overrides):
    base = dict(app="comd", nprocs=2, app_kwargs={"niters": 3}, seed=0)
    base.update(overrides)
    return RunSpec.create(base.pop("app"), base.pop("nprocs"), **base)


def test_miss_then_hit(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    assert cache.get(spec) is None
    result = execute(spec)
    path = cache.put(spec, result)
    assert path.exists()
    assert path.parent.name == f"v{SCHEMA_VERSION}"
    assert path.stem == spec_hash(spec)
    cached = cache.get(spec)
    assert cached is not None
    assert cached.runtime == result.runtime
    assert cached.per_rank == result.per_rank
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def test_different_specs_do_not_collide(tmp_path):
    cache = ResultCache(tmp_path)
    a, b = _spec(seed=0), _spec(seed=1)
    cache.put(a, execute(a))
    assert cache.get(b) is None


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _spec()
    path = cache.put(spec, execute(spec))
    path.write_text("{not json")
    assert cache.get(spec) is None
    path.write_text(json.dumps({"spec": {}}))  # valid JSON, missing result
    assert cache.get(spec) is None


def test_entry_is_inspectable_json(tmp_path):
    """Cache entries carry the spec for debuggability."""
    cache = ResultCache(tmp_path)
    spec = _spec()
    path = cache.put(spec, execute(spec))
    document = json.loads(path.read_text())
    assert document["spec"]["app"] == "comd"
    assert document["result"]["nprocs"] == 2


def test_clear_and_len(tmp_path):
    cache = ResultCache(tmp_path)
    assert len(cache) == 0
    for seed in range(3):
        spec = _spec(seed=seed)
        cache.put(spec, execute(spec))
    assert len(cache) == 3
    assert cache.clear() == 3
    assert len(cache) == 0
    assert cache.get(_spec(seed=0)) is None


def test_default_cache_dir_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "custom"))
    assert default_cache_dir() == tmp_path / "custom"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
    assert default_cache_dir() == tmp_path / "xdg" / "repro-mpi"
