"""The ``repro-mpi sweep`` subcommand: axes, studies, cache, golden output."""

import json

import pytest

from repro.cli import main

TINY = [
    "sweep",
    "--axis", "app=comd,poisson",
    "--axis", "protocol=native,2pc,cc",
    "--axis", "nprocs=2",
    "--base", "niters=2",
    "--pivot", "protocol",
    "--baseline", "native",
    "--quiet",
]


def _run(argv, capsys):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestSweepCli:
    def test_golden_output(self, tmp_path, capsys):
        """Pin the rendered shape of a tiny sweep (simulations are
        deterministic, so the full table is reproducible)."""
        out = _run(TINY + ["--cache-dir", str(tmp_path)], capsys)
        lines = out.splitlines()
        assert lines[0] == "== Sweep: sweep (6 cells) =="
        header = lines[1]
        assert [c.strip() for c in header.split("|")] == [
            "app", "nprocs", "native runtime (s)", "2pc runtime (s)",
            "cc runtime (s)", "2pc %", "cc %",
        ]
        comd_row = [c.strip() for c in lines[3].split("|")]
        assert comd_row[0] == "comd" and comd_row[1] == "2"
        poisson_row = [c.strip() for c in lines[4].split("|")]
        assert poisson_row[0] == "poisson"
        assert poisson_row[3] == "NA" and poisson_row[5] == "NA"
        assert any(
            line.startswith("NA[poisson/2/2pc]: 2PC does not support")
            for line in lines
        )
        assert any(line.startswith("[sweep:sweep: engine: ") for line in lines)

    def test_output_is_deterministic_and_cache_warm(self, tmp_path, capsys):
        cold = _run(TINY + ["--cache-dir", str(tmp_path)], capsys)
        warm = _run(TINY + ["--cache-dir", str(tmp_path)], capsys)
        # Identical tables; only the engine-stats/wall-time line differs.
        strip = lambda text: [
            l for l in text.splitlines() if not l.startswith("[sweep:")
        ]
        assert strip(cold) == strip(warm)
        assert "5 cache hits, 0 simulated" in warm

    def test_study_mode(self, tmp_path, capsys):
        out = _run(
            ["sweep", "--study", "ckpt_freq", "--nprocs", "2", "--quiet",
             "--cache-dir", str(tmp_path)],
            capsys,
        )
        assert "Checkpoint frequency: minivasp" in out
        assert "[sweep:ckpt_freq:" in out

    def test_bench_json_record(self, tmp_path, capsys):
        bench = tmp_path / "bench.json"
        _run(
            TINY + ["--cache-dir", str(tmp_path), "--bench-json", str(bench)],
            capsys,
        )
        records = json.loads(bench.read_text())
        assert records[0]["figures"] == ["sweep:sweep"]
        assert records[0]["engine"]["submitted"] == 5

    def test_axis_and_study_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--study", "scale_grid", "--axis", "nprocs=2"])

    def test_study_rejects_ignored_fold_flags(self):
        """Flags a study cannot honor error out instead of silently
        producing a differently-shaped table."""
        with pytest.raises(SystemExit):
            main(["sweep", "--study", "ckpt_freq", "--metric", "ckpt_time"])
        with pytest.raises(SystemExit):
            main(["sweep", "--study", "ckpt_freq", "--name", "mystudy"])

    def test_requires_axes_or_study(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--quiet"])

    def test_bad_axis_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "nprocs"])

    def test_duplicate_axis_key_rejected(self):
        """A repeated key must not silently collapse to the last value."""
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "nprocs=2", "--axis", "nprocs=4,8",
                  "--base", "app=comd", "--quiet", "--no-cache"])

    def test_procs_flags_rejected_in_axis_mode(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "protocol=native", "--base", "app=comd",
                  "--base", "nprocs=2", "--procs", "8,16", "--quiet",
                  "--no-cache"])

    def test_study_rejects_other_studys_scale_knob(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--study", "ckpt_freq", "--procs", "8,16"])
        with pytest.raises(SystemExit):
            main(["sweep", "--study", "scale_grid", "--nprocs", "8"])

    def test_bad_fold_flags_fail_before_simulating(self, capsys):
        """A typo'd pivot/metric must error up front, not after the grid
        has simulated (validated at plan-bind time)."""
        for flags in (["--pivot", "bogus"], ["--metric", "walltime"],
                      ["--pivot", "protocol", "--baseline", "mpi"],
                      ["--baseline", "native"]):
            with pytest.raises(SystemExit):
                main(["sweep", "--axis", "protocol=native,cc",
                      "--base", "app=comd", "--base", "nprocs=2",
                      "--base", "niters=2", "--quiet", "--no-cache"] + flags)

    def test_sweep_declaration_errors_are_cli_errors(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--axis", "app=comdd", "--base", "nprocs=2",
                  "--quiet", "--no-cache"])

    def test_value_coercion(self, capsys):
        """bools/ints/floats in axis values reach the spec typed."""
        out = _run(
            ["sweep", "--axis", "blocking=true,false",
             "--base", "app=osu", "--base", "nprocs=2", "--base", "niters=2",
             "--base", "kind=bcast", "--base", "protocol=cc",
             "--quiet", "--no-cache"],
            capsys,
        )
        lines = out.splitlines()
        assert any("True" in l for l in lines) and any("False" in l for l in lines)
