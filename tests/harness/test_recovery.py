"""The bounded-retry recovery planner, unit- and integration-level.

Pinned here: the policy resolution ladder, image-restart vs
degrade-to-scratch planning, multi-hop crash storms under a retry
budget, chain content-hashing, the engine's auto-recovery seam — and
byte-identity of a full recovery chain across all three dispatch
backends (inline, local-pool, service).
"""

import json

import pytest

from repro.harness.engine import ExperimentEngine
from repro.harness.recovery import (
    RecoveryError,
    RecoveryOutcome,
    RecoveryPolicy,
    resolve_policy,
    run_recovery,
    set_default_policy,
)
from repro.harness.service import ExperimentServer, run_worker
from repro.harness.spec import RunSpec, execute, run_result_to_dict
from repro.harness.verify import result_fingerprint
from repro.netmodel import StorageModel

# Tuned so the graceful checkpoint commits mid-run (~0.27 of the
# runtime) with ranks 1-3 still alive after the commit: a crash at 0.35
# lands *after* a committed image exists, so recovery restarts from it.
KW = dict(
    app_kwargs={
        "niters": 60, "shared": 4, "leavers": 1, "memory_bytes": 1 << 10,
    },
    protocol="cc",
    seed=3,
    storage=StorageModel(base_latency=1e-6),
)


def _mk(**overrides):
    kwargs = dict(KW)
    kwargs.update(overrides)
    return RunSpec.create("earlyexit", 4, **kwargs)


def _crash_spec():
    return _mk(checkpoint_fractions=(0.2,), crash_fracs=((1, 0.35),))


@pytest.fixture(autouse=True)
def _clean_policy(monkeypatch):
    monkeypatch.delenv("REPRO_RECOVERY_ATTEMPTS", raising=False)
    monkeypatch.delenv("REPRO_RECOVERY_BACKOFF", raising=False)
    yield
    set_default_policy(None)


@pytest.fixture(scope="module")
def base_fp():
    return result_fingerprint(execute(_mk()))


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RecoveryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff"):
            RecoveryPolicy(backoff=-1.0)

    def test_backoff_doubles_and_caps(self):
        policy = RecoveryPolicy(backoff=100.0)
        assert policy.delay_before(1) == 100.0
        assert policy.delay_before(2) == 200.0
        assert policy.delay_before(3) == 300.0  # capped, not 400
        with pytest.raises(ValueError, match="1-based"):
            policy.delay_before(0)

    def test_resolution_ladder(self, monkeypatch):
        # Defaults at the bottom...
        assert resolve_policy(None) == RecoveryPolicy()
        # ...environment above them...
        monkeypatch.setenv("REPRO_RECOVERY_ATTEMPTS", "7")
        monkeypatch.setenv("REPRO_RECOVERY_BACKOFF", "2.5")
        assert resolve_policy(None) == RecoveryPolicy(7, 2.5)
        # ...process default above the environment...
        set_default_policy(RecoveryPolicy(max_attempts=2))
        assert resolve_policy(None) == RecoveryPolicy(max_attempts=2)
        # ...and the explicit argument wins outright.
        assert resolve_policy(RecoveryPolicy(9)) == RecoveryPolicy(9)


class TestRecoveryChains:
    def test_crash_after_commit_restarts_from_image(self, base_fp):
        outcome = run_recovery(_crash_spec())
        assert outcome.completed
        assert [a.restarted_from for a in outcome.attempts] == [
            "initial", "image",
        ]
        assert outcome.attempts[0].crashed
        assert outcome.attempts[1].spec.restart_of is not None
        assert result_fingerprint(outcome.final_result) == base_fp

    def test_crash_without_commit_degrades_to_scratch(self, base_fp):
        # No checkpoint schedule anywhere in the chain: nothing ever
        # commits, so the only recovery is re-running from scratch.
        outcome = run_recovery(_mk(crash_fracs=((1, 0.4),)))
        assert outcome.completed
        assert [a.restarted_from for a in outcome.attempts] == [
            "initial", "scratch",
        ]
        assert outcome.attempts[1].spec.restart_of is None
        assert result_fingerprint(outcome.final_result) == base_fp

    def test_multi_hop_storm_crash_restart_crash(self, base_fp):
        # The first recovery leg is crashed too (a restart-leg crash);
        # the second gets through.  Both restart from the same image.
        outcome = run_recovery(
            _crash_spec(),
            RecoveryPolicy(max_attempts=4),
            leg_faults=[((2, 0.4),)],
        )
        assert outcome.completed
        assert [a.restarted_from for a in outcome.attempts] == [
            "initial", "image", "image",
        ]
        assert outcome.attempts[1].result.crashed_ranks == [2]
        assert result_fingerprint(outcome.final_result) == base_fp

    def test_budget_exhaustion_is_reported_not_raised(self):
        # Every leg crashes; the budget runs dry after two recovery
        # legs.  The modelled backoff is charged per attempt (1s + 2s).
        outcome = run_recovery(
            _crash_spec(),
            RecoveryPolicy(max_attempts=2, backoff=1.0),
            leg_faults=[((2, 0.1),), ((3, 0.1),)],
        )
        assert not outcome.completed
        assert outcome.recovery_legs == 2
        assert outcome.final_result.crashed_ranks
        assert outcome.total_delay == 3.0
        assert "budget exhausted" in outcome.describe()

    def test_crashed_restart_leg_relaunches_from_parent_image(self, base_fp):
        # The *initial* spec is itself a restart leg that dies mid-
        # restart.  Its own run commits nothing, but relaunching it
        # still adopts the parent's committed image — that is an image
        # recovery, not a scratch one.
        parent = _mk(checkpoint_fractions=(0.2,))
        leg = _mk(restart_of=parent, restart_ckpt=0,
                  crash_fracs=((2, 0.3),))
        outcome = run_recovery(leg)
        assert outcome.completed
        assert [a.restarted_from for a in outcome.attempts] == [
            "initial", "image",
        ]
        assert result_fingerprint(outcome.final_result) == base_fp

    def test_chain_key_is_deterministic_and_discriminating(self):
        plain = run_recovery(_crash_spec())
        again = run_recovery(_crash_spec())
        stormy = run_recovery(
            _crash_spec(),
            RecoveryPolicy(max_attempts=4),
            leg_faults=[((2, 0.4),)],
        )
        assert plain.chain_key() == again.chain_key()
        assert plain.chain_key() != stormy.chain_key()

    def test_empty_outcome_raises(self):
        with pytest.raises(RecoveryError, match="empty"):
            RecoveryOutcome().final_result


class TestEngineAutoRecovery:
    def test_engine_recovers_crashed_jobs(self, base_fp):
        spec = _crash_spec()
        with ExperimentEngine(
            cache=None, progress=False, dispatch="inline", recovery=True
        ) as eng:
            results = eng.run_batch([spec])
        assert results[spec].crashed_ranks == []
        assert result_fingerprint(results[spec]) == base_fp
        assert eng.last_stats.recoveries == 1
        assert eng.last_stats.recovery_attempts == 1
        assert "1 crashed jobs recovered" in eng.last_stats.summary()

    def test_recovery_off_by_default(self):
        spec = _crash_spec()
        with ExperimentEngine(
            cache=None, progress=False, dispatch="inline"
        ) as eng:
            results = eng.run_batch([spec])
        assert results[spec].crashed_ranks == [1]
        assert eng.last_stats.recoveries == 0

    def test_per_batch_opt_in_and_opt_out(self):
        spec = _crash_spec()
        with ExperimentEngine(
            cache=None, progress=False, dispatch="inline"
        ) as eng:
            assert eng.run_batch([spec], recover=True)[spec].crashed_ranks == []
        with ExperimentEngine(
            cache=None, progress=False, dispatch="inline", recovery=True
        ) as eng:
            assert eng.run_batch(
                [spec], recover=False
            )[spec].crashed_ranks == [1]

    def test_engine_run_recovery_uses_custom_policy(self):
        with ExperimentEngine(
            cache=None, progress=False, dispatch="inline"
        ) as eng:
            outcome = eng.run_recovery(
                _crash_spec(),
                RecoveryPolicy(max_attempts=1),
                leg_faults=[((2, 0.1),)],
            )
        assert not outcome.completed
        assert outcome.recovery_legs == 1


class TestBackendByteIdentity:
    """One recovery chain, three dispatch backends, identical bytes."""

    LEG_FAULTS = [((2, 0.4),)]

    def _chain(self, engine):
        return run_recovery(
            _crash_spec(),
            RecoveryPolicy(max_attempts=4),
            leg_faults=self.LEG_FAULTS,
            engine=engine,
        )

    def _final_bytes(self, outcome):
        return json.dumps(
            run_result_to_dict(outcome.final_result), sort_keys=True
        )

    def test_chain_identical_across_all_backends(self, tmp_path):
        import threading

        with ExperimentEngine(
            cache=None, progress=False, dispatch="inline"
        ) as eng:
            reference = self._chain(eng)
        assert reference.completed

        with ExperimentEngine(
            cache=None, progress=False, dispatch="local-pool", jobs=2
        ) as eng:
            pooled = self._chain(eng)

        server = ExperimentServer(
            "127.0.0.1", 0, cache_dir=tmp_path / "store"
        )
        host, port = server.start()
        worker = threading.Thread(
            target=run_worker, args=((host, port),), daemon=True
        )
        worker.start()
        try:
            with ExperimentEngine(
                cache=None, progress=False,
                dispatch="service", service=f"{host}:{port}",
            ) as eng:
                served = self._chain(eng)
        finally:
            server.shutdown()
            worker.join(timeout=30)

        want = self._final_bytes(reference)
        assert self._final_bytes(pooled) == want
        assert self._final_bytes(served) == want
        assert pooled.chain_key() == reference.chain_key()
        assert served.chain_key() == reference.chain_key()
        assert [a.restarted_from for a in served.attempts] == [
            a.restarted_from for a in reference.attempts
        ]
