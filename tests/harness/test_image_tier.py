"""The result cache's image tier and the warm-restart fast path.

Three layers under test:

* the blob format — ``pack_image_set``/``unpack_image_set`` round-trip
  arbitrary upper-half state and refuse anything corrupt (property
  test);
* the :class:`ResultCache` tier — blobs written on ``put``, served to
  restarts, and evicted together with their entries;
* the engine short-circuit — a warm restart-chain batch simulates zero
  parent jobs and produces results byte-identical to a cold recompute.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness import ExperimentEngine, ResultCache, Sweep
from repro.harness.spec import (
    RunSpec,
    execute,
    run_result_to_dict,
    spec_hash,
)
from repro.mana.image import (
    CheckpointImage,
    ImageError,
    pack_image_set,
    unpack_image_set,
)
from repro.netmodel import StorageModel

#: Burst-buffer-ish storage so checkpoint phases stay fast at test scale.
STORAGE = StorageModel(
    per_node_bandwidth=8.0e9, aggregate_bandwidth=2.0e10, base_latency=1e-3
)


def _ckpt_spec(**overrides):
    base = dict(
        app="poisson",
        nprocs=2,
        app_kwargs={"niters": 4, "memory_bytes": 1 << 20},
        protocol="cc",
        seed=0,
        checkpoint_fractions=(0.5,),
        storage=STORAGE,
    )
    base.update(overrides)
    return RunSpec.create(base.pop("app"), base.pop("nprocs"), **base)


def _restart_spec(parent, **overrides):
    return RunSpec.create(
        parent.app,
        parent.nprocs,
        app_kwargs=dict(parent.app_kwargs),
        protocol=parent.protocol,
        seed=parent.seed,
        storage=parent.storage,
        restart_of=parent,
        **overrides,
    )


# --------------------------------------------------------------------- #
# Blob format round-trip (property test)
# --------------------------------------------------------------------- #

#: JSON-ish upper-half state: what application ``state`` dicts hold,
#: minus numpy arrays (added deterministically below — hypothesis and
#: array equality don't mix well inside recursive strategies).
_payloads = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**40), 2**40)
    | st.floats(allow_nan=False, width=32)
    | st.text(max_size=12),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=6), children, max_size=3),
    max_leaves=12,
)


def _assert_images_equal(a: CheckpointImage, b: CheckpointImage) -> None:
    for name in (
        "rank",
        "nprocs",
        "protocol",
        "ckpt_id",
        "seq_table",
        "ggid_peers",
        "creation_log",
        "call_index",
        "boundary_index",
        "call_log",
        "drained",
        "vreq_table",
        "pending_recvs",
        "remaining_compute",
        "declared_bytes",
        "stats",
    ):
        assert getattr(a, name) == getattr(b, name), name
    assert set(a.app_state) == set(b.app_state)
    for key, value in a.app_state.items():
        other = b.app_state[key]
        if isinstance(value, np.ndarray):
            assert np.array_equal(value, other)
        else:
            assert value == other


@settings(max_examples=25, deadline=None)
@given(state=_payloads, ranks=st.integers(1, 4), data=st.data())
def test_pack_unpack_round_trip(state, ranks, data):
    images = {}
    for rank in range(ranks):
        images[rank] = CheckpointImage(
            rank=rank,
            nprocs=ranks,
            protocol="cc",
            ckpt_id=data.draw(st.integers(0, 5)),
            app_state={
                "payload": state,
                "grid": np.arange(6, dtype=np.float64) * (rank + 1),
            },
            seq_table={7: rank},
            ggid_peers={7: list(range(ranks))},
            pending_recvs=[rank],
            remaining_compute=data.draw(
                st.floats(0, 1e3, allow_nan=False)
            ),
            declared_bytes=rank << 20,
            stats={"calls": rank},
        )
    restored = unpack_image_set(pack_image_set(images))
    assert set(restored) == set(images)
    for rank in images:
        _assert_images_equal(images[rank], restored[rank])


@pytest.mark.parametrize(
    "mutate",
    [
        lambda raw: raw[:10],  # truncated header
        lambda raw: b"NOTMAGIC" + raw[8:],  # wrong magic
        lambda raw: raw[:-5],  # truncated payload
        lambda raw: raw[:-1] + bytes([raw[-1] ^ 0xFF]),  # flipped bit
        lambda raw: b"",  # empty file
    ],
)
def test_unpack_rejects_corruption(mutate):
    images = {0: CheckpointImage(rank=0, nprocs=1, protocol="cc", ckpt_id=0)}
    raw = pack_image_set(images)
    with pytest.raises(ImageError):
        unpack_image_set(mutate(raw))


# --------------------------------------------------------------------- #
# ResultCache tier behavior
# --------------------------------------------------------------------- #

def test_put_stores_image_blobs(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _ckpt_spec()
    result = execute(spec)
    assert [r for r in result.checkpoints if r.committed]
    cache.put(spec, result)
    assert cache.image_count() == 1
    assert cache.has_images(spec, 0)
    assert not cache.has_images(spec, 1)
    assert cache.image_bytes() > 0
    assert cache.stats.image_stores == 1
    restored = cache.get_images(spec, 0)
    assert restored is not None
    assert set(restored) == set(result.checkpoints[-1].images)


def test_uncheckpointed_put_stores_nothing(tmp_path):
    cache = ResultCache(tmp_path)
    spec = RunSpec.create("comd", 2, app_kwargs={"niters": 3})
    cache.put(spec, execute(spec))
    assert cache.image_count() == 0


def test_corrupt_or_legacy_blob_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _ckpt_spec()
    cache.put(spec, execute(spec))
    path = cache.image_path_for(spec, 0)
    path.write_bytes(b"LEGACY-FORMAT-NOT-AN-ARCHIVE")
    assert cache.get_images(spec, 0) is None
    # has_images may still say True (existence probe); execution falls
    # back to re-simulating the parent, so the restart still works —
    # and the failed load is NOT reported as tier reuse.
    restart = _restart_spec(spec, checkpoint_fractions=())
    engine = ExperimentEngine(cache=ResultCache(tmp_path))
    warm = engine.run(restart)
    assert warm.ok
    assert engine.last_stats.images_reused == 0


def test_prune_and_clear_evict_blobs(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _ckpt_spec()
    cache.put(spec, execute(spec))
    assert cache.image_count() == 1
    assert cache.prune([spec]) == 1
    assert cache.image_count() == 0

    cache.put(spec, execute(spec))
    cache.clear()
    assert cache.image_count() == 0


def test_prune_to_max_entries_takes_blobs_along(tmp_path):
    cache = ResultCache(tmp_path)
    old, new = _ckpt_spec(seed=0), _ckpt_spec(seed=1)
    import os
    import time as _time

    cache.put(old, execute(old))
    stamp = _time.time() - 3600
    os.utime(cache.path_for(old), (stamp, stamp))
    os.utime(cache.image_path_for(old, 0), (stamp, stamp))
    cache.put(new, execute(new))
    assert cache.prune_to_max_entries(1) == 1
    assert not cache.path_for(old).exists()
    assert not cache.has_images(old, 0)
    assert cache.has_images(new, 0)


def test_prune_older_than_ages_blobs_on_their_own_clock(tmp_path):
    import os
    import time as _time

    cache = ResultCache(tmp_path)
    spec = _ckpt_spec()
    cache.put(spec, execute(spec))
    stamp = _time.time() - 7200
    os.utime(cache.image_path_for(spec, 0), (stamp, stamp))
    # The entry is fresh; only the blob is stale.
    assert cache.prune_older_than(3600) == 0
    assert cache.path_for(spec).exists()
    assert cache.image_count() == 0


def test_prune_images_to_max_bytes_evicts_oldest_first(tmp_path):
    import os
    import time as _time

    cache = ResultCache(tmp_path)
    old, new = _ckpt_spec(seed=0), _ckpt_spec(seed=1)
    cache.put(old, execute(old))
    stamp = _time.time() - 3600
    os.utime(cache.image_path_for(old, 0), (stamp, stamp))
    cache.put(new, execute(new))
    total = cache.image_bytes()
    new_size = cache.image_path_for(new, 0).stat().st_size
    assert cache.prune_images_to_max_bytes(total - 1) == 1
    assert not cache.has_images(old, 0)
    assert cache.has_images(new, 0)
    assert cache.prune_images_to_max_bytes(new_size) == 0
    assert cache.prune_images_to_max_bytes(0) == 1
    with pytest.raises(ValueError):
        cache.prune_images_to_max_bytes(-1)


# --------------------------------------------------------------------- #
# Cross-spec blob dedupe (content-addressed tier + per-spec pointers)
# --------------------------------------------------------------------- #

def _same_cut_specs():
    """Two *different* specs whose simulations are identical — same app,
    seed, and effective checkpoint instant, one scheduled as a fraction
    and one as the equivalent absolute time — so their committed image
    sets are byte-identical."""
    frac_spec = _ckpt_spec()
    probe = execute(frac_spec.probe_spec())
    abs_spec = _ckpt_spec(
        checkpoint_fractions=(), checkpoint_at=(probe.runtime * 0.5,)
    )
    assert spec_hash(frac_spec) != spec_hash(abs_spec)
    return frac_spec, abs_spec


def test_identical_image_sets_share_one_blob(tmp_path):
    cache = ResultCache(tmp_path)
    frac_spec, abs_spec = _same_cut_specs()
    cache.put(frac_spec, execute(frac_spec))
    bytes_after_first = cache.image_bytes()
    cache.put(abs_spec, execute(abs_spec))
    # Two pointers, ONE payload: the second put added ~nothing.
    assert cache.image_count() == 1
    assert cache.image_bytes() == bytes_after_first
    assert cache.has_images(frac_spec, 0) and cache.has_images(abs_spec, 0)
    assert cache.image_path_for(frac_spec, 0) == cache.image_path_for(abs_spec, 0)
    a = cache.get_images(frac_spec, 0)
    b = cache.get_images(abs_spec, 0)
    assert a is not None and set(a) == set(b)


def test_pruning_one_referrer_keeps_the_shared_blob(tmp_path):
    cache = ResultCache(tmp_path)
    frac_spec, abs_spec = _same_cut_specs()
    cache.put(frac_spec, execute(frac_spec))
    cache.put(abs_spec, execute(abs_spec))
    assert cache.prune([frac_spec]) == 1
    # The survivor still resolves; the blob only falls with its LAST ref.
    assert not cache.has_images(frac_spec, 0)
    assert cache.get_images(abs_spec, 0) is not None
    assert cache.image_count() == 1
    assert cache.prune([abs_spec]) == 1
    assert cache.image_count() == 0
    assert not list((tmp_path / cache.images_dir.name).rglob("*.blob"))


def test_size_eviction_of_shared_blob_drops_every_pointer(tmp_path):
    cache = ResultCache(tmp_path)
    frac_spec, abs_spec = _same_cut_specs()
    cache.put(frac_spec, execute(frac_spec))
    cache.put(abs_spec, execute(abs_spec))
    assert cache.prune_images_to_max_bytes(0) == 1  # one payload existed
    assert not cache.has_images(frac_spec, 0)
    assert not cache.has_images(abs_spec, 0)


def test_legacy_inline_blob_still_served_and_counted(tmp_path):
    """Pointer-location files written before the dedupe hold the archive
    inline; they read, count, and age exactly as before."""
    cache = ResultCache(tmp_path)
    spec = _ckpt_spec()
    result = execute(spec)
    record = [r for r in result.checkpoints if r.committed][0]
    legacy = cache._pointer_path(spec, 0)
    legacy.parent.mkdir(parents=True, exist_ok=True)
    legacy.write_bytes(pack_image_set(record.images))
    assert cache.has_images(spec, 0)
    assert cache.image_count() == 1
    assert cache.image_bytes() == legacy.stat().st_size
    served = cache.get_images(spec, 0)
    assert served is not None and set(served) == set(record.images)
    assert cache.prune_images_to_max_bytes(0) == 1
    assert not legacy.exists()


def test_dangling_pointer_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _ckpt_spec()
    cache.put(spec, execute(spec))
    # Delete the payload out from under the pointer.
    cache.image_path_for(spec, 0).unlink()
    assert cache.has_images(spec, 0)  # existence probe: pointer remains
    assert cache.get_images(spec, 0) is None  # load degrades to a miss


# --------------------------------------------------------------------- #
# Warm-restart fast path: differential and engine-level tests
# --------------------------------------------------------------------- #

def test_warm_restart_is_byte_identical_to_cold(tmp_path):
    """A restart fed from the image tier must equal a cold recompute."""
    parent = _ckpt_spec(app="minivasp", nprocs=4, ppn=2)
    restart = _restart_spec(parent, ppn=2, checkpoint_fractions=())

    # Cold: no cache anywhere; the parent is simulated inline.
    cold = execute(restart)

    # Warm: parent's result and images cached, restart executed fresh
    # by a separate engine (fresh cache object, no in-memory deps).
    ExperimentEngine(cache=ResultCache(tmp_path)).run(parent)
    warm_engine = ExperimentEngine(cache=ResultCache(tmp_path))
    warm = warm_engine.run(restart)
    assert warm_engine.last_stats.executed == 1
    assert warm_engine.last_stats.images_reused == 1

    as_bytes = lambda r: json.dumps(run_result_to_dict(r), sort_keys=True)
    assert as_bytes(cold) == as_bytes(warm)


def test_warm_restart_chain_sweep_simulates_zero_parents(tmp_path):
    sweep = Sweep(
        "warm_restart",
        axes={"protocol": ("2pc", "cc"), "restart": (False, True)},
        base={
            # comd blocks on every collective, so BOTH protocols commit
            # a checkpoint (poisson would make the 2pc column NA).
            "app": "comd",
            "nprocs": 2,
            "niters": 4,
            "memory_bytes": 1 << 20,
            "seed": 0,
            "checkpoint_fractions": 0.5,
            "storage": STORAGE,
        },
    )
    restarts = [s for s in sweep.specs() if s.restart_of is not None]
    assert len(restarts) == 2

    cold_engine = ExperimentEngine(cache=ResultCache(tmp_path))
    cold = cold_engine.run_sweep(sweep)
    # ckpt cells + probes + restarts all simulate once, nothing reused.
    assert cold_engine.last_stats.images_reused == 0

    # A fully warm rerun executes nothing at all.
    rerun_engine = ExperimentEngine(cache=ResultCache(tmp_path))
    rerun_engine.run_sweep(sweep)
    assert rerun_engine.last_stats.executed == 0

    # Evict only the restart cells: the warm engine re-executes exactly
    # those, as wave-0 work, with ZERO parent simulations.
    assert ResultCache(tmp_path).prune(restarts) == len(restarts)
    warm_engine = ExperimentEngine(cache=ResultCache(tmp_path))
    warm = warm_engine.run_sweep(sweep)
    stats = warm_engine.last_stats
    assert stats.executed == len(restarts)
    assert stats.images_reused == len(restarts)
    assert f"{len(restarts)} restarts fed from image tier" in stats.summary()

    for spec in restarts:
        assert run_result_to_dict(warm[spec]) == run_result_to_dict(cold[spec])


def test_short_circuit_skips_missing_parent_entirely(tmp_path):
    """Even the parent's *result* is unnecessary: images alone feed the
    restart, so a parent whose JSON entry was evicted (but whose blob
    survived) is neither simulated nor required."""
    parent = _ckpt_spec()
    restart = _restart_spec(parent, checkpoint_fractions=())
    cache = ResultCache(tmp_path)
    ExperimentEngine(cache=cache).run(parent)
    # Drop the parent's JSON entry but keep its image blob.
    cache.path_for(parent).unlink()
    assert cache.has_images(parent, 0)

    engine = ExperimentEngine(cache=ResultCache(tmp_path))
    result = engine.run(restart)
    assert result.ok
    assert engine.last_stats.executed == 1  # the restart alone
    assert engine.last_stats.images_reused == 1


def test_parallel_warm_restart_matches_serial(tmp_path):
    parent_a = _ckpt_spec(seed=0)
    parent_b = _ckpt_spec(seed=1)
    restarts = [
        _restart_spec(parent_a, checkpoint_fractions=()),
        _restart_spec(parent_b, checkpoint_fractions=()),
    ]
    ExperimentEngine(cache=ResultCache(tmp_path)).run_batch(
        [parent_a, parent_b]
    )
    ResultCache(tmp_path)  # warm tier on disk

    serial_engine = ExperimentEngine(jobs=1, cache=ResultCache(tmp_path))
    serial = serial_engine.run_batch(restarts)
    ResultCache(tmp_path).prune(restarts)
    parallel_engine = ExperimentEngine(jobs=2, cache=ResultCache(tmp_path))
    parallel = parallel_engine.run_batch(restarts)
    assert parallel_engine.last_stats.images_reused == 2
    for spec in restarts:
        assert run_result_to_dict(serial[spec]) == run_result_to_dict(
            parallel[spec]
        )


def test_restart_ckpt_out_of_range_still_raises(tmp_path):
    """A tier miss (index beyond what the parent committed) falls back
    to the strict re-simulation path and its error message."""
    from repro.harness.spec import SpecError

    parent = _ckpt_spec()
    bad = _restart_spec(parent, checkpoint_fractions=(), restart_ckpt=7)
    cache = ResultCache(tmp_path)
    ExperimentEngine(cache=cache).run(parent)
    with pytest.raises(SpecError, match="out of range"):
        ExperimentEngine(cache=ResultCache(tmp_path)).run(bad)


def test_no_cache_engine_unchanged(tmp_path):
    """Without a cache there is no tier: the chain still executes."""
    parent = _ckpt_spec()
    restart = _restart_spec(parent, checkpoint_fractions=())
    engine = ExperimentEngine()
    result = engine.run(restart)
    assert result.ok
    assert engine.last_stats.images_reused == 0
    assert spec_hash(restart)  # smoke: hashing restart chains still works


def test_flat_legacy_pointer_and_blob_migrate_on_read(tmp_path):
    """A pre-sharding cache stored pointers and blobs flat; reads must
    serve them, count them, and migrate them into their shards."""
    cache = ResultCache(tmp_path)
    spec = _ckpt_spec()
    cache.put(spec, execute(spec))

    # Demote the sharded tier files to the flat legacy layout.
    pointer = cache._pointer_path(spec, 0)
    flat_pointer = cache.images_dir / pointer.name
    flat_pointer.write_bytes(pointer.read_bytes())
    pointer.unlink()
    digest = cache._parse_pointer(flat_pointer.read_bytes())
    blob = cache._blob_path(digest)
    flat_blob = cache.blobs_dir / blob.name
    flat_blob.write_bytes(blob.read_bytes())
    blob.unlink()

    fresh = ResultCache(tmp_path)
    assert fresh.image_count() == 1
    assert fresh.has_images(spec, 0)
    images = fresh.get_images(spec, 0)
    assert images is not None
    # Both files moved into their shard directories.
    assert fresh._pointer_path(spec, 0).is_file()
    assert fresh._blob_path(digest).is_file()
    assert not flat_pointer.exists()
    assert not flat_blob.exists()
    # And nothing was double-counted after migration.
    assert fresh.image_count() == 1


def test_prune_drops_flat_legacy_pointers_too(tmp_path):
    cache = ResultCache(tmp_path)
    spec = _ckpt_spec()
    cache.put(spec, execute(spec))
    pointer = cache._pointer_path(spec, 0)
    flat_pointer = cache.images_dir / pointer.name
    flat_pointer.write_bytes(pointer.read_bytes())
    pointer.unlink()

    fresh = ResultCache(tmp_path)
    assert fresh.prune([spec]) == 1
    assert fresh.image_count() == 0
    assert not flat_pointer.exists()
    assert fresh.get_images(spec, 0) is None
