"""Tests for the declarative RunSpec layer: hashing, serialization,
chain structure, and execution semantics."""

import json
import os
import subprocess
import sys

import pytest

from repro.harness.spec import (
    RunSpec,
    SpecError,
    execute,
    image_is_stripped,
    record_has_full_images,
    result_has_full_images,
    run_result_from_dict,
    run_result_to_dict,
    spec_from_dict,
    spec_hash,
    spec_to_dict,
)
from repro.netmodel import ModelParams, StorageModel


def _spec(**overrides):
    base = dict(app="comd", nprocs=4, app_kwargs={"niters": 4}, seed=0)
    base.update(overrides)
    return RunSpec.create(base.pop("app"), base.pop("nprocs"), **base)


class TestSpecValue:
    def test_kwargs_order_insensitive(self):
        a = RunSpec.create("osu", 4, app_kwargs={"kind": "bcast", "nbytes": 4})
        b = RunSpec.create("osu", 4, app_kwargs={"nbytes": 4, "kind": "bcast"})
        assert a == b
        assert spec_hash(a) == spec_hash(b)

    def test_specs_are_hashable_dict_keys(self):
        assert len({_spec(): 1, _spec(): 2}) == 1
        assert len({_spec(seed=0), _spec(seed=1)}) == 2

    def test_non_scalar_kwarg_rejected(self):
        with pytest.raises(SpecError):
            RunSpec.create("osu", 4, app_kwargs={"sizes": [1, 2]})

    def test_native_checkpoint_rejected(self):
        with pytest.raises(SpecError):
            _spec(protocol="native", checkpoint_at=(1.0,))

    def test_restart_protocol_must_match_parent(self):
        parent = _spec(protocol="cc", checkpoint_at=(0.01,))
        with pytest.raises(SpecError):
            _spec(protocol="2pc", restart_of=parent)

    def test_hash_differs_across_fields(self):
        seen = {
            spec_hash(_spec()),
            spec_hash(_spec(seed=1)),
            spec_hash(_spec(protocol="cc")),
            spec_hash(_spec(app_kwargs={"niters": 5})),
            spec_hash(_spec(ppn=2)),
        }
        assert len(seen) == 5

    def test_hash_stable_across_processes(self):
        spec = _spec(
            protocol="cc",
            ppn=2,
            checkpoint_fractions=(0.5,),
            storage=StorageModel(base_latency=0.25),
            params=ModelParams.slow_network(),
        )
        code = (
            "from repro.harness.spec import RunSpec, spec_hash\n"
            "from repro.netmodel import ModelParams, StorageModel\n"
            "spec = RunSpec.create('comd', 4, app_kwargs={'niters': 4},\n"
            "    protocol='cc', ppn=2, checkpoint_fractions=(0.5,),\n"
            "    storage=StorageModel(base_latency=0.25),\n"
            "    params=ModelParams.slow_network())\n"
            "print(spec_hash(spec))\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True, env=env,
        )
        assert out.stdout.strip() == spec_hash(spec)

    def test_spec_dict_round_trip(self):
        parent = _spec(protocol="cc", checkpoint_fractions=(0.5,),
                       storage=StorageModel(), params=ModelParams())
        spec = _spec(protocol="cc", restart_of=parent)
        restored = spec_from_dict(json.loads(json.dumps(spec_to_dict(spec))))
        assert restored == spec
        assert spec_hash(restored) == spec_hash(spec)


class TestChains:
    def test_probe_and_parents(self):
        spec = _spec(protocol="cc", checkpoint_fractions=(0.5,))
        probe = spec.probe_spec()
        assert probe.checkpoint_fractions == ()
        assert spec.parents() == (probe,)
        assert probe.parents() == ()
        assert spec.chain_depth() == 1

    def test_restart_chain_depth(self):
        ckpt = _spec(protocol="cc", checkpoint_fractions=(0.5,))
        restart = _spec(protocol="cc", restart_of=ckpt)
        assert restart.chain_depth() == 2
        assert set(restart.ancestors()) == {ckpt, ckpt.probe_spec()}


class TestExecute:
    def test_execute_matches_launch_run(self):
        from repro.apps import make_app_factory
        from repro.harness.runner import launch_run

        spec = _spec(seed=3)
        direct = launch_run(make_app_factory("comd", niters=4), 4, seed=3)
        via_spec = execute(spec)
        assert via_spec.runtime == direct.runtime
        assert via_spec.sim_events == direct.sim_events

    def test_execute_na_for_unsupported(self):
        spec = RunSpec.create(
            "poisson", 4, app_kwargs={"niters": 4}, protocol="2pc"
        )
        result = execute(spec)
        assert not result.ok
        assert "non-blocking" in result.na_reason
        assert result.runtime == 0.0

    def test_execute_resolves_probe_and_restart(self):
        ckpt = _spec(protocol="cc", checkpoint_fractions=(0.5,))
        restart = _spec(protocol="cc", restart_of=ckpt)
        deps = {}
        result = execute(restart, deps)
        assert result.restart_ready_time > 0
        # The chain memoized its intermediate phases.
        assert ckpt in deps and ckpt.probe_spec() in deps

    def test_execute_reuses_supplied_parent(self):
        ckpt = _spec(protocol="cc", checkpoint_fractions=(0.5,))
        parent_result = execute(ckpt)
        assert result_has_full_images(parent_result)
        restart = _spec(protocol="cc", restart_of=ckpt)
        result = execute(restart, {ckpt: parent_result})
        assert result.restart_ready_time > 0

    def test_restart_from_stripped_parent_resimulates(self):
        ckpt = _spec(protocol="cc", checkpoint_fractions=(0.5,))
        stripped = run_result_from_dict(run_result_to_dict(execute(ckpt)))
        assert not result_has_full_images(stripped)
        restart = _spec(protocol="cc", restart_of=ckpt)
        result = execute(restart, {ckpt: stripped})
        assert result.restart_ready_time > 0

    def test_restart_without_commit_is_error(self):
        # Parent never checkpoints (no schedule at all).
        parent = _spec(protocol="cc")
        restart = _spec(protocol="cc", restart_of=parent)
        with pytest.raises(SpecError, match="committed no"):
            execute(restart)


class TestResultSerialization:
    def test_round_trip_plain_run(self):
        result = execute(_spec(seed=2))
        restored = run_result_from_dict(
            json.loads(json.dumps(run_result_to_dict(result)))
        )
        assert restored.runtime == result.runtime
        assert restored.per_rank == result.per_rank
        assert restored.sim_events == result.sim_events
        assert restored.coll_calls == result.coll_calls

    def test_round_trip_checkpoint_metadata(self):
        result = execute(_spec(protocol="cc", checkpoint_fractions=(0.5,)))
        committed = [r for r in result.checkpoints if r.committed]
        assert committed and record_has_full_images(committed[0])
        restored = run_result_from_dict(
            json.loads(json.dumps(run_result_to_dict(result)))
        )
        rec = [r for r in restored.checkpoints if r.committed][0]
        orig = committed[0]
        assert rec.checkpoint_time == orig.checkpoint_time
        assert rec.total_image_bytes == orig.total_image_bytes
        assert sorted(rec.images) == sorted(orig.images)
        for rank, image in rec.images.items():
            assert image.declared_bytes == orig.images[rank].declared_bytes
            assert image.ckpt_id == orig.images[rank].ckpt_id
            assert image_is_stripped(image)
        assert not record_has_full_images(rec)

    def test_round_trip_na_result(self):
        result = execute(
            RunSpec.create("poisson", 4, app_kwargs={"niters": 4}, protocol="2pc")
        )
        restored = run_result_from_dict(run_result_to_dict(result))
        assert restored.na_reason == result.na_reason
        assert not restored.ok


class TestCostHint:
    def _chain(self, depth, *, parent_niters=64, child_niters=4):
        spec = RunSpec.create(
            "comd", 4, app_kwargs={"niters": parent_niters}, protocol="cc",
            checkpoint_at=(0.5,),
        )
        for _ in range(depth):
            spec = RunSpec.create(
                "comd", 4, app_kwargs={"niters": child_niters}, protocol="cc",
                restart_of=spec,
            )
        return spec

    def test_restart_chain_values_fold_geometrically(self):
        """Each link is max(own, 0.5 × parent): a cheap restart behind an
        expensive run decays geometrically to its own floor."""
        root_cost = 4 * 64 * 1.25  # nprocs × niters × one-checkpoint factor
        own = 4 * 4.0
        expected = root_cost
        spec = self._chain(3)
        chain = []
        node = spec
        while node is not None:
            chain.append(node)
            node = node.restart_of
        for link in reversed(chain[:-1]):
            expected = max(own, 0.5 * expected)
        assert spec.cost_hint() == expected
        # And a shallow sanity check against the closed form.
        assert self._chain(1).cost_hint() == max(own, 0.5 * root_cost)

    def test_deep_chain_does_not_recurse(self):
        """Regression: cost_hint recursed per ancestor (O(depth²) during
        wave sorting, RecursionError past the stack limit)."""
        deep = self._chain(5000)
        assert deep.cost_hint() == 16.0  # decayed to the child floor

    def test_memo_is_per_instance_and_stable(self):
        spec = self._chain(2)
        first = spec.cost_hint()
        assert spec.__dict__["_cost_hint"] == first
        assert spec.cost_hint() == first
        # Parents were memoized along the way (one pass fills the chain).
        assert "_cost_hint" in spec.restart_of.__dict__

    def test_memo_survives_pickle_boundary(self):
        import pickle

        spec = self._chain(1)
        spec.cost_hint()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.cost_hint() == spec.cost_hint()
        assert spec_hash(clone) == spec_hash(spec)
