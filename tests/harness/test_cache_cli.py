"""The ``repro-mpi cache`` subcommand: stats, clear, prune."""

import pytest

from repro.cli import main
from repro.harness import ExperimentEngine, ResultCache
from repro.harness.experiments import plan_fig6


def _populate_fig6_defaults(cache_dir):
    """Simulate (tiny subset of) fig6's default plan into the cache."""
    plan = plan_fig6()
    cache = ResultCache(cache_dir)
    # Executing the full default plan is slow; seed the cache by storing
    # a real result under several default-plan spec hashes instead.
    small = plan.specs[0]
    engine = ExperimentEngine(jobs=1, cache=cache)
    result = engine.run(small)
    for spec in plan.specs[1:6]:
        cache.put(spec, result, elapsed=0.5)
    return cache, 6


def test_cache_stats_reports_entries_and_timings(tmp_path, capsys):
    cache, n = _populate_fig6_defaults(tmp_path)
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert f"entries:        {n}" in out
    assert str(tmp_path) in out
    assert "recorded times:" in out


def test_cache_clear_removes_entries_keeps_timings(tmp_path, capsys):
    cache, n = _populate_fig6_defaults(tmp_path)
    timings_before = ResultCache(tmp_path).timing_count()
    assert timings_before > 0
    assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert f"removed {n} cache entries" in out
    fresh = ResultCache(tmp_path)
    assert len(fresh) == 0
    assert fresh.timing_count() == timings_before


def test_cache_prune_figure_removes_only_that_figure(tmp_path, capsys):
    cache, n = _populate_fig6_defaults(tmp_path)
    # An unrelated (non-default-plan) entry must survive the prune.
    from repro.harness.spec import RunSpec

    other = RunSpec.create("poisson", 2, app_kwargs={"niters": 2}, seed=99)
    result = ExperimentEngine(jobs=1).run(other)
    cache.put(other, result)
    assert main(["cache", "prune", "--figure", "fig6",
                 "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert f"pruned {n}/" in out
    fresh = ResultCache(tmp_path)
    assert len(fresh) == 1  # only the unrelated entry remains
    assert fresh.get(other) is not None


def test_cache_prune_requires_known_figure(tmp_path):
    with pytest.raises(SystemExit):
        main(["cache", "prune", "--figure", "nope", "--cache-dir", str(tmp_path)])


def test_cache_requires_action(tmp_path):
    with pytest.raises(SystemExit):
        main(["cache"])


class TestPruneByAgeAndCount:
    def _aged_cache(self, tmp_path, n=3):
        import os
        import time as _time

        from repro.harness.spec import RunSpec

        cache = ResultCache(tmp_path)
        engine = ExperimentEngine(jobs=1, cache=cache)
        base = RunSpec.create("poisson", 2, app_kwargs={"niters": 2}, seed=50)
        result = engine.run(base)
        paths = []
        for i in range(n):
            spec = RunSpec.create("poisson", 2, app_kwargs={"niters": 2}, seed=60 + i)
            path = cache.put(spec, result, elapsed=0.5)
            stamp = _time.time() - (n - i) * 1000
            os.utime(path, (stamp, stamp))
            paths.append(path)
        return paths

    def test_prune_older_than_cli(self, tmp_path, capsys):
        self._aged_cache(tmp_path)
        assert main(["cache", "prune", "--older-than", "2500s",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "pruned 1 entry older than 2500s" in out

    def test_prune_max_entries_cli(self, tmp_path, capsys):
        self._aged_cache(tmp_path)
        assert main(["cache", "prune", "--max-entries", "2",
                     "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "beyond the newest 2" in out
        assert len(ResultCache(tmp_path)) == 2

    def test_prune_requires_some_selector(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--cache-dir", str(tmp_path)])

    def test_bad_duration_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--older-than", "soon",
                  "--cache-dir", str(tmp_path)])
