"""CLI error paths: exit codes AND the stderr message the user sees.

Complements the golden-output CLI tests: here every rejection is pinned
to ``SystemExit(2)`` (argparse usage-error convention) plus the exact
diagnostic substring, so error messages can't silently regress into
stack traces or vague one-liners.  Also pins the ``cache prune``
size/duration micro-parsers across their unit matrices.
"""

import argparse

import pytest

from repro.cli import _byte_size, _duration, main


def _expect_usage_error(capsys, argv, *needles):
    with pytest.raises(SystemExit) as exc:
        main(argv)
    assert exc.value.code == 2
    err = capsys.readouterr().err
    for needle in needles:
        assert needle in err, f"{needle!r} not in stderr:\n{err}"


# --------------------------------------------------------------------- #
# sweep: fold validation and axis declaration errors
# --------------------------------------------------------------------- #

class TestSweepRejections:
    def test_unknown_pivot_axis_fails_before_simulating(self, capsys):
        _expect_usage_error(
            capsys,
            ["sweep", "--axis", "app=comd", "--axis", "nprocs=2",
             "--base", "niters=2", "--pivot", "protocl"],
            "protocl",
        )

    def test_baseline_without_pivot_rejected(self, capsys):
        _expect_usage_error(
            capsys,
            ["sweep", "--axis", "app=comd", "--axis", "nprocs=2",
             "--baseline", "native"],
            "baseline",
        )

    def test_unknown_metric_rejected(self, capsys):
        _expect_usage_error(
            capsys,
            ["sweep", "--axis", "app=comd", "--axis", "nprocs=2",
             "--metric", "goodput"],
            "goodput",
        )

    def test_duplicate_axis_keys_name_the_offenders(self, capsys):
        _expect_usage_error(
            capsys,
            ["sweep", "--axis", "nprocs=2", "--axis", "nprocs=4",
             "--axis", "app=comd,poisson"],
            "duplicate --axis key(s): nprocs",
            "values are comma-separated",
        )

    def test_duplicate_base_keys_rejected(self, capsys):
        _expect_usage_error(
            capsys,
            ["sweep", "--axis", "app=comd", "--base", "niters=2",
             "--base", "niters=4"],
            "duplicate --base key(s): niters",
        )

    def test_malformed_axis_spec_names_expected_shape(self, capsys):
        _expect_usage_error(
            capsys,
            ["sweep", "--axis", "nprocs"],
            "expected key=v1,v2,",
        )

    def test_unknown_app_axis_value_lists_known_apps(self, capsys):
        _expect_usage_error(
            capsys,
            ["sweep", "--axis", "app=htree", "--axis", "nprocs=2"],
            "unknown app 'htree'",
        )


# --------------------------------------------------------------------- #
# cache prune: size/duration parsing
# --------------------------------------------------------------------- #

class TestPruneParsers:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("0", 0),
            ("1048576", 1 << 20),
            ("64K", 64 << 10),
            ("64k", 64 << 10),
            ("512M", 512 << 20),
            ("2G", 2 << 30),
            ("1.5M", int(1.5 * (1 << 20))),
        ],
    )
    def test_byte_sizes(self, text, expected):
        assert _byte_size(text) == expected

    @pytest.mark.parametrize("text", ["", "12Q", "M", "garbage", "--3", "1 G"])
    def test_bad_byte_sizes(self, text):
        with pytest.raises(argparse.ArgumentTypeError, match="expected a size"):
            _byte_size(text)

    def test_negative_byte_size_message(self):
        with pytest.raises(argparse.ArgumentTypeError, match="cannot be negative"):
            _byte_size("-5M")

    @pytest.mark.parametrize(
        "text,expected",
        [
            ("90", 90.0),
            ("45s", 45.0),
            ("30m", 1800.0),
            ("12h", 43200.0),
            ("7d", 604800.0),
            ("0.5h", 1800.0),
        ],
    )
    def test_durations(self, text, expected):
        assert _duration(text) == expected

    @pytest.mark.parametrize("text", ["", "1w", "d", "soon", "1 d"])
    def test_bad_durations(self, text):
        with pytest.raises(argparse.ArgumentTypeError, match="expected a duration"):
            _duration(text)

    def test_negative_duration_message(self):
        with pytest.raises(argparse.ArgumentTypeError, match="cannot be negative"):
            _duration("-7d")

    def test_bad_prune_flags_surface_through_the_cli(self, tmp_path, capsys):
        _expect_usage_error(
            capsys,
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--older-than", "fortnight"],
            "expected a duration like 90, 30m, 12h, or 7d",
        )
        _expect_usage_error(
            capsys,
            ["cache", "prune", "--cache-dir", str(tmp_path),
             "--max-image-bytes", "lots"],
            "expected a size like 1048576, 64K, 512M, or 2G",
        )

    def test_prune_without_selectors_names_all_options(self, tmp_path, capsys):
        _expect_usage_error(
            capsys,
            ["cache", "prune", "--cache-dir", str(tmp_path)],
            "--figure", "--older-than", "--max-entries", "--max-image-bytes",
        )


# --------------------------------------------------------------------- #
# top-level argument plumbing
# --------------------------------------------------------------------- #

class TestTopLevelRejections:
    def test_unknown_experiment_lists_choices(self, capsys):
        _expect_usage_error(capsys, ["fig99"], "invalid choice: 'fig99'")

    def test_nonpositive_jobs_rejected(self, capsys):
        _expect_usage_error(
            capsys, ["table1", "--jobs", "0"], "must be a positive integer"
        )

    def test_malformed_procs_list_rejected(self, capsys):
        _expect_usage_error(
            capsys, ["fig5a", "--procs", "4,eight"],
            "expected comma-separated integers",
        )
