"""Tests for the declarative Sweep DSL (`repro.harness.sweep`)."""

import pytest

from repro.apps import resolve_app_name
from repro.harness import (
    MASKS,
    ExperimentEngine,
    ResultCache,
    Sweep,
    SweepError,
    sweep_fold,
    sweep_plan,
)
from repro.harness.spec import RunSpec, SpecError, spec_hash


def tiny_sweep(**overrides) -> Sweep:
    kwargs = dict(
        axes={
            "app": ("comd", "poisson"),
            "protocol": ("native", "2pc", "cc"),
            "nprocs": (2,),
        },
        base={"niters": 2, "seed": 0},
        mask=MASKS["2pc-nonblocking"],
    )
    kwargs.update(overrides)
    return Sweep("tiny", **kwargs)


class TestExpansion:
    def test_cartesian_order_is_declaration_order(self):
        sweep = Sweep(
            "order",
            axes={"a": (1, 2), "b": ("x", "y")},
            base={"app": "comd", "nprocs": 2, "niters": 2},
            meta=("a", "b"),
        )
        points = [[v for _, v in c.point] for c in sweep.cells()]
        assert points == [
            ["comd", 2, 2, 1, "x"],
            ["comd", 2, 2, 1, "y"],
            ["comd", 2, 2, 2, "x"],
            ["comd", 2, 2, 2, "y"],
        ]

    def test_expansion_is_hash_stable(self):
        """Two identical declarations expand to identical cells, spec
        hashes, and sweep signatures (no set/dict-order dependence)."""
        a, b = tiny_sweep(), tiny_sweep()
        assert [c.point for c in a.cells()] == [c.point for c in b.cells()]
        assert [spec_hash(s) for s in a.specs()] == [
            spec_hash(s) for s in b.specs()
        ]
        assert a.signature() == b.signature()

    def test_signature_tracks_every_knob(self):
        base = tiny_sweep().signature()
        assert tiny_sweep(base={"niters": 3, "seed": 0}).signature() != base
        assert tiny_sweep(mask=None).signature() != base

    def test_set_axis_rejected(self):
        with pytest.raises(SweepError, match="ordered sequence"):
            Sweep("bad", axes={"nprocs": {2, 4}})

    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError, match="no values"):
            Sweep("bad", axes={"nprocs": ()})

    def test_unknown_app_fails_whole_sweep(self):
        sweep = Sweep(
            "bad",
            axes={"app": ("comdd",)},
            base={"nprocs": 2, "niters": 2},
        )
        with pytest.raises(ValueError, match="unknown app"):
            sweep.cells()

    def test_app_aliases_resolve_to_canonical_specs(self):
        assert resolve_app_name("vasp") == "minivasp"
        assert resolve_app_name("LJ") == "lammps"
        # Identity is canonical at the spec layer: alias spellings hash,
        # dedupe, and cache as the same job.
        assert RunSpec.create(
            "vasp", 2, app_kwargs={"niters": 2}
        ) == RunSpec.create("minivasp", 2, app_kwargs={"niters": 2})
        alias = Sweep(
            "alias", axes={"app": ("vasp",)}, base={"nprocs": 2, "niters": 2}
        )
        canonical = Sweep(
            "alias", axes={"app": ("minivasp",)}, base={"nprocs": 2, "niters": 2}
        )
        assert [spec_hash(s) for s in alias.specs()] == [
            spec_hash(s) for s in canonical.specs()
        ]

    def test_dedup_preserves_first_occurrence_order(self):
        sweep = Sweep(
            "dup",
            axes={"n_ckpts": (1, 2), "protocol": ("native", "cc")},
            base={"app": "comd", "nprocs": 2, "niters": 2, "seed": 0},
            derive={
                "checkpoint_fractions": lambda p: ()
                if p["protocol"] == "native"
                else (0.5,),
            },
            meta=("n_ckpts",),
        )
        # 4 cells but native and cc specs are identical across n_ckpts.
        assert len(sweep.cells()) == 4
        assert len(sweep.specs()) == 2

    def test_derive_collision_with_axis_rejected(self):
        with pytest.raises(SweepError, match="collides"):
            Sweep(
                "bad",
                axes={"nprocs": (2,)},
                derive={"nprocs": lambda p: 4},
            )

    def test_meta_must_name_something(self):
        with pytest.raises(SweepError, match="meta key"):
            tiny_sweep(meta=("nope",))


class TestMasking:
    def test_mask_produces_na_cells_not_crashes(self):
        sweep = tiny_sweep()
        na = [c for c in sweep.cells() if c.spec is None]
        assert len(na) == 1
        cell = na[0]
        assert cell.values["app"] == "poisson"
        assert cell.values["protocol"] == "2pc"
        assert "non-blocking" in cell.na_reason

    def test_spec_error_becomes_na_cell(self):
        """native x checkpoint_fractions is illegal spec-wise; the sweep
        annotates instead of raising."""
        sweep = Sweep(
            "illegal",
            axes={"protocol": ("native", "cc")},
            base={
                "app": "comd",
                "nprocs": 2,
                "niters": 2,
                "checkpoint_fractions": (0.5,),
            },
        )
        cells = sweep.cells()
        assert cells[0].spec is None
        assert "native" in cells[0].na_reason
        assert cells[1].spec is not None

    def test_memory_limit_mask(self):
        reason = MASKS["paper-memory-limit"](
            {"kind": "alltoall", "nbytes": 1 << 20, "nprocs": 32}
        )
        assert reason and "memory" in reason
        assert (
            MASKS["paper-memory-limit"](
                {"kind": "bcast", "nbytes": 1 << 20, "nprocs": 32}
            )
            is None
        )


class TestFromPoint:
    def test_extra_keys_become_app_kwargs(self):
        spec = RunSpec.from_point(
            {"app": "osu", "nprocs": 4, "protocol": "cc", "niters": 5,
             "kind": "bcast", "nbytes": 1024}
        )
        kwargs = dict(spec.app_kwargs)
        assert kwargs == {"niters": 5, "kind": "bcast", "nbytes": 1024}

    def test_scalar_schedule_promoted(self):
        spec = RunSpec.from_point(
            {"app": "comd", "nprocs": 2, "protocol": "cc", "niters": 2,
             "checkpoint_fractions": 0.5}
        )
        assert spec.checkpoint_fractions == (0.5,)

    def test_restart_builds_chain(self):
        spec = RunSpec.from_point(
            {"app": "comd", "nprocs": 2, "protocol": "cc", "niters": 2,
             "checkpoint_fractions": (0.5,), "restart": True}
        )
        assert spec.restart_of is not None
        assert spec.checkpoint_fractions == ()
        assert spec.restart_of.checkpoint_fractions == (0.5,)

    def test_restart_without_schedule_rejected(self):
        with pytest.raises(SpecError, match="restart=True"):
            RunSpec.from_point(
                {"app": "comd", "nprocs": 2, "protocol": "cc", "restart": True}
            )

    def test_missing_app_axis_reported(self):
        with pytest.raises(SpecError, match="missing the 'app' axis"):
            RunSpec.from_point({"nprocs": 2})


class TestExecutionAndFold:
    def test_run_sweep_is_one_deduplicated_batch(self):
        engine = ExperimentEngine()
        sweep = tiny_sweep()
        results = engine.run_sweep(sweep)
        stats = engine.last_stats
        assert stats.submitted == len(sweep.specs()) == 5
        assert stats.executed == 5
        assert set(results) == set(sweep.specs())

    def test_warm_rerun_executes_zero_simulations(self, tmp_path):
        sweep = tiny_sweep()
        cold = ExperimentEngine(cache=ResultCache(tmp_path))
        cold.run_sweep(sweep)
        assert cold.last_stats.executed == len(sweep.specs())
        warm = ExperimentEngine(cache=ResultCache(tmp_path))
        warm_results = warm.run_sweep(tiny_sweep())
        assert warm.last_stats.executed == 0
        assert warm.last_stats.cache_hits == len(sweep.specs())
        # And the fold still renders from cached results.
        table = sweep.fold(warm_results)
        assert len(table.rows) == len(sweep.cells())

    def test_flat_fold_rows_and_na_notes(self):
        engine = ExperimentEngine()
        sweep = tiny_sweep()
        result = sweep_fold(sweep, engine.run_sweep(sweep))
        assert result.headers[:5] == ["niters", "seed", "app", "protocol", "nprocs"]
        assert len(result.rows) == 6
        na_rows = [r for r in result.rows if "NA" in r]
        assert len(na_rows) == 1
        assert "NA[" in result.notes and "non-blocking" in result.notes

    def test_pivot_fold_overheads_and_series(self):
        engine = ExperimentEngine()
        sweep = tiny_sweep()
        result = sweep.fold(
            engine.run_sweep(sweep),
            pivot="protocol",
            baseline="native",
            x_axis="nprocs",
        )
        assert result.headers[:2] == ["app", "nprocs"]
        assert "2pc %" in result.headers and "cc %" in result.headers
        assert len(result.rows) == 2  # comd, poisson
        labels = {s.name for s in result.series}
        assert "comd/2pc %" in labels and "poisson/cc %" in labels
        assert "poisson/2pc %" not in labels  # NA cell produces no series

    def test_pivot_validation(self):
        sweep = tiny_sweep()
        with pytest.raises(SweepError, match="not a sweep axis"):
            sweep.fold({}, pivot="niters")
        with pytest.raises(SweepError, match="baseline"):
            sweep.fold({}, pivot="protocol", baseline="mpi")
        with pytest.raises(SweepError, match="x_axis"):
            sweep.fold({}, pivot="protocol", x_axis="protocol")

    def test_unknown_metric_rejected(self):
        with pytest.raises(SweepError, match="unknown metric"):
            tiny_sweep().fold({}, metrics=("walltime",))

    def test_fold_requires_matching_results(self):
        engine = ExperimentEngine()
        small = Sweep(
            "small", axes={"protocol": ("native",)},
            base={"app": "comd", "nprocs": 2, "niters": 2},
        )
        results = engine.run_sweep(small)
        with pytest.raises(SweepError, match="missing sweep cell"):
            tiny_sweep().fold(results)

    def test_sweep_plan_batches_with_figures(self):
        """sweep_plan rides run_plans like any figure plan."""
        from repro.harness import run_plans

        engine = ExperimentEngine()
        plan = sweep_plan(tiny_sweep())
        (result,) = run_plans([plan], engine)
        assert result.name == "tiny"
        assert engine.last_stats.submitted == 5

    def test_scenario_study_shapes(self):
        """The ≤20-line scale-grid study: one deduplicated batch, native
        baseline shared, NA where the paper says NA."""
        from repro.harness import STUDIES

        engine = ExperimentEngine()
        plan = STUDIES["scale_grid"](apps=("comd", "poisson"), procs=(2,))
        (result,) = run_plans_single(plan, engine)
        rows = {tuple(r[:2]): r for r in result.rows}
        assert ("poisson", 2) in rows
        assert rows[("poisson", 2)][result.headers.index("2pc runtime (s)")] == "NA"
        assert engine.last_stats.executed == len(plan.specs)


def run_plans_single(plan, engine):
    from repro.harness import run_plans

    return run_plans([plan], engine)
