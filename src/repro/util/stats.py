"""Small statistics helpers used by the harness and benchmarks."""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (silent NaN hides bugs)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); zero for fewer than two values."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def overhead_pct(measured: float, baseline: float) -> float:
    """Runtime overhead of ``measured`` relative to ``baseline``, percent.

    This is the paper's y-axis in Figures 5 and 8:
    ``(T_protocol / T_native - 1) * 100``.
    """
    if baseline <= 0:
        raise ValueError(f"baseline must be positive, got {baseline}")
    return (measured / baseline - 1.0) * 100.0


class OnlineStats:
    """Welford online mean/variance accumulator.

    Used where streaming many values (per-call latencies) and we only
    need the summary — avoids keeping arrays alive.
    """

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        if self.n == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def __repr__(self) -> str:  # pragma: no cover
        if self.n == 0:
            return "<OnlineStats empty>"
        return f"<OnlineStats n={self.n} mean={self._mean:.6g} sd={self.stddev:.3g}>"
