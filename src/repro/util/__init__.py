"""Shared utilities: stable hashing, statistics, run records, table rendering."""

from .hashing import stable_hash_ranks
from .records import RunRecord, Series
from .stats import OnlineStats, mean, overhead_pct, stddev

__all__ = [
    "stable_hash_ranks",
    "OnlineStats",
    "mean",
    "stddev",
    "overhead_pct",
    "RunRecord",
    "Series",
]
