"""Run records and plain-text table/series rendering for the harness.

The paper reports results as tables (Table 1) and bar/line figures
(Figures 5-9).  We regenerate them as aligned text tables so a terminal
diff against the paper's numbers is easy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence


@dataclass
class RunRecord:
    """Summary of one application run under one protocol.

    Attributes:
        app: application name (e.g. ``"minivasp"``).
        protocol: ``"native"``, ``"2pc"``, or ``"cc"``.
        nprocs: number of simulated MPI processes.
        nnodes: number of simulated nodes.
        runtime: virtual wall time of the run, seconds.
        coll_calls: total collective communication calls across ranks.
        p2p_calls: total point-to-point calls across ranks.
        extra: free-form per-experiment extras (checkpoint time, etc).
    """

    app: str
    protocol: str
    nprocs: int
    nnodes: int
    runtime: float
    coll_calls: int = 0
    p2p_calls: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def coll_rate(self) -> float:
        """Mean collective calls per second per rank (Table 1 metric)."""
        if self.runtime <= 0:
            return 0.0
        return self.coll_calls / self.nprocs / self.runtime

    @property
    def p2p_rate(self) -> float:
        """Mean point-to-point calls per second per rank (Table 1 metric)."""
        if self.runtime <= 0:
            return 0.0
        return self.p2p_calls / self.nprocs / self.runtime


@dataclass
class Series:
    """A named (x, y) series, e.g. one line of a paper figure."""

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)

    def as_pairs(self) -> list[tuple[float, float]]:
        return list(zip(self.xs, self.ys))


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    series: Sequence[Series],
    *,
    x_label: str = "x",
    title: str | None = None,
    y_format: str = "{:.2f}",
) -> str:
    """Render several series sharing an x-axis as one table.

    Missing points (a series without that x) render as ``NA`` — the paper
    itself uses NA where 2PC does not support an experiment.
    """
    xs: list[float] = []
    for s in series:
        for x in s.xs:
            if x not in xs:
                xs.append(x)
    xs.sort()
    headers = [x_label] + [s.name for s in series]
    rows = []
    for x in xs:
        row: list[Any] = [x]
        for s in series:
            try:
                idx = s.xs.index(x)
                row.append(y_format.format(s.ys[idx]))
            except ValueError:
                row.append("NA")
        rows.append(row)
    return format_table(headers, rows, title=title)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)
