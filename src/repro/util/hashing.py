"""Stable, process-independent hashing.

The global group id (ggid) of the paper is "a hash of the world rank of
each participating MPI process" (Section 4.1).  The hash must be identical
on every rank and across runs, so Python's randomized ``hash()`` is
unusable; we use a small FNV-1a over the sorted rank sequence, which is
fast, dependency-free, and collision-resistant enough for the handful of
groups a real application creates.
"""

from __future__ import annotations

from typing import Iterable

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash of ``data``."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    return h


def stable_hash_ranks(world_ranks: Iterable[int]) -> int:
    """Deterministic 64-bit hash of a set of world ranks.

    The ranks are sorted first, so any two groups containing the same
    processes (``MPI_SIMILAR``) hash identically regardless of rank order
    within the group — exactly the ggid property the CC algorithm needs.
    """
    ranks = sorted(world_ranks)
    buf = bytearray()
    for r in ranks:
        if r < 0:
            raise ValueError(f"world rank must be non-negative, got {r}")
        buf += r.to_bytes(8, "little")
    return fnv1a_64(bytes(buf))
