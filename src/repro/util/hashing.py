"""Stable, process-independent hashing.

The global group id (ggid) of the paper is "a hash of the world rank of
each participating MPI process" (Section 4.1).  The hash must be identical
on every rank and across runs, so Python's randomized ``hash()`` is
unusable; we use a small FNV-1a over the sorted rank sequence, which is
fast, dependency-free, and collision-resistant enough for the handful of
groups a real application creates.

The same property — identical across processes and interpreter
invocations — is what the experiment engine needs to key its on-disk
result cache, so :func:`stable_json_hash` lives here too: it hashes any
JSON-representable object via a canonical (sorted-keys, compact) JSON
encoding.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def fnv1a_64(data: bytes) -> int:
    """64-bit FNV-1a hash of ``data``."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK
    return h


def fnv1a_hex(data: bytes) -> str:
    """64-bit FNV-1a hash of ``data`` as a fixed-width hex string."""
    return f"{fnv1a_64(data):016x}"


def stable_json_hash(obj: Any) -> str:
    """Deterministic hex digest of a JSON-representable object.

    The object is encoded as canonical JSON (sorted keys, compact
    separators, no NaN) so the digest is identical across processes,
    interpreter runs, and machines — the property a spec-keyed disk
    cache depends on.  Raises ``TypeError``/``ValueError`` for objects
    JSON cannot represent canonically.
    """
    payload = json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return fnv1a_hex(payload.encode("utf-8"))


def stable_hash_ranks(world_ranks: Iterable[int]) -> int:
    """Deterministic 64-bit hash of a set of world ranks.

    The ranks are sorted first, so any two groups containing the same
    processes (``MPI_SIMILAR``) hash identically regardless of rank order
    within the group — exactly the ggid property the CC algorithm needs.
    """
    ranks = sorted(world_ranks)
    buf = bytearray()
    for r in ranks:
        if r < 0:
            raise ValueError(f"world rank must be non-negative, got {r}")
        buf += r.to_bytes(8, "little")
    return fnv1a_64(bytes(buf))
