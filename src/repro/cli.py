"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.cli table1
    python -m repro.cli fig5a --procs 8,16,32 --jobs 4
    python -m repro.cli all --jobs 8
    repro-mpi fig7 --nprocs 32 --repeats 3
    repro-mpi sweep --axis app=comd,minivasp --axis protocol=native,2pc,cc \
        --axis nprocs=4,8 --base niters=8 --pivot protocol --baseline native
    repro-mpi sweep --study scale_grid --jobs 4
    repro-mpi verify --seeds 20
    repro-mpi verify --oracle rank-completion --seeds 1 --base-seed 17
    repro-mpi verify --seeds 20 --jobs 4
    repro-mpi fuzz --iters 25 --corpus fuzz-corpus
    repro-mpi fuzz --budget 5m --corpus fuzz-corpus
    repro-mpi fuzz --corpus fuzz-corpus --replay <key>
    repro-mpi serve --port 7463 &
    repro-mpi worker --connect 127.0.0.1:7463 &
    repro-mpi all --dispatch service --service 127.0.0.1:7463
    repro-mpi cache stats
    repro-mpi cache prune --figure fig9
    repro-mpi cache prune --older-than 7d --max-entries 2000

``all`` submits every figure's job list as ONE engine batch, so cells
shared between figures (e.g. the native miniVASP baselines of Table 1,
Figure 7, and Figure 8) simulate once.  Results are cached on disk
(``--cache-dir``, default ``~/.cache/repro-mpi``); a warm rerun
executes zero simulations.  Disable with ``--no-cache``.

``cache`` manages that store: ``stats`` (entry/byte/timing counts plus
the image tier's blob count and footprint), ``clear`` (drop every entry
and image blob), and ``prune`` with ``--figure <name>`` (drop the named
figure's default-parameter cells), ``--older-than AGE`` (drop entries
last stored more than e.g. ``12h`` or ``7d`` ago), ``--max-entries N``
(drop oldest entries beyond N), and/or ``--max-image-bytes SIZE``
(evict oldest image-tier blobs until the tier fits in e.g. ``512M`` or
``2G``).  Prune is hash-exact: no attempt is made to keep a shared
baseline out of the blast radius just because another figure still
references it — a pruned shared cell is simply re-simulated and
re-cached by the next run that needs it.  Pruned cells' recorded wall
times and image blobs are evicted with them.

``sweep`` runs declarative cartesian scenario grids (the Sweep DSL,
``repro.harness.sweep``): ``--axis key=v1,v2`` flags span the grid,
``--base key=value`` pins constants, named ``--mask`` rules annotate
NA cells (2PC × non-blocking collectives is always on), and
``--pivot``/``--baseline``/``--x-axis`` shape the folded table.  The
whole grid runs as ONE deduplicated engine batch, cache-aware like any
figure; ``--study`` runs a predefined grid (scale_grid, ckpt_freq,
restart_chain).  Restart-chain sweeps ride the cache's image tier: on
a warm cache the engine feeds each restart its parent's committed
images instead of re-simulating the parent (the stats line reports
``N restarts fed from image tier``).

``verify`` sweeps the fault-injection oracle suite
(``repro.harness.verify``): seeded :class:`FaultSchedule` draws perturb
checkpoint-request timing (mid-run and completion-racing instants),
rank-completion staggering, and restart depth, and each ``--oracle``
compares two independent derivations of the same truth (online vs
offline safe cut, interrupted vs uninterrupted fingerprint, serial vs
parallel engine, cold vs warm image tier).  Cache-aware where the
oracle permits; any mismatch exits 1 and writes a derandomized
failing-seed artifact whose ``repro`` field replays exactly that check.
``--jobs N`` fans the (oracle, seed) grid over worker processes with a
report sequence byte-identical to the serial sweep's.

``fuzz`` is the open-ended version of ``verify``
(``repro.harness.fuzz``): keep drawing fault schedules under an
``--iters`` / ``--budget`` limit, run every registered oracle, classify
anomalies (mismatch, deadlock, oracle crash, wall-time outlier against
the corpus's recorded cost model), greedily shrink each failing
schedule, and persist it — content-hashed and deduplicated — into the
``--corpus`` directory as a derandomized reproduction.  ``--replay KEY``
re-runs a stored entry and exits 0 once it no longer fails.

``serve`` / ``worker`` run the long-lived experiment service
(``repro.harness.service``): a job-queue server over the shared result
cache plus pull-model workers.  Any engine-backed command (figures,
``sweep``, ``verify``, ``fuzz``) targets it with ``--dispatch service
--service HOST:PORT`` (or ``REPRO_SERVICE_ADDR``); ``--dispatch``
also selects the ``local-pool`` and ``inline`` in-process backends.

``--bench-json PATH`` appends one machine-readable record per
invocation (figures run, engine stats, wall time) so performance
trajectories can accumulate across runs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from .des.backends import BACKENDS
from .harness import (
    MASKS,
    ORACLES,
    PLANNERS,
    STUDIES,
    ExperimentEngine,
    ResultCache,
    Sweep,
    SweepError,
    plan_with_scenario,
    run_oracles,
    run_plans,
)
from .harness.dispatch import DISPATCH_BACKENDS, DispatchError

#: Which per-figure keyword each CLI flag maps to, per experiment.
_PROCS_EXPERIMENTS = ("fig5a", "fig5b", "fig6", "fig8")
_NPROCS_EXPERIMENTS = ("table1", "fig7")
_REPEATS_EXPERIMENTS = ("fig5a", "fig7", "fig8")
_PPN_EXPERIMENTS = ("table1", "fig7", "fig8", "fig9")


def _int_list(text: str) -> tuple[int, ...]:
    """argparse type for comma-separated positive ints ("8,16,32")."""
    try:
        values = tuple(int(x) for x in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(
            f"counts must be positive integers, got {text!r}"
        )
    return values


def _positive_int(text: str) -> int:
    """argparse type for integer flags that must be >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _scenario_arg(text: str) -> str | None:
    """argparse type for ``--scenario``: canonicalize or reject early.

    Returns the canonical scenario string (``None`` for the baseline
    spellings ``none``/empty), so specs built from it hash identically
    to the same scenario written any equivalent way.
    """
    from .scenarios import ScenarioError, canonical_scenario

    try:
        return canonical_scenario(text)
    except ScenarioError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_backend_arg(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--backend`` execution-backend selector."""
    parser.add_argument(
        "--backend", choices=("auto",) + BACKENDS, default=None,
        help="simulation execution backend (default: auto — greenlet when "
             "importable, else threads; or $REPRO_SIM_BACKEND)",
    )


def _chosen_backend(args: argparse.Namespace) -> str | None:
    """Map the CLI flag to an engine backend override (``auto`` == unset)."""
    backend = getattr(args, "backend", None)
    return None if backend == "auto" else backend


def _add_dispatch_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--dispatch`` / ``--service`` selectors."""
    parser.add_argument(
        "--dispatch", choices=("auto",) + DISPATCH_BACKENDS, default=None,
        help="job dispatch backend (default: auto — service when "
             "$REPRO_SERVICE_ADDR is set, else local-pool; or "
             "$REPRO_DISPATCH)",
    )
    parser.add_argument(
        "--service", type=str, default=None, metavar="HOST:PORT",
        help="experiment service address for --dispatch service "
             "(default $REPRO_SERVICE_ADDR)",
    )


def _dispatch_kwargs(args: argparse.Namespace) -> dict:
    """Map the CLI flags to engine dispatch overrides (``auto`` == unset)."""
    dispatch = getattr(args, "dispatch", None)
    return {
        "dispatch": None if dispatch == "auto" else dispatch,
        "service": getattr(args, "service", None),
    }


def _add_recovery_args(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--recover`` / ``--max-attempts`` flags."""
    parser.add_argument(
        "--recover", action="store_true",
        help="chase crashed jobs with bounded restart chains: each crash "
             "restarts from the last committed image (or from scratch when "
             "nothing ever committed) until clean completion or the retry "
             "budget runs out",
    )
    parser.add_argument(
        "--max-attempts", type=_positive_int, default=None, metavar="N",
        help="recovery legs allowed per crashed job (default 3, or "
             "$REPRO_RECOVERY_ATTEMPTS; exported to worker processes)",
    )


def _recovery_kwargs(args: argparse.Namespace) -> dict:
    """Map the recovery flags to engine kwargs.

    ``--max-attempts`` also sets the process default policy *and*
    ``$REPRO_RECOVERY_ATTEMPTS``, so spawned pool workers — which start
    from fresh interpreters — resolve the same budget (service workers
    are remote processes and keep their own environment).
    """
    from .harness.recovery import RecoveryPolicy, set_default_policy

    policy = None
    if getattr(args, "max_attempts", None) is not None:
        policy = RecoveryPolicy(max_attempts=args.max_attempts)
        os.environ["REPRO_RECOVERY_ATTEMPTS"] = str(args.max_attempts)
        set_default_policy(policy)
    if getattr(args, "recover", False):
        return {"recovery": policy if policy is not None else True}
    return {}


def _planner_kwargs(name: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {"seed": args.seed}
    if args.procs is not None and name in _PROCS_EXPERIMENTS:
        kwargs["procs"] = args.procs
    if args.nprocs is not None and name in _NPROCS_EXPERIMENTS:
        kwargs["nprocs"] = args.nprocs
    if args.nodes is not None and name == "fig9":
        kwargs["nodes"] = args.nodes
    if args.repeats is not None and name in _REPEATS_EXPERIMENTS:
        kwargs["repeats"] = args.repeats
    if args.ppn is not None and name in _PPN_EXPERIMENTS:
        kwargs["ppn"] = args.ppn
    return kwargs


def _byte_size(text: str) -> int:
    """argparse type for sizes like ``0``, ``64K``, ``512M``, ``2G`` (bytes)."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    body, scale = text, 1
    if text and text[-1].lower() in units:
        scale = units[text[-1].lower()]
        body = text[:-1]
    try:
        # float() silently strips whitespace ("1 G" would read as 1G);
        # a spaced size is a shell-quoting accident — reject it loudly.
        if body != body.strip():
            raise ValueError(body)
        value = float(body)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a size like 1048576, 64K, 512M, or 2G, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"sizes cannot be negative: {text!r}")
    return int(value * scale)


def _duration(text: str) -> float:
    """argparse type for ages like ``90``, ``30m``, ``12h``, ``7d`` (seconds)."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    body, scale = text, 1.0
    if text and text[-1].lower() in units:
        scale = units[text[-1].lower()]
        body = text[:-1]
    try:
        # See _byte_size: no whitespace-smuggled values.
        if body != body.strip():
            raise ValueError(body)
        value = float(body)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a duration like 90, 30m, 12h, or 7d, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"durations cannot be negative: {text!r}")
    return value * scale


def _cache_main(argv: list[str]) -> int:
    """``repro-mpi cache {stats,clear,prune}`` — manage the result cache."""
    parser = argparse.ArgumentParser(
        prog="repro-mpi cache",
        description="Inspect and manage the on-disk simulation result cache",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    for name, desc in (
        ("stats", "entry count, on-disk bytes, image tier, recorded timings"),
        ("clear", "delete every cached result and image blob "
                  "(timings survive)"),
        ("prune", "evict entries by figure, age, count, and/or "
                  "image-tier size"),
    ):
        p = sub.add_parser(name, help=desc)
        p.add_argument("--cache-dir", type=str, default=None,
                       help="cache directory (default $REPRO_CACHE_DIR "
                            "or ~/.cache/repro-mpi)")
        if name == "prune":
            p.add_argument("--figure", choices=sorted(PLANNERS), default=None,
                           help="figure whose default-parameter cells to evict")
            p.add_argument("--older-than", type=_duration, default=None,
                           metavar="AGE",
                           help="evict entries last stored more than AGE ago "
                                "(e.g. 90, 30m, 12h, 7d)")
            p.add_argument("--max-entries", type=_positive_int, default=None,
                           metavar="N",
                           help="evict oldest entries until at most N remain")
            p.add_argument("--max-image-bytes", type=_byte_size, default=None,
                           metavar="SIZE",
                           help="evict oldest image-tier blobs until the "
                                "tier is at most SIZE (e.g. 512M, 2G; "
                                "results are untouched)")
    args = parser.parse_args(argv)
    cache = ResultCache(args.cache_dir)

    if args.action == "stats":
        entries = len(cache)
        print(f"cache dir:      {cache.root}")
        print(f"schema version: v{cache.version_dir.name.lstrip('v')}")
        print(f"entries:        {entries}")
        print(f"size:           {cache.total_bytes() / 1024:.1f} KiB")
        print(f"image blobs:    {cache.image_count()}")
        print(f"image size:     {cache.image_bytes() / 1024:.1f} KiB")
        print(f"recorded times: {cache.timing_count()}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return 0
    if (
        args.figure is None
        and args.older_than is None
        and args.max_entries is None
        and args.max_image_bytes is None
    ):
        parser.error("prune needs at least one of --figure, --older-than, "
                     "--max-entries, --max-image-bytes")
    if args.figure is not None:
        # Evict the figure's default plan, dependency chain included
        # (probe/parent entries are figure-specific cells too).
        plan = PLANNERS[args.figure]()
        specs: dict = {}
        for spec in plan.specs:
            for ancestor in spec.ancestors():
                specs.setdefault(ancestor, None)
            specs.setdefault(spec, None)
        removed = cache.prune(specs)
        print(f"pruned {removed}/{len(specs)} {args.figure} entr"
              f"{'y' if removed == 1 else 'ies'}")
    if args.older_than is not None:
        removed = cache.prune_older_than(args.older_than)
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
              f"older than {args.older_than:g}s")
    if args.max_entries is not None:
        removed = cache.prune_to_max_entries(args.max_entries)
        print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} "
              f"beyond the newest {args.max_entries}")
    if args.max_image_bytes is not None:
        removed = cache.prune_images_to_max_bytes(args.max_image_bytes)
        print(f"pruned {removed} image blob{'' if removed == 1 else 's'} "
              f"beyond {args.max_image_bytes} bytes")
    return 0


def _coerce_token(token: str):
    """CLI axis/base value -> python value (int, float, bool, or str)."""
    text = token.strip()
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


def _axis_arg(text: str) -> tuple[str, tuple]:
    """argparse type for ``--axis key=v1,v2,...``."""
    key, sep, body = text.partition("=")
    if not sep or not key or not body:
        raise argparse.ArgumentTypeError(
            f"expected key=v1,v2,... got {text!r}"
        )
    return key, tuple(_coerce_token(v) for v in body.split(","))


def _base_arg(text: str) -> tuple[str, object]:
    """argparse type for ``--base key=value``."""
    key, sep, body = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    return key, _coerce_token(body)


def _sweep_main(argv: list[str]) -> int:
    """``repro-mpi sweep`` — run a declarative scenario sweep."""
    parser = argparse.ArgumentParser(
        prog="repro-mpi sweep",
        description="Run a cartesian scenario sweep (protocol x app x scale "
                    "grids as one deduplicated engine batch)",
    )
    parser.add_argument("--study", choices=sorted(STUDIES), default=None,
                        help="run a predefined sweep study instead of --axis")
    parser.add_argument("--axis", type=_axis_arg, action="append", default=[],
                        metavar="KEY=V1,V2,...",
                        help="sweep axis (repeatable; declaration order is "
                             "expansion order)")
    parser.add_argument("--base", type=_base_arg, action="append", default=[],
                        metavar="KEY=VALUE",
                        help="constant merged into every point (repeatable)")
    parser.add_argument("--mask", choices=sorted(MASKS), action="append",
                        default=[],
                        help="named NA mask to apply (repeatable; "
                             "2pc-nonblocking is always on)")
    parser.add_argument("--pivot", type=str, default=None,
                        help="pivot axis for the folded table (e.g. protocol)")
    parser.add_argument("--baseline", type=str, default=None,
                        help="pivot value to report overhead %% against")
    parser.add_argument("--x-axis", type=str, default=None,
                        help="numeric axis for series output (with --pivot)")
    parser.add_argument("--metric", type=str, default=None,
                        help="metric column (runtime, ckpt_time, ...)")
    parser.add_argument("--name", type=str, default="sweep",
                        help="sweep name used in titles and bench records")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--procs", type=_int_list, default=None,
                        help="process counts for --study scale_grid")
    parser.add_argument("--nprocs", type=_positive_int, default=None,
                        help="process count for --study ckpt_freq/restart_chain")
    parser.add_argument("--jobs", "-j", type=_positive_int, default=1)
    _add_backend_arg(parser)
    _add_dispatch_args(parser)
    _add_recovery_args(parser)
    parser.add_argument("--cache-dir", type=str, default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--bench-json", type=str, default=None,
                        help="append a JSON record of this sweep's engine "
                             "stats and wall time to PATH")
    args = parser.parse_args(argv)

    if args.study is not None:
        # A study is a complete declaration (axes, masks, fold shape);
        # reject flags that would be silently ignored — including the
        # scale knob that belongs to the *other* study.
        ignored = [
            flag
            for flag, value in (
                ("--axis", args.axis),
                ("--base", args.base),
                ("--mask", args.mask),
                ("--pivot", args.pivot),
                ("--baseline", args.baseline),
                ("--x-axis", args.x_axis),
                ("--metric", args.metric),
                ("--name", args.name != "sweep" and args.name),
                ("--procs", args.study != "scale_grid" and args.procs),
                ("--nprocs",
                 args.study not in ("ckpt_freq", "restart_chain")
                 and args.nprocs),
            )
            if value
        ]
        if ignored:
            parser.error(
                f"--study {args.study} does not take {', '.join(ignored)}"
            )
    else:
        if not args.axis:
            parser.error("give either --study or at least one --axis")
        if args.procs is not None or args.nprocs is not None:
            parser.error(
                "--procs/--nprocs only apply to --study; sweep process "
                "counts with --axis nprocs=... or pin one with --base nprocs=N"
            )
        for flag, pairs in (("--axis", args.axis), ("--base", args.base)):
            keys = [k for k, _ in pairs]
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            if dupes:
                parser.error(
                    f"duplicate {flag} key(s): {', '.join(dupes)} — each key "
                    "may be declared once (values are comma-separated)"
                )

    fold_kwargs: dict = {}
    if args.pivot is not None:
        fold_kwargs["pivot"] = args.pivot
    if args.baseline is not None:
        fold_kwargs["baseline"] = _coerce_token(args.baseline)
    if args.x_axis is not None:
        fold_kwargs["x_axis"] = args.x_axis
    if args.metric is not None:
        fold_kwargs["metrics"] = (args.metric,)

    try:
        if args.study is not None:
            study_kwargs: dict = {"seed": args.seed}
            if args.study == "scale_grid" and args.procs is not None:
                study_kwargs["procs"] = args.procs
            if (
                args.study in ("ckpt_freq", "restart_chain")
                and args.nprocs is not None
            ):
                study_kwargs["nprocs"] = args.nprocs
            plan = STUDIES[args.study](**study_kwargs)
            label = args.study
        else:
            masks = [MASKS["2pc-nonblocking"]]
            masks += [MASKS[name] for name in args.mask
                      if name != "2pc-nonblocking"]
            base = dict(args.base)
            base.setdefault("seed", args.seed)
            sweep = Sweep(
                args.name,
                axes=dict(args.axis),
                base=base,
                mask=masks,
            )
            plan = sweep.plan(**fold_kwargs)
            label = sweep.name
    except (SweepError, ValueError) as exc:
        parser.error(str(exc))

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is not None:
        try:
            cache.version_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            parser.error(f"cannot use cache directory {cache.root}: {exc}")
    try:
        engine = ExperimentEngine(jobs=args.jobs, cache=cache,
                                  progress=not args.quiet,
                                  backend=_chosen_backend(args),
                                  **_dispatch_kwargs(args),
                                  **_recovery_kwargs(args))
    except (DispatchError, ValueError) as exc:
        parser.error(str(exc))
    t0 = time.time()
    with engine:
        results = run_plans([plan], engine)
    for result in results:
        print(result.render())
        print()
    stats = engine.last_stats
    if stats is not None:
        print(f"[sweep:{label}: {stats.summary()}; "
              f"{time.time() - t0:.1f}s total]")
    if args.bench_json:
        _append_bench_record(
            args.bench_json, [f"sweep:{label}"], stats, time.time() - t0
        )
    return 0


def _verify_main(argv: list[str]) -> int:
    """``repro-mpi verify`` — sweep fault-injection oracles over seeds.

    Exit status 0 when every (oracle, seed) check passes; 1 on any
    mismatch, in which case a derandomized failing-seed artifact (JSON
    with per-failure reproduction commands) is written to ``--artifact``.
    """
    parser = argparse.ArgumentParser(
        prog="repro-mpi verify",
        description="Differential-oracle verification under randomized "
                    "fault schedules (checkpoint-request timing, rank "
                    "completion races, restart depth)",
    )
    parser.add_argument("--seeds", type=_positive_int, default=5,
                        help="fault-schedule seeds per oracle (default 5)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="first seed (failing-seed artifacts replay with "
                             "--seeds 1 --base-seed N)")
    parser.add_argument("--oracle", choices=sorted(ORACLES), action="append",
                        default=[],
                        help="oracle to run (repeatable; default: all)")
    parser.add_argument("--jobs", "-j", type=_positive_int, default=1,
                        help="parallel (oracle, seed) checks in worker "
                             "processes; the report sequence is "
                             "byte-identical to a serial sweep (default 1)")
    _add_backend_arg(parser)
    _add_dispatch_args(parser)
    _add_recovery_args(parser)
    parser.add_argument("--cache-dir", type=str, default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--artifact", type=str, default="verify-failures.json",
                        metavar="PATH",
                        help="failing-seed artifact path (written only on "
                             "mismatch; default verify-failures.json)")
    parser.add_argument("--bench-json", type=str, default=None,
                        help="append a JSON record of this run's verdicts "
                             "and wall time to PATH")
    args = parser.parse_args(argv)

    names = args.oracle or sorted(ORACLES)
    seeds = range(args.base_seed, args.base_seed + args.seeds)
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is not None:
        try:
            cache.version_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            parser.error(f"cannot use cache directory {cache.root}: {exc}")
    try:
        _recovery_kwargs(args)  # export --max-attempts before any fan-out
        engine = ExperimentEngine(jobs=args.jobs, cache=cache,
                                  progress=False,
                                  backend=_chosen_backend(args),
                                  **_dispatch_kwargs(args))
    except (DispatchError, ValueError) as exc:
        parser.error(str(exc))

    def progress(report) -> None:
        if not args.quiet:
            verdict = "ok" if report.ok else "MISMATCH"
            print(
                f"[verify] {report.oracle} seed={report.seed}: {verdict}"
                + ("" if report.ok else f" — {report.detail}"),
                file=sys.stderr,
                flush=True,
            )

    t0 = time.time()
    with engine:
        reports = run_oracles(
            names, seeds, engine=engine, progress=progress, jobs=args.jobs,
            **_dispatch_kwargs(args),
        )
    elapsed = time.time() - t0

    failures = [r for r in reports if not r.ok]
    for name in names:
        mine = [r for r in reports if r.oracle == name]
        good = sum(1 for r in mine if r.ok)
        print(f"oracle {name}: {good}/{len(mine)} seeds ok")
    if failures:
        print(f"\n{len(failures)} mismatch(es):")
        for report in failures:
            print(f"  {report.oracle} seed={report.seed}: {report.detail}")
            print(f"    reproduce: {report.repro}")
        with open(args.artifact, "w") as fh:
            json.dump(
                {"failures": [r.as_dict() for r in failures]}, fh, indent=2
            )
            fh.write("\n")
        print(f"failing-seed artifact written to {args.artifact}")
    stats = engine.last_stats
    summary = f"[verify: {len(reports)} checks, {len(failures)} mismatches"
    if stats is not None:
        summary += f"; last batch: {stats.summary()}"
    print(summary + f"; {elapsed:.1f}s total]")
    if args.bench_json:
        record_names = [f"verify:{name}" for name in names]
        _append_bench_record(args.bench_json, record_names, stats, elapsed)
        _amend_last_bench_record(
            args.bench_json,
            checks=len(reports),
            mismatches=len(failures),
            seeds=[seeds.start, seeds.stop],
        )
    return 1 if failures else 0


def _fuzz_main(argv: list[str]) -> int:
    """``repro-mpi fuzz`` — continuous fault fuzzing with a persistent
    anomaly corpus.

    Exit status 0 when the run surfaced no anomaly; 1 otherwise (new
    *or* duplicate — a known-failing corpus entry still fails).  With
    ``--replay KEY``, exit 1 while the stored anomaly still reproduces
    and 0 once it no longer does.
    """
    from .harness.fuzz import CorpusDB, replay_entry, run_fuzz

    parser = argparse.ArgumentParser(
        prog="repro-mpi fuzz",
        description="Fuzz fault schedules through every registered oracle, "
                    "shrinking and persisting each anomaly as a "
                    "derandomized reproduction in an on-disk corpus",
    )
    parser.add_argument("--corpus", type=str, default="fuzz-corpus",
                        metavar="DIR",
                        help="anomaly corpus directory (default ./fuzz-corpus)")
    parser.add_argument("--iters", type=_positive_int, default=None,
                        help="fuzz iterations (one drawn schedule through "
                             "every oracle each)")
    parser.add_argument("--budget", type=_duration, default=None,
                        metavar="DUR",
                        help="wall-time budget, e.g. 60s, 5m (combinable "
                             "with --iters: whichever runs out first)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="first schedule seed (seeds increment per "
                             "iteration)")
    parser.add_argument("--oracle", choices=sorted(ORACLES), action="append",
                        default=[],
                        help="oracle to fuzz (repeatable; default: all)")
    parser.add_argument("--jobs", "-j", type=_positive_int, default=1,
                        help="parallel oracle checks per iteration block "
                             "through the dispatch seam; anomaly handling "
                             "(shrinking, corpus writes) stays serial in "
                             "this process (default 1)")
    _add_dispatch_args(parser)
    _add_recovery_args(parser)
    parser.add_argument("--no-shrink", action="store_true",
                        help="persist failing schedules unminimized")
    parser.add_argument("--replay", type=str, default=None, metavar="KEY",
                        help="re-run one stored corpus entry instead of "
                             "fuzzing")
    parser.add_argument("--list", action="store_true",
                        help="list corpus entries and exit")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    corpus = CorpusDB(args.corpus)

    if args.list:
        entries = corpus.entries()
        for entry in entries:
            print(f"{entry.key}  {entry.kind:12s} {entry.oracle} "
                  f"seed={entry.seed}  {entry.detail}")
        print(f"{len(entries)} corpus entr{'y' if len(entries) == 1 else 'ies'} "
              f"in {corpus.root}")
        return 0

    if args.replay is not None:
        try:
            entry = corpus.load(args.replay)
        except KeyError as exc:
            parser.error(str(exc))
        report = replay_entry(corpus, args.replay)
        if report.ok:
            print(f"entry {args.replay} ({entry.kind}, {entry.oracle}) no "
                  f"longer reproduces: {report.detail}")
            return 0
        print(f"entry {args.replay} still fails ({report.kind}): "
              f"{report.detail}")
        print(f"  reproduce: {report.repro}")
        return 1

    if args.iters is None and args.budget is None:
        parser.error("give --iters and/or --budget (or --replay/--list)")

    def progress(message: str) -> None:
        if not args.quiet:
            print(f"[fuzz] {message}", file=sys.stderr, flush=True)

    _recovery_kwargs(args)  # export --max-attempts before any fan-out
    try:
        stats = run_fuzz(
            corpus,
            iters=args.iters,
            budget=args.budget,
            base_seed=args.base_seed,
            oracles=args.oracle or None,
            shrink=not args.no_shrink,
            progress=progress,
            jobs=args.jobs,
            **_dispatch_kwargs(args),
        )
    except DispatchError as exc:
        parser.error(str(exc))
    for entry in stats.anomalies:
        print(f"{entry.kind}: {entry.oracle} seed={entry.seed} -> "
              f"corpus entry {entry.key}")
        print(f"  {entry.detail}")
        print(f"  reproduce: {entry.repro}")
        print(f"  replay:    repro-mpi fuzz --corpus {corpus.root} "
              f"--replay {entry.key}")
    print(f"[fuzz: {stats.iterations} iteration(s), {stats.checks} checks, "
          f"{len(stats.anomalies)} anomal"
          f"{'y' if len(stats.anomalies) == 1 else 'ies'} "
          f"({stats.new_entries} new, {stats.duplicates} duplicate); "
          f"corpus {corpus.root} holds {len(corpus)}; "
          f"{stats.elapsed:.1f}s total]")
    return 1 if stats.anomalies else 0


def _amend_last_bench_record(path: str, **extra) -> None:
    """Fold verify-specific fields into the record just appended."""
    try:
        with open(path) as fh:
            records = json.load(fh)
        records[-1].update(extra)
    except (OSError, ValueError, IndexError, AttributeError):
        return
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2)
        fh.write("\n")


def _serve_main(argv: list[str]) -> int:
    """``repro-mpi serve`` — run the long-lived experiment service.

    The server owns the job queue and the persistent job index and
    advertises the shared result cache to workers; it runs no
    simulations itself.  Stop with Ctrl-C.
    """
    from .harness.service import DEFAULT_HOST, DEFAULT_PORT, ExperimentServer

    parser = argparse.ArgumentParser(
        prog="repro-mpi serve",
        description="Long-lived experiment service: accepts jobs from "
                    "--dispatch service clients, hands them to pull-model "
                    "`repro-mpi worker` processes, and answers repeats "
                    "from the shared result cache",
    )
    parser.add_argument("--host", type=str, default=DEFAULT_HOST,
                        help=f"listen address (default {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port; 0 picks a free one "
                             f"(default {DEFAULT_PORT})")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="shared result cache advertised to workers "
                             "(default $REPRO_CACHE_DIR or ~/.cache/repro-mpi)")
    parser.add_argument("--no-cache", action="store_true",
                        help="run store-less: every submission queues, "
                             "workers keep results to themselves")
    parser.add_argument("--index-dir", type=str, default=None,
                        help="persistent job index directory (default "
                             "<cache-dir>/service-index)")
    parser.add_argument("--lease", type=float, default=None, metavar="SECONDS",
                        help="per-job lease: requeue a running job whose "
                             "worker has not finished or heartbeat within "
                             "SECONDS (default: requeue only when the "
                             "worker's connection drops)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job lifecycle lines")
    args = parser.parse_args(argv)
    if args.lease is not None and args.lease <= 0:
        parser.error("--lease must be positive")

    cache_dir = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir)
        try:
            cache.version_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            parser.error(f"cannot use cache directory {cache.root}: {exc}")
        cache_dir = cache.root

    server = ExperimentServer(
        args.host, args.port,
        cache_dir=cache_dir,
        index_dir=args.index_dir,
        lease=args.lease,
        progress=not args.quiet,
    )
    host, port = server.start()
    print(f"[serve] listening on {host}:{port} "
          f"(workers: repro-mpi worker --connect {host}:{port}; "
          f"clients: --dispatch service --service {host}:{port})",
          file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def _worker_main(argv: list[str]) -> int:
    """``repro-mpi worker`` — pull-model executor for the service.

    Connects to a running ``repro-mpi serve``, long-polls for jobs, and
    executes them with the same engine job body an in-process run uses.
    Exits 0 when the server shuts down (or after ``--max-jobs``).
    """
    from .harness.dispatch import parse_address
    from .harness.service import run_worker

    parser = argparse.ArgumentParser(
        prog="repro-mpi worker",
        description="Pull-model experiment-service worker: fetches jobs "
                    "from a `repro-mpi serve` instance and writes results "
                    "(including checkpoint images) into the shared cache",
    )
    parser.add_argument("--connect", type=str, required=True,
                        metavar="HOST:PORT",
                        help="experiment service address")
    _add_backend_arg(parser)
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="override the server-advertised artifact "
                             "store (rarely needed; must be shared with "
                             "clients for warm-cache reruns)")
    parser.add_argument("--max-jobs", type=_positive_int, default=None,
                        help="exit after executing N jobs (default: run "
                             "until the server shuts down)")
    parser.add_argument("--connect-retries", type=int, default=5,
                        metavar="N",
                        help="retry the initial connection up to N times "
                             "with capped exponential backoff, so workers "
                             "may be launched before their server "
                             "(default 5; 0 fails fast)")
    parser.add_argument("--connect-backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="first connect-retry delay; doubles per "
                             "attempt, capped at 15s (default 0.5)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")
    args = parser.parse_args(argv)
    if args.connect_retries < 0:
        parser.error("--connect-retries must be >= 0")
    if args.connect_backoff < 0:
        parser.error("--connect-backoff must be >= 0")

    try:
        addr = parse_address(args.connect)
    except DispatchError as exc:
        parser.error(str(exc))
    try:
        executed = run_worker(
            addr,
            sim_backend=_chosen_backend(args),
            cache_dir=args.cache_dir,
            max_jobs=args.max_jobs,
            connect_retries=args.connect_retries,
            connect_backoff=args.connect_backoff,
            progress=not args.quiet,
        )
    except KeyboardInterrupt:
        return 130
    except (DispatchError, OSError) as exc:
        print(f"[worker] {exc}", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"[worker] done: {executed} job(s) executed",
              file=sys.stderr, flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "verify":
        return _verify_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return _fuzz_main(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "worker":
        return _worker_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-mpi",
        description=(
            "Reproduce the evaluation of 'Enabling Practical Transparent "
            "Checkpointing for MPI: A Topological Sort Approach' (CLUSTER 2024)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(PLANNERS) + ["all"],
        help="which table/figure to regenerate (or `cache` to manage "
             "the result cache)",
    )
    parser.add_argument("--procs", type=_int_list, default=None,
                        help="comma-separated process counts (fig5a/fig5b/fig6/fig8)")
    parser.add_argument("--nprocs", type=_positive_int, default=None,
                        help="process count (table1/fig7)")
    parser.add_argument("--nodes", type=_int_list, default=None,
                        help="comma-separated node counts (fig9)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=_positive_int, default=None,
                        help="repetitions per cell, seeds seed..seed+n-1 "
                             "(fig5a/fig7/fig8)")
    parser.add_argument("--ppn", type=_positive_int, default=None,
                        help="ranks per node (table1/fig7/fig8/fig9)")
    parser.add_argument("--scenario", type=_scenario_arg, default=None,
                        metavar="NAME[:K=V,...]",
                        help="run every figure cell under a registered "
                             "scenario (fat-tree, dragonfly, straggler, "
                             "jitter, degraded-link; e.g. "
                             "straggler:rank=1,factor=8.0)")
    parser.add_argument("--jobs", "-j", type=_positive_int, default=1,
                        help="parallel simulation worker processes (default 1)")
    _add_backend_arg(parser)
    _add_dispatch_args(parser)
    _add_recovery_args(parser)
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="result cache directory "
                             "(default $REPRO_CACHE_DIR or ~/.cache/repro-mpi)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")
    parser.add_argument("--bench-json", type=str, default=None,
                        help="append a JSON record of this run's engine "
                             "stats and wall time to PATH")
    args = parser.parse_args(argv)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is not None:
        try:
            cache.version_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            parser.error(f"cannot use cache directory {cache.root}: {exc}")
    try:
        engine = ExperimentEngine(
            jobs=args.jobs, cache=cache, progress=not args.quiet,
            backend=_chosen_backend(args),
            **_dispatch_kwargs(args),
            **_recovery_kwargs(args),
        )
    except (DispatchError, ValueError) as exc:
        parser.error(str(exc))

    names = sorted(PLANNERS) if args.experiment == "all" else [args.experiment]
    plans = [PLANNERS[name](**_planner_kwargs(name, args)) for name in names]
    if args.scenario:
        plans = [plan_with_scenario(plan, args.scenario) for plan in plans]
    t0 = time.time()
    # One batch for everything requested: cross-figure dedupe is the
    # whole point of batching `all`.
    with engine:
        results = run_plans(plans, engine)
    for result in results:
        print(result.render())
        print()
    stats = engine.last_stats
    if stats is not None:
        print(f"[{'+'.join(names)}: {stats.summary()}; "
              f"{time.time() - t0:.1f}s total]")
    if args.bench_json:
        _append_bench_record(args.bench_json, names, stats, time.time() - t0)
    return 0


def _append_bench_record(path: str, names: list[str], stats, total: float) -> None:
    """Accumulate one run's engine metrics in a JSON list at ``path``."""
    record = {
        "figures": names,
        "total_seconds": round(total, 3),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    if stats is not None:
        record["engine"] = {
            "submitted": stats.submitted,
            "deduped": stats.deduped,
            "chained": stats.chained,
            "cache_hits": stats.cache_hits,
            "executed": stats.executed,
            "images_reused": stats.images_reused,
            "prediction_hit_rate": round(stats.prediction_hit_rate, 4),
            "wall_time": round(stats.wall_time, 3),
        }
    try:
        with open(path) as fh:
            records = json.load(fh)
        if not isinstance(records, list):
            records = [records]
    except (OSError, ValueError):
        records = []
    records.append(record)
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2)
        fh.write("\n")


if __name__ == "__main__":
    sys.exit(main())
