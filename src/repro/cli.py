"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.cli table1
    python -m repro.cli fig5a --procs 8,16,32
    python -m repro.cli all
    repro-mpi fig7 --nprocs 32
"""

from __future__ import annotations

import argparse
import sys
import time

from .harness import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-mpi",
        description=(
            "Reproduce the evaluation of 'Enabling Practical Transparent "
            "Checkpointing for MPI: A Topological Sort Approach' (CLUSTER 2024)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument("--procs", type=str, default=None,
                        help="comma-separated process counts (fig5a/fig5b/fig6/fig8)")
    parser.add_argument("--nprocs", type=int, default=None,
                        help="process count (table1/fig7)")
    parser.add_argument("--nodes", type=str, default=None,
                        help="comma-separated node counts (fig9)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        fn = EXPERIMENTS[name]
        kwargs: dict = {"seed": args.seed}
        if args.procs and name in ("fig5a", "fig5b", "fig6", "fig8"):
            kwargs["procs"] = tuple(int(x) for x in args.procs.split(","))
        if args.nprocs and name in ("table1", "fig7"):
            kwargs["nprocs"] = args.nprocs
        if args.nodes and name == "fig9":
            kwargs["nodes"] = tuple(int(x) for x in args.nodes.split(","))
        t0 = time.time()
        result = fn(**kwargs)
        print(result.render())
        print(f"[{name} regenerated in {time.time() - t0:.1f}s wall]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
