"""Command-line entry point: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.cli table1
    python -m repro.cli fig5a --procs 8,16,32 --jobs 4
    python -m repro.cli all --jobs 8
    repro-mpi fig7 --nprocs 32 --repeats 3
    repro-mpi cache stats
    repro-mpi cache prune --figure fig9

``all`` submits every figure's job list as ONE engine batch, so cells
shared between figures (e.g. the native miniVASP baselines of Table 1,
Figure 7, and Figure 8) simulate once.  Results are cached on disk
(``--cache-dir``, default ``~/.cache/repro-mpi``); a warm rerun
executes zero simulations.  Disable with ``--no-cache``.

``cache`` manages that store: ``stats`` (entry/byte/timing counts),
``clear`` (drop every entry), and ``prune --figure <name>`` (drop the
named figure's default-parameter cells, keeping shared baselines other
figures still reference out of the blast radius is *not* attempted —
prune is hash-exact, so a shared baseline pruned here is simply
re-simulated or re-cached by the next run that needs it).

``--bench-json PATH`` appends one machine-readable record per
invocation (figures run, engine stats, wall time) so performance
trajectories can accumulate across runs.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .harness import PLANNERS, ExperimentEngine, ResultCache, run_plans

#: Which per-figure keyword each CLI flag maps to, per experiment.
_PROCS_EXPERIMENTS = ("fig5a", "fig5b", "fig6", "fig8")
_NPROCS_EXPERIMENTS = ("table1", "fig7")
_REPEATS_EXPERIMENTS = ("fig5a", "fig7", "fig8")
_PPN_EXPERIMENTS = ("table1", "fig7", "fig8", "fig9")


def _int_list(text: str) -> tuple[int, ...]:
    """argparse type for comma-separated positive ints ("8,16,32")."""
    try:
        values = tuple(int(x) for x in text.split(","))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not values or any(v < 1 for v in values):
        raise argparse.ArgumentTypeError(
            f"counts must be positive integers, got {text!r}"
        )
    return values


def _positive_int(text: str) -> int:
    """argparse type for integer flags that must be >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _planner_kwargs(name: str, args: argparse.Namespace) -> dict:
    kwargs: dict = {"seed": args.seed}
    if args.procs is not None and name in _PROCS_EXPERIMENTS:
        kwargs["procs"] = args.procs
    if args.nprocs is not None and name in _NPROCS_EXPERIMENTS:
        kwargs["nprocs"] = args.nprocs
    if args.nodes is not None and name == "fig9":
        kwargs["nodes"] = args.nodes
    if args.repeats is not None and name in _REPEATS_EXPERIMENTS:
        kwargs["repeats"] = args.repeats
    if args.ppn is not None and name in _PPN_EXPERIMENTS:
        kwargs["ppn"] = args.ppn
    return kwargs


def _cache_main(argv: list[str]) -> int:
    """``repro-mpi cache {stats,clear,prune}`` — manage the result cache."""
    parser = argparse.ArgumentParser(
        prog="repro-mpi cache",
        description="Inspect and manage the on-disk simulation result cache",
    )
    sub = parser.add_subparsers(dest="action", required=True)
    for name, desc in (
        ("stats", "entry count, on-disk bytes, recorded timings"),
        ("clear", "delete every cached result (timings survive)"),
        ("prune", "delete one figure's default-parameter entries"),
    ):
        p = sub.add_parser(name, help=desc)
        p.add_argument("--cache-dir", type=str, default=None,
                       help="cache directory (default $REPRO_CACHE_DIR "
                            "or ~/.cache/repro-mpi)")
        if name == "prune":
            p.add_argument("--figure", required=True, choices=sorted(PLANNERS),
                           help="figure whose cells to evict")
    args = parser.parse_args(argv)
    cache = ResultCache(args.cache_dir)

    if args.action == "stats":
        entries = len(cache)
        print(f"cache dir:      {cache.root}")
        print(f"schema version: v{cache.version_dir.name.lstrip('v')}")
        print(f"entries:        {entries}")
        print(f"size:           {cache.total_bytes() / 1024:.1f} KiB")
        print(f"recorded times: {cache.timing_count()}")
        return 0
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
        return 0
    # prune: evict the figure's default plan, dependency chain included
    # (probe/parent entries are figure-specific cells too).
    plan = PLANNERS[args.figure]()
    specs: dict = {}
    for spec in plan.specs:
        for ancestor in spec.ancestors():
            specs.setdefault(ancestor, None)
        specs.setdefault(spec, None)
    removed = cache.prune(specs)
    print(f"pruned {removed}/{len(specs)} {args.figure} entr"
          f"{'y' if removed == 1 else 'ies'}")
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro-mpi",
        description=(
            "Reproduce the evaluation of 'Enabling Practical Transparent "
            "Checkpointing for MPI: A Topological Sort Approach' (CLUSTER 2024)"
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(PLANNERS) + ["all"],
        help="which table/figure to regenerate (or `cache` to manage "
             "the result cache)",
    )
    parser.add_argument("--procs", type=_int_list, default=None,
                        help="comma-separated process counts (fig5a/fig5b/fig6/fig8)")
    parser.add_argument("--nprocs", type=_positive_int, default=None,
                        help="process count (table1/fig7)")
    parser.add_argument("--nodes", type=_int_list, default=None,
                        help="comma-separated node counts (fig9)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=_positive_int, default=None,
                        help="repetitions per cell, seeds seed..seed+n-1 "
                             "(fig5a/fig7/fig8)")
    parser.add_argument("--ppn", type=_positive_int, default=None,
                        help="ranks per node (table1/fig7/fig8/fig9)")
    parser.add_argument("--jobs", "-j", type=_positive_int, default=1,
                        help="parallel simulation worker processes (default 1)")
    parser.add_argument("--cache-dir", type=str, default=None,
                        help="result cache directory "
                             "(default $REPRO_CACHE_DIR or ~/.cache/repro-mpi)")
    parser.add_argument("--no-cache", action="store_true",
                        help="neither read nor write the result cache")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")
    parser.add_argument("--bench-json", type=str, default=None,
                        help="append a JSON record of this run's engine "
                             "stats and wall time to PATH")
    args = parser.parse_args(argv)

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is not None:
        try:
            cache.version_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            parser.error(f"cannot use cache directory {cache.root}: {exc}")
    engine = ExperimentEngine(
        jobs=args.jobs, cache=cache, progress=not args.quiet
    )

    names = sorted(PLANNERS) if args.experiment == "all" else [args.experiment]
    plans = [PLANNERS[name](**_planner_kwargs(name, args)) for name in names]
    t0 = time.time()
    # One batch for everything requested: cross-figure dedupe is the
    # whole point of batching `all`.
    results = run_plans(plans, engine)
    for result in results:
        print(result.render())
        print()
    stats = engine.last_stats
    if stats is not None:
        print(f"[{'+'.join(names)}: {stats.summary()}; "
              f"{time.time() - t0:.1f}s total]")
    if args.bench_json:
        _append_bench_record(args.bench_json, names, stats, time.time() - t0)
    return 0


def _append_bench_record(path: str, names: list[str], stats, total: float) -> None:
    """Accumulate one run's engine metrics in a JSON list at ``path``."""
    record = {
        "figures": names,
        "total_seconds": round(total, 3),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }
    if stats is not None:
        record["engine"] = {
            "submitted": stats.submitted,
            "deduped": stats.deduped,
            "chained": stats.chained,
            "cache_hits": stats.cache_hits,
            "executed": stats.executed,
            "prediction_hit_rate": round(stats.prediction_hit_rate, 4),
            "wall_time": round(stats.wall_time, 3),
        }
    try:
        with open(path) as fh:
            records = json.load(fh)
        if not isinstance(records, list):
            records = [records]
    except (OSError, ValueError):
        records = []
    records.append(record)
    with open(path, "w") as fh:
        json.dump(records, fh, indent=2)
        fh.write("\n")


if __name__ == "__main__":
    sys.exit(main())
