"""repro: reproduction of "Enabling Practical Transparent Checkpointing
for MPI: A Topological Sort Approach" (Xu & Cooperman, CLUSTER 2024).

Top-level convenience imports; see README.md for the architecture tour.
"""

__version__ = "1.0.0"

from .apps import AppContext, MpiApp, make_app_factory
from .harness import launch_run, restart_run

__all__ = [
    "__version__",
    "MpiApp",
    "AppContext",
    "make_app_factory",
    "launch_run",
    "restart_run",
]
