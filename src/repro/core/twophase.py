"""MANA's original two-phase-commit (2PC) algorithm — the baseline.

Every blocking collective call gets a *trivial barrier* in front of it:
an ``MPI_Ibarrier`` on a shadow communicator followed by an ``MPI_Test``
polling loop (Section 2.2).  The inserted synchronization is pure
overhead in steady state — this is precisely the cost the paper's
Figure 5a measures — and it breaks the non-blocking collective model,
so ``i``-collectives raise :class:`UnsupportedOperationError` (the NA
entries of Figures 5b and 7).

At checkpoint time: a rank that has not yet issued its trivial barrier
parks right away (no member can be inside the real collective, because
nobody can skip the barrier).  A rank inside the test loop parks there;
if its barrier completes — all members arrived — it *must* proceed
through the real collective before it can park again.  On restart, the
wrapper re-issues the Ibarrier (here via the intra-step replay
machinery, which re-executes the interrupted wrapper call from
scratch).
"""

from __future__ import annotations

from typing import Any, Callable

from .protocol import CoordinatorLogic, RankProtocol, UnsupportedOperationError

__all__ = ["TwoPhaseCommitProtocol", "TwoPCCoordinatorLogic"]


class TwoPhaseCommitProtocol(RankProtocol):
    """Per-rank 2PC state machine."""

    name = "2pc"
    supports_nonblocking = False
    adds_wrapper_cost = True

    def on_blocking_collective(
        self, ggid: int, members: tuple[int, ...], execute: Callable[[], Any]
    ) -> Any:
        sess = self.session
        sess.sim.sleep(sess.overheads.wrapper_call)
        self.absorb_control()
        if self.intent:
            # Not in the barrier yet: safe point (nobody can be in the
            # real collective if this member hasn't passed the barrier).
            self.park_until_resume()
        # Phase 1: the trivial barrier.  (None for groups that cannot have
        # a shadow communicator — create_group comms — a documented
        # limitation carried over from MANA 2019.)
        barrier_req = sess.protocol_ibarrier(ggid)
        gap = sess.overheads.ibarrier_poll_gap
        test = sess.overheads.test_call
        while barrier_req is not None:
            sess.sim.sleep(test)
            if barrier_req.done:
                break
            self.absorb_control()
            if self.intent:
                # In the barrier with a pending checkpoint: park, but keep
                # polling the barrier — if it completes, every member has
                # entered and this rank must go through the collective.
                outcome = self.park_until_resume(poll=lambda: barrier_req.done)
                if outcome == "poll":
                    break  # barrier completed while parked
                continue  # resumed (checkpoint committed) or unparked
            sess.sim.sleep(gap)
        # Phase 2: the real collective.
        result = execute()
        self.absorb_control()
        if self.intent:
            self.park_until_resume()
        return result

    def on_nonblocking_collective(
        self, ggid: int, members: tuple[int, ...], initiate: Callable[[], Any]
    ) -> Any:
        raise UnsupportedOperationError(
            "MANA's 2PC algorithm does not support non-blocking collective "
            "communication (see the paper, Sections 2.2 and 5.2); "
            "use the CC protocol"
        )


class TwoPCCoordinatorLogic(CoordinatorLogic):
    """2PC needs no Algorithm-1 phase: intent goes straight out and ranks
    park at their trivial barriers."""

    collects_seq_reports = False

    def compute_targets(self, reports: dict[int, dict[int, int]]) -> dict[int, int]:
        return {}
