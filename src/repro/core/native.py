"""Native execution: no interposition, no checkpoint support.

The baseline every overhead figure is computed against.  Wrappers cost
nothing and checkpoint requests are a hard error — a native run simply
cannot be checkpointed, which is the paper's motivation in the first
place.
"""

from __future__ import annotations

from typing import Any, Callable

from .protocol import CoordinatorLogic, ProtocolError, RankProtocol

__all__ = ["NativeProtocol", "NativeCoordinatorLogic"]


class NativeProtocol(RankProtocol):
    """Passthrough wrappers."""

    name = "native"
    supports_nonblocking = True
    adds_wrapper_cost = False

    def on_blocking_collective(
        self, ggid: int, members: tuple[int, ...], execute: Callable[[], Any]
    ) -> Any:
        return execute()

    def on_nonblocking_collective(
        self, ggid: int, members: tuple[int, ...], initiate: Callable[[], Any]
    ) -> Any:
        return initiate()

    def on_request_completion_call(self) -> None:  # no wrapper cost
        return

    def at_safe_point(self) -> None:  # no control plane to poll
        return

    def on_app_finished(self) -> None:
        return

    def on_intent(self) -> None:  # pragma: no cover - guarded by dispatch
        raise ProtocolError("native runs cannot be checkpointed")

    def dispatch(self, msg: tuple, *, parked: bool) -> str:
        raise ProtocolError(
            f"native protocol received control message {msg!r}; "
            "checkpointing requires the 2PC or CC protocol"
        )


class NativeCoordinatorLogic(CoordinatorLogic):
    collects_seq_reports = False

    def compute_targets(self, reports: dict[int, dict[int, int]]) -> dict[int, int]:
        raise ProtocolError("native runs cannot be checkpointed")
