"""Offline model of the CC algorithm's extended directed graph.

The paper views an MPI execution as a directed graph: nodes are
collective operations, edges are labelled by processes entering/exiting
them (Section 4.2.2).  Given each rank's *program* (its sequence of
collective operations, identified by group) and the positions the ranks
had reached when the checkpoint request arrived, the safe cut is the
least fixed point of:

    targets[g]   = max over ranks of executed ops on g
    position[r] >= first position where r's counts meet all targets

Advancing a rank to meet a target may push its count on *another* group
past that group's target (the paper's Figure 2b / Figure 3b situation),
which raises that target and forces other ranks forward — exactly the
target-update propagation of the online algorithm.  The fixpoint here
serves as an independent oracle: tests check that the online protocol
stops at precisely this cut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

__all__ = ["CollectiveProgram", "SafeCut", "compute_safe_cut", "build_dependency_graph"]

GroupId = Hashable

#: Prefix-count snapshot spacing: ``counts_at`` pays O(block + groups)
#: per call instead of O(position).
_PREFIX_BLOCK = 128


@dataclass(frozen=True)
class CollectiveProgram:
    """Per-rank sequences of collective operations.

    ``ops[r]`` lists, in program order, the group id of each collective
    call rank ``r`` makes.  A *legal* program must interleave so that all
    members of a group call its operations the same number of times in
    the same per-group order; programs generated from a global per-group
    schedule satisfy this by construction.
    """

    ops: tuple[tuple[GroupId, ...], ...]
    members: dict[GroupId, tuple[int, ...]]

    @property
    def nranks(self) -> int:
        return len(self.ops)

    def _prefix_snapshots(self, rank: int) -> list[dict]:
        """Per-group counts at every ``_PREFIX_BLOCK`` ops of ``rank``.

        Built lazily, once per rank, and cached on the instance (the
        program is immutable).  Rebuilding the prefix from scratch on
        every ``counts_at`` call made the :func:`compute_safe_cut`
        fixpoint quadratic in program length; with the snapshots each
        call scans at most one block.
        """
        cache = self.__dict__.get("_prefix_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_prefix_cache", cache)
        snapshots = cache.get(rank)
        if snapshots is None:
            snapshots = [{}]
            counts: dict[GroupId, int] = {}
            for i, g in enumerate(self.ops[rank], 1):
                counts[g] = counts.get(g, 0) + 1
                if i % _PREFIX_BLOCK == 0:
                    snapshots.append(dict(counts))
            cache[rank] = snapshots
        return snapshots

    def counts_at(self, rank: int, position: int) -> dict[GroupId, int]:
        """Per-group executed-op counts after ``position`` ops of ``rank``."""
        snapshots = self._prefix_snapshots(rank)
        base = min(position // _PREFIX_BLOCK, len(snapshots) - 1)
        counts = dict(snapshots[base])
        for g in self.ops[rank][base * _PREFIX_BLOCK : position]:
            counts[g] = counts.get(g, 0) + 1
        return counts

    def validate(self) -> None:
        """Check group membership consistency: rank r may only call ops on
        groups containing r."""
        for r, seq in enumerate(self.ops):
            for g in seq:
                if r not in self.members[g]:
                    raise ValueError(f"rank {r} calls op on group {g!r} it is not in")


@dataclass
class SafeCut:
    """The resolved cut: final positions, per-group targets."""

    positions: tuple[int, ...]
    targets: dict[GroupId, int] = field(default_factory=dict)

    def advanced_from(self, start: Sequence[int]) -> list[int]:
        """Ops each rank had to execute beyond its request-time position."""
        return [p - s for p, s in zip(self.positions, start)]


def compute_safe_cut(
    program: CollectiveProgram, start_positions: Sequence[int]
) -> SafeCut:
    """Least fixed point of the target/advance iteration.

    Mirrors Algorithms 1-3: initial targets are the per-group maxima of
    executed counts at the request; each rank then advances to the first
    position meeting every target *that concerns a group the rank
    belongs to*; overshoot raises targets and the iteration repeats.
    """
    program.validate()
    n = program.nranks
    if len(start_positions) != n:
        raise ValueError(f"need {n} start positions, got {len(start_positions)}")
    for r, p in enumerate(start_positions):
        if not 0 <= p <= len(program.ops[r]):
            raise ValueError(f"rank {r} position {p} out of range")

    positions = list(start_positions)
    counts = [program.counts_at(r, positions[r]) for r in range(n)]

    # Algorithm 1: initial targets.
    targets: dict[GroupId, int] = {}
    for r in range(n):
        for g, c in counts[r].items():
            if c > targets.get(g, 0):
                targets[g] = c

    changed = True
    while changed:
        changed = False
        for r in range(n):
            # Advance rank r while some group it belongs to is unreached.
            while any(
                counts[r].get(g, 0) < t
                for g, t in targets.items()
                if r in program.members[g]
            ):
                if positions[r] >= len(program.ops[r]):
                    raise RuntimeError(
                        f"rank {r} exhausted its program before reaching targets; "
                        "the input program is not legal MPI"
                    )
                g = program.ops[r][positions[r]]
                positions[r] += 1
                c = counts[r].get(g, 0) + 1
                counts[r][g] = c
                changed = True
                if c > targets.get(g, 0):
                    targets[g] = c  # overshoot: the cut moves forward

    # Consistency: all members of each targeted group agree on the count.
    for g, t in targets.items():
        for r in program.members[g]:
            if counts[r].get(g, 0) != t:
                raise RuntimeError(
                    f"fixpoint violated for group {g!r}: rank {r} at "
                    f"{counts[r].get(g, 0)} vs target {t}"
                )
    return SafeCut(positions=tuple(positions), targets=targets)


def build_dependency_graph(program: CollectiveProgram):
    """The paper's directed graph as a networkx DiGraph.

    Nodes are ``(group, k)`` — the k-th operation on that group (1-based).
    For each rank, consecutive operations in program order get an edge
    labelled by the rank.  The graph of a legal program is acyclic, and
    the safe cut is a downward-closed set under its reachability — both
    properties are asserted in tests.
    """
    import networkx as nx

    g = nx.DiGraph()
    for r, seq in enumerate(program.ops):
        per_group: dict[GroupId, int] = {}
        prev = None
        for gid in seq:
            per_group[gid] = per_group.get(gid, 0) + 1
            node = (gid, per_group[gid])
            if not g.has_node(node):
                g.add_node(node)
            if prev is not None:
                if g.has_edge(prev, node):
                    g[prev][node]["ranks"].append(r)
                else:
                    g.add_edge(prev, node, ranks=[r])
            prev = node
    return g
