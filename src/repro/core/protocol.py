"""Checkpoint protocol framework: base classes and control-plane messages.

A *protocol* decides what extra work happens around each interposed MPI
call and how a rank behaves between a checkpoint request (*intent*) and
the commit.  Three protocols are provided:

* :class:`~repro.core.native.NativeProtocol` — passthrough (the
  paper's "Native" baseline; no wrappers, no checkpointing),
* :class:`~repro.core.twophase.TwoPhaseCommitProtocol` — MANA 2019's
  trivial-barrier algorithm (the paper's "2PC"),
* :class:`~repro.core.cc.CollectiveClockProtocol` — the paper's
  contribution (the "CC" algorithm).

Control-plane message conventions (tuples; first element is the kind):

========================  =======================================================
coordinator -> rank        ``("intent", ckpt_id)``, ``("targets", {ggid: n})``,
                           ``("confirm?",)``, ``("commit",)``,
                           ``("drain_p2p", expected)``, ``("snapshot", duration)``,
                           ``("resume",)``, ``("abort",)``
rank -> rank               ``("target_update", ggid, value)``
rank -> coordinator        ``("seq_report", rank, {ggid: n})``,
                           ``("parked", rank, gen, sent, recvd)``,
                           ``("unparked", rank)``,
                           ``("confirm", rank, still_parked, sent, recvd)``,
                           ``("nbc_done", rank, sent_counts)``,
                           ``("p2p_done", rank, nbytes)``,
                           ``("written", rank, image)``,
                           ``("finished", rank)``
========================  =======================================================

``("finished", rank)`` announces application completion.  A rank that
knows of a pending intent parks (and participates in the commit)
*before* announcing; one that exits unaware is taken over by the
coordinator's trivially-parked proxy, which answers all of the above
on its behalf so rounds commit through rank completion (see
:class:`repro.mana.coordinator._FinishedRankProxy`).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..mana.session import Session

__all__ = [
    "RankProtocol",
    "CoordinatorLogic",
    "UnsupportedOperationError",
    "ProtocolError",
    "RoundAborted",
]


class ProtocolError(Exception):
    """Protocol state-machine violation (indicates a bug, not app error)."""


class RoundAborted(Exception):
    """The coordinator aborted the round mid-commit (e.g. a participant
    crashed).  Raised out of the rank-side commit sequence and caught by
    the protocol's park loop, which clears checkpoint state and resumes
    the application — nothing was committed."""


class UnsupportedOperationError(Exception):
    """The protocol cannot wrap this operation.

    The flagship case: MANA's 2PC algorithm does not support non-blocking
    collective communication (paper Sections 2.2 and 5.2) — the harness
    reports these app/protocol combinations as NA, as the paper does.
    """


class RankProtocol(ABC):
    """Per-rank protocol instance, driven by the session's wrappers."""

    #: Protocol name ("native" / "2pc" / "cc").
    name: str = "abstract"
    #: Whether non-blocking collectives are wrappable.
    supports_nonblocking: bool = True
    #: Whether the interposition layer charges wrapper costs (False only
    #: for native runs, which have no MANA in the picture at all).
    adds_wrapper_cost: bool = True

    def __init__(self, session: "Session"):
        self.session = session
        self.intent = False
        self.ckpt_id: int | None = None
        self.targets_known = False
        self._park_generation = 0
        #: Set when a commit arrives while the rank is momentarily
        #: executing (it unparked on data-plane completion just as the
        #: coordinator decided); honored at the next park point.
        self._commit_pending = False

    # ------------------------------------------------------------------ #
    # Wrapper hooks (implemented by concrete protocols)
    # ------------------------------------------------------------------ #

    @abstractmethod
    def on_blocking_collective(
        self, ggid: int, members: tuple[int, ...], execute: Callable[[], Any]
    ) -> Any:
        """Wrap one blocking collective call; must invoke ``execute``."""

    @abstractmethod
    def on_nonblocking_collective(
        self, ggid: int, members: tuple[int, ...], initiate: Callable[[], Any]
    ) -> Any:
        """Wrap one non-blocking collective initiation."""

    def on_request_completion_call(self) -> None:
        """Hook charged on wait/test wrappers (the second wrapper of a
        non-blocking operation, Section 5.1.2)."""
        if self.adds_wrapper_cost:
            self.session.sim.sleep(self.session.overheads.wrapper_call)

    def at_safe_point(self) -> None:
        """Called at natural safe points outside MPI calls (compute
        interruptions, step boundaries) so control messages are absorbed
        promptly.

        Deliberately does NOT park: ranks park only at collective-wrapper
        boundaries (and at app finish), exactly as in the paper's
        Algorithms 2-3.  Parking anywhere earlier is unsound — a rank
        that stops before its pre-collective point-to-point sends leaves
        a peer's receive dangling across the cut (the matched pair would
        cross the cut), which deadlocks the drain.
        """
        self.absorb_control()

    def on_app_finished(self) -> None:
        """The app returned; if a checkpoint is pending the rank must
        still participate before the process exits."""
        self.absorb_control()
        if self.intent:
            self.park_until_resume()

    # ------------------------------------------------------------------ #
    # Control-plane handling shared by CC and 2PC
    # ------------------------------------------------------------------ #

    def absorb_control(self) -> None:
        """Drain and dispatch all queued control messages (non-blocking)."""
        mailbox = self.session.control
        while True:
            ok, msg = mailbox.try_get()
            if not ok:
                return
            self.dispatch(msg, parked=False)

    def dispatch(self, msg: tuple, *, parked: bool) -> str:
        """Handle one control message; returns an action for park loops:
        ``"stay"``, ``"unpark"``, or ``"resumed"``."""
        kind = msg[0]
        if kind == "intent":
            if not self.intent:
                self.intent = True
                self.ckpt_id = msg[1]
                self.on_intent()
            return "stay"
        if kind == "targets":
            self.on_targets(msg[1])
            if parked and not self.ready_to_park():
                return "unpark"
            return "stay"
        if kind == "target_update":
            changed = self.on_target_update(msg[1], msg[2])
            if parked and changed and not self.ready_to_park():
                return "unpark"
            return "stay"
        if kind == "confirm?":
            self.session.to_coordinator(
                (
                    "confirm",
                    self.session.rank,
                    parked,
                    self.session.ctrl_sent,
                    self.session.ctrl_received,
                )
            )
            return "stay"
        if kind == "abort":
            # The coordinator abandoned the round (a rank finished before
            # the cut quiesced).  Drop all checkpoint state and keep
            # executing — there is nothing to commit.
            if self.intent:
                self.on_abort()
            return "resumed" if parked else "stay"
        if kind == "commit":
            if not parked:
                # Race: this rank unparked on a data-plane event (e.g. a
                # blocked receive completed) after the quiescence confirm
                # but before the commit arrived.  It cannot execute any
                # collective (all targets reached => the next wrapper
                # parks pre-increment), so deferring the commit to the
                # next park point leaves the cut intact; any p2p it sends
                # meanwhile lands in the peers' drains consistently.
                self._commit_pending = True
                return "stay"
            try:
                self.session.participate_in_commit()
            except RoundAborted:
                self.on_abort()
                return "resumed"
            self.on_resume()
            return "resumed"
        raise ProtocolError(f"rank {self.session.rank}: unexpected control {msg!r}")

    def park_until_resume(self, *, poll: Callable[[], bool] | None = None) -> str:
        """Report parked and block on the control mailbox until resumed or
        legitimately unparked.

        ``poll``, if given, is invoked between control messages (with the
        2PC test-loop gap) and parking ends with ``"poll"`` when it
        returns True — 2PC uses this for its trivial-barrier test loop.
        """
        from ..des.sync import TIMEOUT

        if self._commit_pending:
            # A commit was deferred while we were briefly executing.
            self._commit_pending = False
            try:
                self.session.participate_in_commit()
            except RoundAborted:
                self.on_abort()
                return "resumed"
            self.on_resume()
            return "resumed"

        def report_parked() -> tuple[int, int]:
            self._park_generation += 1
            counters = (self.session.ctrl_sent, self.session.ctrl_received)
            self.session.to_coordinator(
                ("parked", self.session.rank, self._park_generation, *counters)
            )
            return counters

        reported = report_parked()
        gap = self.session.overheads.ibarrier_poll_gap
        while True:
            if poll is None:
                msg = self.session.control.get()
            else:
                msg = self.session.control.get(timeout=gap)
                if msg is TIMEOUT:
                    if poll():
                        self.session.to_coordinator(("unparked", self.session.rank))
                        return "poll"
                    continue
            action = self.dispatch(msg, parked=True)
            if action == "unpark":
                self.session.to_coordinator(("unparked", self.session.rank))
                return "unpark"
            if action == "resumed":
                return "resumed"
            # Still parked: if the absorbed message moved the control
            # counters (e.g. a duplicate target update), the coordinator's
            # quiescence bookkeeping must see the new totals or the sums
            # will never balance.
            if (self.session.ctrl_sent, self.session.ctrl_received) != reported:
                reported = report_parked()

    # ------------------------------------------------------------------ #
    # Protocol-specific checkpoint reactions (overridable)
    # ------------------------------------------------------------------ #

    def on_intent(self) -> None:
        """React to the checkpoint request (CC: send the SEQ report)."""

    def on_targets(self, targets: dict[int, int]) -> None:
        """Install initial targets (CC only)."""

    def on_target_update(self, ggid: int, value: int) -> bool:
        """Apply a peer's target update; returns True if targets changed."""
        return False

    def ready_to_park(self) -> bool:
        """True when this rank has nothing left to execute before the cut."""
        return True

    def on_resume(self) -> None:
        """Clear checkpoint state after a committed checkpoint."""
        self.intent = False
        self.ckpt_id = None
        self.targets_known = False

    def on_abort(self) -> None:
        """Clear checkpoint state after an aborted round (no commit ran)."""
        self._commit_pending = False
        self.on_resume()


class CoordinatorLogic(ABC):
    """Protocol-specific piece of the checkpoint coordinator."""

    #: Whether phase 1 collects SEQ reports before ranks can park (CC).
    collects_seq_reports: bool = False

    @abstractmethod
    def compute_targets(self, reports: dict[int, dict[int, int]]) -> dict[int, int]:
        """Fold per-rank SEQ reports into global targets (Algorithm 1)."""
