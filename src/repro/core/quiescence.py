"""Global quiescence detection for the checkpoint coordinator.

The drain phase is done when (a) every rank is parked — it has reached
all its targets (CC) or is stalled at a safe point (2PC) — and (b) no
target-update control messages are still in flight.  Condition (b) uses
Mattern's four-counter idea: each parked report carries the rank's
cumulative control-message send and receive counts; when all ranks are
parked and the global sums match, no update can be in flight (an
in-flight message would have been counted by its sender but not yet by
its receiver).  A confirmation round guards against reports that raced
with an unpark.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QuiescenceTracker"]


@dataclass
class _ParkReport:
    generation: int
    sent: int
    received: int


@dataclass
class QuiescenceTracker:
    """Tracks park/unpark reports and decides when to try a confirm round."""

    nprocs: int
    parked: dict[int, _ParkReport] = field(default_factory=dict)
    confirming: bool = False
    _confirm_votes: dict[int, bool] = field(default_factory=dict)

    def on_parked(self, rank: int, generation: int, sent: int, received: int) -> None:
        report = self.parked.get(rank)
        if report is None or generation >= report.generation:
            self.parked[rank] = _ParkReport(generation, sent, received)
        if self.confirming:
            # State changed mid-confirmation: abort the round.
            self.confirming = False
            self._confirm_votes.clear()

    def on_unparked(self, rank: int) -> None:
        self.parked.pop(rank, None)
        if self.confirming:
            self.confirming = False
            self._confirm_votes.clear()

    def candidate(self) -> bool:
        """All ranks parked and control-message counters balance."""
        if len(self.parked) != self.nprocs:
            return False
        total_sent = sum(r.sent for r in self.parked.values())
        total_recv = sum(r.received for r in self.parked.values())
        return total_sent == total_recv

    # -- confirmation round -------------------------------------------------

    def begin_confirm(self) -> None:
        self.confirming = True
        self._confirm_votes.clear()

    def on_confirm_vote(
        self, rank: int, still_parked: bool, sent: int, received: int
    ) -> None:
        if not self.confirming:
            return
        if not still_parked:
            self.confirming = False
            self._confirm_votes.clear()
            self.parked.pop(rank, None)
            return
        report = self.parked.get(rank)
        if report is None or report.sent != sent or report.received != received:
            # Counters moved since the park report: restart detection.
            self.confirming = False
            self._confirm_votes.clear()
            if report is not None:
                self.parked[rank] = _ParkReport(report.generation, sent, received)
            return
        self._confirm_votes[rank] = True

    def confirmed(self) -> bool:
        return (
            self.confirming
            and len(self._confirm_votes) == self.nprocs
            and self.candidate()
        )

    def reset(self) -> None:
        self.parked.clear()
        self.confirming = False
        self._confirm_votes.clear()
