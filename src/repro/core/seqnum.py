"""Sequence-number and target bookkeeping — the ``seq_num.cpp`` analog.

Each rank keeps, for every global group id it knows:

* ``SEQ[ggid]``   — how many collective operations on that group this
  rank has executed (incremented locally, no communication;
  paper Section 4.2.1), and
* ``TARGET[ggid]`` — once a checkpoint is pending, the number of
  operations the rank must reach before it may stop (global maximum at
  request time, monotonically raised by target-update messages;
  Sections 4.2.2-4.2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SeqNumTable"]


@dataclass
class SeqNumTable:
    """Rank-local SEQ/TARGET state."""

    seq: dict[int, int] = field(default_factory=dict)
    target: dict[int, int] = field(default_factory=dict)

    # -- steady-state -----------------------------------------------------

    def ensure_group(self, ggid: int) -> None:
        """Initialize SEQ[ggid]=0 on first sight of a group (communicator
        creation), per Section 4.2.1."""
        self.seq.setdefault(ggid, 0)

    def increment(self, ggid: int) -> int:
        """Count one collective call on the group; returns the new SEQ."""
        value = self.seq.get(ggid, 0) + 1
        self.seq[ggid] = value
        return value

    def seq_of(self, ggid: int) -> int:
        return self.seq.get(ggid, 0)

    # -- checkpoint-time --------------------------------------------------

    def set_targets(self, targets: dict[int, int]) -> None:
        """Install the initial targets computed by Algorithm 1."""
        for ggid, tgt in targets.items():
            self.ensure_group(ggid)
            current = self.target.get(ggid, -1)
            if tgt > current:
                self.target[ggid] = tgt

    def raise_target(self, ggid: int, value: int) -> bool:
        """Raise TARGET[ggid] to ``value`` (idempotent; never lowers).

        Returns True if the target actually increased — the condition for
        forwarding the update to group peers (the SEND step in
        Algorithm 2).
        """
        current = self.target.get(ggid, -1)
        if value > current:
            self.target[ggid] = value
            return True
        return False

    def target_of(self, ggid: int) -> int:
        return self.target.get(ggid, 0)

    def unreached(self) -> list[int]:
        """ggids with SEQ < TARGET: the groups this rank must still serve
        (Condition A' of Section 4.2.2)."""
        out = []
        for ggid, tgt in self.target.items():
            if self.seq.get(ggid, 0) < tgt:
                out.append(ggid)
        return out

    def all_targets_reached(self) -> bool:
        """True when SEQ[g] == TARGET[g] for every targeted group."""
        return not self.unreached()

    def overshoot(self, ggid: int) -> bool:
        """True if SEQ[ggid] exceeds the current target (the rank just
        executed an operation beyond the cut, so the cut must move)."""
        return self.seq.get(ggid, 0) > self.target.get(ggid, -1)

    def clear_targets(self) -> None:
        """Forget targets after a committed checkpoint (resume)."""
        self.target.clear()

    # -- checkpointing the table itself ------------------------------------

    def snapshot(self) -> dict:
        return {"seq": dict(self.seq), "target": dict(self.target)}

    @classmethod
    def restore(cls, data: dict) -> "SeqNumTable":
        return cls(
            seq={int(k): int(v) for k, v in data["seq"].items()},
            target={int(k): int(v) for k, v in data["target"].items()},
        )
