"""Drain of incomplete non-blocking collective requests (Section 4.3.2).

At a safe state, every member of every initiated non-blocking collective
has initiated it (the sequence numbers are equal across members), so the
operation *will* complete; the CC algorithm keeps calling MPI_Test on
each incomplete request until all communications have completed.
"""

from __future__ import annotations

from typing import Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..mana.session import Session
    from ..mana.vcomm import VirtualRequest

__all__ = ["drain_nonblocking_requests"]


def drain_nonblocking_requests(session: "Session") -> int:
    """MPI_Test-loop every incomplete non-blocking collective request.

    Returns the number of requests that had to be drained.  Point-to-point
    requests are *not* waited here — they are handled by the subsequent
    p2p drain phase (and pending receives may legitimately stay pending
    across the checkpoint).
    """
    pending = [
        vr
        for vr in session.live_requests()
        if vr.is_collective and not vr.done
    ]
    drained = len(pending)
    test = session.overheads.test_call
    gap = session.overheads.ibarrier_poll_gap
    while pending:
        # A participant may have crashed mid-commit: a request it was
        # party to will never complete, and the coordinator's abort is
        # the only way out of this test loop.
        session.poll_commit_abort()
        still = []
        for vr in pending:
            session.sim.sleep(test)
            if not vr.done:
                still.append(vr)
        pending = still
        if pending:
            session.sim.sleep(gap)
    return drained
