"""The Collective Clock (CC) algorithm — the paper's contribution.

Steady state (Section 4.2.1): every interposed collective call costs one
wrapper entry plus a local sequence-number increment.  **No network
operations are executed**, which is why the runtime overhead stays near
zero in Figures 5-8.

Checkpoint time (Sections 4.2.2-4.2.4): the coordinator collects each
rank's SEQ table (Algorithm 1), computes per-ggid global maxima as
targets, and ranks continue executing until every target is reached
(Condition A'); executing past a target raises it and pushes updates to
the group's peers (the SEND step of Algorithm 2), with
``wait_for_new_targets`` (Algorithm 3) at wrapper entry and exit.

Non-blocking collectives (Section 4.3): SEQ is incremented at
*initiation*; incomplete requests are drained with an MPI_Test loop once
the safe state is reached (see :mod:`repro.core.drain`).
"""

from __future__ import annotations

from typing import Any, Callable

from .protocol import CoordinatorLogic, RankProtocol

__all__ = ["CollectiveClockProtocol", "CCCoordinatorLogic"]


class CollectiveClockProtocol(RankProtocol):
    """Per-rank CC state machine."""

    name = "cc"
    supports_nonblocking = True
    adds_wrapper_cost = True

    # ------------------------------------------------------------------ #
    # Wrappers (Algorithm 2)
    # ------------------------------------------------------------------ #

    def on_blocking_collective(
        self, ggid: int, members: tuple[int, ...], execute: Callable[[], Any]
    ) -> Any:
        sess = self.session
        # All virtual-time costs are charged *before* the control-plane
        # check so that nothing yields between absorbing control and the
        # increment+execute: otherwise a checkpoint intent delivered in
        # that window produces an increment that neither the rank nor the
        # coordinator's out-of-band SEQ read accounts for — the buried
        # operation would deadlock the drain.
        sess.sim.sleep(sess.overheads.wrapper_call + sess.overheads.seq_increment)
        self.wait_for_new_targets()
        self._increment_and_maybe_propagate(ggid, members)
        result = execute()
        self.wait_for_new_targets()
        return result

    def on_nonblocking_collective(
        self, ggid: int, members: tuple[int, ...], initiate: Callable[[], Any]
    ) -> Any:
        # The CC algorithm assumes an initiated non-blocking operation is
        # already executing in the background, so SEQ is bumped here, at
        # initiation (Section 4.3.1).  The two wrapper crossings (this
        # one plus the completion call's) are the extra constant cost
        # discussed in Section 5.1.2.
        sess = self.session
        sess.sim.sleep(sess.overheads.wrapper_call + sess.overheads.seq_increment)
        self.wait_for_new_targets()
        self._increment_and_maybe_propagate(ggid, members)
        vreq = initiate()
        self.wait_for_new_targets()
        return vreq

    def _increment_and_maybe_propagate(self, ggid: int, members: tuple[int, ...]) -> None:
        # No sim yields in here: atomic with the preceding absorb (see
        # on_blocking_collective).
        sess = self.session
        seq_val = sess.seq.increment(ggid)
        if self.intent and self.targets_known and seq_val > sess.seq.target_of(ggid):
            sess.seq.raise_target(ggid, seq_val)
            self._send_target_updates(ggid, seq_val, members)

    def _send_target_updates(self, ggid: int, value: int, members: tuple[int, ...]) -> None:
        """SEND step of Algorithm 2: inform the peer processes — found
        locally via the group registry (MPI_Group_translate_ranks in the
        paper) — that the target moved."""
        sess = self.session
        for peer in members:
            if peer != sess.rank:
                sess.send_control(peer, ("target_update", ggid, value))

    # ------------------------------------------------------------------ #
    # Algorithm 3
    # ------------------------------------------------------------------ #

    def wait_for_new_targets(self) -> None:
        """Return immediately if the rank must keep executing (some
        SEQ < TARGET, Condition A'); otherwise park until a new target
        arrives or the checkpoint commits.

        Before the targets are known the rank also parks (pre-increment):
        proceeding in that window could bury an increment inside a
        blocking collective where no target update can be sent, while a
        peer parks at the stale target — deadlock.  The coordinator reads
        SEQ tables out-of-band (the MANA checkpoint-thread semantics), so
        any increment made *before* the intent was delivered is already
        reflected in the incoming targets.
        """
        self.absorb_control()
        if not self.intent:
            return
        if self.targets_known and not self.session.seq.all_targets_reached():
            return
        self.park_until_resume()

    # ------------------------------------------------------------------ #
    # Checkpoint reactions
    # ------------------------------------------------------------------ #

    def on_intent(self) -> None:
        # Algorithm 1's SEQ collection is performed *out-of-band* by the
        # coordinator (the analog of MANA's checkpoint thread reading the
        # wrapper state from shared memory) — see
        # CheckpointCoordinator.request_checkpoint.  Nothing to do here.
        pass

    def on_targets(self, targets: dict[int, int]) -> None:
        sess = self.session
        # Algorithm 1 computes targets "for all G in *local* MPI groups":
        # the coordinator broadcasts the global map, and each rank keeps
        # only the groups it belongs to.  Installing a foreign group's
        # target would leave it permanently unreached (SEQ stays 0) and
        # the rank would never park.
        local = {g: t for g, t in targets.items() if g in sess.ggids}
        sess.seq.set_targets(local)
        self.targets_known = True
        # Defensive overshoot propagation: if this rank already ran past
        # a freshly computed target (it kept executing between its report
        # and the target distribution), move the cut forward immediately.
        for ggid in list(sess.seq.seq):
            if sess.seq.overshoot(ggid):
                value = sess.seq.seq_of(ggid)
                sess.seq.raise_target(ggid, value)
                if ggid in sess.ggids:
                    self._send_target_updates(ggid, value, sess.ggids.members(ggid))

    def on_target_update(self, ggid: int, value: int) -> bool:
        self.session.ctrl_received += 1
        return self.session.seq.raise_target(ggid, value)

    def ready_to_park(self) -> bool:
        return self.session.seq.all_targets_reached()

    def on_resume(self) -> None:
        super().on_resume()
        self.session.seq.clear_targets()


class CCCoordinatorLogic(CoordinatorLogic):
    """Algorithm 1's global step: per-ggid max over all ranks' SEQ."""

    collects_seq_reports = True

    def compute_targets(self, reports: dict[int, dict[int, int]]) -> dict[int, int]:
        targets: dict[int, int] = {}
        for table in reports.values():
            for ggid, seq in table.items():
                if seq > targets.get(ggid, 0):
                    targets[ggid] = seq
        return targets
