"""The paper's core: checkpoint protocols and their supporting machinery.

* :mod:`repro.core.cc` — the Collective Clock algorithm (Section 4).
* :mod:`repro.core.twophase` — MANA 2019's 2PC baseline (Section 2.2).
* :mod:`repro.core.native` — passthrough baseline.
* :mod:`repro.core.seqnum` / :mod:`repro.core.ggid` — SEQ/TARGET tables
  and global group ids (the ``seq_num.cpp`` analog).
* :mod:`repro.core.quiescence` — coordinator-side drain-completion
  detection.
* :mod:`repro.core.drain` — non-blocking request drain (Section 4.3.2).
* :mod:`repro.core.graph` — offline topological-sort safe-cut oracle.
"""

from .cc import CCCoordinatorLogic, CollectiveClockProtocol
from .drain import drain_nonblocking_requests
from .ggid import GgidRegistry, compute_ggid
from .graph import CollectiveProgram, SafeCut, build_dependency_graph, compute_safe_cut
from .native import NativeCoordinatorLogic, NativeProtocol
from .protocol import (
    CoordinatorLogic,
    ProtocolError,
    RankProtocol,
    UnsupportedOperationError,
)
from .quiescence import QuiescenceTracker
from .seqnum import SeqNumTable
from .twophase import TwoPCCoordinatorLogic, TwoPhaseCommitProtocol

#: Protocol name -> (rank protocol class, coordinator logic class).
PROTOCOLS = {
    "native": (NativeProtocol, NativeCoordinatorLogic),
    "2pc": (TwoPhaseCommitProtocol, TwoPCCoordinatorLogic),
    "cc": (CollectiveClockProtocol, CCCoordinatorLogic),
}

__all__ = [
    "PROTOCOLS",
    "RankProtocol",
    "CoordinatorLogic",
    "ProtocolError",
    "UnsupportedOperationError",
    "CollectiveClockProtocol",
    "CCCoordinatorLogic",
    "TwoPhaseCommitProtocol",
    "TwoPCCoordinatorLogic",
    "NativeProtocol",
    "NativeCoordinatorLogic",
    "SeqNumTable",
    "GgidRegistry",
    "compute_ggid",
    "QuiescenceTracker",
    "drain_nonblocking_requests",
    "CollectiveProgram",
    "SafeCut",
    "compute_safe_cut",
    "build_dependency_graph",
]
