"""MANA emulation: split process, interposition, checkpoint, restart.

* :class:`Session` — per-rank wrapper layer (the upper half's brain).
* :class:`VirtualComm` / :class:`VirtualRequest` — virtualized handles.
* :class:`CheckpointCoordinator` — the DMTCP-coordinator analog.
* :class:`CheckpointImage` + file I/O — the image format.
* :mod:`repro.mana.splitproc` — upper/lower-half split verification.
"""

from .coordinator import CheckpointCoordinator, CheckpointRecord
from .image import CheckpointImage, ImageError, read_image_file, write_image_file
from .restart import (
    finished_ranks,
    load_checkpoint_set,
    save_checkpoint_set,
    set_is_terminal,
)
from .session import Session
from .splitproc import (
    SplitView,
    lower_half_of,
    split_view,
    upper_half_of,
    verify_image_is_upper_half_only,
)
from .vcomm import VirtualComm, VirtualRequest, current_session, session_scope

__all__ = [
    "Session",
    "VirtualComm",
    "VirtualRequest",
    "current_session",
    "session_scope",
    "CheckpointCoordinator",
    "CheckpointRecord",
    "CheckpointImage",
    "ImageError",
    "read_image_file",
    "write_image_file",
    "save_checkpoint_set",
    "load_checkpoint_set",
    "finished_ranks",
    "set_is_terminal",
    "SplitView",
    "split_view",
    "upper_half_of",
    "lower_half_of",
    "verify_image_is_upper_half_only",
]
