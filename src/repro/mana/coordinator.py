"""The checkpoint coordinator — the DMTCP-coordinator analog.

The coordinator is *event-driven*: it never blocks a simulated process.
Ranks talk to it over the control plane (each message pays the control
latency), and it drives the checkpoint state machine:

    idle -> [collect SEQ reports (CC only, Algorithm 1)]
         -> draining (ranks run to their targets; 2PC ranks stall at
            trivial barriers)
         -> confirming (quiescence double-check)
         -> committing (drain non-blocking collectives; exchange p2p
            counts; drain in-flight p2p; write images)
         -> idle

Checkpoint timing (request-to-written, phase breakdown) is recorded per
checkpoint — the measurement behind Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from ..core import PROTOCOLS, QuiescenceTracker
from ..core.protocol import ProtocolError
from ..netmodel import StorageModel
from .image import CheckpointImage

if TYPE_CHECKING:  # pragma: no cover
    from ..des import SimProcess, Simulator
    from .session import Session

__all__ = ["CheckpointCoordinator", "CheckpointRecord"]


@dataclass
class CheckpointRecord:
    """Timing and contents of one checkpoint attempt."""

    ckpt_id: int
    protocol: str
    t_request: float
    t_targets: float | None = None
    t_quiesced: float | None = None
    t_drained: float | None = None
    t_written: float | None = None
    t_resumed: float | None = None
    aborted: bool = False
    abort_reason: str = ""
    images: dict[int, CheckpointImage] = field(default_factory=dict)
    total_image_bytes: int = 0
    #: Request-time SEQ tables (CC only): rank -> {ggid: seq}.  Retained
    #: so tests can compare the online cut against the offline
    #: topological-sort oracle.
    seq_reports: dict[int, dict[int, int]] = field(default_factory=dict)
    #: The targets computed from the reports (Algorithm 1's output).
    initial_targets: dict[int, int] = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        return self.t_written is not None and not self.aborted

    @property
    def checkpoint_time(self) -> float:
        """Request-to-images-written duration (Figure 9's checkpoint time)."""
        if self.t_written is None:
            raise ValueError("checkpoint did not complete")
        return self.t_written - self.t_request

    @property
    def drain_time(self) -> float:
        if self.t_drained is None:
            raise ValueError("checkpoint did not reach the drain phase")
        return self.t_drained - self.t_request


class CheckpointCoordinator:
    """Protocol-agnostic coordinator; protocol specifics via CoordinatorLogic."""

    def __init__(
        self,
        sim: "Simulator",
        protocol_name: str,
        *,
        storage: StorageModel | None = None,
        nnodes: int = 1,
    ):
        if protocol_name not in PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol_name!r}")
        _proto, logic_cls = PROTOCOLS[protocol_name]
        self.sim = sim
        self.protocol_name = protocol_name
        self.logic = logic_cls()
        self.storage = storage or StorageModel()
        self.nnodes = nnodes
        self.sessions: dict[int, "Session"] = {}
        self.procs: dict[int, "SimProcess"] = {}
        self.records: list[CheckpointRecord] = []
        self.finished_ranks: set[int] = set()
        self._state = "idle"
        self._next_ckpt_id = 0
        self._deferred_requests = 0
        self._aborted_rounds = 0
        self._tracker: QuiescenceTracker | None = None
        self._record: CheckpointRecord | None = None
        self._seq_reports: dict[int, dict[int, int]] = {}
        self._nbc_reports: dict[int, dict] = {}
        self._p2p_done: dict[int, int] = {}
        self._written: dict[int, CheckpointImage] = {}

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def attach(self, sessions: dict[int, "Session"], procs: dict[int, "SimProcess"]) -> None:
        self.sessions = sessions
        self.procs = procs

    @property
    def nprocs(self) -> int:
        return len(self.sessions)

    @property
    def state(self) -> str:
        return self._state

    def _send_to_rank(self, rank: int, msg: tuple) -> None:
        sess = self.sessions[rank]
        latency = sess.overheads.control_latency
        sess.control.put(msg, delay=latency)
        proc = self.procs.get(rank)
        if proc is not None and proc.alive:
            # Interrupt interruptible compute so the rank notices promptly
            # (the DMTCP signal analog); a no-op for ranks blocked in MPI.
            self.sim.call_after(latency, lambda: proc.alive and proc.interrupt())

    def _broadcast(self, msg: tuple) -> None:
        for rank in self.sessions:
            self._send_to_rank(rank, msg)

    # ------------------------------------------------------------------ #
    # Checkpoint request entry point
    # ------------------------------------------------------------------ #

    def request_checkpoint(self) -> None:
        """Begin a checkpoint now.  Schedule with ``sim.call_at``.

        A request arriving while a checkpoint is in progress is deferred
        until the current one commits (the DMTCP coordinator serializes
        checkpoints the same way).
        """
        if not self.sessions:
            raise ProtocolError("coordinator has no attached sessions")
        if self._state != "idle":
            self._deferred_requests += 1
            return
        ckpt_id = self._next_ckpt_id
        self._next_ckpt_id += 1
        self._record = CheckpointRecord(
            ckpt_id=ckpt_id,
            protocol=self.protocol_name,
            t_request=self.sim.now(),
        )
        self.records.append(self._record)
        if self.finished_ranks:
            self._record.aborted = True
            self._record.abort_reason = (
                f"ranks {sorted(self.finished_ranks)} already finished"
            )
            self._record = None
            # Any requests deferred behind this one must still be
            # accounted for (each gets its own aborted record).
            self._pump_deferred()
            return
        self._tracker = QuiescenceTracker(nprocs=self.nprocs)
        self._seq_reports.clear()
        self._nbc_reports.clear()
        self._p2p_done.clear()
        self._written.clear()
        self._state = "collecting" if self.logic.collects_seq_reports else "draining"
        self._broadcast(("intent", ckpt_id))
        if self.logic.collects_seq_reports:
            # Algorithm 1, out-of-band: the per-rank checkpoint thread
            # reads the wrapper's SEQ table at intent-delivery time and
            # reports it without the main thread's cooperation.  Reading
            # at delivery time guarantees any increment made before the
            # rank could learn of the checkpoint is included in the
            # global max — otherwise that operation could be buried
            # inside a blocking collective with no way to raise targets.
            for rank in self.sessions:
                sess = self.sessions[rank]
                latency = sess.overheads.control_latency

                def report(rank: int = rank, sess=sess) -> None:
                    self.deliver(("seq_report", rank, dict(sess.seq.seq)))

                self.sim.call_after(latency * 1.0000001, report)

    # ------------------------------------------------------------------ #
    # Message dispatch
    # ------------------------------------------------------------------ #

    #: Rank->coordinator kinds that may legitimately straggle in after a
    #: round was aborted (the sender had not yet seen the abort).
    _STALE_OK = ("seq_report", "parked", "unparked", "confirm")

    def deliver(self, msg: tuple) -> None:
        kind = msg[0]
        if kind == "finished":
            self.finished_ranks.add(msg[1])
            if self._state in ("collecting", "draining", "confirming"):
                # A rank exited before quiescing: the round can never
                # complete (the quiescence tracker waits for a park that
                # will not come).  Abort instead of deadlocking every
                # still-parked rank.
                self._abort_round(
                    f"rank {msg[1]} finished before the cut quiesced"
                )
            return
        if self._state == "idle":
            if self._aborted_rounds and kind in self._STALE_OK:
                return
            raise ProtocolError(f"coordinator idle but received {msg!r}")
        handler = getattr(self, f"_on_{kind}", None)
        if handler is None:
            raise ProtocolError(f"coordinator cannot handle {msg!r}")
        handler(msg)

    def _abort_round(self, reason: str) -> None:
        """Abandon the in-flight (pre-commit) round: record why, release
        every parked rank, and return to idle."""
        assert self._record is not None
        self._record.aborted = True
        self._record.abort_reason = reason
        self._record = None
        self._tracker = None
        self._state = "idle"
        self._aborted_rounds += 1
        self._broadcast(("abort",))
        # Re-issue deferred requests so they are accounted for (they
        # abort immediately in turn: a rank has already finished).
        self._pump_deferred()

    def _pump_deferred(self) -> None:
        """Schedule the next deferred checkpoint request, if any.

        Called whenever a round ends (commit or abort) *and* from the
        immediate-abort path of :meth:`request_checkpoint`, so a queue
        of deferred requests drains one aborted/committed record each
        instead of silently losing everything after the first.
        """
        if self._deferred_requests > 0:
            self._deferred_requests -= 1
            # Give ranks one control latency to process the round's end.
            latency = next(iter(self.sessions.values())).overheads.control_latency
            self.sim.call_after(latency * 2, self.request_checkpoint)

    # -- phase 1 (CC): Algorithm 1 ---------------------------------------- #

    def _on_seq_report(self, msg: tuple) -> None:
        _kind, rank, table = msg
        if self._state != "collecting":
            raise ProtocolError(f"seq report in state {self._state!r}")
        self._seq_reports[rank] = table
        if len(self._seq_reports) == self.nprocs:
            targets = self.logic.compute_targets(self._seq_reports)
            assert self._record is not None
            self._record.seq_reports = {
                r: dict(t) for r, t in self._seq_reports.items()
            }
            self._record.initial_targets = dict(targets)
            self._record.t_targets = self.sim.now()
            self._state = "draining"
            self._broadcast(("targets", targets))
            # Some ranks may already be parked (they were idle when the
            # intent arrived); re-check quiescence right away.
            self._maybe_confirm()

    # -- phase 2: drain to the cut ------------------------------------------ #

    def _on_parked(self, msg: tuple) -> None:
        _kind, rank, gen, sent, recvd = msg
        assert self._tracker is not None
        self._tracker.on_parked(rank, gen, sent, recvd)
        if self._state in ("draining", "confirming"):
            self._state = "draining"
            self._maybe_confirm()

    def _on_unparked(self, msg: tuple) -> None:
        assert self._tracker is not None
        self._tracker.on_unparked(msg[1])
        if self._state == "confirming":
            self._state = "draining"

    def _maybe_confirm(self) -> None:
        assert self._tracker is not None
        if self._state == "draining" and self._tracker.candidate():
            self._tracker.begin_confirm()
            self._state = "confirming"
            self._broadcast(("confirm?",))

    def _on_confirm(self, msg: tuple) -> None:
        _kind, rank, still_parked, sent, recvd = msg
        assert self._tracker is not None
        if self._state != "confirming":
            return  # stale vote from an aborted round
        self._tracker.on_confirm_vote(rank, still_parked, sent, recvd)
        if not self._tracker.confirming:
            self._state = "draining"
            self._maybe_confirm()
            return
        if self._tracker.confirmed():
            assert self._record is not None
            self._record.t_quiesced = self.sim.now()
            self._state = "commit_nbc"
            self._broadcast(("commit",))

    # -- phase 3: commit ------------------------------------------------------ #

    def _on_nbc_done(self, msg: tuple) -> None:
        _kind, rank, sent_map = msg
        if self._state != "commit_nbc":
            raise ProtocolError(f"nbc_done in state {self._state!r}")
        self._nbc_reports[rank] = sent_map
        if len(self._nbc_reports) == self.nprocs:
            expected: dict[int, dict[Any, int]] = {r: {} for r in self.sessions}
            for sender, sent_map in self._nbc_reports.items():
                for (ckey, dst), n in sent_map.items():
                    bucket = expected[dst]
                    key = (ckey, sender)
                    bucket[key] = bucket.get(key, 0) + n
            self._state = "commit_p2p"
            for rank in self.sessions:
                self._send_to_rank(rank, ("drain_p2p", expected[rank]))

    def _on_p2p_done(self, msg: tuple) -> None:
        _kind, rank, nbytes = msg
        if self._state != "commit_p2p":
            raise ProtocolError(f"p2p_done in state {self._state!r}")
        self._p2p_done[rank] = nbytes
        if len(self._p2p_done) == self.nprocs:
            assert self._record is not None
            self._record.t_drained = self.sim.now()
            total = sum(self._p2p_done.values())
            self._record.total_image_bytes = total
            duration = self.storage.write_time(total, self.nnodes)
            self._state = "commit_write"
            self._broadcast(("snapshot", duration))

    def _on_written(self, msg: tuple) -> None:
        _kind, rank, image = msg
        if self._state != "commit_write":
            raise ProtocolError(f"written in state {self._state!r}")
        self._written[rank] = image
        if len(self._written) == self.nprocs:
            assert self._record is not None
            self._record.t_written = self.sim.now()
            self._record.images = dict(self._written)
            self._state = "resuming"
            self._broadcast(("resume",))
            self._record.t_resumed = self.sim.now()
            self._record = None
            self._tracker = None
            self._state = "idle"
            self._pump_deferred()

    # ------------------------------------------------------------------ #

    @property
    def committed_checkpoints(self) -> list[CheckpointRecord]:
        return [r for r in self.records if r.committed]
