"""The checkpoint coordinator — the DMTCP-coordinator analog.

The coordinator is *event-driven*: it never blocks a simulated process.
Ranks talk to it over the control plane (each message pays the control
latency), and it drives the checkpoint state machine:

    idle -> [collect SEQ reports (CC only, Algorithm 1)]
         -> draining (ranks run to their targets; 2PC ranks stall at
            trivial barriers)
         -> confirming (quiescence double-check)
         -> committing (drain non-blocking collectives; exchange p2p
            counts; drain in-flight p2p; write images)
         -> idle

A rank whose application has already returned participates through a
:class:`_FinishedRankProxy` — the checkpoint-thread analog for a rank
whose main thread is gone.  The proxy services the dead rank's control
mailbox and reports it as *trivially parked*: the rank sits at its
terminal program position with empty in-flight sets, so the round
commits straight through rank completion (the coordinator used to
abort these rounds; see ``tests/verify``).

Control-plane broadcasts (intent / targets / confirm / commit / drain /
snapshot / resume) are *batched*: one fan-out enters the event queue as
a single :meth:`~repro.des.kernel.Simulator.defer_batch_at` entry that
counts as one logical event per rank delivery, so the queue carries one
entry per phase instead of ~2 per rank while event counts — and thus
determinism fingerprints — stay byte-identical to the per-rank
schedule.

Checkpoint timing (request-to-written, phase breakdown) is recorded per
checkpoint — the measurement behind Figure 9.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from ..core import PROTOCOLS, QuiescenceTracker
from ..core.protocol import ProtocolError
from ..netmodel import StorageModel
from .image import CheckpointImage

if TYPE_CHECKING:  # pragma: no cover
    from ..des import SimProcess, Simulator
    from .session import Session

__all__ = ["CheckpointCoordinator", "CheckpointRecord"]


@dataclass
class CheckpointRecord:
    """Timing and contents of one checkpoint attempt."""

    ckpt_id: int
    protocol: str
    t_request: float
    t_targets: float | None = None
    t_quiesced: float | None = None
    t_drained: float | None = None
    t_written: float | None = None
    t_resumed: float | None = None
    aborted: bool = False
    abort_reason: str = ""
    images: dict[int, CheckpointImage] = field(default_factory=dict)
    total_image_bytes: int = 0
    #: Request-time SEQ tables (CC only): rank -> {ggid: seq}.  Retained
    #: so tests can compare the online cut against the offline
    #: topological-sort oracle.
    seq_reports: dict[int, dict[int, int]] = field(default_factory=dict)
    #: The targets computed from the reports (Algorithm 1's output).
    initial_targets: dict[int, int] = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        return self.t_written is not None and not self.aborted

    @property
    def checkpoint_time(self) -> float:
        """Request-to-images-written duration (Figure 9's checkpoint time)."""
        if self.t_written is None:
            raise ValueError("checkpoint did not complete")
        return self.t_written - self.t_request

    @property
    def drain_time(self) -> float:
        if self.t_drained is None:
            raise ValueError("checkpoint did not reach the drain phase")
        return self.t_drained - self.t_request


class _FinishedRankProxy:
    """Coordinator-side stand-in for a rank whose process has exited.

    A rank that returns from its application before it learns of a
    checkpoint intent can never park — its main thread is gone — and
    the round used to deadlock (then, after PR 3, abort).  The proxy is
    the DMTCP checkpoint-thread analog for that rank: it taps the dead
    rank's control mailbox and answers every coordinator message the
    way a *trivially parked* rank would:

    * ``intent``       -> report parked (terminal position, nothing to
      drain: every collective this rank ever joined completed, so every
      other member has already executed it too);
    * ``targets``      -> verify no target exceeds the terminal SEQ
      table (impossible for a legal program — a higher target would
      mean a peer executed a collective this rank never joined);
    * ``target_update``-> count it received and re-report park state so
      Mattern's control-message sums still balance;
    * ``confirm?``     -> vote still-parked;
    * ``commit``/``drain_p2p``/``snapshot``/``resume`` -> run the
      rank-side commit sequence against the (still live) session
      object: report sent counts, verify nothing is left in flight for
      this rank, build and "write" the image with the same modelled
      storage delay a live rank pays.

    All replies pay the same control latency a live rank's would, so
    proxied rounds stay deterministic and timing-faithful.
    """

    def __init__(self, coordinator: "CheckpointCoordinator", rank: int):
        self.coord = coordinator
        self.rank = rank
        self.sess = coordinator.sessions[rank]
        self.sim = coordinator.sim
        #: True between intent and resume/abort; messages arriving
        #: outside an active round are absorbed without reports (e.g. a
        #: straggling target update delivered after the round ended).
        self.active = False

    def install(self) -> None:
        """Start servicing the rank's control mailbox.

        Anything delivered between process exit and proxy installation
        is sitting in the mailbox queue; drain it first, then tap every
        future delivery.
        """
        self.sess.control.add_tap(self._drain)
        self._drain()

    # -- mailbox servicing --------------------------------------------- #

    def _drain(self) -> None:
        while True:
            ok, msg = self.sess.control.try_get()
            if not ok:
                return
            self._handle(msg)

    def _send(self, msg: tuple) -> None:
        coord = self.coord
        latency = self.sess.overheads.control_latency
        self.sim.call_after(latency, lambda: coord.deliver(msg))

    def _report_parked(self) -> None:
        proto = self.sess.protocol
        proto._park_generation += 1
        self._send(
            (
                "parked",
                self.rank,
                proto._park_generation,
                self.sess.ctrl_sent,
                self.sess.ctrl_received,
            )
        )

    # -- message handling ---------------------------------------------- #

    def _handle(self, msg: tuple) -> None:
        kind = msg[0]
        sess = self.sess
        if kind == "intent":
            self.active = True
            sess.protocol.ckpt_id = msg[1]
            self._report_parked()
        elif kind == "targets":
            self._check_targets(msg[1])
        elif kind == "target_update":
            # Nothing to chase (terminal position), but the receive must
            # be counted and re-reported or the coordinator's quiescence
            # sums never balance.
            sess.ctrl_received += 1
            self._check_targets({msg[1]: msg[2]})
            if self.active:
                self._report_parked()
        elif kind == "confirm?":
            if self.active:
                self._send(
                    ("confirm", self.rank, True, sess.ctrl_sent, sess.ctrl_received)
                )
        elif kind == "commit":
            self._commit()
        elif kind == "drain_p2p":
            self._verify_drained(msg[1])
            self._send(("p2p_done", self.rank, sess.declared_bytes))
        elif kind == "snapshot":
            image = sess.build_image()
            image.stats["drained_nbc"] = 0
            image.stats["drained_p2p"] = 0
            # The live-rank timing: image written after the modelled
            # storage delay, then one control latency back.
            self.sim.call_after(
                msg[1], lambda: self._send(("written", self.rank, image))
            )
        elif kind == "resume":
            self.active = False
            sess.protocol.ckpt_id = None
            sess._reset_after_checkpoint()
        elif kind == "abort":
            self.active = False
            sess.protocol.ckpt_id = None
        else:  # pragma: no cover - defensive
            raise ProtocolError(
                f"finished rank {self.rank}: proxy cannot handle {msg!r}"
            )

    def _check_targets(self, targets: dict[int, int]) -> None:
        sess = self.sess
        for ggid, target in targets.items():
            if ggid in sess.ggids and target > sess.seq.seq.get(ggid, 0):
                raise ProtocolError(
                    f"finished rank {self.rank}: target {target} on group "
                    f"{ggid:#x} exceeds its terminal SEQ "
                    f"{sess.seq.seq.get(ggid, 0)} — a peer executed a "
                    "collective this rank never joined"
                )

    def _commit(self) -> None:
        sess = self.sess
        dangling = [
            vr for vr in sess.live_requests() if vr.is_collective and not vr.done
        ]
        if dangling:
            raise ProtocolError(
                f"finished rank {self.rank}: exited with incomplete "
                f"non-blocking collectives {dangling!r}"
            )
        self._send(("nbc_done", self.rank, dict(sess.sent_to)))

    def _verify_drained(self, expected: dict[tuple, int]) -> None:
        """A finished rank drained everything by running to completion:
        every message ever addressed to it was received before it
        exited.  Anything still owed means a peer sent to a rank that
        no longer receives — an application bug, not a protocol race.
        """
        sess = self.sess
        for key, n in expected.items():
            have = sess.recv_done.get(key, 0)
            if have != n:
                raise ProtocolError(
                    f"finished rank {self.rank}: peer sent {n} message(s) "
                    f"for {key} but only {have} were ever received — "
                    "message addressed to a finished rank"
                )


class CheckpointCoordinator:
    """Protocol-agnostic coordinator; protocol specifics via CoordinatorLogic."""

    def __init__(
        self,
        sim: "Simulator",
        protocol_name: str,
        *,
        storage: StorageModel | None = None,
        nnodes: int = 1,
    ):
        if protocol_name not in PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol_name!r}")
        _proto, logic_cls = PROTOCOLS[protocol_name]
        self.sim = sim
        self.protocol_name = protocol_name
        self.logic = logic_cls()
        self.storage = storage or StorageModel()
        self.nnodes = nnodes
        self.sessions: dict[int, "Session"] = {}
        self.procs: dict[int, "SimProcess"] = {}
        self.records: list[CheckpointRecord] = []
        self.finished_ranks: set[int] = set()
        #: Ranks whose process was hard-killed (crash-fault injection).
        #: A crashed rank is *not* a finished rank: no proxy ever answers
        #: for it, rounds it participates in abort, and requests issued
        #: while it is dead abort immediately.
        self.crashed_ranks: set[int] = set()
        self._teardown_scheduled = False
        self._proxies: dict[int, _FinishedRankProxy] = {}
        self._state = "idle"
        self._next_ckpt_id = 0
        self._deferred_requests = 0
        self._aborted_rounds = 0
        self._tracker: QuiescenceTracker | None = None
        self._record: CheckpointRecord | None = None
        self._seq_reports: dict[int, dict[int, int]] = {}
        self._nbc_reports: dict[int, dict] = {}
        self._p2p_done: dict[int, int] = {}
        self._written: dict[int, CheckpointImage] = {}

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def attach(self, sessions: dict[int, "Session"], procs: dict[int, "SimProcess"]) -> None:
        self.sessions = sessions
        self.procs = procs

    @property
    def nprocs(self) -> int:
        return len(self.sessions)

    @property
    def state(self) -> str:
        return self._state

    def _send_to_rank(self, rank: int, msg: tuple) -> None:
        sess = self.sessions[rank]
        latency = sess.overheads.control_latency
        sess.control.put(msg, delay=latency)
        proc = self.procs.get(rank)
        if proc is not None and proc.alive:
            # Interrupt interruptible compute so the rank notices promptly
            # (the DMTCP signal analog); a no-op for ranks blocked in MPI.
            self.sim.call_after(latency, lambda: proc.alive and proc.interrupt())

    def _broadcast(self, msg: tuple) -> None:
        self._broadcast_each({rank: msg for rank in self.sessions})

    def _broadcast_unbatched(self, msgs: "dict[int, tuple]") -> None:
        """Reference fan-out: one ``defer`` + one interrupt timer per
        rank.  Kept as the differential baseline the batched path is
        pinned against (``tests/mana/test_broadcast_batching.py``) and
        as the fallback for degenerate latency configurations."""
        for rank, msg in msgs.items():
            self._send_to_rank(rank, msg)

    def _broadcast_each(self, msgs: "dict[int, tuple]") -> None:
        """Deliver a per-rank message map as ONE batched queue entry.

        The per-rank sends of a control-plane fan-out are issued
        back-to-back with nothing in between, so their queue entries
        draw consecutive sequence numbers and fire in rank order with
        no possible interleaving — which means running all the delivery
        bodies inside a single :meth:`Simulator.defer_batch_at` entry
        preserves the global dispatch order exactly.  The entry counts
        as one logical event per delivery (plus one per interrupt
        nudge), keeping event counts — and determinism fingerprints —
        byte-identical to the unbatched schedule.
        """
        sessions = self.sessions
        latencies = {sessions[rank].overheads.control_latency for rank in msgs}
        if len(latencies) != 1 or next(iter(latencies)) <= 0.0:
            # Zero latency delivers synchronously inside put() (no queue
            # entry at all), and mixed latencies have no single batch
            # instant: both take the reference path.
            self._broadcast_unbatched(msgs)
            return
        latency = latencies.pop()
        plan: list[tuple[int, tuple, bool]] = []
        count = 0
        for rank, msg in msgs.items():
            proc = self.procs.get(rank)
            nudge = proc is not None and proc.alive
            plan.append((rank, msg, nudge))
            count += 2 if nudge else 1

        def fire() -> None:
            procs = self.procs
            for rank, msg, nudge in plan:
                sessions[rank].control.put(msg)
                if nudge:
                    proc = procs[rank]
                    if proc.alive:
                        proc.interrupt()

        self.sim.defer_batch_at(self.sim.now() + latency, fire, count)

    # ------------------------------------------------------------------ #
    # Checkpoint request entry point
    # ------------------------------------------------------------------ #

    def request_checkpoint(self) -> None:
        """Begin a checkpoint now.  Schedule with ``sim.call_at``.

        A request arriving while a checkpoint is in progress is deferred
        until the current one commits (the DMTCP coordinator serializes
        checkpoints the same way).
        """
        if not self.sessions:
            raise ProtocolError("coordinator has no attached sessions")
        if self._state != "idle":
            self._deferred_requests += 1
            return
        ckpt_id = self._next_ckpt_id
        self._next_ckpt_id += 1
        if self.crashed_ranks:
            # A round with a dead participant can never quiesce, let
            # alone commit: record the attempt as aborted without even
            # broadcasting the intent.  Recovery is a restart from the
            # last committed image set, which excludes the crash.
            record = CheckpointRecord(
                ckpt_id=ckpt_id,
                protocol=self.protocol_name,
                t_request=self.sim.now(),
            )
            record.aborted = True
            record.abort_reason = (
                f"rank(s) {sorted(self.crashed_ranks)} crashed before the request"
            )
            self.records.append(record)
            self._aborted_rounds += 1
            return
        self._record = CheckpointRecord(
            ckpt_id=ckpt_id,
            protocol=self.protocol_name,
            t_request=self.sim.now(),
        )
        self.records.append(self._record)
        # Ranks that already finished are checkpointed *through*: their
        # proxies answer the intent with a trivially-parked report and
        # the round commits a terminal image for them.
        for rank in sorted(self.finished_ranks):
            self._install_proxy(rank)
        self._tracker = QuiescenceTracker(nprocs=self.nprocs)
        self._seq_reports.clear()
        self._nbc_reports.clear()
        self._p2p_done.clear()
        self._written.clear()
        self._state = "collecting" if self.logic.collects_seq_reports else "draining"
        self._broadcast(("intent", ckpt_id))
        if self.logic.collects_seq_reports:
            # Algorithm 1, out-of-band: the per-rank checkpoint thread
            # reads the wrapper's SEQ table at intent-delivery time and
            # reports it without the main thread's cooperation.  Reading
            # at delivery time guarantees any increment made before the
            # rank could learn of the checkpoint is included in the
            # global max — otherwise that operation could be buried
            # inside a blocking collective with no way to raise targets.
            for rank in self.sessions:
                sess = self.sessions[rank]
                latency = sess.overheads.control_latency

                def report(rank: int = rank, sess=sess) -> None:
                    self.deliver(("seq_report", rank, dict(sess.seq.seq)))

                self.sim.call_after(latency * 1.0000001, report)

    # ------------------------------------------------------------------ #
    # Message dispatch
    # ------------------------------------------------------------------ #

    #: Rank->coordinator kinds that may legitimately straggle in after a
    #: round was aborted (the sender had not yet seen the abort).  The
    #: commit-phase kinds are included because a crash can now abort a
    #: round *mid-commit* — survivors that had already reported keep
    #: their messages in flight past the abort.
    _STALE_OK = (
        "seq_report",
        "parked",
        "unparked",
        "confirm",
        "nbc_done",
        "p2p_done",
        "written",
    )

    def deliver(self, msg: tuple) -> None:
        kind = msg[0]
        if kind == "finished":
            # The rank's application returned.  If it had a pending
            # intent it already parked and participated before sending
            # this; if not (the intent is still in flight, or a later
            # round starts), its proxy takes over its control mailbox —
            # the round commits through rank completion instead of
            # aborting (or, before PR 3, deadlocking).
            self.finished_ranks.add(msg[1])
            self._install_proxy(msg[1])
            return
        if self._state == "idle":
            if self._aborted_rounds and kind in self._STALE_OK:
                return
            raise ProtocolError(f"coordinator idle but received {msg!r}")
        handler = getattr(self, f"_on_{kind}", None)
        if handler is None:
            raise ProtocolError(f"coordinator cannot handle {msg!r}")
        handler(msg)

    def _install_proxy(self, rank: int) -> None:
        """Hand the finished rank's control plane to its proxy (idempotent).

        A completion noted before sessions are attached (coordinator
        still being wired) is only recorded; the proxy installs when the
        next checkpoint request finds the rank in ``finished_ranks``.
        """
        if rank not in self._proxies and rank in self.sessions:
            proxy = _FinishedRankProxy(self, rank)
            self._proxies[rank] = proxy
            proxy.install()

    def on_rank_crashed(self, rank: int) -> None:
        """Failure-detector input: ``rank``'s process was hard-killed.

        Called (after a detection latency) by whoever injected the
        crash.  The corpse is *not* a finished rank — no proxy answers
        for it — so an in-progress round has lost a participant and can
        never complete: abort it with a distinct reason, reclaiming
        whatever drain/commit state the round still owed to the corpse
        (the per-phase report maps are cleared with the round).
        """
        if rank in self.finished_ranks:
            # The application already returned and its terminal result
            # is recorded; a process death after that changes nothing
            # the protocol can observe.
            return
        self.crashed_ranks.add(rank)
        if not self._teardown_scheduled:
            # The job cannot survive a dead member: survivors eventually
            # block (or spin in a test loop) on communication the corpse
            # will never answer, so — as DMTCP does on a member failure —
            # the coordinator tears the job down and recovery restarts
            # from the last committed image set.  The grace period lets
            # the abort below reach parked survivors first, keeping the
            # round's teardown observable.
            self._teardown_scheduled = True
            latency = next(iter(self.sessions.values())).overheads.control_latency
            self.sim.call_after(max(latency, 1e-9) * 8, self._teardown_job)
        if self._state != "idle":
            reclaimed = sum(
                rank not in reported
                for reported in (
                    self._nbc_reports,
                    self._p2p_done,
                    self._written,
                )
            )
            self._abort_round(
                f"rank {rank} crashed during {self._state}"
                + (f" ({reclaimed} outstanding commit report(s) reclaimed)"
                   if self._state.startswith("commit_") else "")
            )

    def _teardown_job(self) -> None:
        """Hard-stop every surviving rank after a member crash.

        :meth:`Simulator.kill_process` is a no-op for processes that
        already finished (or crashed), so ranks that completed before
        the teardown keep their recorded results.
        """
        for proc in self.procs.values():
            self.sim.kill_process(proc)

    def _abort_round(self, reason: str) -> None:
        """Abandon the in-flight round: record why, release every parked
        rank, and return to idle.

        Not reached by the graceful state machine — a rank finishing
        mid-round is proxied through the commit instead — but it is the
        teardown path for crash faults (:meth:`on_rank_crashed`) and the
        safety valve future coordinator features can abort into.
        """
        assert self._record is not None
        self._record.aborted = True
        self._record.abort_reason = reason
        self._record = None
        self._tracker = None
        # Reclaim commit state owed to (or reported by) round members;
        # nothing from an aborted round may leak into the next one.
        self._seq_reports.clear()
        self._nbc_reports.clear()
        self._p2p_done.clear()
        self._written.clear()
        self._state = "idle"
        self._aborted_rounds += 1
        self._broadcast(("abort",))
        # Re-issue deferred requests so they are accounted for (they
        # abort immediately in turn: the blocking condition persists).
        self._pump_deferred()

    def _pump_deferred(self) -> None:
        """Schedule the next deferred checkpoint request, if any.

        Called whenever a round ends (commit or abort), so a queue of
        deferred requests drains one record each instead of silently
        losing everything after the first.
        """
        if self._deferred_requests > 0:
            self._deferred_requests -= 1
            # Give ranks one control latency to process the round's end.
            latency = next(iter(self.sessions.values())).overheads.control_latency
            self.sim.call_after(latency * 2, self.request_checkpoint)

    # -- phase 1 (CC): Algorithm 1 ---------------------------------------- #

    def _on_seq_report(self, msg: tuple) -> None:
        _kind, rank, table = msg
        if self._state != "collecting":
            raise ProtocolError(f"seq report in state {self._state!r}")
        self._seq_reports[rank] = table
        if len(self._seq_reports) == self.nprocs:
            targets = self.logic.compute_targets(self._seq_reports)
            assert self._record is not None
            self._record.seq_reports = {
                r: dict(t) for r, t in self._seq_reports.items()
            }
            self._record.initial_targets = dict(targets)
            self._record.t_targets = self.sim.now()
            self._state = "draining"
            self._broadcast(("targets", targets))
            # Some ranks may already be parked (they were idle when the
            # intent arrived); re-check quiescence right away.
            self._maybe_confirm()

    # -- phase 2: drain to the cut ------------------------------------------ #

    def _on_parked(self, msg: tuple) -> None:
        _kind, rank, gen, sent, recvd = msg
        assert self._tracker is not None
        self._tracker.on_parked(rank, gen, sent, recvd)
        if self._state in ("draining", "confirming"):
            self._state = "draining"
            self._maybe_confirm()

    def _on_unparked(self, msg: tuple) -> None:
        assert self._tracker is not None
        self._tracker.on_unparked(msg[1])
        if self._state == "confirming":
            self._state = "draining"

    def _maybe_confirm(self) -> None:
        assert self._tracker is not None
        if self._state == "draining" and self._tracker.candidate():
            self._tracker.begin_confirm()
            self._state = "confirming"
            self._broadcast(("confirm?",))

    def _on_confirm(self, msg: tuple) -> None:
        _kind, rank, still_parked, sent, recvd = msg
        assert self._tracker is not None
        if self._state != "confirming":
            return  # stale vote from an aborted round
        self._tracker.on_confirm_vote(rank, still_parked, sent, recvd)
        if not self._tracker.confirming:
            self._state = "draining"
            self._maybe_confirm()
            return
        if self._tracker.confirmed():
            assert self._record is not None
            self._record.t_quiesced = self.sim.now()
            self._state = "commit_nbc"
            self._broadcast(("commit",))

    # -- phase 3: commit ------------------------------------------------------ #

    def _on_nbc_done(self, msg: tuple) -> None:
        _kind, rank, sent_map = msg
        if self._state != "commit_nbc":
            raise ProtocolError(f"nbc_done in state {self._state!r}")
        self._nbc_reports[rank] = sent_map
        if len(self._nbc_reports) == self.nprocs:
            expected: dict[int, dict[Any, int]] = {r: {} for r in self.sessions}
            for sender, sent_map in self._nbc_reports.items():
                for (ckey, dst), n in sent_map.items():
                    bucket = expected[dst]
                    key = (ckey, sender)
                    bucket[key] = bucket.get(key, 0) + n
            self._state = "commit_p2p"
            # Per-rank payloads, one batched fan-out (the drain kick-off
            # used to wake ranks one `defer` at a time).
            self._broadcast_each(
                {rank: ("drain_p2p", expected[rank]) for rank in self.sessions}
            )

    def _on_p2p_done(self, msg: tuple) -> None:
        _kind, rank, nbytes = msg
        if self._state != "commit_p2p":
            raise ProtocolError(f"p2p_done in state {self._state!r}")
        self._p2p_done[rank] = nbytes
        if len(self._p2p_done) == self.nprocs:
            assert self._record is not None
            self._record.t_drained = self.sim.now()
            total = sum(self._p2p_done.values())
            self._record.total_image_bytes = total
            duration = self.storage.write_time(total, self.nnodes)
            self._state = "commit_write"
            self._broadcast(("snapshot", duration))

    def _on_written(self, msg: tuple) -> None:
        _kind, rank, image = msg
        if self._state != "commit_write":
            raise ProtocolError(f"written in state {self._state!r}")
        self._written[rank] = image
        if len(self._written) == self.nprocs:
            assert self._record is not None
            self._record.t_written = self.sim.now()
            self._record.images = dict(self._written)
            self._state = "resuming"
            self._broadcast(("resume",))
            self._record.t_resumed = self.sim.now()
            self._record = None
            self._tracker = None
            self._state = "idle"
            self._pump_deferred()

    # ------------------------------------------------------------------ #

    @property
    def committed_checkpoints(self) -> list[CheckpointRecord]:
        return [r for r in self.records if r.committed]
