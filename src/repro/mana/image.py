"""Checkpoint image format.

One image per rank, mirroring MANA: the image contains only upper-half
state (application state + wrapper bookkeeping).  Nothing from the lower
half (simulated MPI world, matching engines, requests) is serialized —
pickling would fail loudly on those objects, which doubles as an
automatic guard against lower-half leakage (tested).

On-disk layout::

    MAGIC (8 bytes) | version (u32) | rank (u32) | payload_len (u64)
    | crc32 (u32) | pickle payload

Besides the one-file-per-rank format, :func:`pack_image_set` /
:func:`unpack_image_set` serialize a whole committed checkpoint's image
map (rank -> :class:`CheckpointImage`) as one compressed blob with a
SHA-256 integrity digest — the payload of the result cache's image
tier (see :mod:`repro.harness.cache`).  Blob layout::

    ARCHIVE_MAGIC (8 bytes) | version (u32) | payload_len (u64)
    | sha256 (32 bytes) | zlib-compressed pickle payload

Any structural problem (bad magic, unknown version, truncation, digest
mismatch) raises :class:`ImageError`; readers built on top treat that
as a cache miss, so blobs written by older/newer formats degrade to
re-simulation instead of corrupting a restart.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "CheckpointImage",
    "ImageError",
    "write_image_file",
    "read_image_file",
    "pack_image_set",
    "unpack_image_set",
    "image_set_digest",
]

MAGIC = b"MANAPY01"
VERSION = 1
_HEADER = struct.Struct("<8sIIQI")

ARCHIVE_MAGIC = b"MANAPYA1"
ARCHIVE_VERSION = 1
_ARCHIVE_HEADER = struct.Struct("<8sIQ32s")


class ImageError(Exception):
    """Corrupt, truncated, or incompatible checkpoint image."""


@dataclass
class CheckpointImage:
    """Upper-half state of one rank at a committed checkpoint."""

    rank: int
    nprocs: int
    protocol: str
    ckpt_id: int
    #: Application-owned state (the app's ``state`` dict).
    app_state: dict = field(default_factory=dict)
    #: SEQ/TARGET table snapshot (:meth:`SeqNumTable.snapshot`).
    seq_table: dict = field(default_factory=dict)
    #: ggid -> member world ranks.
    ggid_peers: dict = field(default_factory=dict)
    #: Communicator-creation replay log (op descriptors, in order).
    creation_log: list = field(default_factory=list)
    #: Interposition call counter at snapshot and at the last boundary.
    call_index: int = 0
    boundary_index: int = 0
    #: Recorded wrapper-call results covering [boundary_index, call_index).
    call_log: list = field(default_factory=list)
    #: Drained point-to-point messages: (vcid, src_group_rank, tag, payload, nbytes).
    drained: list = field(default_factory=list)
    #: Virtual request table: vrid -> (kind, desc, done, value).
    vreq_table: dict = field(default_factory=dict)
    #: vrids of receives still pending at the cut (re-posted on restart).
    pending_recvs: list = field(default_factory=list)
    #: Seconds of an interrupted compute region left to run after restart.
    remaining_compute: float = 0.0
    #: Modelled upper-half memory (drives Fig. 9 write/read durations).
    declared_bytes: int = 0
    #: True when the rank's application had already returned at the cut
    #: (checkpoint-through-rank-completion): the rank is at its terminal
    #: program position with empty in-flight sets, and a restart keeps
    #: it finished instead of replaying anything.
    finished: bool = False
    #: The application's return value (``finalize``'s result), captured
    #: for finished ranks so a restarted world reports the same per-rank
    #: results as the uninterrupted run.
    final_result: Any = None
    #: Number of MPI calls issued before the snapshot (diagnostics).
    stats: dict = field(default_factory=dict)


def write_image_file(image: CheckpointImage, directory: "Path | str") -> Path:
    """Serialize one rank's image to ``<dir>/ckpt_<id>_rank<k>.manapy``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    path = directory / f"ckpt_{image.ckpt_id}_rank{image.rank}.manapy"
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(MAGIC, VERSION, image.rank, len(payload), crc))
        fh.write(payload)
    return path


def read_image_file(path: "Path | str") -> CheckpointImage:
    """Load and verify one image file."""
    path = Path(path)
    raw = path.read_bytes()
    if len(raw) < _HEADER.size:
        raise ImageError(f"{path}: truncated header")
    magic, version, rank, length, crc = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise ImageError(f"{path}: bad magic {magic!r}")
    if version != VERSION:
        raise ImageError(f"{path}: unsupported version {version}")
    payload = raw[_HEADER.size : _HEADER.size + length]
    if len(payload) != length:
        raise ImageError(f"{path}: truncated payload")
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise ImageError(f"{path}: CRC mismatch (corrupt image)")
    image = pickle.loads(payload)
    if image.rank != rank:
        raise ImageError(f"{path}: header rank {rank} != payload rank {image.rank}")
    return image


def pack_image_set(images: "dict[int, CheckpointImage]") -> bytes:
    """One committed checkpoint's image map as a self-verifying blob.

    The digest covers the *compressed* payload, so verification on read
    costs one SHA-256 pass before any decompression or unpickling.
    """
    payload = zlib.compress(
        pickle.dumps(images, protocol=pickle.HIGHEST_PROTOCOL), 6
    )
    digest = hashlib.sha256(payload).digest()
    return (
        _ARCHIVE_HEADER.pack(ARCHIVE_MAGIC, ARCHIVE_VERSION, len(payload), digest)
        + payload
    )


def image_set_digest(blob: bytes) -> str:
    """The hex SHA-256 digest embedded in a :func:`pack_image_set` blob.

    This is the content address the result cache's image tier dedupes
    on: two parents committing byte-identical image sets produce the
    same digest, so the blob is stored once.  Raises :class:`ImageError`
    for anything that is not a well-formed archive header.
    """
    if len(blob) < _ARCHIVE_HEADER.size:
        raise ImageError("image-set blob: truncated header")
    magic, version, _length, digest = _ARCHIVE_HEADER.unpack_from(blob)
    if magic != ARCHIVE_MAGIC:
        raise ImageError(f"image-set blob: bad magic {magic!r}")
    if version != ARCHIVE_VERSION:
        raise ImageError(f"image-set blob: unsupported version {version}")
    return digest.hex()


def unpack_image_set(raw: bytes) -> "dict[int, CheckpointImage]":
    """Verify and load a :func:`pack_image_set` blob."""
    if len(raw) < _ARCHIVE_HEADER.size:
        raise ImageError("image-set blob: truncated header")
    magic, version, length, digest = _ARCHIVE_HEADER.unpack_from(raw)
    if magic != ARCHIVE_MAGIC:
        raise ImageError(f"image-set blob: bad magic {magic!r}")
    if version != ARCHIVE_VERSION:
        raise ImageError(f"image-set blob: unsupported version {version}")
    payload = raw[_ARCHIVE_HEADER.size : _ARCHIVE_HEADER.size + length]
    if len(payload) != length:
        raise ImageError("image-set blob: truncated payload")
    if hashlib.sha256(payload).digest() != digest:
        raise ImageError("image-set blob: digest mismatch (corrupt blob)")
    try:
        images = pickle.loads(zlib.decompress(payload))
    except (zlib.error, pickle.UnpicklingError, EOFError, AttributeError) as exc:
        raise ImageError(f"image-set blob: undecodable payload ({exc})") from exc
    if not isinstance(images, dict) or not all(
        isinstance(im, CheckpointImage) for im in images.values()
    ):
        raise ImageError("image-set blob: payload is not an image map")
    return images
