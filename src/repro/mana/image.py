"""Checkpoint image format.

One image per rank, mirroring MANA: the image contains only upper-half
state (application state + wrapper bookkeeping).  Nothing from the lower
half (simulated MPI world, matching engines, requests) is serialized —
pickling would fail loudly on those objects, which doubles as an
automatic guard against lower-half leakage (tested).

On-disk layout::

    MAGIC (8 bytes) | version (u32) | rank (u32) | payload_len (u64)
    | crc32 (u32) | pickle payload
"""

from __future__ import annotations

import pickle
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["CheckpointImage", "ImageError", "write_image_file", "read_image_file"]

MAGIC = b"MANAPY01"
VERSION = 1
_HEADER = struct.Struct("<8sIIQI")


class ImageError(Exception):
    """Corrupt, truncated, or incompatible checkpoint image."""


@dataclass
class CheckpointImage:
    """Upper-half state of one rank at a committed checkpoint."""

    rank: int
    nprocs: int
    protocol: str
    ckpt_id: int
    #: Application-owned state (the app's ``state`` dict).
    app_state: dict = field(default_factory=dict)
    #: SEQ/TARGET table snapshot (:meth:`SeqNumTable.snapshot`).
    seq_table: dict = field(default_factory=dict)
    #: ggid -> member world ranks.
    ggid_peers: dict = field(default_factory=dict)
    #: Communicator-creation replay log (op descriptors, in order).
    creation_log: list = field(default_factory=list)
    #: Interposition call counter at snapshot and at the last boundary.
    call_index: int = 0
    boundary_index: int = 0
    #: Recorded wrapper-call results covering [boundary_index, call_index).
    call_log: list = field(default_factory=list)
    #: Drained point-to-point messages: (vcid, src_group_rank, tag, payload, nbytes).
    drained: list = field(default_factory=list)
    #: Virtual request table: vrid -> (kind, desc, done, value).
    vreq_table: dict = field(default_factory=dict)
    #: vrids of receives still pending at the cut (re-posted on restart).
    pending_recvs: list = field(default_factory=list)
    #: Seconds of an interrupted compute region left to run after restart.
    remaining_compute: float = 0.0
    #: Modelled upper-half memory (drives Fig. 9 write/read durations).
    declared_bytes: int = 0
    #: Number of MPI calls issued before the snapshot (diagnostics).
    stats: dict = field(default_factory=dict)


def write_image_file(image: CheckpointImage, directory: "Path | str") -> Path:
    """Serialize one rank's image to ``<dir>/ckpt_<id>_rank<k>.manapy``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    path = directory / f"ckpt_{image.ckpt_id}_rank{image.rank}.manapy"
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(MAGIC, VERSION, image.rank, len(payload), crc))
        fh.write(payload)
    return path


def read_image_file(path: "Path | str") -> CheckpointImage:
    """Load and verify one image file."""
    path = Path(path)
    raw = path.read_bytes()
    if len(raw) < _HEADER.size:
        raise ImageError(f"{path}: truncated header")
    magic, version, rank, length, crc = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise ImageError(f"{path}: bad magic {magic!r}")
    if version != VERSION:
        raise ImageError(f"{path}: unsupported version {version}")
    payload = raw[_HEADER.size : _HEADER.size + length]
    if len(payload) != length:
        raise ImageError(f"{path}: truncated payload")
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
        raise ImageError(f"{path}: CRC mismatch (corrupt image)")
    image = pickle.loads(payload)
    if image.rank != rank:
        raise ImageError(f"{path}: header rank {rank} != payload rank {image.rank}")
    return image
