"""Checkpoint-set persistence: saving and loading a full job's images.

A committed checkpoint produces one :class:`CheckpointImage` per rank.
These helpers store them as individual files (as MANA does on Lustre)
and load them back for a restart, verifying completeness and
consistency.

A set may include *finished* ranks — images taken by a round that
committed through rank completion.  Such ranks restart as finished:
they rebuild their lower half (communicator creation is collective, so
surviving peers need them in the replayed allgathers) and then report
their restored terminal result without re-entering the application.
:func:`finished_ranks` and :func:`set_is_terminal` classify a set so
callers can tell a mid-run snapshot from a terminal one.
"""

from __future__ import annotations

from pathlib import Path

from .image import CheckpointImage, ImageError, read_image_file, write_image_file

__all__ = [
    "save_checkpoint_set",
    "load_checkpoint_set",
    "finished_ranks",
    "set_is_terminal",
]


def finished_ranks(images: "dict[int, CheckpointImage]") -> set[int]:
    """Ranks whose application had already returned at the cut."""
    return {rank for rank, image in images.items() if image.finished}


def set_is_terminal(images: "dict[int, CheckpointImage]") -> bool:
    """True when *every* rank was finished at the cut.

    Restarting a terminal set reconstructs the completed job's results
    without simulating a single application step — the degenerate (and
    cheapest) case of checkpointing through rank completion.
    """
    return bool(images) and all(image.finished for image in images.values())


def save_checkpoint_set(
    images: dict[int, CheckpointImage], directory: "Path | str"
) -> list[Path]:
    """Write every rank's image under ``directory``; returns the paths."""
    if not images:
        raise ImageError("empty checkpoint set")
    nprocs = next(iter(images.values())).nprocs
    if sorted(images) != list(range(nprocs)):
        raise ImageError(
            f"checkpoint set must cover ranks 0..{nprocs - 1}, got {sorted(images)}"
        )
    return [write_image_file(images[rank], directory) for rank in sorted(images)]


def load_checkpoint_set(directory: "Path | str", ckpt_id: int = 0) -> dict[int, CheckpointImage]:
    """Load a complete, consistent image set for one checkpoint id."""
    directory = Path(directory)
    paths = sorted(directory.glob(f"ckpt_{ckpt_id}_rank*.manapy"))
    if not paths:
        raise ImageError(f"no checkpoint {ckpt_id} images under {directory}")
    images = {}
    for path in paths:
        image = read_image_file(path)
        if image.ckpt_id != ckpt_id:
            raise ImageError(f"{path}: ckpt id {image.ckpt_id} != {ckpt_id}")
        images[image.rank] = image
    nprocs = next(iter(images.values())).nprocs
    missing = set(range(nprocs)) - set(images)
    if missing:
        raise ImageError(f"incomplete checkpoint set: missing ranks {sorted(missing)}")
    protocols = {im.protocol for im in images.values()}
    if len(protocols) > 1:
        raise ImageError(f"inconsistent protocols across images: {protocols}")
    return images
