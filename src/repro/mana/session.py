"""The MANA session: per-rank interposition (wrapper) layer.

Every MPI call an application makes goes through here.  The session

* maps virtual handles to lower-half objects (and rebuilds the map at
  restart),
* invokes the active checkpoint protocol's wrapper hooks (CC increments
  sequence numbers; 2PC inserts trivial barriers; native passes through),
* keeps the drain bookkeeping: per-peer send/receive counters and the
  buffer of messages drained at checkpoint time,
* records wrapper-call results between step boundaries so an interrupted
  step can be *replayed deterministically* after restart (the substitute
  for MANA's raw-memory program-counter snapshot; see DESIGN.md §2), and
* participates in the commit sequence (drain non-blocking collectives,
  drain p2p, write the image) when the coordinator commands it.

Application contract (enforced by convention, documented in README):
state lives in ``session.app_state``; each app "step" ends with
``ctx.step_boundary()``; within a step, state writes must be replayable
(assignments from call results / pure recomputation, no cross-replay
accumulation).  All bundled mini-apps follow this.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence, TYPE_CHECKING

from ..core import PROTOCOLS, GgidRegistry, SeqNumTable, drain_nonblocking_requests
from ..core.protocol import ProtocolError, RoundAborted
from ..des import INTERRUPTED, Mailbox
from ..simmpi import ANY_SOURCE, ANY_TAG, Communicator, payload_nbytes
from .image import CheckpointImage
from .vcomm import VirtualComm, VirtualRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..simmpi import World
    from .coordinator import CheckpointCoordinator

__all__ = ["Session"]

#: Call-log entry tags.
_VALUE = "value"
_VREQ = "vreq"
_COMM = "comm"
_COMPUTE = "compute"


class Session:
    """Per-rank MANA wrapper state (the upper half's bookkeeping)."""

    def __init__(
        self,
        world: "World",
        rank: int,
        protocol_name: str,
        coordinator: "CheckpointCoordinator | None" = None,
    ):
        if protocol_name not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {protocol_name!r}; expected one of {sorted(PROTOCOLS)}"
            )
        self.world = world
        self.sim = world.sim
        self.rank = rank
        self.nprocs = world.nprocs
        self.overheads = world.overheads
        self.protocol_name = protocol_name
        proto_cls, _logic = PROTOCOLS[protocol_name]
        self.protocol = proto_cls(self)
        self.coordinator = coordinator

        # Sequence numbers & groups (the seq_num.cpp state).
        self.seq = SeqNumTable()
        self.ggids = GgidRegistry()

        # Control plane.
        self.control = Mailbox(world.sim, label=f"ctl:{rank}")
        self.ctrl_sent = 0
        self.ctrl_received = 0
        self._peers: "dict[int, Session] | None" = None  # wired by the runner

        # Virtual communicators.  ``vcid`` is rank-local (assignment order
        # can differ across ranks after create_group); ``ckey`` —
        # (ggid, per-ggid creation ordinal) — is identical on every member
        # of the group and is what the p2p drain accounting is keyed on.
        self._vcomms: dict[int, Communicator] = {}
        self._next_vcid = 0
        self._ckey_of_vcid: dict[int, tuple[int, int]] = {}
        self._ggid_ordinal: dict[int, int] = {}
        self.creation_log: list[tuple] = []
        self._shadow: dict[int, Communicator] = {}  # ggid -> 2PC barrier comm
        self._pending_recv_ids: list[int] = []

        # Virtual requests.
        self._vreqs: dict[int, VirtualRequest] = {}
        self._next_vrid = 0

        # Record / replay.
        self.call_index = 0
        self.boundary_index = 0
        self.call_log: list[tuple] = []
        self._replay_entries: list[tuple] | None = None
        self._replay_end = 0
        self._pending_remaining: float | None = None
        self.rebuilding = False
        #: Scenario compute slowdown (straggler ranks); scales fresh
        #: compute calls only — a restored remainder is already scaled.
        self.compute_factor = 1.0

        # p2p drain bookkeeping; keys are (ckey, peer_world_rank).
        self.sent_to: dict[tuple, int] = {}
        self.recv_done: dict[tuple, int] = {}
        #: Drained messages: (ckey, src_group_rank, tag, payload, nbytes).
        self.drain_buffer: list[tuple] = []
        # Conservation accounting for the drain-conservation oracle.
        # Every message entering the buffer is counted exactly once —
        # ``drain_restored`` (restored from an image at restart) or
        # ``drain_buffered`` (pulled in by a drain phase this run) — and
        # ``_buffer_take``, the only consumption path, counts every
        # message leaving it.  At any instant, crash or no crash,
        # restored + buffered == consumed + len(drain_buffer) per rank.
        self.drain_restored = 0
        self.drain_buffered = 0
        self.drain_consumed = 0

        # Application-owned state and accounting.
        self.app_state: dict = {}
        self.declared_bytes = 64 << 20
        self._in_compute_remaining = 0.0
        self.finished = False
        #: The app's return value, set by the runner just before
        #: :meth:`on_app_finished` so a checkpoint taken at (or after)
        #: completion snapshots the terminal result.
        self.final_result: Any = None
        self.checkpoints_taken = 0

        # COMM_WORLD is vcid 0, never in the creation log.
        self._register_comm(world.comm_world)

    # ------------------------------------------------------------------ #
    # Wiring
    # ------------------------------------------------------------------ #

    def wire_peers(self, peers: "dict[int, Session]") -> None:
        self._peers = peers

    @property
    def comm_world(self) -> VirtualComm:
        return VirtualComm(0)

    def lower_comm(self, vcid: int) -> Communicator:
        try:
            return self._vcomms[vcid]
        except KeyError:
            raise ProtocolError(f"rank {self.rank}: unknown vcomm id {vcid}") from None

    def live_requests(self) -> list[VirtualRequest]:
        return [vr for vr in self._vreqs.values() if not vr.done]

    # ------------------------------------------------------------------ #
    # Control plane
    # ------------------------------------------------------------------ #

    def send_control(self, peer_rank: int, msg: tuple) -> None:
        """Rank-to-rank control message (CC target updates)."""
        if self._peers is None:
            raise ProtocolError("control plane not wired")
        self.ctrl_sent += 1
        self._peers[peer_rank].control.put(msg, delay=self.overheads.control_latency)

    def to_coordinator(self, msg: tuple) -> None:
        if self.coordinator is None:
            raise ProtocolError(
                f"rank {self.rank}: no coordinator attached but sent {msg!r}"
            )
        coord = self.coordinator
        self.sim.call_after(self.overheads.control_latency, lambda: coord.deliver(msg))

    # ------------------------------------------------------------------ #
    # Identity helpers for VirtualComm
    # ------------------------------------------------------------------ #

    def comm_rank(self, vcid: int) -> int:
        return self.lower_comm(vcid).group.rank_of(self.rank)

    def comm_size(self, vcid: int) -> int:
        return self.lower_comm(vcid).size

    def comm_ggid(self, vcid: int) -> int:
        return self.lower_comm(vcid).ggid

    def comm_world_ranks(self, vcid: int) -> tuple[int, ...]:
        return self.lower_comm(vcid).group.world_ranks

    # ------------------------------------------------------------------ #
    # Record / replay machinery
    # ------------------------------------------------------------------ #

    @property
    def replaying(self) -> bool:
        return self._replay_entries is not None and self.call_index < self._replay_end

    def _record(self, tag: str, payload: Any, op: str = "") -> None:
        self.call_log.append((tag, op, payload))
        self.call_index += 1

    def _replay_next(self, expected_tag: str, expected_op: str = "") -> Any:
        assert self._replay_entries is not None
        idx = self.call_index - self.boundary_index
        if idx >= len(self._replay_entries):
            raise ProtocolError(
                f"rank {self.rank}: replay log exhausted at call {self.call_index}"
            )
        tag, op, payload = self._replay_entries[idx]
        if tag != expected_tag or (expected_op and op and op != expected_op):
            raise ProtocolError(
                f"rank {self.rank}: replay divergence at call {self.call_index}: "
                f"app issued {expected_op or expected_tag!r} but the log has "
                f"{op or tag!r} — the application step is not deterministic "
                "(see the replayability contract in repro.apps.base)"
            )
        self.call_index += 1
        if not self.replaying:
            # Replay finished: switch the live log to the restored entries
            # so the boundary bookkeeping stays consistent.
            self.call_log = list(self._replay_entries)
            self._replay_entries = None
        return payload

    def step_boundary(self) -> None:
        """Mark an application step boundary (end of an outer iteration).

        Clears the intra-step call log (bounding replay memory) and serves
        as a checkpoint-safe point.
        """
        if self.replaying:
            raise ProtocolError(
                f"rank {self.rank}: step boundary reached while replaying — the "
                "application re-executed fewer calls than the original step"
            )
        self.boundary_index = self.call_index
        self.call_log.clear()
        self.protocol.at_safe_point()

    # ------------------------------------------------------------------ #
    # Compute modelling
    # ------------------------------------------------------------------ #

    def compute(self, seconds: float) -> None:
        """Model application compute; interruptible by the coordinator.

        During replay, compute is skipped (the work happened before the
        checkpoint; only its state effects are re-derived).
        """
        if self.replaying:
            self._replay_next(_COMPUTE)
            return
        if self._pending_remaining is not None:
            seconds = self._pending_remaining
            self._pending_remaining = None
        else:
            seconds = seconds * self.compute_factor
        end = self.sim.now() + seconds
        interruptible = self.protocol.adds_wrapper_cost
        while True:
            left = end - self.sim.now()
            if left <= 0:
                break
            res = self.sim.sleep(left, interruptible=interruptible)
            if res is INTERRUPTED:
                self._in_compute_remaining = max(end - self.sim.now(), 0.0)
                self._handle_compute_interrupt()
                self._in_compute_remaining = 0.0
            else:
                break
        self._record(_COMPUTE, None)

    def _handle_compute_interrupt(self) -> None:
        """Absorb control messages mid-compute (the DMTCP-signal analog).

        The rank reacts to the intent (sending its SEQ report) without
        stopping: it parks only at its next collective wrapper, matching
        the paper's algorithm (see ``RankProtocol.at_safe_point``).
        """
        self.protocol.absorb_control()

    # ------------------------------------------------------------------ #
    # Collectives
    # ------------------------------------------------------------------ #

    _KIND_METHODS = {
        "barrier": "barrier",
        "bcast": "bcast",
        "reduce": "reduce",
        "allreduce": "allreduce",
        "alltoall": "alltoall",
        "allgather": "allgather",
        "gather": "gather",
        "scatter": "scatter",
        "scan": "scan",
        "reduce_scatter": "reduce_scatter",
    }

    def collective(
        self,
        vcid: int,
        kind: str,
        contribution: Any,
        *,
        root: int = 0,
        op: Any = None,
    ) -> Any:
        if self.replaying:
            return self._replay_next(_VALUE, kind)
        comm = self.lower_comm(vcid)
        ggid = comm.ggid
        members = comm.group.world_ranks

        def execute() -> Any:
            result = self._invoke(comm, kind, contribution, root, op)
            # Record at execution completion (not after the protocol's
            # exit hook): a rank parked at the wrapper *exit* has executed
            # the operation, so a snapshot there must include it in the
            # replay window; a rank parked at the *entry* has not.
            self._record(_VALUE, result, kind)
            return result

        return self.protocol.on_blocking_collective(ggid, members, execute)

    def icollective(
        self,
        vcid: int,
        kind: str,
        contribution: Any,
        *,
        root: int = 0,
        op: Any = None,
    ) -> VirtualRequest:
        if self.replaying:
            vrid = self._replay_next(_VREQ, "i" + kind)
            return self._vreqs[vrid]
        comm = self.lower_comm(vcid)
        ggid = comm.ggid
        members = comm.group.world_ranks

        def initiate() -> VirtualRequest:
            lower = self._invoke(comm, "i" + kind, contribution, root, op)
            vreq = self._wrap_request(lower, "coll", (vcid, kind))
            self._record(_VREQ, vreq.vrid, "i" + kind)
            return vreq

        return self.protocol.on_nonblocking_collective(ggid, members, initiate)

    @staticmethod
    def _invoke(comm: Communicator, kind: str, contribution: Any, root: int, op: Any):
        base = kind[1:] if kind.startswith("i") else kind
        method = getattr(comm, kind)
        if base == "barrier":
            return method()
        if base in ("bcast", "gather", "scatter"):
            return method(contribution, root=root)
        if base == "reduce":
            return method(contribution, op=op, root=root)
        if base in ("allreduce", "scan", "reduce_scatter"):
            return method(contribution, op=op)
        return method(contribution)  # alltoall, allgather

    def protocol_ibarrier(self, ggid: int):
        """The 2PC trivial barrier: an Ibarrier on a shadow communicator
        dedicated to this group (so protocol traffic never perturbs the
        application's collective matching).

        Shadows are created *eagerly* when a communicator is registered —
        creating one lazily here would issue an unwrapped collective in
        the middle of a possibly-pending checkpoint, which is precisely
        the unprotected-collective hazard 2PC exists to prevent.  Returns
        ``None`` when no shadow exists (create_group comms under 2PC, a
        documented MANA-2019 limitation) and the caller skips phase 1.
        """
        shadow = self._shadow.get(ggid)
        if shadow is None:
            return None
        return shadow.ibarrier()

    def _ensure_shadow(self, comm: Communicator) -> None:
        """Create the 2PC trivial-barrier comm for ``comm``'s group."""
        if self.protocol_name != "2pc":
            return
        ggid = comm.ggid
        if ggid not in self._shadow:
            self._shadow[ggid] = self.world.comm_dup(
                comm, label=f"shadow:{ggid:#x}"
            )

    def prepare_protocol(self) -> None:
        """In-process protocol setup (runs after MPI_Init, and again after
        a restart's lower-half rebuild): eagerly create 2PC shadows for
        every registered communicator."""
        if self.protocol_name != "2pc":
            return
        for vcid in sorted(self._vcomms):
            self._ensure_shadow(self._vcomms[vcid])

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #

    def _wrapper_cost(self) -> None:
        if self.protocol.adds_wrapper_cost:
            self.sim.sleep(self.overheads.wrapper_call)

    def p2p_send(self, vcid: int, obj: Any, dest: int, tag: int) -> None:
        if self.replaying:
            self._replay_next(_VALUE, "send")
            return
        self._wrapper_cost()
        comm = self.lower_comm(vcid)
        peer = comm.group.world_rank(dest)
        key = (self._ckey_of_vcid[vcid], peer)
        self.sent_to[key] = self.sent_to.get(key, 0) + 1
        self.sim.sleep(self.world.tuning.send_overhead)
        lower = self.world.engine_for(comm).send(comm.rank(), dest, tag, obj)
        # The message is injected: record *before* blocking on rendezvous
        # completion so a checkpoint taken while we wait does not replay
        # into a duplicate send (the original is in the peer's drain
        # buffer or already delivered).
        self._record(_VALUE, None, "send")
        if not lower.done:
            vreq = self._new_vreq("send", (vcid, dest, tag), internal=True)
            vreq._lower = lower
            lower.on_complete(lambda req, v=vreq: self._mark_done(v, None))
            self._await_request(vreq, consume=True)

    def p2p_isend(self, vcid: int, obj: Any, dest: int, tag: int) -> VirtualRequest:
        if self.replaying:
            vrid = self._replay_next(_VREQ, "isend")
            return self._vreqs[vrid]
        self._wrapper_cost()
        comm = self.lower_comm(vcid)
        peer = comm.group.world_rank(dest)
        key = (self._ckey_of_vcid[vcid], peer)
        self.sent_to[key] = self.sent_to.get(key, 0) + 1
        lower = comm.isend(obj, dest=dest, tag=tag)
        vreq = self._wrap_request(lower, "send", (vcid, dest, tag))
        self._record(_VREQ, vreq.vrid, "isend")
        return vreq

    def p2p_recv(self, vcid: int, source: int, tag: int) -> Any:
        """Blocking receive — implemented, as in MANA, as a *parkable*
        wait on a posted receive: a checkpoint may commit while this rank
        is blocked here (the matching send may only happen after the
        sender's own cut), and the receive stays pending across it."""
        if self.replaying:
            return self._replay_next(_VALUE, "recv")
        self._wrapper_cost()
        hit = self._buffer_take(vcid, source, tag)
        if hit is not None:
            payload = hit[3]
            self._record(_VALUE, payload, "recv")
            return payload
        comm = self.lower_comm(vcid)
        lower = comm.irecv(source=source, tag=tag)
        vreq = self._new_vreq("recv", (vcid, source, tag), internal=True)
        vreq._lower = lower

        def capture(req, vreq=vreq, vcid=vcid, comm=comm) -> None:
            payload, status = req.value
            self._count_recv(vcid, comm, status.source)
            # Remember wire metadata: if a snapshot happens before the
            # app consumes this, the payload persists as a drained record.
            vreq.desc = (vcid, status.source, status.tag)
            self._mark_done(vreq, payload)

        lower.on_complete(capture)
        payload = self._await_request(vreq, consume=True)
        self._record(_VALUE, payload, "recv")
        return payload

    def p2p_irecv(self, vcid: int, source: int, tag: int) -> VirtualRequest:
        if self.replaying:
            vrid = self._replay_next(_VREQ, "irecv")
            return self._vreqs[vrid]
        self._wrapper_cost()
        hit = self._buffer_take(vcid, source, tag)
        if hit is not None:
            vreq = self._new_vreq("recv", (vcid, source, tag))
            vreq.done = True
            vreq.value = hit[3]
        else:
            comm = self.lower_comm(vcid)
            lower = comm.irecv(source=source, tag=tag)
            vreq = self._wrap_recv_request(lower, vcid, source, tag, comm)
        self._record(_VREQ, vreq.vrid, "irecv")
        return vreq

    def p2p_iprobe(self, vcid: int, source: int, tag: int):
        if self.replaying:
            return self._replay_next(_VALUE, "iprobe")
        self._wrapper_cost()
        ckey = self._ckey_of_vcid[vcid]
        for rec in self.drain_buffer:
            if rec[0] == ckey and _match(rec[1], rec[2], source, tag):
                from ..simmpi import Status

                status = Status(source=rec[1], tag=rec[2], nbytes=rec[4])
                self._record(_VALUE, status, "iprobe")
                return status
        status = self.lower_comm(vcid).iprobe(source=source, tag=tag)
        self._record(_VALUE, status, "iprobe")
        return status

    # -- request wrappers -------------------------------------------------- #

    def _new_vreq(self, kind: str, desc: tuple, *, internal: bool = False) -> VirtualRequest:
        vreq = VirtualRequest(self._next_vrid, kind, desc, internal=internal)
        self._next_vrid += 1
        self._vreqs[vreq.vrid] = vreq
        return vreq

    def _wrap_request(self, lower, kind: str, desc: tuple) -> VirtualRequest:
        vreq = self._new_vreq(kind, desc)
        vreq._lower = lower

        def capture(req) -> None:
            vreq.done = True
            vreq.value = req.value

        lower.on_complete(capture)
        return vreq

    def _wrap_recv_request(
        self, lower, vcid: int, source: int, tag: int, comm: Communicator
    ) -> VirtualRequest:
        vreq = self._new_vreq("recv", (vcid, source, tag))
        vreq._lower = lower

        def capture(req) -> None:
            payload, status = req.value
            vreq.done = True
            vreq.value = payload
            self._count_recv(vcid, comm, status.source)

        lower.on_complete(capture)
        return vreq

    def vreq_wait(self, vreq: VirtualRequest) -> Any:
        if self.replaying:
            return self._replay_next(_VALUE, "wait")
        self.protocol.on_request_completion_call()
        value = self._await_request(vreq, consume=False)
        self._record(_VALUE, value, "wait")
        return value

    # -- parkable blocking wait ------------------------------------------- #

    def _mark_done(self, vreq: VirtualRequest, value: Any) -> None:
        vreq.done = True
        vreq.value = value

    def _await_request(self, vreq: VirtualRequest, *, consume: bool) -> Any:
        """Block until ``vreq`` completes, staying responsive to the
        checkpoint control plane.

        Wakes on either request completion or control-message delivery;
        with a checkpoint pending, the rank parks (counting as quiesced)
        while still polling for completion — MANA's interruptible-receive
        behaviour.  ``consume=True`` removes the request from the registry
        once delivered (internal requests backing blocking calls).
        """
        from ..des import Waiter

        while not vreq.done:
            if vreq._lower is None:
                raise ProtocolError(
                    f"rank {self.rank}: wait on pending request {vreq!r} with no "
                    "lower-half backing (restart bug)"
                )
            if self.protocol.adds_wrapper_cost and self.coordinator is not None:
                self.protocol.absorb_control()
                if vreq.done:
                    break
                if self.protocol.intent:
                    # Park while blocked: the checkpoint may commit now;
                    # completion (e.g. the peer's drain pulling our
                    # rendezvous payload) unparks us.
                    self.protocol.park_until_resume(poll=lambda: vreq.done)
                    continue
                # No checkpoint pending: sleep until completion OR any
                # control-plane delivery (intent could arrive while we
                # are blocked for a long time).
                w = Waiter(self.sim, label=f"await:{vreq.kind}")
                fired = {"done": False}

                def wake() -> None:
                    if not fired["done"]:
                        fired["done"] = True
                        w.fire()

                vreq._lower.on_complete(lambda _req: wake())
                self.control.add_tap(wake)
                try:
                    w.wait()
                finally:
                    self.control.remove_tap(wake)
            else:
                vreq._lower.wait()
                if not vreq.done and vreq._lower.done:
                    # Lower completed but capture didn't run: requests
                    # wrapped without a capture hook complete here.
                    self._mark_done(vreq, vreq._lower.value)
        value = vreq.value
        if consume:
            self._vreqs.pop(vreq.vrid, None)
        return value

    def vreq_test(self, vreq: VirtualRequest) -> tuple[bool, Any]:
        if self.replaying:
            return self._replay_next(_VALUE, "test")
        self.protocol.on_request_completion_call()
        self.sim.sleep(self.overheads.test_call)
        result = (vreq.done, vreq.value if vreq.done else None)
        self._record(_VALUE, result, "test")
        return result

    # -- drain-buffer helpers ------------------------------------------------ #

    def _buffer_take(self, vcid: int, source: int, tag: int):
        ckey = self._ckey_of_vcid[vcid]
        for i, rec in enumerate(self.drain_buffer):
            if rec[0] == ckey and _match(rec[1], rec[2], source, tag):
                self.drain_consumed += 1
                return self.drain_buffer.pop(i)
        return None

    def _count_recv(self, vcid: int, comm: Communicator, src_group_rank: int) -> None:
        peer = comm.group.world_rank(src_group_rank)
        key = (self._ckey_of_vcid[vcid], peer)
        self.recv_done[key] = self.recv_done.get(key, 0) + 1

    # ------------------------------------------------------------------ #
    # Communicator management
    # ------------------------------------------------------------------ #

    def _register_comm(self, comm: Communicator) -> VirtualComm:
        vcid = self._assign_handles(comm)
        ggid = comm.ggid
        self.seq.ensure_group(ggid)
        return VirtualComm(vcid)

    def _assign_handles(self, comm: Communicator) -> int:
        vcid = self._next_vcid
        self._next_vcid += 1
        self._vcomms[vcid] = comm
        ggid = self.ggids.register(comm.group.world_ranks)
        ordinal = self._ggid_ordinal.get(ggid, 0)
        self._ggid_ordinal[ggid] = ordinal + 1
        self._ckey_of_vcid[vcid] = (ggid, ordinal)
        return vcid

    def comm_split(self, vcid: int, color: "int | None", key: int | None):
        """MPI_Comm_split, protocol-wrapped.

        Communicator creation is a collective operation on the parent
        group, so it is counted in the parent's collective clock and
        protected by the 2PC trivial barrier like any other collective;
        otherwise a checkpoint's cut could split a creation operation
        (some members inside, some parked), which deadlocks the drain.
        """
        if self.replaying:
            payload = self._replay_next(_COMM, "split")
            return None if payload is None else VirtualComm(payload)
        comm = self.lower_comm(vcid)

        def execute():
            new = self.world.comm_split(comm, color, key)
            self.creation_log.append(("split", vcid, color, key))
            if new is None:
                self._record(_COMM, None, "split")
                return None
            vcomm = self._register_comm(new)
            self._ensure_shadow(new)
            self._record(_COMM, vcomm.vcid, "split")
            return vcomm

        return self.protocol.on_blocking_collective(
            comm.ggid, comm.group.world_ranks, execute
        )

    def comm_dup(self, vcid: int) -> VirtualComm:
        """MPI_Comm_dup, protocol-wrapped (see :meth:`comm_split`)."""
        if self.replaying:
            return VirtualComm(self._replay_next(_COMM, "dup"))
        comm = self.lower_comm(vcid)

        def execute():
            new = self.world.comm_dup(comm)
            self.creation_log.append(("dup", vcid))
            vcomm = self._register_comm(new)
            self._ensure_shadow(new)
            self._record(_COMM, vcomm.vcid, "dup")
            return vcomm

        return self.protocol.on_blocking_collective(
            comm.ggid, comm.group.world_ranks, execute
        )

    def comm_create_group(self, vcid: int, world_ranks: tuple[int, ...]) -> VirtualComm:
        """MPI_Comm_create_group, protocol-wrapped over the *new* group."""
        if self.replaying:
            return VirtualComm(self._replay_next(_COMM, "create_group"))
        comm = self.lower_comm(vcid)
        from ..simmpi import Group

        group = Group(world_ranks)
        new_ggid = self.ggids.register(group.world_ranks)
        self.seq.ensure_group(new_ggid)

        def execute():
            new = self.world.comm_create_group(comm, group)
            self.creation_log.append(("create_group", vcid, tuple(world_ranks)))
            vcomm = self._register_comm(new)
            # No shadow for create_group comms under 2PC (their first
            # barrier would need the shadow before the comm exists) —
            # the 2PC wrapper skips phase 1 for them, as MANA 2019 did
            # not support comm_create_group at all.
            self._record(_COMM, vcomm.vcid, "create_group")
            return vcomm

        return self.protocol.on_blocking_collective(
            new_ggid, group.world_ranks, execute
        )

    # ------------------------------------------------------------------ #
    # Commit participation (coordinator-driven)
    # ------------------------------------------------------------------ #

    def participate_in_commit(self) -> None:
        """Run the rank-side commit sequence.  Called from the protocol's
        park loop when the coordinator's commit message arrives."""
        drained_nbc = drain_nonblocking_requests(self)
        self.to_coordinator(("nbc_done", self.rank, dict(self.sent_to)))
        expected = self._await_phase("drain_p2p")[1]
        n_buffered = self._drain_p2p(expected)
        self.to_coordinator(("p2p_done", self.rank, self.declared_bytes))
        duration = self._await_phase("snapshot")[1]
        image = self.build_image()
        image.stats["drained_nbc"] = drained_nbc
        image.stats["drained_p2p"] = n_buffered
        self.sim.sleep(duration)
        self.to_coordinator(("written", self.rank, image))
        self._await_phase("resume")
        self._reset_after_checkpoint()

    def _await_phase(self, kind: str) -> tuple:
        msg = self.control.get()
        if msg[0] == "abort":
            # The coordinator abandoned the round mid-commit (a
            # participant crashed).  Unwind to the park loop: nothing
            # was committed and the application must keep running.
            raise RoundAborted(
                f"rank {self.rank}: round aborted while awaiting {kind!r}"
            )
        if msg[0] != kind:
            raise ProtocolError(
                f"rank {self.rank}: expected {kind!r} during commit, got {msg!r}"
            )
        return msg

    def poll_commit_abort(self) -> None:
        """Non-blocking abort check for commit-phase progress loops.

        The p2p/nbc drains poll the data plane in sleep loops that never
        read the control mailbox; with crash faults in the picture an
        abort can land mid-drain, and without this check the loop would
        spin (waiting on messages a corpse will never send) until the
        ``max_events`` guard trips.
        """
        ok, msg = self.control.peek()
        if ok and msg[0] == "abort":
            self.control.try_get()
            raise RoundAborted(f"rank {self.rank}: round aborted mid-drain")

    def _drain_p2p(self, expected: dict[tuple, int]) -> int:
        """Receive every in-flight message into the upper-half buffer.

        ``expected[(ckey, src_world)]`` is how many messages that peer had
        sent us on that communicator; we are done when completed receives
        plus buffered messages match for every key.
        """
        buffered_before = len(self.drain_buffer)
        buffered: dict[tuple, int] = {}

        def satisfied() -> bool:
            for key, n in expected.items():
                have = self.recv_done.get(key, 0) + buffered.get(key, 0)
                if have < n:
                    return False
                if have > n:
                    raise ProtocolError(
                        f"rank {self.rank}: drained more messages than were "
                        f"sent for {key}: {have} > {n}"
                    )
            return True

        gap = self.overheads.ibarrier_poll_gap
        try:
            while not satisfied():
                self.poll_commit_abort()
                progressed = False
                for vcid, comm in self._vcomms.items():
                    ckey = self._ckey_of_vcid[vcid]
                    while True:
                        status = comm.iprobe(source=ANY_SOURCE, tag=ANY_TAG)
                        if status is None:
                            break
                        payload, st = comm.recv_status(source=status.source, tag=status.tag)
                        src_world = comm.group.world_rank(st.source)
                        self.drain_buffer.append(
                            (ckey, st.source, st.tag, payload, st.nbytes)
                        )
                        self.drain_buffered += 1
                        key = (ckey, src_world)
                        buffered[key] = buffered.get(key, 0) + 1
                        progressed = True
                if not satisfied() and not progressed:
                    self.sim.sleep(gap)
        finally:
            # Whatever was pulled into the buffer was genuinely received
            # from the lower half; fold it into the receive counters so
            # an *aborted* round stays conserved across the next cut (a
            # committed round resets the counters right after anyway).
            for key, n in buffered.items():
                self.recv_done[key] = self.recv_done.get(key, 0) + n
        return len(self.drain_buffer) - buffered_before

    def build_image(self) -> CheckpointImage:
        """Assemble this rank's upper-half checkpoint image.

        The image is serialized immediately (pickle round-trip), for two
        reasons: the run resumes after the checkpoint and must not mutate
        what was captured, and pickling *now* proves the upper half holds
        no lower-half references (unpicklable by construction).
        """
        pending_recvs = [
            vr.vrid
            for vr in self._vreqs.values()
            if vr.kind == "recv" and not vr.done and not vr.internal
        ]
        # Requests referenced by the replayable window or still pending.
        referenced = set(pending_recvs)
        for tag, _op, payload in self.call_log:
            if tag == _VREQ:
                referenced.add(payload)
        vreq_table = {
            vrid: (vr.kind, vr.desc, vr.done, vr.value)
            for vrid, vr in self._vreqs.items()
            if vrid in referenced and not vr.internal
        }
        # A blocking receive whose message arrived before the snapshot but
        # was not yet consumed: the payload must survive as a drained
        # record — the re-executed receive finds it in the buffer, and
        # the sender (pre-cut) will never resend.
        drained_extra = []
        for vr in self._vreqs.values():
            if vr.internal and vr.kind == "recv" and vr.done:
                vcid, src, tag = vr.desc
                drained_extra.append(
                    (
                        self._ckey_of_vcid[vcid],
                        src,
                        tag,
                        vr.value,
                        payload_nbytes(vr.value),
                    )
                )
        import pickle

        image = CheckpointImage(
            rank=self.rank,
            nprocs=self.nprocs,
            protocol=self.protocol_name,
            ckpt_id=self.protocol.ckpt_id or 0,
            app_state=self.app_state,
            seq_table=self.seq.snapshot(),
            ggid_peers=self.ggids.snapshot(),
            creation_log=list(self.creation_log),
            call_index=self.call_index,
            boundary_index=self.boundary_index,
            call_log=list(self.call_log),
            drained=list(self.drain_buffer) + drained_extra,
            vreq_table=vreq_table,
            pending_recvs=pending_recvs,
            remaining_compute=self._in_compute_remaining,
            declared_bytes=self.declared_bytes,
            finished=self.finished,
            final_result=self.final_result,
            stats={"next_vrid": self._next_vrid, "next_vcid": self._next_vcid},
        )
        return pickle.loads(pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL))

    def _reset_after_checkpoint(self) -> None:
        self.sent_to.clear()
        self.recv_done.clear()
        self.ctrl_sent = 0
        self.ctrl_received = 0
        self.checkpoints_taken += 1

    # ------------------------------------------------------------------ #
    # Restart (restore + lower-half rebuild)
    # ------------------------------------------------------------------ #

    @classmethod
    def from_image(
        cls,
        world: "World",
        image: CheckpointImage,
        coordinator: "CheckpointCoordinator | None" = None,
    ) -> "Session":
        """Stage A of restart: restore upper-half state (no communication).

        Call :meth:`rebuild_lower` from inside the rank's process before
        resuming the application.
        """
        if image.nprocs != world.nprocs:
            raise ProtocolError(
                f"image for {image.nprocs} ranks cannot restart on "
                f"{world.nprocs} ranks"
            )
        import pickle

        # Restore from a deep copy: the restarted run mutates the restored
        # state, and the caller's image set must stay intact (it may be
        # restarted again — e.g. a failed first restart attempt).
        image = pickle.loads(pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL))
        sess = cls(world, image.rank, image.protocol, coordinator)
        sess.seq = SeqNumTable.restore(image.seq_table)
        sess.seq.clear_targets()
        sess.ggids = GgidRegistry.restore(image.ggid_peers)
        sess.app_state = image.app_state
        sess.creation_log = list(image.creation_log)
        sess.drain_buffer = list(image.drained)
        sess.drain_restored = len(sess.drain_buffer)
        sess.declared_bytes = image.declared_bytes
        # A rank that was finished at the cut stays finished: the runner
        # never re-enters the application, and the restored final result
        # is what the restarted job reports for this rank.
        sess.finished = image.finished
        sess.final_result = image.final_result
        sess.boundary_index = image.boundary_index
        sess.call_index = image.boundary_index
        sess._replay_entries = list(image.call_log)
        sess._replay_end = image.call_index
        if image.remaining_compute > 0:
            sess._pending_remaining = image.remaining_compute
        # Materialize the virtual-request table.
        for vrid, (kind, desc, done, value) in image.vreq_table.items():
            vr = VirtualRequest(vrid, kind, tuple(desc))
            vr.done = done
            vr.value = value
            sess._vreqs[vrid] = vr
        sess._pending_recv_ids = list(image.pending_recvs)
        sess._next_vrid = image.stats.get("next_vrid", len(sess._vreqs))
        return sess

    def rebuild_lower(self) -> None:
        """Stage B of restart: rebuild lower-half handles (collective).

        Replays the communicator-creation log against the fresh world and
        re-posts pending receives, mirroring MANA's restart of the lower
        half.  Must run inside this rank's simulated process.
        """
        self.rebuilding = True
        try:
            for entry in self.creation_log:
                op = entry[0]
                parent = self.lower_comm(entry[1])
                if op == "split":
                    new = self.world.comm_split(parent, entry[2], entry[3])
                    if new is not None:
                        self._register_comm_raw(new)
                elif op == "dup":
                    self._register_comm_raw(self.world.comm_dup(parent))
                elif op == "create_group":
                    from ..simmpi import Group

                    self._register_comm_raw(
                        self.world.comm_create_group(parent, Group(entry[2]))
                    )
                else:  # pragma: no cover - log is produced by this class
                    raise ProtocolError(f"unknown creation-log entry {entry!r}")
            # Re-post receives that were pending at the cut.
            for vrid in sorted(self._pending_recv_ids):
                vr = self._vreqs[vrid]
                vcid, source, tag = vr.desc
                comm = self.lower_comm(vcid)
                lower = comm.irecv(source=source, tag=tag)
                vr._lower = lower

                def capture(req, vr=vr, vcid=vcid, comm=comm) -> None:
                    payload, status = req.value
                    vr.done = True
                    vr.value = payload
                    self._count_recv(vcid, comm, status.source)

                lower.on_complete(capture)
        finally:
            self.rebuilding = False

    def _register_comm_raw(self, comm: Communicator) -> None:
        self._assign_handles(comm)

    # ------------------------------------------------------------------ #
    # App lifecycle
    # ------------------------------------------------------------------ #

    def on_app_finished(self) -> None:
        self.finished = True
        self.protocol.on_app_finished()
        if self.coordinator is not None:
            self.to_coordinator(("finished", self.rank))


def _match(src: int, tag: int, want_source: int, want_tag: int) -> bool:
    return (want_source == ANY_SOURCE or want_source == src) and (
        want_tag == ANY_TAG or want_tag == tag
    )
