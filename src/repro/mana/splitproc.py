"""Split-process semantics: what is upper half, what is lower half.

MANA's central design (paper Section 2.2, Figure 1): the MPI application
plus wrapper state form the *upper half* (saved at checkpoint); the MPI
library and network state form the *lower half* (discarded at checkpoint
and re-created at restart).  This module makes the split explicit and
verifiable:

* :func:`upper_half_of` extracts a rank's upper half (everything that
  goes into a :class:`~repro.mana.image.CheckpointImage`);
* :func:`verify_image_is_upper_half_only` proves an image contains no
  lower-half references — it must pickle successfully, and lower-half
  objects (simulator, world, engines, live requests) are unpicklable by
  construction, so leakage fails loudly.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from .image import CheckpointImage

if TYPE_CHECKING:  # pragma: no cover
    from ..simmpi import World
    from .session import Session

__all__ = ["SplitView", "upper_half_of", "lower_half_of", "verify_image_is_upper_half_only"]


@dataclass
class SplitView:
    """Explicit inventory of one rank's two halves."""

    #: Saved at checkpoint: app state, SEQ tables, creation log, buffers.
    upper: dict[str, Any]
    #: Discarded at checkpoint: live lower-half object references.
    lower: dict[str, Any]


def upper_half_of(session: "Session") -> dict[str, Any]:
    """The serializable upper half of a rank."""
    return {
        "app_state": session.app_state,
        "seq_table": session.seq.snapshot(),
        "ggid_peers": session.ggids.snapshot(),
        "creation_log": list(session.creation_log),
        "drain_buffer": list(session.drain_buffer),
        "call_index": session.call_index,
        "boundary_index": session.boundary_index,
    }


def lower_half_of(session: "Session") -> dict[str, Any]:
    """Live lower-half objects (never serialized)."""
    return {
        "world": session.world,
        "simulator": session.sim,
        "communicators": dict(session._vcomms),
        "engines": {
            vcid: session.world.engine_for(comm)
            for vcid, comm in session._vcomms.items()
        },
    }


def split_view(session: "Session") -> SplitView:
    return SplitView(upper=upper_half_of(session), lower=lower_half_of(session))


def verify_image_is_upper_half_only(image: CheckpointImage) -> int:
    """Assert the image holds no lower-half references.

    Lower-half objects transitively reference threads, locks, and the
    simulator, none of which pickle; a successful pickle therefore proves
    the image is pure upper half.  Returns the pickled size in bytes.
    """
    try:
        payload = pickle.dumps(image, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:  # pragma: no cover - failure is the finding
        raise AssertionError(
            f"checkpoint image for rank {image.rank} references lower-half "
            f"state: {exc!r}"
        ) from exc
    return len(payload)
