"""Virtualized MPI handles — MANA's upper-half object model.

MANA decouples the application from the MPI library by giving the
application *virtual* handles that the wrapper layer maps to real
lower-half handles.  At restart the lower half is rebuilt and the map is
re-populated, while the virtual handles the application holds (possibly
inside its checkpointed state) stay valid.

* :class:`VirtualComm` — pickles as just its id; every method resolves
  the current rank's :class:`~repro.mana.session.Session` through a
  thread-local and forwards through the interposition layer.
* :class:`VirtualRequest` — the upper-half face of a non-blocking
  operation; pending receive descriptors survive checkpoints and are
  re-posted on restart.
"""

from __future__ import annotations

import threading
from typing import Any, Sequence, TYPE_CHECKING

from ..simmpi import ANY_SOURCE, ANY_TAG, SUM

if TYPE_CHECKING:  # pragma: no cover
    from ..simmpi import ReduceOp
    from .session import Session

__all__ = ["VirtualComm", "VirtualRequest", "current_session", "session_scope"]

_tls = threading.local()


def current_session() -> "Session":
    """The session of the simulated rank running on this thread."""
    sess = getattr(_tls, "session", None)
    if sess is None:
        raise RuntimeError(
            "no MANA session bound to this process; virtual handles can "
            "only be used inside a rank launched by the runner"
        )
    return sess


class session_scope:
    """Binds a session to the current (simulated-process) thread."""

    def __init__(self, session: "Session"):
        self.session = session

    def __enter__(self) -> "Session":
        self._prev = getattr(_tls, "session", None)
        _tls.session = self.session
        return self.session

    def __exit__(self, *exc: Any) -> None:
        _tls.session = self._prev


class VirtualComm:
    """Upper-half communicator handle.

    Pickling keeps only the id, so application state containing these
    handles can be checkpointed; after restart the id resolves against
    the rebuilt lower half.
    """

    __slots__ = ("vcid",)

    def __init__(self, vcid: int):
        self.vcid = vcid

    def __getstate__(self) -> int:
        return self.vcid

    def __setstate__(self, state: int) -> None:
        self.vcid = state

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VirtualComm) and other.vcid == self.vcid

    def __hash__(self) -> int:
        return hash(("vcomm", self.vcid))

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VirtualComm #{self.vcid}>"

    # -- identity -------------------------------------------------------- #

    def rank(self) -> int:
        return current_session().comm_rank(self.vcid)

    @property
    def size(self) -> int:
        return current_session().comm_size(self.vcid)

    @property
    def ggid(self) -> int:
        return current_session().comm_ggid(self.vcid)

    def world_ranks(self) -> tuple[int, ...]:
        return current_session().comm_world_ranks(self.vcid)

    # -- point-to-point ---------------------------------------------------- #

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        current_session().p2p_send(self.vcid, obj, dest, tag)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> "VirtualRequest":
        return current_session().p2p_isend(self.vcid, obj, dest, tag)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        return current_session().p2p_recv(self.vcid, source, tag)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "VirtualRequest":
        return current_session().p2p_irecv(self.vcid, source, tag)

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Any:
        req = self.irecv(source=source, tag=recvtag)
        self.send(obj, dest=dest, tag=sendtag)
        return req.wait()

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        return current_session().p2p_iprobe(self.vcid, source, tag)

    # -- blocking collectives ---------------------------------------------- #

    def barrier(self) -> None:
        current_session().collective(self.vcid, "barrier", None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return current_session().collective(self.vcid, "bcast", obj, root=root)

    def reduce(self, obj: Any, op: "ReduceOp | str" = SUM, root: int = 0) -> Any:
        return current_session().collective(self.vcid, "reduce", obj, root=root, op=op)

    def allreduce(self, obj: Any, op: "ReduceOp | str" = SUM) -> Any:
        return current_session().collective(self.vcid, "allreduce", obj, op=op)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        return current_session().collective(self.vcid, "alltoall", objs)

    def allgather(self, obj: Any) -> list[Any]:
        return current_session().collective(self.vcid, "allgather", obj)

    def gather(self, obj: Any, root: int = 0) -> Any:
        return current_session().collective(self.vcid, "gather", obj, root=root)

    def scatter(self, objs: Any, root: int = 0) -> Any:
        return current_session().collective(self.vcid, "scatter", objs, root=root)

    def scan(self, obj: Any, op: "ReduceOp | str" = SUM) -> Any:
        return current_session().collective(self.vcid, "scan", obj, op=op)

    def reduce_scatter(self, objs: Sequence[Any], op: "ReduceOp | str" = SUM) -> Any:
        return current_session().collective(self.vcid, "reduce_scatter", objs, op=op)

    # -- non-blocking collectives ------------------------------------------ #

    def ibarrier(self) -> "VirtualRequest":
        return current_session().icollective(self.vcid, "barrier", None)

    def ibcast(self, obj: Any, root: int = 0) -> "VirtualRequest":
        return current_session().icollective(self.vcid, "bcast", obj, root=root)

    def ireduce(self, obj: Any, op: "ReduceOp | str" = SUM, root: int = 0) -> "VirtualRequest":
        return current_session().icollective(self.vcid, "reduce", obj, root=root, op=op)

    def iallreduce(self, obj: Any, op: "ReduceOp | str" = SUM) -> "VirtualRequest":
        return current_session().icollective(self.vcid, "allreduce", obj, op=op)

    def ialltoall(self, objs: Sequence[Any]) -> "VirtualRequest":
        return current_session().icollective(self.vcid, "alltoall", objs)

    def iallgather(self, obj: Any) -> "VirtualRequest":
        return current_session().icollective(self.vcid, "allgather", obj)

    def igather(self, obj: Any, root: int = 0) -> "VirtualRequest":
        return current_session().icollective(self.vcid, "gather", obj, root=root)

    def iscan(self, obj: Any, op: "ReduceOp | str" = SUM) -> "VirtualRequest":
        return current_session().icollective(self.vcid, "scan", obj, op=op)

    def ireduce_scatter(self, objs: Sequence[Any], op: "ReduceOp | str" = SUM) -> "VirtualRequest":
        return current_session().icollective(self.vcid, "reduce_scatter", objs, op=op)

    # -- communicator management -------------------------------------------- #

    def split(self, color: "int | None", key: int | None = None) -> "VirtualComm | None":
        return current_session().comm_split(self.vcid, color, key)

    def dup(self) -> "VirtualComm":
        return current_session().comm_dup(self.vcid)

    def create_group(self, world_ranks: Sequence[int]) -> "VirtualComm":
        return current_session().comm_create_group(self.vcid, tuple(world_ranks))


class VirtualRequest:
    """Upper-half request handle.

    ``kind`` is ``"send"``, ``"recv"``, or ``"coll"``; ``desc`` holds the
    re-post descriptor for pending receives ``(vcid, source, tag)``.
    The lower-half request reference is transient (never pickled).
    """

    __slots__ = ("vrid", "kind", "desc", "done", "value", "_lower", "internal")

    def __init__(self, vrid: int, kind: str, desc: tuple = (), *, internal: bool = False):
        self.vrid = vrid
        self.kind = kind
        self.desc = desc
        self.done = False
        self.value: Any = None
        self._lower = None
        #: True for requests created inside blocking wrappers (recv/send);
        #: these are not application-visible and are never re-posted at
        #: restart (the blocking call re-executes instead).
        self.internal = internal

    @property
    def is_collective(self) -> bool:
        return self.kind == "coll"

    def wait(self) -> Any:
        """MPI_Wait through the interposition layer."""
        return current_session().vreq_wait(self)

    def test(self) -> tuple[bool, Any]:
        """MPI_Test through the interposition layer."""
        return current_session().vreq_test(self)

    # -- pickling (checkpoint image content) -------------------------------- #

    def __getstate__(self) -> tuple:
        return (self.vrid, self.kind, self.desc, self.done, self.value)

    def __setstate__(self, state: tuple) -> None:
        self.vrid, self.kind, self.desc, self.done, self.value = state
        self._lower = None
        self.internal = False

    def __repr__(self) -> str:  # pragma: no cover
        flag = "done" if self.done else "pending"
        return f"<VirtualRequest #{self.vrid} {self.kind} {flag}>"


def wait_all(requests: "list[VirtualRequest]") -> list[Any]:
    """MPI_Waitall over virtual requests; returns the values in order.

    Waiting in index order is semantically equivalent to waiting on all:
    each wait blocks only until that request's completion time.
    """
    return [r.wait() for r in requests]


def wait_any(requests: "list[VirtualRequest]") -> tuple[int, Any]:
    """MPI_Waitany over virtual requests: (index, value) of the first
    completion (lowest index among already-complete ones)."""
    if not requests:
        raise ValueError("wait_any on empty request list")
    session = current_session()
    while True:
        for i, r in enumerate(requests):
            if r.done:
                return i, r.wait()
        # Poll at the MPI_Test granularity until something completes.
        flag, value = requests[0].test()
        if flag:
            return 0, value
        session.sim.sleep(session.overheads.ibarrier_poll_gap)


def test_all(requests: "list[VirtualRequest]") -> tuple[bool, "list[Any] | None"]:
    """MPI_Testall over virtual requests."""
    values = []
    for r in requests:
        flag, value = r.test()
        if not flag:
            return False, None
        values.append(value)
    return True, values
