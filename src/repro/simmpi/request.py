"""Requests: handles for non-blocking operations.

A :class:`Request` completes at a virtual time decided by the matching
engine or a collective cost solver; processes observe completion through
``test`` (non-blocking, mirrors MPI_Test) or ``wait`` (blocking, mirrors
MPI_Wait), plus the ``waitall/waitany/testall`` family.

Completed requests behave like MPI_REQUEST_NULL: testing them again is
legal and instantaneous.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Iterable, Sequence

from ..des import Simulator, Waiter
from .errors import RequestError

__all__ = [
    "Request",
    "completed_request",
    "test_all",
    "wait_all",
    "wait_any",
    "wait_some",
]


class Request:
    """Handle for one pending non-blocking operation."""

    __slots__ = ("sim", "kind", "_done", "_value", "_observers", "meta")

    def __init__(self, sim: Simulator, kind: str, meta: dict | None = None):
        self.sim = sim
        self.kind = kind
        self._done = False
        self._value: Any = None
        self._observers: list[Callable[["Request"], None]] = []
        #: Free-form metadata (comm label, peer, tag) for diagnostics and
        #: for the checkpoint drain bookkeeping.
        self.meta = meta or {}

    # -- completion (engine side) ----------------------------------------

    def complete(self, value: Any = None) -> None:
        """Mark done and notify observers.  Called in scheduler context."""
        if self._done:
            raise RequestError(f"request {self.kind!r} completed twice")
        self._done = True
        self._value = value
        observers, self._observers = self._observers, []
        for cb in observers:
            cb(self)

    def complete_at(self, time: float, value: Any = None) -> None:
        """Schedule completion at virtual ``time`` (>= now)."""
        # defer_at + partial, not call_at + lambda: completions are
        # scheduled once per message and never cancelled, so no Timer
        # handle or closure needs to be allocated.
        self.sim.defer_at(max(time, self.sim.now()), partial(self.complete, value))

    def on_complete(self, cb: Callable[["Request"], None]) -> None:
        """Observe completion; fires immediately if already done."""
        if self._done:
            cb(self)
        else:
            self._observers.append(cb)

    # -- observation (process side) ---------------------------------------

    @property
    def done(self) -> bool:
        return self._done

    @property
    def value(self) -> Any:
        """Completion value; only meaningful once :attr:`done`."""
        return self._value

    def test(self) -> tuple[bool, Any]:
        """MPI_Test: ``(flag, value)`` without blocking."""
        return (self._done, self._value if self._done else None)

    def wait(self) -> Any:
        """MPI_Wait: block the calling process until completion."""
        if self._done:
            return self._value
        w = Waiter(self.sim, label=self.kind)
        self.on_complete(lambda _req: w.fire())
        w.wait()
        return self._value

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self._done else "pending"
        return f"<Request {self.kind} {state} {self.meta or ''}>"


def completed_request(sim: Simulator, value: Any = None, kind: str = "null") -> Request:
    """A pre-completed request (the MPI_REQUEST_NULL analog)."""
    req = Request(sim, kind)
    req._done = True
    req._value = value
    return req


def test_all(requests: Iterable[Request]) -> tuple[bool, list[Any] | None]:
    """MPI_Testall: flag plus values if *all* are complete."""
    reqs = list(requests)
    if all(r.done for r in reqs):
        return True, [r.value for r in reqs]
    return False, None


def wait_all(sim: Simulator, requests: Iterable[Request]) -> list[Any]:
    """MPI_Waitall: block until every request completes; returns values."""
    reqs = list(requests)
    pending = [r for r in reqs if not r.done]
    if pending:
        w = Waiter(sim, label="waitall")
        remaining = {"n": len(pending)}

        def observer(_req: Request) -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                w.fire()

        for r in pending:
            r.on_complete(observer)
        w.wait()
    return [r.value for r in reqs]


def wait_any(sim: Simulator, requests: Sequence[Request]) -> tuple[int, Any]:
    """MPI_Waitany: block until one completes; returns (index, value).

    If several are already complete, the lowest index wins (deterministic,
    like most MPI implementations).
    """
    reqs = list(requests)
    if not reqs:
        raise RequestError("wait_any on empty request list")
    for i, r in enumerate(reqs):
        if r.done:
            return i, r.value
    w = Waiter(sim, label="waitany")
    fired = {"idx": -1}

    def make_observer(idx: int) -> Callable[[Request], None]:
        def observer(_req: Request) -> None:
            if fired["idx"] < 0:
                fired["idx"] = idx
                w.fire()

        return observer

    for i, r in enumerate(reqs):
        r.on_complete(make_observer(i))
    w.wait()
    idx = fired["idx"]
    return idx, reqs[idx].value


def wait_some(sim: Simulator, requests: Sequence[Request]) -> list[tuple[int, Any]]:
    """MPI_Waitsome: block until at least one completes; return all that did."""
    reqs = list(requests)
    if not reqs:
        raise RequestError("wait_some on empty request list")
    ready = [(i, r.value) for i, r in enumerate(reqs) if r.done]
    if ready:
        return ready
    idx, value = wait_any(sim, reqs)
    # Collect anything else that completed at the same instant.
    return [(i, r.value) for i, r in enumerate(reqs) if r.done]
