"""The simulated MPI job: process registry, contexts, bootstrap.

A :class:`World` glues together the DES kernel, the topology/cost model,
the matching engines (one per communicator context), and the collective
sites.  It is the "lower half" of the MANA split process: everything in
here is discarded at checkpoint time and rebuilt at restart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..des import Gate, SimProcess, Simulator, Waiter
from ..netmodel import ClusterTopology, make_topology
from .collectives import CollectiveSite
from .comm import Communicator
from .errors import CommunicatorError, SimMpiError
from .group import Group
from .matching import MatchingEngine
from .request import Request

__all__ = ["World", "WorldStats"]


@dataclass
class WorldStats:
    """Per-rank call counters (the Table 1 measurement source)."""

    nprocs: int
    coll_calls: np.ndarray = field(init=False)
    p2p_calls: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.coll_calls = np.zeros(self.nprocs, dtype=np.int64)
        self.p2p_calls = np.zeros(self.nprocs, dtype=np.int64)

    def total_coll(self) -> int:
        return int(self.coll_calls.sum())

    def total_p2p(self) -> int:
        return int(self.p2p_calls.sum())


class World:
    """One simulated MPI job (the lower half)."""

    def __init__(
        self,
        sim: Simulator,
        topo: "ClusterTopology | None" = None,
        *,
        nprocs: int | None = None,
        eager_threshold: int = 65536,
        label: str = "world",
    ):
        if topo is None:
            if nprocs is None:
                raise SimMpiError("provide a topology or nprocs")
            topo = make_topology(nprocs)
        self.sim = sim
        self.topo = topo
        self.params = topo.params
        self.tuning = topo.params.tuning
        self.overheads = topo.params.overheads
        self.nprocs = topo.nprocs
        self.eager_threshold = eager_threshold
        self.label = label

        self.stats = WorldStats(self.nprocs)
        #: True while the rank is inside a collective call (blocking body
        #: or non-blocking initiation) in the lower half — the state the
        #: Collective Invariant forbids checkpointing in.
        self.in_collective = [False] * self.nprocs
        #: Outstanding non-blocking collective requests per rank
        #: (verification/drain bookkeeping).
        self.outstanding_nbc: list[set[Request]] = [set() for _ in range(self.nprocs)]

        self._rank_of_proc: dict[SimProcess, int] = {}
        self._next_context = 0
        self._engines: dict[int, MatchingEngine] = {}
        self._sites: dict[tuple[int, int], CollectiveSite] = {}
        self._call_counters: dict[int, list[int]] = {}
        self._comm_registry: dict[Any, Communicator] = {}
        self._cg_counters: dict[Any, list[int]] = {}
        self._barriers: dict[Any, dict[str, Any]] = {}

        world_group = Group(range(self.nprocs))
        self.comm_world = self._new_communicator(world_group, "COMM_WORLD")

    # ------------------------------------------------------------------ #
    # Process registry
    # ------------------------------------------------------------------ #

    def register_process(self, proc: SimProcess, rank: int) -> None:
        """Bind a simulated process to a world rank."""
        if not 0 <= rank < self.nprocs:
            raise SimMpiError(f"rank {rank} out of range [0,{self.nprocs})")
        self._rank_of_proc[proc] = rank

    def current_world_rank(self) -> int:
        proc = self.sim.current_process()
        try:
            return self._rank_of_proc[proc]
        except KeyError:
            raise SimMpiError(
                f"process {proc.name!r} is not registered as an MPI rank"
            ) from None

    # ------------------------------------------------------------------ #
    # Job bootstrap
    # ------------------------------------------------------------------ #

    def launch(
        self,
        main: Callable[..., Any],
        *args: Any,
        name_prefix: str = "rank",
    ) -> list[SimProcess]:
        """Spawn one simulated process per rank running ``main(comm, *args)``.

        All ranks pass a startup gate before ``main`` begins, mirroring
        ``MPI_Init`` returning everywhere before timing starts.
        """
        gate = Gate(self.sim, self.nprocs, label="mpi_init")
        procs = []
        for rank in range(self.nprocs):

            def body(rank: int = rank) -> Any:
                gate.arrive_and_wait()
                return main(self.comm_world, *args)

            proc = self.sim.spawn(body, name=f"{name_prefix}{rank}")
            self.register_process(proc, rank)
            procs.append(proc)
        return procs

    def run(self, main: Callable[..., Any], *args: Any) -> list[Any]:
        """Launch, run the simulation to completion, return per-rank results."""
        procs = self.launch(main, *args)
        self.sim.run()
        return [p.result for p in procs]

    # ------------------------------------------------------------------ #
    # Counters / invariants
    # ------------------------------------------------------------------ #

    def count_coll(self, world_rank: int) -> None:
        self.stats.coll_calls[world_rank] += 1

    def count_p2p(self, world_rank: int) -> None:
        self.stats.p2p_calls[world_rank] += 1

    def set_in_collective(self, world_rank: int, flag: bool) -> None:
        self.in_collective[world_rank] = flag

    def any_in_collective(self) -> bool:
        return any(self.in_collective)

    def track_nonblocking(self, world_rank: int, req: Request) -> None:
        pending = self.outstanding_nbc[world_rank]
        pending.add(req)
        req.on_complete(lambda r: pending.discard(r))

    # ------------------------------------------------------------------ #
    # Contexts, engines, sites
    # ------------------------------------------------------------------ #

    def _new_context_id(self) -> int:
        ctx = self._next_context
        self._next_context += 1
        return ctx

    def _new_communicator(self, group: Group, label: str) -> Communicator:
        comm = Communicator(self, group, self._new_context_id(), label)
        self._engines[comm.context_id] = MatchingEngine(
            self.sim,
            self.topo,
            group.world_ranks,
            eager_threshold=self.eager_threshold,
            label=label,
        )
        self._call_counters[comm.context_id] = [0] * group.size
        return comm

    def engine_for(self, comm: Communicator) -> MatchingEngine:
        return self._engines[comm.context_id]

    def site_for_next_call(
        self, comm: Communicator, member: int
    ) -> tuple[CollectiveSite, tuple[int, int]]:
        """The site this member's next collective call on ``comm`` joins.

        MPI matches collectives per communicator in call order, so the
        member's per-communicator call counter is the site index.
        """
        counters = self._call_counters[comm.context_id]
        index = counters[member]
        counters[member] += 1
        key = (comm.context_id, index)
        site = self._sites.get(key)
        if site is None:
            site = CollectiveSite(
                self.sim,
                self.topo,
                self.tuning,
                comm.group.world_ranks,
                index=index,
                label=comm.label,
            )
            self._sites[key] = site
        return site, key

    def gc_site_if_done(self, key: tuple[int, int], site: CollectiveSite) -> None:
        if site.complete:
            self._sites.pop(key, None)

    def open_sites(self) -> int:
        """Number of collective operations with members still unresolved."""
        return len(self._sites)

    # ------------------------------------------------------------------ #
    # Communicator creation (collective operations)
    # ------------------------------------------------------------------ #

    def comm_dup(self, comm: Communicator, label: str | None = None) -> Communicator:
        me = comm.rank()
        # The pre-call collective counter identifies this dup instance:
        # by MPI rules, all members have issued the same number of prior
        # collectives on this communicator.
        call_no = self._call_counters[comm.context_id][me]
        comm.allgather(("dup", call_no))
        key = (comm.context_id, "dup", call_no)
        return self._registry_get_or_create(key, comm.group, label or f"{comm.label}.dup")

    def comm_split(
        self, comm: Communicator, color: "int | None", key: int | None
    ) -> "Communicator | None":
        me = comm.rank()
        wr = comm.group.world_rank(me)
        call_no = self._call_counters[comm.context_id][me]
        sort_key = key if key is not None else me
        entries = comm.allgather((color, sort_key, wr))
        if color is None:
            return None
        members = sorted((k, w) for (c, k, w) in entries if c == color)
        group = Group([w for (_k, w) in members])
        reg_key = (comm.context_id, "split", call_no, color)
        label = f"{comm.label}.split({color})"
        return self._registry_get_or_create(reg_key, group, label)

    def comm_create_group(
        self, comm: Communicator, group: Group, label: str | None = None
    ) -> Communicator:
        me_wr = self.current_world_rank()
        if me_wr not in group:
            raise CommunicatorError(
                f"world rank {me_wr} called create_group but is not in the group"
            )
        for w in group.world_ranks:
            if w not in comm.group:
                raise CommunicatorError(
                    f"group member {w} is not part of {comm.label!r}"
                )
        # Per-(parent, group) per-member call counter distinguishes
        # repeated create_group calls over the same subgroup.
        cg_key = (comm.context_id, group.world_ranks)
        counters = self._cg_counters.setdefault(cg_key, [0] * group.size)
        me_idx = group.rank_of(me_wr)
        call_no = counters[me_idx]
        counters[me_idx] += 1
        key = ("create", comm.context_id, group.world_ranks, call_no)
        self._subgroup_barrier(key, group)
        new_label = label or f"{comm.label}.group{list(group.world_ranks)}"
        return self._registry_get_or_create(key, group, new_label)

    def _registry_get_or_create(self, key: Any, group: Group, label: str) -> Communicator:
        comm = self._comm_registry.get(key)
        if comm is None:
            comm = self._new_communicator(group, label)
            self._comm_registry[key] = comm
        return comm

    def _subgroup_barrier(self, key: Any, group: Group) -> None:
        """Dissemination-cost barrier over a subgroup, outside any context.

        Used by ``create_group``, which synchronizes only the new group's
        members (MPI-3 semantics).
        """
        state = self._barriers.setdefault(key, {"waiters": [], "arrived": 0})
        state["arrived"] += 1
        if state["arrived"] == group.size:
            stage = self.topo.mean_alpha(group.world_ranks) + self.tuning.send_overhead
            rounds = max(1, math.ceil(math.log2(max(group.size, 2))))
            exit_time = self.sim.now() + rounds * stage
            for w in state["waiters"]:
                self.sim.call_at(exit_time, w.fire)
            del self._barriers[key]
            self.sim.sleep(max(exit_time - self.sim.now(), 0.0))
        else:
            w = Waiter(self.sim, label=f"create_group:{key!r}")
            state["waiters"].append(w)
            w.wait()
