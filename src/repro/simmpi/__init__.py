"""Simulated MPI: a complete MPI-like library over the DES kernel.

This is the substitute for Cray MPICH + Slingshot in the paper's setup
(see DESIGN.md §2).  It implements the semantics the checkpointing
protocols rely on:

* non-overtaking point-to-point matching with wildcards and probes,
* blocking collectives with per-algorithm cost structure (rooted trees
  are *not* synchronizing; alltoall/allreduce/barrier are),
* non-blocking collectives with independent background progress,
* communicator/group management (split, dup, create_group,
  translate_ranks, SIMILAR comparison).

Public surface::

    sim = Simulator()
    world = World(sim, nprocs=8)
    def app(comm):
        ...
    results = world.run(app)
"""

from .comm import Communicator
from .datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    BAND,
    BOR,
    LAND,
    LOR,
    MAX,
    MIN,
    PROD,
    SUM,
    ReduceOp,
    payload_nbytes,
    reduce_payloads,
)
from .errors import (
    CollectiveMismatchError,
    CommunicatorError,
    MatchingError,
    ReduceOpError,
    RequestError,
    SimMpiError,
)
from .group import IDENT, SIMILAR, UNEQUAL, Group
from .matching import MatchingEngine, Status
from .request import (
    Request,
    completed_request,
    test_all,
    wait_all,
    wait_any,
    wait_some,
)
from .world import World, WorldStats

__all__ = [
    "World",
    "WorldStats",
    "Communicator",
    "Group",
    "IDENT",
    "SIMILAR",
    "UNEQUAL",
    "Request",
    "completed_request",
    "test_all",
    "wait_all",
    "wait_any",
    "wait_some",
    "MatchingEngine",
    "Status",
    "ANY_SOURCE",
    "ANY_TAG",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "ReduceOp",
    "payload_nbytes",
    "reduce_payloads",
    "SimMpiError",
    "CommunicatorError",
    "CollectiveMismatchError",
    "ReduceOpError",
    "RequestError",
    "MatchingError",
]
