"""Exception types for the simulated MPI library."""

from __future__ import annotations


class SimMpiError(Exception):
    """Base class for simulated-MPI errors."""


class CommunicatorError(SimMpiError):
    """Invalid communicator usage (rank out of range, non-member call, ...)."""


class CollectiveMismatchError(SimMpiError):
    """Ranks disagreed about a matched collective call.

    Raised when two ranks' n-th collective calls on the same communicator
    differ in kind, root, or (for non-blocking ops) blocking-ness in a way
    the MPI standard forbids.  Surfacing this loudly catches application
    bugs that real MPI turns into hangs.
    """


class ReduceOpError(SimMpiError):
    """Unknown or inapplicable reduction operation."""


class RequestError(SimMpiError):
    """Invalid request usage (double wait, waiting on a foreign request)."""


class MatchingError(SimMpiError):
    """Internal inconsistency in the p2p matching engine."""
