"""Collective operation sites: matching, validation, data assembly.

MPI matches collective calls on a communicator **by call order**: every
member's n-th collective call on a communicator joins the same operation.
A :class:`CollectiveSite` represents one such operation instance.  It

* validates that all participants agree on kind / root / op /
  blocking-ness (raising :class:`CollectiveMismatchError` on the
  application bugs that real MPI turns into silent corruption or hangs),
* forwards arrival times to the netmodel's causal
  :class:`~repro.netmodel.collectives.ExitSolver`, and
* assembles each member's result value at the moment its exit resolves
  (by construction, every contribution the member's result needs has
  arrived by then).

Collective results are **value-semantic**: applications must treat a
received result as immutable.  ``bcast`` has always handed every member
the root's payload object itself, and ``allreduce``/``allgather`` now
assemble one shared result per operation (memoized — rebuilding an
identical list per member was O(p²) work and allocation); mutating a
result in place would therefore alias into other ranks' views, exactly
as writing into a received buffer without copying does in real MPI
bindings that return views.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Sequence

from ..des import Simulator
from ..netmodel import ClusterTopology, CollectiveTuning, make_solver
from .datatypes import ReduceOp, lookup_op, payload_nbytes, reduce_payloads
from .errors import CollectiveMismatchError
from .request import Request

__all__ = ["CollectiveSite", "ROOTLESS_KINDS", "ROOTED_KINDS"]

ROOTED_KINDS = frozenset({"bcast", "reduce", "gather", "scatter"})
ROOTLESS_KINDS = frozenset(
    {"barrier", "allreduce", "alltoall", "allgather", "scan", "reduce_scatter"}
)
VECTOR_KINDS = frozenset({"alltoall", "reduce_scatter"})  # contribution is a p-list

#: "No memoized result yet" marker (None is a legitimate result value).
_UNSET = object()


def _complete_batch(batch: "list[tuple[Request, Any]]") -> None:
    """Complete several requests sharing one exit instant (one event)."""
    for req, value in batch:
        req.complete(value)


class CollectiveSite:
    """One collective operation instance on one communicator."""

    def __init__(
        self,
        sim: Simulator,
        topo: ClusterTopology,
        tuning: CollectiveTuning,
        world_ranks: tuple[int, ...],
        *,
        index: int,
        label: str = "comm",
    ):
        self.sim = sim
        self.topo = topo
        self.tuning = tuning
        self.world_ranks = world_ranks
        self.p = len(world_ranks)
        self.index = index
        self.label = label
        self.kind: str | None = None
        self.root: int | None = None
        self.op: ReduceOp | None = None
        self.blocking: bool | None = None
        self._solver = None
        self._contributions: dict[int, Any] = {}
        self._requests: dict[int, Request] = {}
        self._pending_arrivals: list[tuple[int, float]] = []
        self._exited = 0
        self._shared_result: Any = _UNSET

    # ------------------------------------------------------------------ #

    @property
    def complete(self) -> bool:
        """All members have exited (every request completed)."""
        return self._exited == self.p

    def arrive(
        self,
        member: int,
        kind: str,
        contribution: Any,
        *,
        root: int = 0,
        op: "ReduceOp | str | None" = None,
        blocking: bool = True,
    ) -> Request:
        """Member ``member`` joins the operation now.

        Returns a request that completes, at the member's modelled exit
        time, with the member's result value.
        """
        self._validate(member, kind, root, op, blocking)
        contribution = self._validate_contribution(member, kind, contribution, root)
        self._contributions[member] = contribution
        req = Request(
            self.sim,
            f"coll:{kind}",
            meta={"comm": self.label, "index": self.index, "member": member},
        )
        self._requests[member] = req
        if self._solver is None:
            # For data-from-root operations only the root's contribution
            # determines the wire size; arrivals before the root are
            # buffered (they could not resolve before the root anyway).
            if kind in ("bcast", "scatter") and self.root not in self._contributions:
                self._pending_arrivals.append((member, self.sim.now()))
                return req
            sizing_member = self.root if kind in ("bcast", "scatter") else member
            nbytes = self._wire_bytes(kind, self._contributions[sizing_member])
            self._solver = make_solver(
                kind,
                self.world_ranks,
                self.topo,
                self.tuning,
                nbytes,
                root_index=self.root or 0,
            )
            backlog, self._pending_arrivals = self._pending_arrivals, []
            for m, t in backlog:
                self._fire(self._solver.on_arrival(m, t))
        self._fire(self._solver.on_arrival(member, self.sim.now()))
        return req

    def _fire(self, newly: dict[int, float]) -> None:
        if len(newly) <= 1:
            for idx, exit_time in newly.items():
                value = self._assemble(idx)
                self._exited += 1
                self._requests[idx].complete_at(exit_time, value)
            return
        # Batch same-instant exits into ONE queue entry: solver
        # resolutions routinely release many members at an identical
        # time (every member of a barrier/allreduce), and per-member
        # defer_at made the queue constant O(p) per collective.  The
        # batch completes its requests in arrival-resolution order —
        # exactly the consecutive-seq order the per-member events would
        # have fired in — and defer_batch_at counts it as one event per
        # member, so dispatch order, event counts, and therefore every
        # result stay byte-identical; only the queue traffic shrinks.
        by_time: dict[float, list[tuple[Request, Any]]] = {}
        for idx, exit_time in newly.items():
            value = self._assemble(idx)
            self._exited += 1
            by_time.setdefault(exit_time, []).append((self._requests[idx], value))
        sim = self.sim
        now = sim.now()
        for exit_time, batch in by_time.items():
            if len(batch) == 1:
                req, value = batch[0]
                req.complete_at(exit_time, value)
            else:
                sim.defer_batch_at(
                    max(exit_time, now), partial(_complete_batch, batch), len(batch)
                )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def _validate(
        self, member: int, kind: str, root: int, op: "ReduceOp | str | None", blocking: bool
    ) -> None:
        if not 0 <= member < self.p:
            raise CollectiveMismatchError(
                f"{self.label}[{self.index}]: member {member} out of range"
            )
        if member in self._contributions:
            raise CollectiveMismatchError(
                f"{self.label}[{self.index}]: member {member} arrived twice — "
                "mismatched collective call counts across ranks"
            )
        op_obj = lookup_op(op) if op is not None else None
        if self.kind is None:
            if kind in ROOTED_KINDS and not 0 <= root < self.p:
                raise CollectiveMismatchError(
                    f"{self.label}[{self.index}]: root {root} out of range"
                )
            self.kind = kind
            self.root = root if kind in ROOTED_KINDS else 0
            self.op = op_obj
            self.blocking = blocking
            return
        if kind != self.kind:
            raise CollectiveMismatchError(
                f"{self.label}[{self.index}]: rank called {kind!r} but the "
                f"operation in progress is {self.kind!r}"
            )
        if kind in ROOTED_KINDS and root != self.root:
            raise CollectiveMismatchError(
                f"{self.label}[{self.index}]: inconsistent roots "
                f"({root} vs {self.root}) for {kind!r}"
            )
        if (op_obj is None) != (self.op is None) or (
            op_obj is not None and self.op is not None and op_obj.name != self.op.name
        ):
            raise CollectiveMismatchError(
                f"{self.label}[{self.index}]: inconsistent reduce ops for {kind!r}"
            )
        if blocking != self.blocking:
            raise CollectiveMismatchError(
                f"{self.label}[{self.index}]: mixed blocking and non-blocking "
                f"calls matched to one {kind!r} operation"
            )

    def _validate_contribution(
        self, member: int, kind: str, contribution: Any, root: int
    ) -> Any:
        if kind in VECTOR_KINDS or (kind == "scatter" and member == root):
            if not isinstance(contribution, Sequence) or isinstance(
                contribution, (str, bytes)
            ):
                raise CollectiveMismatchError(
                    f"{self.label}[{self.index}]: {kind!r} needs a sequence of "
                    f"{self.p} items, got {type(contribution).__name__}"
                )
            if len(contribution) != self.p:
                raise CollectiveMismatchError(
                    f"{self.label}[{self.index}]: {kind!r} needs exactly "
                    f"{self.p} items, got {len(contribution)}"
                )
        return contribution

    def _wire_bytes(self, kind: str, contribution: Any) -> int:
        """Representative per-stage message size for the cost model."""
        if kind == "barrier":
            return 0
        if kind in VECTOR_KINDS or kind == "scatter":
            if isinstance(contribution, Sequence) and len(contribution) > 0:
                return payload_nbytes(contribution[0])
            return 0
        return payload_nbytes(contribution)

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #

    def _assemble(self, member: int) -> Any:
        kind = self.kind
        c = self._contributions
        if kind == "barrier":
            return None
        if kind == "bcast":
            return c[self.root]
        if kind == "reduce":
            if member != self.root:
                return None
            return reduce_payloads([c[i] for i in range(self.p)], self.op)
        if kind in ("allreduce", "allgather"):
            # Every member's result is identical and needs all p
            # contributions (which have therefore all arrived by the
            # first resolvable exit): build it once per site and hand
            # each member the same object, instead of O(p) work and a
            # fresh allocation per member (O(p²) per operation).
            shared = self._shared_result
            if shared is _UNSET:
                if kind == "allreduce":
                    shared = reduce_payloads(
                        [c[i] for i in range(self.p)], self.op
                    )
                else:
                    shared = [c[j] for j in range(self.p)]
                self._shared_result = shared
            return shared
        if kind == "alltoall":
            return [c[j][member] for j in range(self.p)]
        if kind == "gather":
            if member != self.root:
                return None
            return [c[j] for j in range(self.p)]
        if kind == "scatter":
            return c[self.root][member]
        if kind == "scan":
            return reduce_payloads([c[i] for i in range(member + 1)], self.op)
        if kind == "reduce_scatter":
            return reduce_payloads([c[j][member] for j in range(self.p)], self.op)
        raise CollectiveMismatchError(f"unknown collective kind {kind!r}")
