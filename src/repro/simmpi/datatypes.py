"""Payload handling and reduction operations.

Messages in the simulated MPI are arbitrary Python objects; numpy arrays
are the fast path (as in mpi4py's upper-case methods).  Reduction
operations follow the MPI predefined ops and are applied in ascending
rank order, so floating-point results are deterministic.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Sequence

import numpy as np

from .errors import ReduceOpError

__all__ = [
    "payload_nbytes",
    "ReduceOp",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "reduce_payloads",
    "ANY_SOURCE",
    "ANY_TAG",
]

#: Wildcards matching any source rank / any tag in receives and probes.
ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(obj: Any) -> int:
    """Approximate wire size of a payload in bytes.

    Used only by the cost model; exactness is unnecessary, but the value
    must be stable and cheap to compute (it is on the per-message path).
    """
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, (int, float, complex, np.generic)):
        return 8
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, str):
        return len(obj)
    if isinstance(obj, (list, tuple)):
        return sum(payload_nbytes(x) for x in obj) + 8 * len(obj)
    if isinstance(obj, dict):
        return sum(
            payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()
        ) + 16 * len(obj)
    return max(sys.getsizeof(obj), 8)


class ReduceOp:
    """A named, associative, commutative reduction."""

    def __init__(self, name: str, fn: Callable[[Any, Any], Any]):
        self.name = name
        self._fn = fn

    def __call__(self, a: Any, b: Any) -> Any:
        return self._fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ReduceOp {self.name}>"


def _land(a, b):
    return np.logical_and(a, b)


def _lor(a, b):
    return np.logical_or(a, b)


def _band(a, b):
    return np.bitwise_and(a, b)


def _bor(a, b):
    return np.bitwise_or(a, b)


SUM = ReduceOp("sum", np.add)
PROD = ReduceOp("prod", np.multiply)
MAX = ReduceOp("max", np.maximum)
MIN = ReduceOp("min", np.minimum)
LAND = ReduceOp("land", _land)
LOR = ReduceOp("lor", _lor)
BAND = ReduceOp("band", _band)
BOR = ReduceOp("bor", _bor)

_OPS = {op.name: op for op in (SUM, PROD, MAX, MIN, LAND, LOR, BAND, BOR)}


def lookup_op(op: "ReduceOp | str") -> ReduceOp:
    """Resolve an op instance or name to a :class:`ReduceOp`."""
    if isinstance(op, ReduceOp):
        return op
    try:
        return _OPS[op]
    except KeyError:
        raise ReduceOpError(
            f"unknown reduction op {op!r}; expected one of {sorted(_OPS)}"
        ) from None


def reduce_payloads(contributions: Sequence[Any], op: "ReduceOp | str") -> Any:
    """Fold ``contributions`` (ascending rank order) with ``op``.

    Scalars stay scalars; numpy arrays reduce elementwise.  A fresh
    result object is always returned so callers can mutate it safely.
    """
    rop = lookup_op(op)
    if not contributions:
        raise ReduceOpError("reduce of zero contributions")
    acc = contributions[0]
    if isinstance(acc, np.ndarray):
        acc = acc.copy()
    for item in contributions[1:]:
        acc = rop(acc, item)
    if isinstance(contributions[0], (int, float)) and isinstance(acc, np.generic):
        acc = acc.item()
    return acc
