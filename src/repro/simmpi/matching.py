"""Point-to-point message matching engine.

One engine exists per communicator context; it implements MPI matching
semantics:

* A receive matches the **earliest-sent** message with a compatible
  (source, tag) — the non-overtaking rule.  Matching order is send order
  even when a later, smaller message physically arrives first.
* ``ANY_SOURCE`` / ``ANY_TAG`` wildcards.
* Eager sends complete locally; rendezvous sends (above the eager
  threshold) complete only when the receiver has posted.
* ``iprobe`` sees a message only once it has physically arrived
  (``available_at <= now``), while a posted receive may match a message
  still in flight (completing when it lands) — both mirror real MPI.

The engine is purely logical: virtual time enters through envelope
timestamps and through completion times computed with the topology's
link parameters.

Matching is **indexed**, not scanned: unexpected envelopes and posted
receives are bucketed into per-``(source, tag)`` deques, so the common
concrete-pattern receive is an O(1) dict lookup + ``popleft`` instead of
a linear walk over every in-flight message.  Wildcard patterns fall back
to comparing the *heads* of the candidate buckets — for an incoming
envelope at most the four patterns ``(src, tag)``, ``(src, ANY)``,
``(ANY, tag)``, ``(ANY, ANY)`` can match, and for a wildcard receive
each bucket head is its earliest envelope — taking the minimum sequence
number across heads, which is exactly the earliest match a full scan
would have found.  Buckets are deleted when they empty, so the fallback
never visits stale keys.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass
from operator import attrgetter
from typing import Any, Iterator

from ..des import Simulator
from ..netmodel import ClusterTopology
from .datatypes import ANY_SOURCE, ANY_TAG, payload_nbytes
from .errors import MatchingError
from .request import Request

__all__ = ["MatchingEngine", "Status", "Envelope"]

_by_seq = attrgetter("seq")


@dataclass(frozen=True)
class Status:
    """Receive/probe status (MPI_Status analog)."""

    source: int  # group rank of the sender
    tag: int
    nbytes: int


@dataclass(slots=True)
class Envelope:
    """One in-flight or unexpected message."""

    seq: int
    src: int  # group rank
    dst: int  # group rank
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    available_at: float  # physical arrival time at dst
    rendezvous: bool = False
    send_request: Request | None = None

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or source == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )


@dataclass(slots=True)
class _PostedRecv:
    seq: int
    dst: int
    source: int
    tag: int
    request: Request
    posted_at: float


@dataclass(slots=True)
class _ProbeWait:
    dst: int
    source: int
    tag: int
    request: Request


class MatchingEngine:
    """Matching state for one communicator context."""

    def __init__(
        self,
        sim: Simulator,
        topo: ClusterTopology,
        world_ranks: tuple[int, ...],
        *,
        eager_threshold: int = 65536,
        label: str = "comm",
    ):
        self.sim = sim
        self.topo = topo
        self.world_ranks = world_ranks
        self.eager_threshold = eager_threshold
        self.label = label
        self._seq = itertools.count()
        #: Unmatched envelopes per destination group rank, bucketed by
        #: the concrete ``(src, tag)`` pair; each deque is in send order.
        self._unexpected: dict[int, dict[tuple[int, int], deque[Envelope]]] = {}
        #: Posted-but-unmatched receives per destination, bucketed by the
        #: posted ``(source, tag)`` *pattern* (wildcards included); each
        #: deque is in post order.
        self._posted: dict[int, dict[tuple[int, int], deque[_PostedRecv]]] = {}
        #: Blocking probes waiting for a matching arrival.
        self._probes: dict[int, list[_ProbeWait]] = {}

    # ------------------------------------------------------------------ #
    # Introspection (used by the checkpoint drain and by tests)
    # ------------------------------------------------------------------ #

    def in_flight_to(self, dst: int) -> list[Envelope]:
        """Unmatched envelopes destined to group rank ``dst``, send order."""
        buckets = self._unexpected.get(dst)
        if not buckets:
            return []
        return sorted(
            (env for bucket in buckets.values() for env in bucket), key=_by_seq
        )

    def total_unmatched(self) -> int:
        return sum(
            len(bucket)
            for buckets in self._unexpected.values()
            for bucket in buckets.values()
        )

    def pending_recvs(self, dst: int) -> int:
        buckets = self._posted.get(dst)
        if not buckets:
            return 0
        return sum(len(bucket) for bucket in buckets.values())

    # ------------------------------------------------------------------ #
    # Send path
    # ------------------------------------------------------------------ #

    def send(self, src: int, dst: int, tag: int, payload: Any) -> Request:
        """Inject a message; returns the send-completion request.

        For eager messages the request completes immediately (the library
        buffered the data); for rendezvous messages it completes when the
        matching receive drains the data.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if tag < 0:
            raise MatchingError(f"send tag must be >= 0, got {tag}")
        now = self.sim.now()
        nbytes = payload_nbytes(payload)
        transit = self.topo.p2p_time(
            self.world_ranks[src], self.world_ranks[dst], nbytes
        )
        rendezvous = nbytes > self.eager_threshold
        send_req = Request(
            self.sim,
            "send",
            meta={"src": src, "dst": dst, "tag": tag, "nbytes": nbytes},
        )
        env = Envelope(
            seq=next(self._seq),
            src=src,
            dst=dst,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            sent_at=now,
            available_at=now + transit,
            rendezvous=rendezvous,
            send_request=send_req if rendezvous else None,
        )
        if not rendezvous:
            send_req.complete(None)
        if not self._try_match_posted(env):
            buckets = self._unexpected.get(dst)
            if buckets is None:
                buckets = self._unexpected[dst] = {}
            bucket = buckets.get((src, tag))
            if bucket is None:
                buckets[(src, tag)] = deque((env,))
            else:
                bucket.append(env)
            self._notify_probes(env)
        return send_req

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #

    def post_recv(self, dst: int, source: int, tag: int) -> Request:
        """Post a receive; the request's value is ``(payload, Status)``."""
        self._check_rank(dst)
        if source != ANY_SOURCE:
            self._check_rank(source)
        now = self.sim.now()
        env = self._take_unexpected(dst, source, tag)
        if env is not None:
            req = Request(
                self.sim,
                "recv",
                meta={"src": env.src, "dst": dst, "tag": env.tag},
            )
            self._complete_transfer(env, req, posted_at=now)
            return req
        req = Request(self.sim, "recv", meta={"dst": dst, "source": source, "tag": tag})
        buckets = self._posted.get(dst)
        if buckets is None:
            buckets = self._posted[dst] = {}
        posted = _PostedRecv(
            seq=next(self._seq),
            dst=dst,
            source=source,
            tag=tag,
            request=req,
            posted_at=now,
        )
        bucket = buckets.get((source, tag))
        if bucket is None:
            buckets[(source, tag)] = deque((posted,))
        else:
            bucket.append(posted)
        return req

    def iprobe(self, dst: int, source: int, tag: int) -> Status | None:
        """Non-blocking probe: status of the first *arrived* match, or None."""
        self._check_rank(dst)
        horizon = self.sim.now() + 1e-18
        for env in self._iter_matching(dst, source, tag):
            if env.available_at <= horizon:
                return Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
        return None

    def probe(self, dst: int, source: int, tag: int) -> Request:
        """Blocking probe: request completes with a Status once a matching
        message has arrived; the message is *not* consumed."""
        self._check_rank(dst)
        now = self.sim.now()
        req = Request(self.sim, "probe", meta={"dst": dst, "source": source, "tag": tag})
        env = self._peek_unexpected(dst, source, tag)
        if env is not None:
            status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
            req.complete_at(max(env.available_at, now), status)
            return req
        self._probes.setdefault(dst, []).append(_ProbeWait(dst, source, tag, req))
        return req

    # ------------------------------------------------------------------ #
    # Indexed lookup internals
    # ------------------------------------------------------------------ #

    def _peek_unexpected(
        self, dst: int, source: int, tag: int
    ) -> Envelope | None:
        """Earliest-sent unexpected envelope matching the pattern."""
        buckets = self._unexpected.get(dst)
        if not buckets:
            return None
        if source != ANY_SOURCE and tag != ANY_TAG:
            bucket = buckets.get((source, tag))
            return bucket[0] if bucket else None
        # Wildcard fallback: every bucket head is that bucket's earliest
        # envelope, so the global earliest match is the min-seq head
        # among pattern-compatible buckets.
        best: Envelope | None = None
        for (src, btag), bucket in buckets.items():
            if (source == ANY_SOURCE or src == source) and (
                tag == ANY_TAG or btag == tag
            ):
                head = bucket[0]
                if best is None or head.seq < best.seq:
                    best = head
        return best

    def _take_unexpected(
        self, dst: int, source: int, tag: int
    ) -> Envelope | None:
        """Pop the earliest-sent unexpected envelope matching the pattern."""
        buckets = self._unexpected.get(dst)
        if not buckets:
            return None
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (source, tag)
            bucket = buckets.get(key)
            if not bucket:
                return None
            env = bucket.popleft()
            if not bucket:
                del buckets[key]
            return env
        best_key: tuple[int, int] | None = None
        best_seq = -1
        for (src, btag), bucket in buckets.items():
            if (source == ANY_SOURCE or src == source) and (
                tag == ANY_TAG or btag == tag
            ):
                head_seq = bucket[0].seq
                if best_key is None or head_seq < best_seq:
                    best_key, best_seq = (src, btag), head_seq
        if best_key is None:
            return None
        bucket = buckets[best_key]
        env = bucket.popleft()
        if not bucket:
            del buckets[best_key]
        return env

    def _iter_matching(
        self, dst: int, source: int, tag: int
    ) -> Iterator[Envelope]:
        """Matching unexpected envelopes in global send order."""
        buckets = self._unexpected.get(dst)
        if not buckets:
            return iter(())
        if source != ANY_SOURCE and tag != ANY_TAG:
            bucket = buckets.get((source, tag))
            return iter(bucket) if bucket else iter(())
        candidates = [
            bucket
            for (src, btag), bucket in buckets.items()
            if (source == ANY_SOURCE or src == source)
            and (tag == ANY_TAG or btag == tag)
        ]
        if not candidates:
            return iter(())
        if len(candidates) == 1:
            return iter(candidates[0])
        return heapq.merge(*candidates, key=_by_seq)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _try_match_posted(self, env: Envelope) -> bool:
        buckets = self._posted.get(env.dst)
        if not buckets:
            return False
        # An envelope can only match receives posted under one of these
        # four patterns; each bucket head is its earliest post, so the
        # overall earliest matching post is the min-seq head of the four.
        best_key: tuple[int, int] | None = None
        best: _PostedRecv | None = None
        for key in (
            (env.src, env.tag),
            (env.src, ANY_TAG),
            (ANY_SOURCE, env.tag),
            (ANY_SOURCE, ANY_TAG),
        ):
            bucket = buckets.get(key)
            if bucket:
                head = bucket[0]
                if best is None or head.seq < best.seq:
                    best_key, best = key, head
        if best is None:
            return False
        bucket = buckets[best_key]
        bucket.popleft()
        if not bucket:
            del buckets[best_key]
        self._complete_transfer(env, best.request, posted_at=best.posted_at)
        return True

    def _complete_transfer(self, env: Envelope, recv_req: Request, posted_at: float) -> None:
        now = self.sim.now()
        if env.rendezvous:
            # Handshake: data moves only once both sides are ready.
            start = max(env.sent_at, posted_at, now)
            transit = self.topo.p2p_time(
                self.world_ranks[env.src], self.world_ranks[env.dst], env.nbytes
            )
            done = start + transit
            assert env.send_request is not None
            env.send_request.complete_at(done, None)
        else:
            done = max(env.available_at, now)
        status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
        recv_req.complete_at(done, (env.payload, status))

    def _notify_probes(self, env: Envelope) -> None:
        probes = self._probes.get(env.dst)
        if not probes:
            return
        remaining = []
        for pw in probes:
            if env.matches(pw.source, pw.tag):
                status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
                pw.request.complete_at(env.available_at, status)
            else:
                remaining.append(pw)
        self._probes[env.dst] = remaining

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < len(self.world_ranks):
            raise MatchingError(
                f"group rank {rank} out of range [0,{len(self.world_ranks)}) "
                f"on {self.label}"
            )
