"""Point-to-point message matching engine.

One engine exists per communicator context; it implements MPI matching
semantics:

* A receive matches the **earliest-sent** message with a compatible
  (source, tag) — the non-overtaking rule.  Matching order is send order
  even when a later, smaller message physically arrives first.
* ``ANY_SOURCE`` / ``ANY_TAG`` wildcards.
* Eager sends complete locally; rendezvous sends (above the eager
  threshold) complete only when the receiver has posted.
* ``iprobe`` sees a message only once it has physically arrived
  (``available_at <= now``), while a posted receive may match a message
  still in flight (completing when it lands) — both mirror real MPI.

The engine is purely logical: virtual time enters through envelope
timestamps and through completion times computed with the topology's
link parameters.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from ..des import Simulator
from ..netmodel import ClusterTopology
from .datatypes import ANY_SOURCE, ANY_TAG, payload_nbytes
from .errors import MatchingError
from .request import Request

__all__ = ["MatchingEngine", "Status", "Envelope"]


@dataclass(frozen=True)
class Status:
    """Receive/probe status (MPI_Status analog)."""

    source: int  # group rank of the sender
    tag: int
    nbytes: int


@dataclass
class Envelope:
    """One in-flight or unexpected message."""

    seq: int
    src: int  # group rank
    dst: int  # group rank
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    available_at: float  # physical arrival time at dst
    rendezvous: bool = False
    send_request: Request | None = None

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or source == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )


@dataclass
class _PostedRecv:
    seq: int
    dst: int
    source: int
    tag: int
    request: Request
    posted_at: float


@dataclass
class _ProbeWait:
    dst: int
    source: int
    tag: int
    request: Request


class MatchingEngine:
    """Matching state for one communicator context."""

    def __init__(
        self,
        sim: Simulator,
        topo: ClusterTopology,
        world_ranks: tuple[int, ...],
        *,
        eager_threshold: int = 65536,
        label: str = "comm",
    ):
        self.sim = sim
        self.topo = topo
        self.world_ranks = world_ranks
        self.eager_threshold = eager_threshold
        self.label = label
        self._seq = itertools.count()
        #: Unmatched envelopes per destination group rank, in send order.
        self._unexpected: dict[int, list[Envelope]] = {}
        #: Posted-but-unmatched receives per destination, in post order.
        self._posted: dict[int, list[_PostedRecv]] = {}
        #: Blocking probes waiting for a matching arrival.
        self._probes: dict[int, list[_ProbeWait]] = {}

    # ------------------------------------------------------------------ #
    # Introspection (used by the checkpoint drain and by tests)
    # ------------------------------------------------------------------ #

    def in_flight_to(self, dst: int) -> list[Envelope]:
        """Unmatched envelopes destined to group rank ``dst``."""
        return list(self._unexpected.get(dst, ()))

    def total_unmatched(self) -> int:
        return sum(len(v) for v in self._unexpected.values())

    def pending_recvs(self, dst: int) -> int:
        return len(self._posted.get(dst, ()))

    # ------------------------------------------------------------------ #
    # Send path
    # ------------------------------------------------------------------ #

    def send(self, src: int, dst: int, tag: int, payload: Any) -> Request:
        """Inject a message; returns the send-completion request.

        For eager messages the request completes immediately (the library
        buffered the data); for rendezvous messages it completes when the
        matching receive drains the data.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if tag < 0:
            raise MatchingError(f"send tag must be >= 0, got {tag}")
        now = self.sim.now()
        nbytes = payload_nbytes(payload)
        transit = self.topo.p2p_time(
            self.world_ranks[src], self.world_ranks[dst], nbytes
        )
        rendezvous = nbytes > self.eager_threshold
        send_req = Request(
            self.sim,
            "send",
            meta={"src": src, "dst": dst, "tag": tag, "nbytes": nbytes},
        )
        env = Envelope(
            seq=next(self._seq),
            src=src,
            dst=dst,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            sent_at=now,
            available_at=now + transit,
            rendezvous=rendezvous,
            send_request=send_req if rendezvous else None,
        )
        if not rendezvous:
            send_req.complete(None)
        matched = self._try_match_posted(env)
        if not matched:
            self._unexpected.setdefault(dst, []).append(env)
            self._notify_probes(env)
        return send_req

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #

    def post_recv(self, dst: int, source: int, tag: int) -> Request:
        """Post a receive; the request's value is ``(payload, Status)``."""
        self._check_rank(dst)
        if source != ANY_SOURCE:
            self._check_rank(source)
        now = self.sim.now()
        queue = self._unexpected.get(dst, [])
        for i, env in enumerate(queue):
            if env.matches(source, tag):
                queue.pop(i)
                req = Request(
                    self.sim,
                    "recv",
                    meta={"src": env.src, "dst": dst, "tag": env.tag},
                )
                self._complete_transfer(env, req, posted_at=now)
                return req
        req = Request(self.sim, "recv", meta={"dst": dst, "source": source, "tag": tag})
        self._posted.setdefault(dst, []).append(
            _PostedRecv(
                seq=next(self._seq),
                dst=dst,
                source=source,
                tag=tag,
                request=req,
                posted_at=now,
            )
        )
        return req

    def iprobe(self, dst: int, source: int, tag: int) -> Status | None:
        """Non-blocking probe: status of the first *arrived* match, or None."""
        self._check_rank(dst)
        now = self.sim.now()
        for env in self._unexpected.get(dst, ()):
            if env.matches(source, tag) and env.available_at <= now + 1e-18:
                return Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
        return None

    def probe(self, dst: int, source: int, tag: int) -> Request:
        """Blocking probe: request completes with a Status once a matching
        message has arrived; the message is *not* consumed."""
        self._check_rank(dst)
        now = self.sim.now()
        req = Request(self.sim, "probe", meta={"dst": dst, "source": source, "tag": tag})
        for env in self._unexpected.get(dst, ()):
            if env.matches(source, tag):
                status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
                req.complete_at(max(env.available_at, now), status)
                return req
        self._probes.setdefault(dst, []).append(_ProbeWait(dst, source, tag, req))
        return req

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _try_match_posted(self, env: Envelope) -> bool:
        posted = self._posted.get(env.dst)
        if not posted:
            return False
        for i, pr in enumerate(posted):
            if env.matches(pr.source, pr.tag):
                posted.pop(i)
                self._complete_transfer(env, pr.request, posted_at=pr.posted_at)
                return True
        return False

    def _complete_transfer(self, env: Envelope, recv_req: Request, posted_at: float) -> None:
        now = self.sim.now()
        if env.rendezvous:
            # Handshake: data moves only once both sides are ready.
            start = max(env.sent_at, posted_at, now)
            transit = self.topo.p2p_time(
                self.world_ranks[env.src], self.world_ranks[env.dst], env.nbytes
            )
            done = start + transit
            assert env.send_request is not None
            env.send_request.complete_at(done, None)
        else:
            done = max(env.available_at, now)
        status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
        recv_req.complete_at(done, (env.payload, status))

    def _notify_probes(self, env: Envelope) -> None:
        probes = self._probes.get(env.dst)
        if not probes:
            return
        remaining = []
        for pw in probes:
            if env.matches(pw.source, pw.tag):
                status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
                pw.request.complete_at(env.available_at, status)
            else:
                remaining.append(pw)
        self._probes[env.dst] = remaining

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < len(self.world_ranks):
            raise MatchingError(
                f"group rank {rank} out of range [0,{len(self.world_ranks)}) "
                f"on {self.label}"
            )
