"""Point-to-point message matching engine.

One engine exists per communicator context; it implements MPI matching
semantics:

* A receive matches the **earliest-sent** message with a compatible
  (source, tag) — the non-overtaking rule.  Matching order is send order
  even when a later, smaller message physically arrives first.
* ``ANY_SOURCE`` / ``ANY_TAG`` wildcards.
* Eager sends complete locally; rendezvous sends (above the eager
  threshold) complete only when the receiver has posted.
* ``iprobe`` sees a message only once it has physically arrived
  (``available_at <= now``), while a posted receive may match a message
  still in flight (completing when it lands) — both mirror real MPI.

The engine is purely logical: virtual time enters through envelope
timestamps and through completion times computed with the topology's
link parameters.

Matching is **indexed**, not scanned: unexpected envelopes and posted
receives are bucketed into per-``(source, tag)`` deques, so the common
concrete-pattern receive is an O(1) dict lookup + ``popleft`` instead of
a linear walk over every in-flight message.  For an incoming envelope at
most the four patterns ``(src, tag)``, ``(src, ANY)``, ``(ANY, tag)``,
``(ANY, ANY)`` can match, so delivery against posted receives is O(4).

Wildcard *receives* get their own index (:class:`_WildIndex`): the first
wildcard operation on a destination builds seq-ordered views (global
order, per-source, per-tag) over that destination's unexpected
envelopes, maintained incrementally afterwards.  An ``ANY_SOURCE`` /
``ANY_TAG`` flood then costs O(1) amortized per receive — the head of
the right view *is* the earliest match — instead of a min-seq scan over
every ``(src, tag)`` bucket head per operation.  Envelopes taken through
a concrete pattern are tombstoned (``Envelope.consumed``) and drained
from the views lazily, with periodic compaction when stale entries
dominate; destinations that never see a wildcard never pay for the
index at all.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from operator import attrgetter
from typing import Any, Iterator

from ..des import Simulator
from ..netmodel import ClusterTopology
from .datatypes import ANY_SOURCE, ANY_TAG, payload_nbytes
from .errors import MatchingError
from .request import Request

__all__ = ["MatchingEngine", "Status", "Envelope"]

_by_seq = attrgetter("seq")


@dataclass(frozen=True)
class Status:
    """Receive/probe status (MPI_Status analog)."""

    source: int  # group rank of the sender
    tag: int
    nbytes: int


@dataclass(slots=True)
class Envelope:
    """One in-flight or unexpected message."""

    seq: int
    src: int  # group rank
    dst: int  # group rank
    tag: int
    payload: Any
    nbytes: int
    sent_at: float
    available_at: float  # physical arrival time at dst
    rendezvous: bool = False
    send_request: Request | None = None
    #: Tombstone: set when the envelope leaves its ``(src, tag)`` bucket;
    #: stale references in wildcard-index views skip it lazily.
    consumed: bool = False

    def matches(self, source: int, tag: int) -> bool:
        return (source == ANY_SOURCE or source == self.src) and (
            tag == ANY_TAG or tag == self.tag
        )


@dataclass(slots=True)
class _PostedRecv:
    seq: int
    dst: int
    source: int
    tag: int
    request: Request
    posted_at: float


class _WildIndex:
    """Seq-ordered views over one destination's unexpected envelopes.

    Built lazily on the first wildcard operation for a destination and
    maintained incrementally from then on:

    * ``order`` — every envelope in send order (serves ``(ANY, ANY)``);
    * ``by_src[s]`` — envelopes from source ``s`` (serves ``(s, ANY)``);
    * ``by_tag[t]`` — envelopes with tag ``t`` (serves ``(ANY, t)``).

    Each view's first non-consumed entry is the earliest match for its
    pattern, so wildcard peek/take are O(1) amortized.  Removals through
    *concrete* patterns only tombstone (``Envelope.consumed``); views
    drop tombstones lazily at their heads and compact wholesale when
    stale entries outnumber live ones 4:1.
    """

    __slots__ = ("order", "by_src", "by_tag", "live")

    #: Compaction floor: below this many entries the lazy head-drain is
    #: already cheap and rebuild bookkeeping would dominate.
    _COMPACT_MIN = 64

    def __init__(self, buckets: dict[tuple[int, int], deque[Envelope]]):
        envs = sorted(
            (env for bucket in buckets.values() for env in bucket), key=_by_seq
        )
        self.order: deque[Envelope] = deque(envs)
        self.by_src: dict[int, deque[Envelope]] = {}
        self.by_tag: dict[int, deque[Envelope]] = {}
        self.live = len(envs)
        for env in envs:
            self._append_views(env)

    def _append_views(self, env: Envelope) -> None:
        by_src = self.by_src.get(env.src)
        if by_src is None:
            self.by_src[env.src] = deque((env,))
        else:
            by_src.append(env)
        by_tag = self.by_tag.get(env.tag)
        if by_tag is None:
            self.by_tag[env.tag] = deque((env,))
        else:
            by_tag.append(env)

    def add(self, env: Envelope) -> None:
        """A new unexpected envelope arrived (already appended to its bucket)."""
        self.order.append(env)
        self._append_views(env)
        self.live += 1

    def discard(self, env: Envelope) -> None:
        """``env`` left its bucket through a concrete-pattern take."""
        env.consumed = True
        self.live -= 1
        if (
            len(self.order) > self._COMPACT_MIN
            and len(self.order) > 4 * (self.live + 1)
        ):
            self._compact()

    def _compact(self) -> None:
        envs = [env for env in self.order if not env.consumed]
        self.order = deque(envs)
        self.by_src = {}
        self.by_tag = {}
        for env in envs:
            self._append_views(env)

    def _view(self, source: int, tag: int) -> deque[Envelope] | None:
        if source == ANY_SOURCE:
            if tag == ANY_TAG:
                return self.order
            return self.by_tag.get(tag)
        return self.by_src.get(source)

    def head(self, source: int, tag: int) -> Envelope | None:
        """Earliest live envelope matching a wildcard pattern, or None."""
        view = self._view(source, tag)
        if view is None:
            return None
        while view:
            env = view[0]
            if env.consumed:
                view.popleft()
                continue
            return env
        return None

    def pop(self, source: int, tag: int) -> Envelope | None:
        """Take the earliest live envelope matching a wildcard pattern.

        Tombstones the envelope (the caller still removes it from its
        concrete bucket) and pops it from the view it was found in; the
        other views drop their stale references lazily.
        """
        view = self._view(source, tag)
        if view is None:
            return None
        while view:
            env = view.popleft()
            if env.consumed:
                continue
            env.consumed = True
            self.live -= 1
            return env
        return None

    def iter_live(self, source: int, tag: int) -> Iterator[Envelope]:
        """Live matching envelopes in global send order."""
        view = self._view(source, tag)
        if view is None:
            return
        for env in view:
            if not env.consumed:
                yield env


@dataclass(slots=True)
class _ProbeWait:
    dst: int
    source: int
    tag: int
    request: Request


class MatchingEngine:
    """Matching state for one communicator context."""

    def __init__(
        self,
        sim: Simulator,
        topo: ClusterTopology,
        world_ranks: tuple[int, ...],
        *,
        eager_threshold: int = 65536,
        label: str = "comm",
    ):
        self.sim = sim
        self.topo = topo
        self.world_ranks = world_ranks
        self.eager_threshold = eager_threshold
        self.label = label
        self._seq = itertools.count()
        #: Unmatched envelopes per destination group rank, bucketed by
        #: the concrete ``(src, tag)`` pair; each deque is in send order.
        self._unexpected: dict[int, dict[tuple[int, int], deque[Envelope]]] = {}
        #: Posted-but-unmatched receives per destination, bucketed by the
        #: posted ``(source, tag)`` *pattern* (wildcards included); each
        #: deque is in post order.
        self._posted: dict[int, dict[tuple[int, int], deque[_PostedRecv]]] = {}
        #: Blocking probes waiting for a matching arrival.
        self._probes: dict[int, list[_ProbeWait]] = {}
        #: Lazy per-destination wildcard views over ``_unexpected``;
        #: created on the first wildcard operation for a destination.
        self._wild: dict[int, _WildIndex] = {}

    # ------------------------------------------------------------------ #
    # Introspection (used by the checkpoint drain and by tests)
    # ------------------------------------------------------------------ #

    def in_flight_to(self, dst: int) -> list[Envelope]:
        """Unmatched envelopes destined to group rank ``dst``, send order."""
        buckets = self._unexpected.get(dst)
        if not buckets:
            return []
        return sorted(
            (env for bucket in buckets.values() for env in bucket), key=_by_seq
        )

    def total_unmatched(self) -> int:
        return sum(
            len(bucket)
            for buckets in self._unexpected.values()
            for bucket in buckets.values()
        )

    def pending_recvs(self, dst: int) -> int:
        buckets = self._posted.get(dst)
        if not buckets:
            return 0
        return sum(len(bucket) for bucket in buckets.values())

    # ------------------------------------------------------------------ #
    # Send path
    # ------------------------------------------------------------------ #

    def send(self, src: int, dst: int, tag: int, payload: Any) -> Request:
        """Inject a message; returns the send-completion request.

        For eager messages the request completes immediately (the library
        buffered the data); for rendezvous messages it completes when the
        matching receive drains the data.
        """
        self._check_rank(src)
        self._check_rank(dst)
        if tag < 0:
            raise MatchingError(f"send tag must be >= 0, got {tag}")
        now = self.sim.now()
        nbytes = payload_nbytes(payload)
        transit = self.topo.p2p_time(
            self.world_ranks[src], self.world_ranks[dst], nbytes
        )
        rendezvous = nbytes > self.eager_threshold
        send_req = Request(
            self.sim,
            "send",
            meta={"src": src, "dst": dst, "tag": tag, "nbytes": nbytes},
        )
        env = Envelope(
            seq=next(self._seq),
            src=src,
            dst=dst,
            tag=tag,
            payload=payload,
            nbytes=nbytes,
            sent_at=now,
            available_at=now + transit,
            rendezvous=rendezvous,
            send_request=send_req if rendezvous else None,
        )
        if not rendezvous:
            send_req.complete(None)
        if not self._try_match_posted(env):
            buckets = self._unexpected.get(dst)
            if buckets is None:
                buckets = self._unexpected[dst] = {}
            bucket = buckets.get((src, tag))
            if bucket is None:
                buckets[(src, tag)] = deque((env,))
            else:
                bucket.append(env)
            wild = self._wild.get(dst)
            if wild is not None:
                wild.add(env)
            self._notify_probes(env)
        return send_req

    # ------------------------------------------------------------------ #
    # Receive path
    # ------------------------------------------------------------------ #

    def post_recv(self, dst: int, source: int, tag: int) -> Request:
        """Post a receive; the request's value is ``(payload, Status)``."""
        self._check_rank(dst)
        if source != ANY_SOURCE:
            self._check_rank(source)
        now = self.sim.now()
        env = self._take_unexpected(dst, source, tag)
        if env is not None:
            req = Request(
                self.sim,
                "recv",
                meta={"src": env.src, "dst": dst, "tag": env.tag},
            )
            self._complete_transfer(env, req, posted_at=now)
            return req
        req = Request(self.sim, "recv", meta={"dst": dst, "source": source, "tag": tag})
        buckets = self._posted.get(dst)
        if buckets is None:
            buckets = self._posted[dst] = {}
        posted = _PostedRecv(
            seq=next(self._seq),
            dst=dst,
            source=source,
            tag=tag,
            request=req,
            posted_at=now,
        )
        bucket = buckets.get((source, tag))
        if bucket is None:
            buckets[(source, tag)] = deque((posted,))
        else:
            bucket.append(posted)
        return req

    def iprobe(self, dst: int, source: int, tag: int) -> Status | None:
        """Non-blocking probe: status of the first *arrived* match, or None."""
        self._check_rank(dst)
        horizon = self.sim.now() + 1e-18
        for env in self._iter_matching(dst, source, tag):
            if env.available_at <= horizon:
                return Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
        return None

    def probe(self, dst: int, source: int, tag: int) -> Request:
        """Blocking probe: request completes with a Status once a matching
        message has arrived; the message is *not* consumed."""
        self._check_rank(dst)
        now = self.sim.now()
        req = Request(self.sim, "probe", meta={"dst": dst, "source": source, "tag": tag})
        env = self._peek_unexpected(dst, source, tag)
        if env is not None:
            status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
            req.complete_at(max(env.available_at, now), status)
            return req
        self._probes.setdefault(dst, []).append(_ProbeWait(dst, source, tag, req))
        return req

    # ------------------------------------------------------------------ #
    # Indexed lookup internals
    # ------------------------------------------------------------------ #

    def _wild_index(
        self, dst: int, buckets: dict[tuple[int, int], deque[Envelope]]
    ) -> _WildIndex:
        wild = self._wild.get(dst)
        if wild is None:
            wild = self._wild[dst] = _WildIndex(buckets)
        return wild

    def _peek_unexpected(
        self, dst: int, source: int, tag: int
    ) -> Envelope | None:
        """Earliest-sent unexpected envelope matching the pattern."""
        buckets = self._unexpected.get(dst)
        if not buckets:
            return None
        if source != ANY_SOURCE and tag != ANY_TAG:
            bucket = buckets.get((source, tag))
            return bucket[0] if bucket else None
        # Wildcard: the head of the matching index view is the earliest
        # match — O(1) amortized instead of a min-seq scan over every
        # bucket head.
        return self._wild_index(dst, buckets).head(source, tag)

    def _take_unexpected(
        self, dst: int, source: int, tag: int
    ) -> Envelope | None:
        """Pop the earliest-sent unexpected envelope matching the pattern."""
        buckets = self._unexpected.get(dst)
        if not buckets:
            return None
        if source != ANY_SOURCE and tag != ANY_TAG:
            key = (source, tag)
            bucket = buckets.get(key)
            if not bucket:
                return None
            env = bucket.popleft()
            if not bucket:
                del buckets[key]
            wild = self._wild.get(dst)
            if wild is not None:
                wild.discard(env)
            return env
        wild = self._wild_index(dst, buckets)
        env = wild.pop(source, tag)
        if env is None:
            return None
        # The envelope's own bucket holds only live entries of the same
        # (src, tag) in seq order, and env is the earliest live match of
        # a pattern that covers the whole bucket — so it is the head.
        key = (env.src, env.tag)
        bucket = buckets[key]
        if bucket[0] is env:
            bucket.popleft()
        else:  # pragma: no cover - defensive, head property guarantees above
            bucket.remove(env)
        if not bucket:
            del buckets[key]
        return env

    def _iter_matching(
        self, dst: int, source: int, tag: int
    ) -> Iterator[Envelope]:
        """Matching unexpected envelopes in global send order."""
        buckets = self._unexpected.get(dst)
        if not buckets:
            return iter(())
        if source != ANY_SOURCE and tag != ANY_TAG:
            bucket = buckets.get((source, tag))
            return iter(bucket) if bucket else iter(())
        return self._wild_index(dst, buckets).iter_live(source, tag)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _try_match_posted(self, env: Envelope) -> bool:
        buckets = self._posted.get(env.dst)
        if not buckets:
            return False
        # An envelope can only match receives posted under one of these
        # four patterns; each bucket head is its earliest post, so the
        # overall earliest matching post is the min-seq head of the four.
        best_key: tuple[int, int] | None = None
        best: _PostedRecv | None = None
        for key in (
            (env.src, env.tag),
            (env.src, ANY_TAG),
            (ANY_SOURCE, env.tag),
            (ANY_SOURCE, ANY_TAG),
        ):
            bucket = buckets.get(key)
            if bucket:
                head = bucket[0]
                if best is None or head.seq < best.seq:
                    best_key, best = key, head
        if best is None:
            return False
        bucket = buckets[best_key]
        bucket.popleft()
        if not bucket:
            del buckets[best_key]
        self._complete_transfer(env, best.request, posted_at=best.posted_at)
        return True

    def _complete_transfer(self, env: Envelope, recv_req: Request, posted_at: float) -> None:
        now = self.sim.now()
        if env.rendezvous:
            # Handshake: data moves only once both sides are ready.
            start = max(env.sent_at, posted_at, now)
            transit = self.topo.p2p_time(
                self.world_ranks[env.src], self.world_ranks[env.dst], env.nbytes
            )
            done = start + transit
            assert env.send_request is not None
            env.send_request.complete_at(done, None)
        else:
            done = max(env.available_at, now)
        status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
        recv_req.complete_at(done, (env.payload, status))

    def _notify_probes(self, env: Envelope) -> None:
        probes = self._probes.get(env.dst)
        if not probes:
            return
        remaining = []
        for pw in probes:
            if env.matches(pw.source, pw.tag):
                status = Status(source=env.src, tag=env.tag, nbytes=env.nbytes)
                pw.request.complete_at(env.available_at, status)
            else:
                remaining.append(pw)
        self._probes[env.dst] = remaining

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < len(self.world_ranks):
            raise MatchingError(
                f"group rank {rank} out of range [0,{len(self.world_ranks)}) "
                f"on {self.label}"
            )
