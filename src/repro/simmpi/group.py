"""MPI groups: ordered sets of world ranks.

A group is immutable.  Its *global group id* (ggid) is the stable hash of
its member set — the identity the Collective Clock algorithm keys its
sequence numbers on.  Two groups containing the same processes compare
``SIMILAR`` and share a ggid even if their rank orderings differ
(Section 4.1 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..util.hashing import stable_hash_ranks
from .errors import CommunicatorError

__all__ = ["Group", "IDENT", "SIMILAR", "UNEQUAL"]

#: Group comparison results (mirroring MPI_IDENT / MPI_SIMILAR / MPI_UNEQUAL).
IDENT = "ident"
SIMILAR = "similar"
UNEQUAL = "unequal"


class Group:
    """An immutable, ordered collection of world ranks."""

    __slots__ = ("_ranks", "_index", "_ggid")

    def __init__(self, world_ranks: Sequence[int]):
        ranks = tuple(int(r) for r in world_ranks)
        if not ranks:
            raise CommunicatorError("a group must contain at least one rank")
        if len(set(ranks)) != len(ranks):
            raise CommunicatorError(f"duplicate world ranks in group: {ranks}")
        if any(r < 0 for r in ranks):
            raise CommunicatorError(f"negative world rank in group: {ranks}")
        self._ranks = ranks
        self._index = {r: i for i, r in enumerate(ranks)}
        self._ggid = stable_hash_ranks(ranks)

    # -- identity ------------------------------------------------------ #

    @property
    def world_ranks(self) -> tuple[int, ...]:
        """Members as world ranks, in group-rank order."""
        return self._ranks

    @property
    def size(self) -> int:
        return len(self._ranks)

    @property
    def ggid(self) -> int:
        """The global group id: stable hash of the member *set*."""
        return self._ggid

    def __len__(self) -> int:
        return len(self._ranks)

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._ranks == other._ranks

    def __hash__(self) -> int:
        return hash(self._ranks)

    def __repr__(self) -> str:  # pragma: no cover
        if len(self._ranks) <= 8:
            return f"<Group {list(self._ranks)}>"
        return f"<Group size={len(self._ranks)} ggid={self._ggid:#x}>"

    # -- rank translation ---------------------------------------------- #

    def rank_of(self, world_rank: int) -> int:
        """Group rank of the process with the given world rank."""
        try:
            return self._index[world_rank]
        except KeyError:
            raise CommunicatorError(
                f"world rank {world_rank} is not a member of {self!r}"
            ) from None

    def world_rank(self, group_rank: int) -> int:
        """World rank of the process at the given group rank."""
        if not 0 <= group_rank < len(self._ranks):
            raise CommunicatorError(
                f"group rank {group_rank} out of range [0,{len(self._ranks)})"
            )
        return self._ranks[group_rank]

    def translate_ranks(self, ranks: Iterable[int], other: "Group") -> list[int | None]:
        """MPI_Group_translate_ranks: map this group's ranks into ``other``.

        Non-members map to ``None`` (the analog of MPI_UNDEFINED).  The CC
        algorithm uses this to find the peer processes of a group locally,
        without communication (Section 4.2.4).
        """
        out: list[int | None] = []
        for r in ranks:
            w = self.world_rank(r)
            out.append(other._index.get(w))
        return out

    def compare(self, other: "Group") -> str:
        """MPI_Group_compare: IDENT, SIMILAR (same set), or UNEQUAL."""
        if self._ranks == other._ranks:
            return IDENT
        if set(self._ranks) == set(other._ranks):
            return SIMILAR
        return UNEQUAL

    # -- set operations -------------------------------------------------#

    def include(self, group_ranks: Sequence[int]) -> "Group":
        """Subgroup containing the listed group ranks, in that order."""
        return Group([self.world_rank(r) for r in group_ranks])

    def exclude(self, group_ranks: Sequence[int]) -> "Group":
        """Subgroup without the listed group ranks."""
        drop = set(group_ranks)
        for r in drop:
            self.world_rank(r)  # validates
        kept = [w for i, w in enumerate(self._ranks) if i not in drop]
        if not kept:
            raise CommunicatorError("exclude would produce an empty group")
        return Group(kept)

    def union(self, other: "Group") -> "Group":
        seen = list(self._ranks)
        for w in other._ranks:
            if w not in self._index:
                seen.append(w)
        return Group(seen)

    def intersection(self, other: "Group") -> "Group":
        kept = [w for w in self._ranks if w in other]
        if not kept:
            raise CommunicatorError("empty group intersection")
        return Group(kept)

    def difference(self, other: "Group") -> "Group":
        kept = [w for w in self._ranks if w not in other]
        if not kept:
            raise CommunicatorError("empty group difference")
        return Group(kept)
