"""Communicators: the user-facing simulated MPI API.

A :class:`Communicator` object is shared by all member processes (the
simulated analog of every rank holding a handle to the same context).
The calling rank is inferred from the current simulated process, so
application code reads like mpi4py::

    def app(comm):
        me = comm.rank()
        right = (me + 1) % comm.size
        comm.send(x, dest=right, tag=7)
        y = comm.recv(source=ANY_SOURCE, tag=7)
        total = comm.allreduce(y, op=SUM)

Both blocking and non-blocking (``i``-prefixed) variants are provided
for every collective the paper's evaluation touches, plus the standard
group/communicator management calls the CC algorithm depends on
(``split``, ``dup``, ``create_group``, ``translate_ranks`` via
:class:`~repro.simmpi.group.Group`).
"""

from __future__ import annotations

from typing import Any, Sequence, TYPE_CHECKING

from .datatypes import ANY_SOURCE, ANY_TAG, SUM, ReduceOp
from .errors import CommunicatorError
from .group import Group
from .request import Request

if TYPE_CHECKING:  # pragma: no cover
    from .matching import Status
    from .world import World

__all__ = ["Communicator"]


class Communicator:
    """A communication context over an ordered group of processes."""

    def __init__(self, world: "World", group: Group, context_id: int, label: str):
        self.world = world
        self.group = group
        self.context_id = context_id
        self.label = label
        self._freed = False

    # ------------------------------------------------------------------ #
    # Identity
    # ------------------------------------------------------------------ #

    @property
    def size(self) -> int:
        return self.group.size

    @property
    def ggid(self) -> int:
        """Global group id of the underlying group (paper Section 4.1)."""
        return self.group.ggid

    def rank(self) -> int:
        """Group rank of the calling process."""
        wr = self.world.current_world_rank()
        try:
            return self.group.rank_of(wr)
        except CommunicatorError:
            raise CommunicatorError(
                f"world rank {wr} called {self.label!r} but is not a member"
            ) from None

    def compare(self, other: "Communicator") -> str:
        """MPI_Comm_compare on the underlying groups (IDENT/SIMILAR/UNEQUAL)."""
        return self.group.compare(other.group)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Communicator {self.label} size={self.size} ctx={self.context_id}>"

    def _check_live(self) -> None:
        if self._freed:
            raise CommunicatorError(f"communicator {self.label!r} has been freed")

    # ------------------------------------------------------------------ #
    # Point-to-point
    # ------------------------------------------------------------------ #

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking send.  Eager below the threshold, rendezvous above."""
        self._check_live()
        me = self.rank()
        self.world.count_p2p(self.group.world_rank(me))
        self.world.sim.sleep(self.world.tuning.send_overhead)
        req = self.world.engine_for(self).send(me, dest, tag, obj)
        if not req.done:
            req.wait()  # rendezvous send blocks for the receiver

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; completion per eager/rendezvous rules."""
        self._check_live()
        me = self.rank()
        self.world.count_p2p(self.group.world_rank(me))
        return self.world.engine_for(self).send(me, dest, tag, obj)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive; returns the payload."""
        result = self._recv_common(source, tag).wait()
        return result[0]

    def recv_status(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> tuple[Any, "Status"]:
        """Blocking receive returning ``(payload, Status)``."""
        return self._recv_common(source, tag).wait()

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; the request value is ``(payload, Status)``."""
        return self._recv_common(source, tag)

    def _recv_common(self, source: int, tag: int) -> Request:
        self._check_live()
        me = self.rank()
        self.world.count_p2p(self.group.world_rank(me))
        return self.world.engine_for(self).post_recv(me, source, tag)

    def sendrecv(
        self,
        obj: Any,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Any:
        """Combined send+receive (deadlock-free halo-exchange building block)."""
        rreq = self.irecv(source=source, tag=recvtag)
        self.send(obj, dest=dest, tag=sendtag)
        payload, _status = rreq.wait()
        return payload

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "Status":
        """Blocking probe: waits for a matching message without consuming it."""
        self._check_live()
        me = self.rank()
        return self.world.engine_for(self).probe(me, source, tag).wait()

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> "Status | None":
        """Non-blocking probe of arrived messages."""
        self._check_live()
        me = self.rank()
        return self.world.engine_for(self).iprobe(me, source, tag)

    # ------------------------------------------------------------------ #
    # Blocking collectives
    # ------------------------------------------------------------------ #

    def barrier(self) -> None:
        self._collective("barrier", None)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        return self._collective("bcast", obj, root=root)

    def reduce(self, obj: Any, op: "ReduceOp | str" = SUM, root: int = 0) -> Any:
        return self._collective("reduce", obj, root=root, op=op)

    def allreduce(self, obj: Any, op: "ReduceOp | str" = SUM) -> Any:
        return self._collective("allreduce", obj, op=op)

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        return self._collective("alltoall", objs)

    def allgather(self, obj: Any) -> list[Any]:
        return self._collective("allgather", obj)

    def gather(self, obj: Any, root: int = 0) -> "list[Any] | None":
        return self._collective("gather", obj, root=root)

    def scatter(self, objs: "Sequence[Any] | None", root: int = 0) -> Any:
        if self.rank() != root:
            objs = [None] * self.size  # non-root contribution is ignored
        return self._collective("scatter", objs, root=root)

    def scan(self, obj: Any, op: "ReduceOp | str" = SUM) -> Any:
        return self._collective("scan", obj, op=op)

    def reduce_scatter(self, objs: Sequence[Any], op: "ReduceOp | str" = SUM) -> Any:
        return self._collective("reduce_scatter", objs, op=op)

    # ------------------------------------------------------------------ #
    # Non-blocking collectives (the paper's Section 4.3 subject matter)
    # ------------------------------------------------------------------ #

    def ibarrier(self) -> Request:
        return self._icollective("barrier", None)

    def ibcast(self, obj: Any, root: int = 0) -> Request:
        return self._icollective("bcast", obj, root=root)

    def ireduce(self, obj: Any, op: "ReduceOp | str" = SUM, root: int = 0) -> Request:
        return self._icollective("reduce", obj, root=root, op=op)

    def iallreduce(self, obj: Any, op: "ReduceOp | str" = SUM) -> Request:
        return self._icollective("allreduce", obj, op=op)

    def ialltoall(self, objs: Sequence[Any]) -> Request:
        return self._icollective("alltoall", objs)

    def iallgather(self, obj: Any) -> Request:
        return self._icollective("allgather", obj)

    def igather(self, obj: Any, root: int = 0) -> Request:
        return self._icollective("gather", obj, root=root)

    def iscatter(self, objs: "Sequence[Any] | None", root: int = 0) -> Request:
        if self.rank() != root:
            objs = [None] * self.size
        return self._icollective("scatter", objs, root=root)

    def iscan(self, obj: Any, op: "ReduceOp | str" = SUM) -> Request:
        return self._icollective("scan", obj, op=op)

    def ireduce_scatter(self, objs: Sequence[Any], op: "ReduceOp | str" = SUM) -> Request:
        return self._icollective("reduce_scatter", objs, op=op)

    # ------------------------------------------------------------------ #
    # Communicator management
    # ------------------------------------------------------------------ #

    def dup(self, label: str | None = None) -> "Communicator":
        """MPI_Comm_dup: a new context over the identical group."""
        return self.world.comm_dup(self, label=label)

    def split(self, color: "int | None", key: int | None = None) -> "Communicator | None":
        """MPI_Comm_split: partition members by ``color``, order by ``key``.

        ``color=None`` (the MPI_UNDEFINED analog) returns ``None`` for
        this rank.
        """
        return self.world.comm_split(self, color, key)

    def create_group(self, group: Group, label: str | None = None) -> "Communicator":
        """MPI_Comm_create_group: collective over ``group`` members only."""
        return self.world.comm_create_group(self, group, label=label)

    def free(self) -> None:
        """Release the communicator handle (bookkeeping only)."""
        self._freed = True

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _collective(
        self,
        kind: str,
        contribution: Any,
        *,
        root: int = 0,
        op: "ReduceOp | str | None" = None,
    ) -> Any:
        self._check_live()
        me = self.rank()
        wr = self.group.world_rank(me)
        self.world.count_coll(wr)
        site, key = self.world.site_for_next_call(self, me)
        self.world.set_in_collective(wr, True)
        try:
            req = site.arrive(me, kind, contribution, root=root, op=op, blocking=True)
            self.world.gc_site_if_done(key, site)
            value = req.wait()
        finally:
            self.world.set_in_collective(wr, False)
        return value

    def _icollective(
        self,
        kind: str,
        contribution: Any,
        *,
        root: int = 0,
        op: "ReduceOp | str | None" = None,
    ) -> Request:
        self._check_live()
        me = self.rank()
        wr = self.group.world_rank(me)
        self.world.count_coll(wr)
        site, key = self.world.site_for_next_call(self, me)
        self.world.set_in_collective(wr, True)
        try:
            # The initiation itself costs a library call.
            self.world.sim.sleep(self.world.tuning.send_overhead)
            req = site.arrive(me, kind, contribution, root=root, op=op, blocking=False)
        finally:
            self.world.set_in_collective(wr, False)
        self.world.gc_site_if_done(key, site)
        self.world.track_nonblocking(wr, req)
        return req
