"""Per-collective cost engines with *causal* incremental resolution.

Each collective operation instance gets an :class:`ExitSolver`.  Group
members report their arrival times one by one (in virtual time order);
the solver returns exit times for every member whose exit has become
determined.  The crucial property is **causality**: a member's exit may
depend only on the arrivals of the members it actually waits for.

* A binomial-tree ``MPI_Bcast`` is *not* synchronizing: the root and the
  early ranks exit as soon as their part of the tree is done, even if a
  leaf has not arrived yet.  (This is why MANA's 2PC inserted barrier is
  so expensive in front of a Bcast — it converts this loose structure
  into a full synchronization.)
* ``MPI_Alltoall`` / ``MPI_Allreduce`` / ``MPI_Barrier`` / ``MPI_Allgather``
  are synchronizing: nobody exits before everyone arrives, so an extra
  barrier costs almost nothing on top (paper Section 5.1.1).

Indices below are group-local (0..p-1); the ``world_ranks`` tuple maps
them to world ranks for link-parameter lookup.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from .base import CollectiveTuning
from .topology import ClusterTopology

__all__ = [
    "ExitSolver",
    "SynchronizingSolver",
    "BcastSolver",
    "ReduceSolver",
    "make_solver",
    "COLLECTIVE_KINDS",
    "binomial_parent",
    "binomial_children",
]

#: Collective kinds understood by :func:`make_solver`.
COLLECTIVE_KINDS = frozenset(
    {
        "barrier",
        "bcast",
        "reduce",
        "allreduce",
        "alltoall",
        "allgather",
        "alltoallv",
        "gather",
        "scatter",
        "scan",
        "reduce_scatter",
    }
)

#: Kinds with rooted (non-synchronizing) tree structure.
ROOTED_KINDS = frozenset({"bcast", "scatter", "reduce", "gather"})


def binomial_parent(vrank: int) -> int:
    """Parent of ``vrank`` (> 0) in a binomial tree rooted at virtual rank 0."""
    if vrank <= 0:
        raise ValueError("root has no parent")
    return vrank - (1 << (vrank.bit_length() - 1))


def binomial_children(vrank: int, p: int) -> list[int]:
    """Children of ``vrank`` in a binomial tree over ``p`` virtual ranks.

    Children are returned largest-subtree-first, the send order used by
    common MPI implementations (it minimizes the critical path).
    """
    if vrank == 0:
        low = 0
    else:
        low = vrank.bit_length()
    kids = []
    k = low
    while vrank + (1 << k) < p:
        kids.append(vrank + (1 << k))
        k += 1
    kids.reverse()  # largest subtree first
    return kids


def subtree_size(vrank: int, p: int) -> int:
    """Number of virtual ranks in the binomial subtree rooted at ``vrank``."""
    size = 1
    for c in binomial_children(vrank, p):
        size += subtree_size(c, p)
    return size


class ExitSolver(ABC):
    """Incrementally maps member arrival times to member exit times."""

    #: True when no member may exit before every member has arrived.
    synchronizing: bool = True

    def __init__(
        self,
        world_ranks: tuple[int, ...],
        topo: ClusterTopology,
        tuning: CollectiveTuning,
        nbytes: int,
        root_index: int = 0,
    ):
        if not world_ranks:
            raise ValueError("empty group")
        if not 0 <= root_index < len(world_ranks):
            raise ValueError(f"root index {root_index} out of range")
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        self.world_ranks = world_ranks
        self.p = len(world_ranks)
        self.topo = topo
        self.tuning = tuning
        self.nbytes = nbytes
        self.root_index = root_index
        self.arrivals: dict[int, float] = {}
        self.exits: dict[int, float] = {}

    @abstractmethod
    def _resolve(self) -> dict[int, float]:
        """Compute exits newly determined by the current arrival set."""

    def on_arrival(self, index: int, t: float) -> dict[int, float]:
        """Record that member ``index`` arrived (initiated) at time ``t``.

        Returns a dict of member index -> exit time for each member whose
        exit became determined by this arrival (possibly empty, possibly
        several members at once).
        """
        if index in self.arrivals:
            raise ValueError(f"member {index} arrived twice")
        if not 0 <= index < self.p:
            raise ValueError(f"member index {index} out of range [0,{self.p})")
        self.arrivals[index] = t
        newly = self._resolve()
        self.exits.update(newly)
        return newly

    @property
    def complete(self) -> bool:
        """True once every member's exit time is known."""
        return len(self.exits) == self.p

    # Helpers -----------------------------------------------------------

    def _link_time(self, i: int, j: int, nbytes: float) -> float:
        return self.topo.p2p_time(self.world_ranks[i], self.world_ranks[j], nbytes)

    def _stage_cost(self, nbytes: float, *, gamma: bool = False) -> float:
        alpha = self.topo.mean_alpha(self.world_ranks)
        inv_bw = self.topo.mean_inv_bandwidth(self.world_ranks)
        cost = alpha + nbytes * inv_bw + self.tuning.send_overhead
        if gamma:
            cost += nbytes * self.tuning.gamma_per_byte
        return max(cost, self.tuning.min_stage)


class SynchronizingSolver(ExitSolver):
    """Exit model for collectives where nobody leaves before all arrive.

    ``exit_i = max(arrivals) + cost(kind)`` with the cost chosen from the
    standard algorithm for the kind (dissemination barrier, recursive
    doubling allreduce, pairwise alltoall, ring allgather, ...).
    """

    synchronizing = True

    def __init__(self, kind: str, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.kind = kind

    def algorithm_cost(self) -> float:
        p, m = self.p, self.nbytes
        if p == 1:
            return self.tuning.min_stage
        rounds = math.ceil(math.log2(p))
        if self.kind == "barrier":
            return rounds * self._stage_cost(0.0)
        if self.kind == "allreduce":
            return rounds * self._stage_cost(m, gamma=True)
        if self.kind == "scan":
            return rounds * self._stage_cost(m, gamma=True)
        if self.kind in ("alltoall", "alltoallv"):
            return (p - 1) * self._stage_cost(m)
        if self.kind == "allgather":
            return (p - 1) * self._stage_cost(m)
        if self.kind == "reduce_scatter":
            return (p - 1) * self._stage_cost(m, gamma=True)
        raise ValueError(f"unknown synchronizing collective kind {self.kind!r}")

    def _resolve(self) -> dict[int, float]:
        if len(self.arrivals) < self.p:
            return {}
        start = max(self.arrivals.values())
        exit_time = start + self.algorithm_cost()
        return {i: exit_time for i in range(self.p)}


class BcastSolver(ExitSolver):
    """Binomial-tree broadcast / scatter: data flows root -> leaves.

    A member's exit depends only on its ancestors' progress (and its own
    arrival).  The root exits after handing its sends to the NIC — it
    never waits for the leaves.
    """

    synchronizing = False

    def __init__(self, *args, scale_by_subtree: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        # Virtual rank: rotate so the root is vrank 0.
        self._vrank = [(i - self.root_index) % self.p for i in range(self.p)]
        self._index_of_vrank = {v: i for i, v in enumerate(self._vrank)}
        self._scale_by_subtree = scale_by_subtree
        # forward[v]: time at which vrank v can start forwarding down.
        self._forward: dict[int, float] = {}

    def _child_bytes(self, child_vrank: int) -> float:
        if not self._scale_by_subtree:
            return float(self.nbytes)
        return float(self.nbytes) * subtree_size(child_vrank, self.p)

    def _injection_time(self, parent_idx: int, child_idx: int, nbytes: float) -> float:
        """Sender-side cost of handing one child's copy to the NIC.

        Charging real injection bandwidth keeps large-message broadcasts
        from pipelining unrealistically (the root cannot start iteration
        k+1 before it has pushed iteration k's payload out).
        """
        link = self.topo.link(
            self.world_ranks[parent_idx], self.world_ranks[child_idx]
        ) if self.world_ranks[parent_idx] != self.world_ranks[child_idx] else None
        bandwidth = (
            link.bandwidth if link is not None else self.topo.params.intra.bandwidth
        )
        return self.tuning.send_overhead + nbytes / bandwidth

    def _resolve(self) -> dict[int, float]:
        newly: dict[int, float] = {}
        progress = True
        while progress:
            progress = False
            for v in range(self.p):
                if v in self._forward:
                    continue
                idx = self._index_of_vrank[v]
                if idx not in self.arrivals:
                    continue
                if v == 0:
                    ready = self.arrivals[idx]
                else:
                    parent = binomial_parent(v)
                    if parent not in self._forward:
                        continue
                    siblings = binomial_children(parent, self.p)
                    slot = siblings.index(v)
                    parent_idx = self._index_of_vrank[parent]
                    # Earlier siblings' payloads serialize on the parent's
                    # injection path before ours starts moving.
                    send_start = self._forward[parent]
                    for sib in siblings[:slot]:
                        send_start += self._injection_time(
                            parent_idx,
                            self._index_of_vrank[sib],
                            self._child_bytes(sib),
                        )
                    arrive = send_start + self._link_time(
                        parent_idx, idx, self._child_bytes(v)
                    )
                    ready = max(arrive, self.arrivals[idx])
                self._forward[v] = ready
                exit_time = ready
                for child in binomial_children(v, self.p):
                    exit_time += self._injection_time(
                        idx, self._index_of_vrank[child], self._child_bytes(child)
                    )
                newly[idx] = max(exit_time, self.arrivals[idx] + self.tuning.min_stage)
                progress = True
        return newly


class ReduceSolver(ExitSolver):
    """Binomial-tree reduce / gather: data flows leaves -> root.

    Leaves exit as soon as they have handed their contribution to the
    NIC; the root exits last, after combining every subtree.
    """

    synchronizing = False

    def __init__(self, *args, aggregate_sizes: bool = False, reduce_gamma: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self._vrank = [(i - self.root_index) % self.p for i in range(self.p)]
        self._index_of_vrank = {v: i for i, v in enumerate(self._vrank)}
        self._aggregate = aggregate_sizes
        self._gamma = reduce_gamma
        # done[v]: time vrank v finished combining its subtree's data.
        self._done: dict[int, float] = {}

    def _send_bytes(self, vrank: int) -> float:
        if not self._aggregate:
            return float(self.nbytes)
        return float(self.nbytes) * subtree_size(vrank, self.p)

    def _resolve(self) -> dict[int, float]:
        newly: dict[int, float] = {}
        progress = True
        while progress:
            progress = False
            # Walk from the deepest vranks upward: leaves resolve first.
            for v in range(self.p - 1, -1, -1):
                if v in self._done:
                    continue
                idx = self._index_of_vrank[v]
                if idx not in self.arrivals:
                    continue
                kids = binomial_children(v, self.p)
                if any(c not in self._done for c in kids):
                    continue
                t = self.arrivals[idx]
                for c in kids:
                    c_idx = self._index_of_vrank[c]
                    arrive = self._done[c] + self._link_time(
                        c_idx, idx, self._send_bytes(c)
                    )
                    t = max(t, arrive)
                    if self._gamma:
                        t += self._send_bytes(c) * self.tuning.gamma_per_byte
                self._done[v] = t
                if v == 0:
                    exit_time = t
                else:
                    exit_time = t + self.tuning.send_overhead  # eager send, leave
                newly[idx] = max(exit_time, self.arrivals[idx] + self.tuning.min_stage)
                progress = True
        return newly


def make_solver(
    kind: str,
    world_ranks: tuple[int, ...],
    topo: ClusterTopology,
    tuning: CollectiveTuning,
    nbytes: int,
    root_index: int = 0,
) -> ExitSolver:
    """Instantiate the cost engine for one collective operation."""
    if kind not in COLLECTIVE_KINDS:
        raise ValueError(f"unknown collective kind {kind!r}")
    if kind in ("bcast", "scatter"):
        return BcastSolver(
            world_ranks,
            topo,
            tuning,
            nbytes,
            root_index,
            scale_by_subtree=(kind == "scatter"),
        )
    if kind in ("reduce", "gather"):
        return ReduceSolver(
            world_ranks,
            topo,
            tuning,
            nbytes,
            root_index,
            aggregate_sizes=(kind == "gather"),
            reduce_gamma=(kind == "reduce"),
        )
    return SynchronizingSolver(kind, world_ranks, topo, tuning, nbytes, root_index)
