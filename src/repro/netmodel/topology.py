"""Cluster topologies: mapping ranks to nodes and picking link parameters.

The paper's Figure 8 hinges on a topology effect: going from one node
(128 procs) to two nodes (256 procs) raises the *base* cost of
communication (inter-node links appear), which shrinks the *relative*
overhead of checkpointing protocols.  This module provides that effect,
generalized behind a ``node_of``/``link`` interface so scenario classes
(:mod:`repro.scenarios`) can swap in multi-tier fabrics — fat-tree pods,
dragonfly groups — or wrap any topology with per-link perturbations.

Contract every :class:`Topology` obeys: ``node_of`` is total on
``[0, nprocs)``, and ``link(a, b)`` is symmetric and a function of
``(node_of(a), node_of(b))`` only.  The generic ``mean_alpha`` /
``mean_inv_bandwidth`` implementations lean on that contract: they
sample one representative rank per occupied node and weight each link
class by its share of the group's ordered rank pairs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from .base import LinkParams, ModelParams

#: Fat-tree core links (pod-to-pod, through the spine) relative to the
#: plain inter-node fabric: longer path, oversubscribed bandwidth.
_CORE_LATENCY_X = 2.5
_CORE_BANDWIDTH_X = 0.5

#: Dragonfly global links (group-to-group optical hops) relative to the
#: plain inter-node fabric: much longer path, heavily shared.
_GLOBAL_LATENCY_X = 4.0
_GLOBAL_BANDWIDTH_X = 0.25


class Topology(ABC):
    """Rank→node placement plus a per-node-pair link model.

    Subclasses provide ``nprocs`` / ``params`` (attributes or
    properties) and implement :meth:`node_of` and :meth:`link`; the
    shared cost helpers (``p2p_time``, ``mean_alpha``,
    ``mean_inv_bandwidth``) are derived here so every topology — block
    clusters, multi-tier fabrics, scenario wrappers — prices messages
    through one code path.
    """

    @abstractmethod
    def node_of(self, rank: int) -> int:
        """Node hosting ``rank``; raises ``ValueError`` out of range."""

    @abstractmethod
    def link(self, a: int, b: int) -> LinkParams:
        """Link parameters between ranks ``a`` and ``b``.

        Must be symmetric and depend only on ``(node_of(a), node_of(b))``.
        """

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def p2p_time(self, src: int, dst: int, nbytes: float) -> float:
        """Transfer time of one point-to-point message."""
        if src == dst:
            # Self-sends only pay a copy, modelled as intra bandwidth.
            return nbytes / self.params.intra.bandwidth
        return self.link(src, dst).transfer_time(nbytes)

    # -- group-mix means ----------------------------------------------- #

    def _link_mix(
        self, ranks: "tuple[int, ...] | None"
    ) -> "dict[LinkParams, int]":
        """Ordered rank-pair count per distinct link class in the group.

        Valid under the class contract (``link`` a function of the node
        pair): one representative rank per occupied node suffices, and
        the per-class weights come from node occupancy counts.
        """
        ranks_iter = range(self.nprocs) if ranks is None else ranks
        groups: "dict[int, list[int]]" = {}  # node -> [rep rank, count]
        for r in ranks_iter:
            entry = groups.get(self.node_of(r))
            if entry is None:
                groups[self.node_of(r)] = [r, 1]
            else:
                entry[1] += 1
        mix: "dict[LinkParams, int]" = {}
        items = sorted(groups.items())
        for i, (_na, (ra, ca)) in enumerate(items):
            if ca > 1:
                lp = self.link(ra, ra)
                mix[lp] = mix.get(lp, 0) + ca * (ca - 1)
            for _nb, (rb, cb) in items[i + 1:]:
                lp = self.link(ra, rb)
                mix[lp] = mix.get(lp, 0) + 2 * ca * cb
        return mix

    @staticmethod
    def _check_group(ranks: "tuple[int, ...] | None", what: str) -> None:
        if ranks is not None and len(ranks) == 0:
            raise ValueError(
                f"{what} is undefined for an empty rank group; pass "
                "ranks=None for the full world or a non-empty tuple"
            )

    def mean_alpha(self, ranks: "tuple[int, ...] | None" = None) -> float:
        """Average latency over the group's rank-pair mix.

        Used by stage-cost formulas (e.g. a dissemination barrier round)
        where partners change every round: we charge the expected link
        latency given the mix of link classes in the group.
        """
        self._check_group(ranks, "mean_alpha")
        n = self.nprocs if ranks is None else len(ranks)
        if n <= 1:
            return self.params.intra.latency
        mix = self._link_mix(ranks)
        total = sum(mix.values())
        return sum(c * lp.latency for lp, c in mix.items()) / total

    def mean_inv_bandwidth(
        self, ranks: "tuple[int, ...] | None" = None
    ) -> float:
        """Average 1/bandwidth over the group's rank-pair mix."""
        self._check_group(ranks, "mean_inv_bandwidth")
        n = self.nprocs if ranks is None else len(ranks)
        if n <= 1:
            return 1.0 / self.params.intra.bandwidth
        mix = self._link_mix(ranks)
        total = sum(mix.values())
        return sum(c / lp.bandwidth for lp, c in mix.items()) / total


@dataclass(frozen=True)
class _BlockTopology(Topology):
    """Shared block placement: rank ``r`` lives on node ``r // ppn``."""

    nprocs: int
    ppn: int
    params: ModelParams

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.ppn < 1:
            raise ValueError(f"ppn must be >= 1, got {self.ppn}")

    @property
    def nnodes(self) -> int:
        return -(-self.nprocs // self.ppn)  # ceil division

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")
        return rank // self.ppn


@dataclass(frozen=True)
class ClusterTopology(_BlockTopology):
    """One flat cluster: ``params.intra`` within a node, ``params.inter``
    between any two nodes.

    The ``mean_alpha`` / ``mean_inv_bandwidth`` overrides keep the
    original two-class closed form (not the generic link-mix
    accumulation): with exactly one inter-node link class the two are
    mathematically equal, but the closed form's float evaluation order
    is pinned by years of committed fingerprints — do not "simplify" it
    into the base implementation.
    """

    def link(self, a: int, b: int) -> LinkParams:
        """Link parameters between ranks ``a`` and ``b``."""
        if self.same_node(a, b):
            return self.params.intra
        return self.params.inter

    def _frac_intra(self, ranks: "tuple[int, ...] | None") -> float:
        nprocs = self.nprocs if ranks is None else len(ranks)
        if ranks is None:
            full, rem = divmod(self.nprocs, self.ppn)
            counts = [self.ppn] * full + ([rem] if rem else [])
        else:
            nodes: "dict[int, int]" = {}
            for r in ranks:
                n = self.node_of(r)
                nodes[n] = nodes.get(n, 0) + 1
            counts = list(nodes.values())
        total_pairs = nprocs * (nprocs - 1)
        intra_pairs = sum(c * (c - 1) for c in counts)
        return intra_pairs / total_pairs if total_pairs else 1.0

    def mean_alpha(self, ranks: "tuple[int, ...] | None" = None) -> float:
        """Average latency over the (group's) rank pair mix."""
        self._check_group(ranks, "mean_alpha")
        nprocs = self.nprocs if ranks is None else len(ranks)
        if nprocs <= 1:
            return self.params.intra.latency
        frac_intra = self._frac_intra(ranks)
        return (
            frac_intra * self.params.intra.latency
            + (1.0 - frac_intra) * self.params.inter.latency
        )

    def mean_inv_bandwidth(
        self, ranks: "tuple[int, ...] | None" = None
    ) -> float:
        """Average 1/bandwidth over the group's rank-pair mix."""
        self._check_group(ranks, "mean_inv_bandwidth")
        nprocs = self.nprocs if ranks is None else len(ranks)
        if nprocs <= 1:
            return 1.0 / self.params.intra.bandwidth
        frac_intra = self._frac_intra(ranks)
        return frac_intra / self.params.intra.bandwidth + (1.0 - frac_intra) / self.params.inter.bandwidth


@dataclass(frozen=True)
class FatTreeTopology(_BlockTopology):
    """Two-tier fat-tree: nodes grouped into pods of ``nodes_per_pod``.

    Within a node: ``params.intra``.  Within a pod (edge/aggregation
    switches): ``params.inter``.  Across pods the message climbs to the
    oversubscribed core: ``params.inter`` stretched by
    ``_CORE_LATENCY_X`` / ``_CORE_BANDWIDTH_X``.
    """

    nodes_per_pod: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes_per_pod < 1:
            raise ValueError(
                f"nodes_per_pod must be >= 1, got {self.nodes_per_pod}"
            )
        inter = self.params.inter
        object.__setattr__(
            self,
            "_core",
            LinkParams(
                latency=inter.latency * _CORE_LATENCY_X,
                bandwidth=inter.bandwidth * _CORE_BANDWIDTH_X,
            ),
        )

    @property
    def npods(self) -> int:
        return -(-self.nnodes // self.nodes_per_pod)

    def pod_of(self, rank: int) -> int:
        return self.node_of(rank) // self.nodes_per_pod

    def link(self, a: int, b: int) -> LinkParams:
        if self.same_node(a, b):
            return self.params.intra
        if self.pod_of(a) == self.pod_of(b):
            return self.params.inter
        return self._core


@dataclass(frozen=True)
class DragonflyTopology(_BlockTopology):
    """Dragonfly / multi-region: nodes grouped into all-to-all groups of
    ``nodes_per_group``, groups joined by long global (optical) links.

    Within a node: ``params.intra``.  Within a group: ``params.inter``.
    Across groups: ``params.inter`` stretched by ``_GLOBAL_LATENCY_X`` /
    ``_GLOBAL_BANDWIDTH_X`` — the same shape as a multi-region
    deployment with fast regional fabric and slow cross-region pipes.
    """

    nodes_per_group: int = 2

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.nodes_per_group < 1:
            raise ValueError(
                f"nodes_per_group must be >= 1, got {self.nodes_per_group}"
            )
        inter = self.params.inter
        object.__setattr__(
            self,
            "_global",
            LinkParams(
                latency=inter.latency * _GLOBAL_LATENCY_X,
                bandwidth=inter.bandwidth * _GLOBAL_BANDWIDTH_X,
            ),
        )

    @property
    def ngroups(self) -> int:
        return -(-self.nnodes // self.nodes_per_group)

    def group_of(self, rank: int) -> int:
        return self.node_of(rank) // self.nodes_per_group

    def link(self, a: int, b: int) -> LinkParams:
        if self.same_node(a, b):
            return self.params.intra
        if self.group_of(a) == self.group_of(b):
            return self.params.inter
        return self._global


#: Registered topology classes — the property suite in
#: ``tests/netmodel/test_topology.py`` sweeps every entry.
TOPOLOGIES: "dict[str, type[_BlockTopology]]" = {
    "cluster": ClusterTopology,
    "fat-tree": FatTreeTopology,
    "dragonfly": DragonflyTopology,
}


def make_topology(
    nprocs: int, *, ppn: int | None = None, params: ModelParams | None = None
) -> ClusterTopology:
    """Convenience constructor with Perlmutter-like defaults.

    When ``ppn`` is omitted the whole job is placed on one node if it
    fits in 128 ranks, else packed 128-per-node (Perlmutter CPU nodes).
    """
    if params is None:
        params = ModelParams.perlmutter_like()
    if ppn is None:
        ppn = min(nprocs, 128)
    return ClusterTopology(nprocs=nprocs, ppn=ppn, params=params)
