"""Cluster topology: mapping ranks to nodes and picking link parameters.

The paper's Figure 8 hinges on a topology effect: going from one node
(128 procs) to two nodes (256 procs) raises the *base* cost of
communication (inter-node links appear), which shrinks the *relative*
overhead of checkpointing protocols.  This module provides that effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import LinkParams, ModelParams


@dataclass(frozen=True)
class ClusterTopology:
    """Block distribution of ``nprocs`` ranks over nodes, ``ppn`` per node.

    Rank r lives on node ``r // ppn``.  Links within a node use
    ``params.intra``; links between nodes use ``params.inter``.
    """

    nprocs: int
    ppn: int
    params: ModelParams

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {self.nprocs}")
        if self.ppn < 1:
            raise ValueError(f"ppn must be >= 1, got {self.ppn}")

    @property
    def nnodes(self) -> int:
        return -(-self.nprocs // self.ppn)  # ceil division

    def node_of(self, rank: int) -> int:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")
        return rank // self.ppn

    def same_node(self, a: int, b: int) -> bool:
        return self.node_of(a) == self.node_of(b)

    def link(self, a: int, b: int) -> LinkParams:
        """Link parameters between ranks ``a`` and ``b``."""
        if self.same_node(a, b):
            return self.params.intra
        return self.params.inter

    def p2p_time(self, src: int, dst: int, nbytes: float) -> float:
        """Transfer time of one point-to-point message."""
        if src == dst:
            # Self-sends only pay a copy, modelled as intra bandwidth.
            return nbytes / self.params.intra.bandwidth
        return self.link(src, dst).transfer_time(nbytes)

    def mean_alpha(self, ranks: tuple[int, ...] | None = None) -> float:
        """Average latency over the (group's) rank pair mix.

        Used by stage-cost formulas (e.g. a dissemination barrier round)
        where partners change every round: we charge the expected link
        latency given the fraction of inter-node pairs in the group.
        """
        if ranks is None:
            nprocs = self.nprocs
        else:
            nprocs = len(ranks)
        if nprocs <= 1:
            return self.params.intra.latency
        nodes = {}
        if ranks is None:
            full, rem = divmod(self.nprocs, self.ppn)
            counts = [self.ppn] * full + ([rem] if rem else [])
        else:
            for r in ranks:
                n = self.node_of(r)
                nodes[n] = nodes.get(n, 0) + 1
            counts = list(nodes.values())
        total_pairs = nprocs * (nprocs - 1)
        intra_pairs = sum(c * (c - 1) for c in counts)
        frac_intra = intra_pairs / total_pairs if total_pairs else 1.0
        return (
            frac_intra * self.params.intra.latency
            + (1.0 - frac_intra) * self.params.inter.latency
        )

    def mean_inv_bandwidth(self, ranks: tuple[int, ...] | None = None) -> float:
        """Average 1/bandwidth over the group's rank-pair mix."""
        if ranks is None:
            nprocs = self.nprocs
        else:
            nprocs = len(ranks)
        if nprocs <= 1:
            return 1.0 / self.params.intra.bandwidth
        if ranks is None:
            full, rem = divmod(self.nprocs, self.ppn)
            counts = [self.ppn] * full + ([rem] if rem else [])
        else:
            nodes: dict[int, int] = {}
            for r in ranks:
                n = self.node_of(r)
                nodes[n] = nodes.get(n, 0) + 1
            counts = list(nodes.values())
        total_pairs = nprocs * (nprocs - 1)
        intra_pairs = sum(c * (c - 1) for c in counts)
        frac_intra = intra_pairs / total_pairs if total_pairs else 1.0
        return frac_intra / self.params.intra.bandwidth + (1.0 - frac_intra) / self.params.inter.bandwidth


def make_topology(
    nprocs: int, *, ppn: int | None = None, params: ModelParams | None = None
) -> ClusterTopology:
    """Convenience constructor with Perlmutter-like defaults.

    When ``ppn`` is omitted the whole job is placed on one node if it
    fits in 128 ranks, else packed 128-per-node (Perlmutter CPU nodes).
    """
    if params is None:
        params = ModelParams.perlmutter_like()
    if ppn is None:
        ppn = min(nprocs, 128)
    return ClusterTopology(nprocs=nprocs, ppn=ppn, params=params)
