"""Base parameter types for the network cost model.

The model follows Hockney's ``t(m) = alpha + m * beta`` form per link,
extended with per-call software overheads.  All times are seconds, all
sizes are bytes.

Calibration note: the default constants are tuned so that a 512-rank
4-byte broadcast costs a few microseconds — the regime where Slingshot-11
sustains ~255k collective calls/sec (paper Table 1).  Absolute values are
not the point; the *relative* behaviour of 2PC vs CC is what the model
must reproduce, and that depends only on the synchronization structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LinkParams:
    """One link class: latency (s) + inverse bandwidth (s/byte)."""

    latency: float
    bandwidth: float  # bytes / second

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"negative latency {self.latency}")
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")

    def transfer_time(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across this link."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class OverheadCosts:
    """Per-call software costs used by the checkpointing protocols.

    These model the costs the paper discusses qualitatively:

    * ``wrapper_call`` — entering/leaving a MANA wrapper function.  Paid
      by *every* interposed MPI call under 2PC and CC alike.
    * ``seq_increment`` — the CC algorithm's only steady-state extra work:
      bump ``SEQ[ggid]`` (Section 4.2.1, "inherently low overhead").
    * ``test_call`` — one ``MPI_Test`` poll during drains.
    * ``control_latency`` — latency of one out-of-band control message
      (target updates ride ``MPI_Isend`` on a dedicated comm in the paper;
      here they ride the control plane with this latency).
    * ``ibarrier_poll_gap`` — 2PC's trivial-barrier test-loop poll spacing.
    """

    wrapper_call: float = 5.0e-8
    seq_increment: float = 1.0e-8
    test_call: float = 3.0e-8
    control_latency: float = 2.0e-6
    ibarrier_poll_gap: float = 1.0e-6


@dataclass(frozen=True)
class CollectiveTuning:
    """Knobs of the per-collective cost engines.

    * ``send_overhead`` — sender-side CPU gap between consecutive child
      sends in a tree (serialization at the root of a Bcast).
    * ``gamma_per_byte`` — reduction arithmetic cost per byte.
    * ``min_stage`` — floor for one tree/round stage (models NIC/queue
      fixed costs even on-node).
    """

    send_overhead: float = 2.0e-7
    gamma_per_byte: float = 1.0e-10
    min_stage: float = 1.0e-7


@dataclass(frozen=True)
class ComputeModel:
    """Per-rank compute-time jitter between communication calls.

    Real ranks never arrive at a collective simultaneously; OS noise and
    data-dependent work skew them.  The skew is what an inserted barrier
    (2PC) turns into waiting time, so it is the single most important
    parameter for reproducing Figure 5a.

    ``jitter_cv`` is the coefficient of variation of a lognormal-ish
    jitter applied to nominal compute durations.
    """

    jitter_cv: float = 0.08
    noise_floor: float = 2.0e-7


@dataclass(frozen=True)
class ModelParams:
    """Bundle of all model parameters used by a simulation."""

    intra: LinkParams = field(default_factory=lambda: LinkParams(2.0e-7, 80e9))
    inter: LinkParams = field(default_factory=lambda: LinkParams(6.0e-7, 25e9))
    overheads: OverheadCosts = field(default_factory=OverheadCosts)
    tuning: CollectiveTuning = field(default_factory=CollectiveTuning)
    compute: ComputeModel = field(default_factory=ComputeModel)

    @staticmethod
    def perlmutter_like() -> "ModelParams":
        """Defaults approximating a Slingshot-11 CPU partition."""
        return ModelParams()

    @staticmethod
    def slow_network() -> "ModelParams":
        """An OFED-InfiniBand-era network (for ablations: the regime where
        2PC overhead mattered less because collectives were slow anyway)."""
        return ModelParams(
            intra=LinkParams(5.0e-7, 20e9),
            inter=LinkParams(1.5e-6, 6e9),
        )
