"""Network and storage cost models for the simulated cluster.

* :class:`ModelParams` / :class:`LinkParams` / :class:`OverheadCosts` —
  tunable constants (Hockney α–β links, per-call software costs).
* :class:`ClusterTopology` — rank→node placement, intra/inter-node links.
* :func:`make_solver` — per-collective causal cost engines.
* :class:`StorageModel` — Lustre-like bandwidth saturation for Fig. 9.
"""

from .base import (
    CollectiveTuning,
    ComputeModel,
    LinkParams,
    ModelParams,
    OverheadCosts,
)
from .collectives import (
    COLLECTIVE_KINDS,
    BcastSolver,
    ExitSolver,
    ReduceSolver,
    SynchronizingSolver,
    binomial_children,
    binomial_parent,
    make_solver,
)
from .storage import StorageModel
from .topology import (
    TOPOLOGIES,
    ClusterTopology,
    DragonflyTopology,
    FatTreeTopology,
    Topology,
    make_topology,
)

__all__ = [
    "LinkParams",
    "OverheadCosts",
    "CollectiveTuning",
    "ComputeModel",
    "ModelParams",
    "Topology",
    "ClusterTopology",
    "FatTreeTopology",
    "DragonflyTopology",
    "TOPOLOGIES",
    "make_topology",
    "ExitSolver",
    "SynchronizingSolver",
    "BcastSolver",
    "ReduceSolver",
    "make_solver",
    "binomial_parent",
    "binomial_children",
    "COLLECTIVE_KINDS",
    "StorageModel",
]
