"""Storage model for checkpoint image writes and restart reads (Figure 9).

Models a Lustre-like parallel file system: each node can push at most
``per_node_bandwidth``; the file system as a whole saturates at
``aggregate_bandwidth``.  Once the aggregate saturates, adding nodes
(hence ranks, hence bytes) makes checkpointing *slower* — the growth the
paper observes ("checkpoint and restart are slower when running on more
nodes because there is more data in the memory").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StorageModel:
    """Bandwidth-saturating parallel file system model.

    Attributes:
        per_node_bandwidth: sustained write bandwidth per compute node, B/s.
        aggregate_bandwidth: file-system-wide cap, B/s.
        base_latency: fixed per-operation cost (metadata, barriers), s.
        read_factor: restart reads run at ``read_factor`` x write speed.
    """

    per_node_bandwidth: float = 2.0e9
    aggregate_bandwidth: float = 12.0e9
    base_latency: float = 1.0
    read_factor: float = 1.25

    def __post_init__(self) -> None:
        if self.per_node_bandwidth <= 0 or self.aggregate_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.read_factor <= 0:
            raise ValueError("read_factor must be positive")

    def effective_bandwidth(self, nnodes: int) -> float:
        """Concurrent write bandwidth available to ``nnodes`` writers."""
        if nnodes < 1:
            raise ValueError(f"nnodes must be >= 1, got {nnodes}")
        return min(nnodes * self.per_node_bandwidth, self.aggregate_bandwidth)

    def write_time(self, total_bytes: float, nnodes: int) -> float:
        """Time to write ``total_bytes`` of checkpoint images from ``nnodes``."""
        if total_bytes < 0:
            raise ValueError("negative byte count")
        return self.base_latency + total_bytes / self.effective_bandwidth(nnodes)

    def read_time(self, total_bytes: float, nnodes: int) -> float:
        """Time to read the images back at restart."""
        if total_bytes < 0:
            raise ValueError("negative byte count")
        bw = self.effective_bandwidth(nnodes) * self.read_factor
        return self.base_latency + total_bytes / bw
