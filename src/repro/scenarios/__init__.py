"""Composable run scenarios: fabrics, stragglers, and degraded links.

The registry of named :class:`Scenario` classes that parameterize any
app/protocol run.  Scenarios travel as canonical strings through the
``RunSpec`` content hash, the ``--axis scenario=...`` sweep axis, the
``repro-mpi`` CLI, and the fault-schedule draw; ``launch_run`` resolves
the string back into topology/compute perturbations at simulation time.

Catalog (``SCENARIOS``): ``fat-tree``, ``dragonfly``, ``straggler``,
``jitter``, ``degraded-link`` — see :mod:`repro.scenarios.catalog`.
"""

from .base import (
    SCENARIOS,
    Scenario,
    ScenarioError,
    canonical_scenario,
    parse_scenario,
    register_scenario,
    resolve_scenario,
)
from .catalog import (
    DegradedLinkScenario,
    DragonflyScenario,
    FatTreeScenario,
    JitterScenario,
    StragglerScenario,
)
from .wrappers import DegradedLinkTopology, JitterTopology

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioError",
    "canonical_scenario",
    "parse_scenario",
    "register_scenario",
    "resolve_scenario",
    "FatTreeScenario",
    "DragonflyScenario",
    "StragglerScenario",
    "JitterScenario",
    "DegradedLinkScenario",
    "JitterTopology",
    "DegradedLinkTopology",
]
