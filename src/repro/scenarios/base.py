"""Scenario base class, registry, and canonical-string parsing.

A :class:`Scenario` is one named, composable run condition — a network
fabric, a straggler rank, a perturbed link — that parameterizes any
app/protocol run.  Scenarios travel through the harness as *canonical
strings* (``"fat-tree"``, ``"straggler:factor=4.0,rank=1"``): the
string is what enters the :class:`~repro.harness.spec.RunSpec` content
hash, the sweep axis, the fault-schedule draw, and the service wire
format, so two spellings of the same condition always hash alike.

This package imports only :mod:`repro.netmodel` — never the harness —
so the dependency arrow stays one-way: harness → scenarios → netmodel.
"""

from __future__ import annotations

import dataclasses
from abc import ABC
from dataclasses import dataclass

from ..netmodel import ModelParams, Topology
from ..netmodel import make_topology as _make_flat_topology

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ScenarioError",
    "canonical_scenario",
    "parse_scenario",
    "register_scenario",
    "resolve_scenario",
]


class ScenarioError(ValueError):
    """A scenario string or parameter set does not name a valid scenario."""


#: Registry: scenario name -> class.  Populated by ``@register_scenario``.
SCENARIOS: "dict[str, type[Scenario]]" = {}


def register_scenario(cls: "type[Scenario]") -> "type[Scenario]":
    """Class decorator adding ``cls`` to :data:`SCENARIOS` by its name."""
    if not cls.name:
        raise ScenarioError(f"{cls.__name__} has no scenario name")
    if cls.name in SCENARIOS:
        raise ScenarioError(f"duplicate scenario name {cls.name!r}")
    SCENARIOS[cls.name] = cls
    return cls


def _render(value) -> str:
    """Canonical text of one parameter value (``repr`` floats, so
    ``factor=4.0`` round-trips bit-exact)."""
    return repr(value) if isinstance(value, float) else str(value)


@dataclass(frozen=True)
class Scenario(ABC):
    """One composable run condition.

    Subclasses are frozen dataclasses whose fields all carry defaults;
    the canonical string serializes only non-default fields (sorted by
    name), so the default instance's canonical form is just the name.
    The three hooks cover everything a condition can perturb:

    * :meth:`make_topology` — choose the fabric (and rank placement).
    * :meth:`wrap_topology` — perturb per-message costs on top of it.
    * :meth:`compute_factors` — per-rank compute slowdown multipliers.
    """

    #: Registry key and canonical-string head.  Subclasses override.
    name = ""
    #: One-line catalog entry (README / CLI help).
    description = ""

    def canonical(self) -> str:
        """The canonical string this scenario parses back from."""
        parts = []
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                parts.append(f"{f.name}={_render(value)}")
        if not parts:
            return self.name
        return self.name + ":" + ",".join(sorted(parts))

    # -- hooks --------------------------------------------------------- #

    def make_topology(
        self,
        nprocs: int,
        *,
        ppn: "int | None" = None,
        params: "ModelParams | None" = None,
    ) -> Topology:
        """Build the run's topology (default: the flat cluster)."""
        return _make_flat_topology(nprocs, ppn=ppn, params=params)

    def wrap_topology(self, topo: Topology, *, seed: int = 0) -> Topology:
        """Wrap the built topology with per-message perturbations.

        ``seed`` is the run's spec seed, so any injected noise is a
        pure function of the spec — deterministic and cache-stable.
        """
        return topo

    def compute_factors(self, nprocs: int) -> "tuple[float, ...] | None":
        """Per-rank compute-time multipliers, or ``None`` for all-1.0."""
        return None


def _coerce(cls: "type[Scenario]", name: str, raw: str):
    """Coerce a parsed parameter string to the field's default's type."""
    for f in dataclasses.fields(cls):
        if f.name == name:
            kind = type(f.default)
            try:
                return kind(raw)
            except (TypeError, ValueError) as exc:
                raise ScenarioError(
                    f"scenario {cls.name!r}: bad value for {name}={raw!r} "
                    f"(expected {kind.__name__}): {exc}"
                ) from None
    raise ScenarioError(
        f"scenario {cls.name!r} has no parameter {name!r}; expected one of "
        f"{sorted(f.name for f in dataclasses.fields(cls))}"
    )


def parse_scenario(text: str) -> Scenario:
    """``"name"`` or ``"name:k=v,k=v"`` -> a :class:`Scenario` instance."""
    body = text.strip()
    head, sep, argtext = body.partition(":")
    name = head.strip()
    cls = SCENARIOS.get(name)
    if cls is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        )
    kwargs = {}
    if sep:
        for item in argtext.split(","):
            item = item.strip()
            if not item:
                continue
            key, eq, raw = item.partition("=")
            if not eq:
                raise ScenarioError(
                    f"scenario {name!r}: expected k=v, got {item!r}"
                )
            kwargs[key.strip()] = _coerce(cls, key.strip(), raw.strip())
    try:
        return cls(**kwargs)
    except ScenarioError:
        raise
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"bad scenario {body!r}: {exc}") from None


def resolve_scenario(
    value: "str | Scenario | None",
) -> "Scenario | None":
    """Anything a caller may hold -> a :class:`Scenario` instance (or
    ``None`` for the unperturbed run; ``""``/``"none"`` mean ``None``,
    so sweep axes can include the baseline cell)."""
    if value is None or isinstance(value, Scenario):
        return value
    text = str(value).strip()
    if not text or text.lower() == "none":
        return None
    return parse_scenario(text)


def canonical_scenario(value: "str | Scenario | None") -> "str | None":
    """The canonical string for ``value`` (``None`` stays ``None``)."""
    scenario = resolve_scenario(value)
    return None if scenario is None else scenario.canonical()
