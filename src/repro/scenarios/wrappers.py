"""Topology wrappers: per-message perturbations over any base fabric.

Both wrappers obey the :class:`~repro.netmodel.Topology` contract —
``link`` stays symmetric and a function of the node pair — so the
generic group-mix means keep working.  Determinism: the DES pins event
order byte-identical across execution backends, so the jitter wrapper's
per-(src, dst) message counters advance identically everywhere and the
injected noise is a pure function of ``(seed, src, dst, count)``.
"""

from __future__ import annotations

import struct
import zlib

from ..netmodel import LinkParams, Topology

__all__ = ["DegradedLinkTopology", "JitterTopology"]

_U64 = 0xFFFFFFFFFFFFFFFF


def _unit_noise(seed: int, src: int, dst: int, count: int) -> float:
    """Deterministic uniform in ``[0, 1)`` from the message coordinates."""
    key = struct.pack("<QqqQ", seed & _U64, src, dst, count & _U64)
    return zlib.crc32(key) / 4294967296.0


class _TopologyWrapper(Topology):
    """Delegate everything to ``inner``; subclasses override the knob."""

    def __init__(self, inner: Topology):
        self.inner = inner

    @property
    def nprocs(self) -> int:
        return self.inner.nprocs

    @property
    def params(self):
        return self.inner.params

    @property
    def nnodes(self) -> int:
        return self.inner.nnodes

    def node_of(self, rank: int) -> int:
        return self.inner.node_of(rank)

    def link(self, a: int, b: int) -> LinkParams:
        return self.inner.link(a, b)


class JitterTopology(_TopologyWrapper):
    """Seeded per-message latency noise on top of any topology.

    Each distinct (src, dst) message adds ``amp * link latency * u``
    with ``u`` a deterministic uniform drawn from ``(seed, src, dst,
    message count)``.  ``link`` and the group means stay the inner
    topology's clean values — collective stage-cost formulas price the
    *expected* fabric; only realized point-to-point transfers wobble.
    """

    def __init__(self, inner: Topology, *, seed: int, amp: float):
        super().__init__(inner)
        self.seed = int(seed)
        self.amp = float(amp)
        self._counts: "dict[tuple[int, int], int]" = {}

    def p2p_time(self, src: int, dst: int, nbytes: float) -> float:
        base = self.inner.p2p_time(src, dst, nbytes)
        if src == dst or self.amp <= 0.0:
            return base
        count = self._counts.get((src, dst), 0)
        self._counts[(src, dst)] = count + 1
        noise = _unit_noise(self.seed, src, dst, count)
        return base + self.amp * self.inner.link(src, dst).latency * noise

    def mean_alpha(self, ranks=None) -> float:
        return self.inner.mean_alpha(ranks)

    def mean_inv_bandwidth(self, ranks=None) -> float:
        return self.inner.mean_inv_bandwidth(ranks)


class DegradedLinkTopology(_TopologyWrapper):
    """One chosen node pair's link degraded by fixed factors.

    Messages between the pair's nodes pay ``latency_x`` × latency at
    ``bandwidth_x`` × bandwidth; every other link — including traffic
    inside either node — is untouched.  The generic group-mix means
    (inherited from :class:`~repro.netmodel.Topology`) account for the
    degraded class automatically.
    """

    def __init__(
        self,
        inner: Topology,
        *,
        node_a: int,
        node_b: int,
        latency_x: float,
        bandwidth_x: float,
    ):
        super().__init__(inner)
        lo, hi = sorted((node_a % inner.nnodes, node_b % inner.nnodes))
        self.node_a = lo
        self.node_b = hi
        self.latency_x = float(latency_x)
        self.bandwidth_x = float(bandwidth_x)

    def link(self, a: int, b: int) -> LinkParams:
        base = self.inner.link(a, b)
        if self.node_a == self.node_b:
            # The pair collapsed onto one node (tiny world): nothing to
            # degrade — never touch intra-node traffic.
            return base
        na, nb = self.inner.node_of(a), self.inner.node_of(b)
        if (min(na, nb), max(na, nb)) == (self.node_a, self.node_b):
            return LinkParams(
                latency=base.latency * self.latency_x,
                bandwidth=base.bandwidth * self.bandwidth_x,
            )
        return base
