"""The built-in scenario catalog.

Every class here is frozen, fully defaulted, and registered under its
canonical name — ``repro-mpi`` flags, sweep axes, the fault-schedule
draw, and the scenario-invariance oracle all enumerate this registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netmodel import (
    DragonflyTopology,
    FatTreeTopology,
    ModelParams,
    Topology,
    make_topology,
)
from .base import Scenario, ScenarioError, register_scenario
from .wrappers import DegradedLinkTopology, JitterTopology


def _resolve_params(params: "ModelParams | None") -> ModelParams:
    return ModelParams.perlmutter_like() if params is None else params


@register_scenario
@dataclass(frozen=True)
class FatTreeScenario(Scenario):
    """Fat-tree fabric: pods of nodes behind an oversubscribed core."""

    name = "fat-tree"
    description = (
        "two-tier fat-tree: ranks spread one-per-node (ppn), nodes in "
        "pods of nodes_per_pod, cross-pod traffic through a stretched "
        "core link"
    )

    nodes_per_pod: int = 2
    #: Default placement spreads ranks across nodes so pods actually
    #: exist at test scale (the flat default would pack <=128 ranks
    #: onto one node and erase the fabric).
    ppn: int = 1

    def make_topology(self, nprocs, *, ppn=None, params=None) -> Topology:
        return FatTreeTopology(
            nprocs=nprocs,
            ppn=self.ppn if ppn is None else ppn,
            params=_resolve_params(params),
            nodes_per_pod=self.nodes_per_pod,
        )


@register_scenario
@dataclass(frozen=True)
class DragonflyScenario(Scenario):
    """Dragonfly / multi-region fabric: groups joined by global links."""

    name = "dragonfly"
    description = (
        "dragonfly/multi-region: ranks spread one-per-node (ppn), nodes "
        "in groups of nodes_per_group, cross-group traffic over long "
        "global links"
    )

    nodes_per_group: int = 2
    ppn: int = 1

    def make_topology(self, nprocs, *, ppn=None, params=None) -> Topology:
        return DragonflyTopology(
            nprocs=nprocs,
            ppn=self.ppn if ppn is None else ppn,
            params=_resolve_params(params),
            nodes_per_group=self.nodes_per_group,
        )


@register_scenario
@dataclass(frozen=True)
class StragglerScenario(Scenario):
    """One rank computes ``factor`` × slower than everyone else."""

    name = "straggler"
    description = (
        "rank (mod nprocs) computes factor x slower — skews the traffic "
        "and drag the safe cut must absorb"
    )

    rank: int = 0
    factor: float = 4.0

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ScenarioError(
                f"straggler factor must be > 0, got {self.factor}"
            )
        if self.rank < 0:
            raise ScenarioError(f"straggler rank must be >= 0, got {self.rank}")

    def compute_factors(self, nprocs: int) -> "tuple[float, ...]":
        factors = [1.0] * nprocs
        factors[self.rank % nprocs] = float(self.factor)
        return tuple(factors)


@register_scenario
@dataclass(frozen=True)
class JitterScenario(Scenario):
    """Deterministic seeded per-message latency noise on every link."""

    name = "jitter"
    description = (
        "every p2p message adds up to amp x link latency of seeded, "
        "deterministic noise"
    )

    amp: float = 0.5

    def __post_init__(self) -> None:
        if self.amp < 0:
            raise ScenarioError(f"jitter amp must be >= 0, got {self.amp}")

    def wrap_topology(self, topo: Topology, *, seed: int = 0) -> Topology:
        return JitterTopology(topo, seed=seed, amp=self.amp)


@register_scenario
@dataclass(frozen=True)
class DegradedLinkScenario(Scenario):
    """The node pair (node_a, node_b) at 10× latency / 0.1× bandwidth."""

    name = "degraded-link"
    description = (
        "one node pair's link at latency_x x latency and bandwidth_x x "
        "bandwidth (ranks split across two nodes by default)"
    )

    node_a: int = 0
    node_b: int = 1
    latency_x: float = 10.0
    bandwidth_x: float = 0.1

    def __post_init__(self) -> None:
        if self.latency_x <= 0 or self.bandwidth_x <= 0:
            raise ScenarioError(
                "degraded-link factors must be > 0, got "
                f"latency_x={self.latency_x}, bandwidth_x={self.bandwidth_x}"
            )

    def make_topology(self, nprocs, *, ppn=None, params=None) -> Topology:
        if ppn is None:
            # Split the world across two nodes so the degraded pair
            # exists even at test scale (the flat default would place
            # everything on one node).
            ppn = max(1, -(-nprocs // 2))
        return make_topology(nprocs, ppn=ppn, params=params)

    def wrap_topology(self, topo: Topology, *, seed: int = 0) -> Topology:
        return DegradedLinkTopology(
            topo,
            node_a=self.node_a,
            node_b=self.node_b,
            latency_x=self.latency_x,
            bandwidth_x=self.bandwidth_x,
        )
