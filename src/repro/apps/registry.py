"""Application registry: name -> configured factory.

Central place the harness, CLI, benchmarks, and examples use to obtain
the paper's five applications and the OSU kernels with the default
configurations that land in the paper's Table 1 rate categories.
"""

from __future__ import annotations

from typing import Callable

from .base import MpiApp
from .comd import CoMD
from .earlyexit import EarlyExit
from .lammps_lj import LammpsLJ
from .minivasp import MiniVasp
from .osu import OsuCollective, OsuOverlap
from .poisson import PoissonCG
from .scheduled import ScheduledMix
from .sw4 import SW4

__all__ = [
    "APP_FACTORIES",
    "APP_ALIASES",
    "make_app_factory",
    "resolve_app_name",
    "app_uses_nonblocking",
    "REAL_WORLD_APPS",
]

#: The paper's five real-world applications (Figure 7 order).
REAL_WORLD_APPS = ("minivasp", "sw4", "comd", "lammps", "poisson")

APP_FACTORIES: dict[str, Callable[..., MpiApp]] = {
    "minivasp": MiniVasp,
    "poisson": PoissonCG,
    "comd": CoMD,
    "lammps": LammpsLJ,
    "sw4": SW4,
    "osu": OsuCollective,
    "osu_overlap": OsuOverlap,
    # Verification workloads (see repro.harness.verify): staggered rank
    # completion and the schedule-known safe-cut mix.
    "earlyexit": EarlyExit,
    "scheduled": ScheduledMix,
}

#: Accepted spellings for axis values and CLI arguments.  Canonical
#: names map to themselves so resolution is one lookup.
APP_ALIASES: dict[str, str] = {
    **{name: name for name in APP_FACTORIES},
    "vasp": "minivasp",
    "mini-vasp": "minivasp",
    "lammps-lj": "lammps",
    "lj": "lammps",
    "cg": "poisson",
    "poisson-cg": "poisson",
    "osu-overlap": "osu_overlap",
    "overlap": "osu_overlap",
    "early-exit": "earlyexit",
    "early_exit": "earlyexit",
}

#: Apps that issue non-blocking collectives with their default
#: configuration (the paper's NA cells under 2PC).
_ALWAYS_NONBLOCKING = ("poisson", "osu_overlap")


def resolve_app_name(name: str) -> str:
    """Canonical registry name for ``name`` (case-insensitive, aliased).

    This is the sweep layer's axis-value → factory resolution: it
    normalizes user-supplied spellings *before* specs are built, so a
    typo fails the whole sweep up front with the known-app list instead
    of one cell at simulation time.
    """
    if isinstance(name, str):
        canonical = APP_ALIASES.get(name) or APP_ALIASES.get(name.lower())
        if canonical is not None:
            return canonical
    raise ValueError(
        f"unknown app {name!r}; expected one of {sorted(APP_FACTORIES)} "
        f"(aliases: {sorted(a for a in APP_ALIASES if a not in APP_FACTORIES)})"
    )


def app_uses_nonblocking(name: str, app_kwargs=None) -> bool:
    """Whether the app issues non-blocking collectives as configured.

    Used by sweep NA masks to annotate 2PC × non-blocking cells without
    simulating them.  OSU is non-blocking exactly when ``blocking`` is
    false; Poisson's CG loop and the overlap kernel always are.
    """
    canonical = resolve_app_name(name)
    if canonical in _ALWAYS_NONBLOCKING:
        return True
    if canonical == "osu":
        kwargs = dict(app_kwargs or {})
        return not kwargs.get("blocking", True)
    return False


def make_app_factory(name: str, **overrides) -> Callable[[], MpiApp]:
    """A zero-argument factory for the named app with overrides applied."""
    cls = APP_FACTORIES[resolve_app_name(name)]
    return lambda: cls(**overrides)
