"""Application registry: name -> configured factory.

Central place the harness, CLI, benchmarks, and examples use to obtain
the paper's five applications and the OSU kernels with the default
configurations that land in the paper's Table 1 rate categories.
"""

from __future__ import annotations

from typing import Callable

from .base import MpiApp
from .comd import CoMD
from .lammps_lj import LammpsLJ
from .minivasp import MiniVasp
from .osu import OsuCollective, OsuOverlap
from .poisson import PoissonCG
from .sw4 import SW4

__all__ = ["APP_FACTORIES", "make_app_factory", "REAL_WORLD_APPS"]

#: The paper's five real-world applications (Figure 7 order).
REAL_WORLD_APPS = ("minivasp", "sw4", "comd", "lammps", "poisson")

APP_FACTORIES: dict[str, Callable[..., MpiApp]] = {
    "minivasp": MiniVasp,
    "poisson": PoissonCG,
    "comd": CoMD,
    "lammps": LammpsLJ,
    "sw4": SW4,
    "osu": OsuCollective,
    "osu_overlap": OsuOverlap,
}


def make_app_factory(name: str, **overrides) -> Callable[[], MpiApp]:
    """A zero-argument factory for the named app with overrides applied."""
    try:
        cls = APP_FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown app {name!r}; expected one of {sorted(APP_FACTORIES)}"
        ) from None
    return lambda: cls(**overrides)
