"""Early-exit workload: ranks complete at staggered times by design.

The checkpoint protocols' hardest scenario class is a request racing
rank completion: a rank that returns from the application before the
intent reaches it can never park, and the coordinator must checkpoint
*through* its completion (trivially-parked proxy, terminal image).
This app opens that window on purpose:

* a **shared phase** (steps ``0 .. shared-1``) where every rank joins a
  world allreduce — so the "leaver" ranks' collective clocks are fully
  caught up by everyone before anyone exits;
* a **tail phase** where the first ``leavers`` ranks do nothing (they
  sprint through their remaining step boundaries and finish), while the
  survivors keep computing and reducing on a survivors-only
  communicator — a live mid-program cut coexisting with terminal ranks;
* optionally a **farewell message** from each leaver to each survivor,
  sent in the leaver's last shared step and received at a staggered
  later step — so a cut taken in between must drain a message whose
  sender no longer exists.

Results are pure state checksums (no wall-clock reads), so an
uninterrupted run, a checkpointed run, and any restart chain must all
report byte-identical per-rank values — the property the
``rank-completion`` verification oracle pins across seeds.
"""

from __future__ import annotations

from .base import AppContext, MpiApp

__all__ = ["EarlyExit"]

_FAREWELL_TAG = 77


class EarlyExit(MpiApp):
    """Staggered-completion app (see module docstring)."""

    name = "earlyexit"

    def __init__(
        self,
        niters: int = 12,
        *,
        shared: int = 4,
        leavers: int = 1,
        shared_compute: float = 2e-6,
        tail_compute: float = 5e-6,
        farewell: bool = True,
        memory_bytes: int = 16 << 20,
    ):
        super().__init__(niters)
        if not 1 <= shared < niters:
            raise ValueError(
                f"shared must be in [1, niters); got shared={shared}, "
                f"niters={niters}"
            )
        if leavers < 1:
            raise ValueError(f"leavers must be >= 1, got {leavers}")
        self.shared = shared
        self.leavers = leavers
        self.shared_compute = shared_compute
        self.tail_compute = tail_compute
        self.farewell = farewell
        self.memory_bytes = memory_bytes

    # ------------------------------------------------------------------ #

    def _is_leaver(self, ctx: AppContext) -> bool:
        return ctx.rank < self.leavers

    def setup(self, ctx: AppContext) -> None:
        if self.leavers >= ctx.nprocs:
            raise ValueError(
                f"leavers={self.leavers} needs at least {self.leavers + 1} "
                f"ranks (got {ctx.nprocs}): someone must survive"
            )
        ctx.declare_memory(self.memory_bytes)
        # Survivors-only communicator for the tail phase.  Leavers pass
        # color=None (they participate in the creation collective but
        # own no handle), so nothing ties them to the tail traffic.
        ctx.state["sub"] = ctx.world.split(
            color=None if self._is_leaver(ctx) else 0, key=ctx.rank
        )
        ctx.state["acc"] = 0.0
        ctx.state["notes"] = ()

    def _pickup_step(self, ctx: AppContext) -> int:
        """The staggered tail step at which a survivor collects farewells."""
        window = self.niters - self.shared
        return self.shared + (ctx.rank % window)

    def step(self, ctx: AppContext, i: int) -> None:
        if i < self.shared:
            ctx.compute_jittered(self.shared_compute, i)
            ctx.state["acc"] = ctx.state["acc"] + ctx.world.allreduce(
                float(ctx.rank + i)
            )
            if self.farewell and i == self.shared - 1 and self._is_leaver(ctx):
                for peer in range(self.leavers, ctx.nprocs):
                    ctx.world.send(
                        ("farewell", ctx.rank, i), dest=peer, tag=_FAREWELL_TAG
                    )
            return
        if self._is_leaver(ctx):
            # Communication-free: this rank races to completion while
            # the survivors are still mid-program.
            return
        ctx.compute_jittered(self.tail_compute, i)
        sub = ctx.state["sub"]
        ctx.state["acc"] = ctx.state["acc"] + sub.allreduce(float(i))
        if self.farewell and i == self._pickup_step(ctx):
            notes = tuple(
                ctx.world.recv(source=src, tag=_FAREWELL_TAG)
                for src in range(self.leavers)
            )
            ctx.state["notes"] = ctx.state["notes"] + notes

    def finalize(self, ctx: AppContext):
        return {
            "acc": round(ctx.state["acc"], 9),
            "notes": ctx.state["notes"],
        }
