"""Mini-applications reproducing the paper's workload mix.

Five real-world-shaped apps (Table 1's rate categories) plus the OSU
micro-benchmark kernels:

* :class:`MiniVasp` — very high collective rate (FFT SCF loop).
* :class:`PoissonCG` — medium rate, *non-blocking collectives only*.
* :class:`CoMD` — low rate, halo p2p + periodic energy reduction.
* :class:`LammpsLJ` — p2p dominant, collectives very rare.
* :class:`SW4` — long stencil steps, collectives rarest.
* :class:`OsuCollective` / :class:`OsuOverlap` — the upper-limit kernels.
"""

from .base import AppContext, MpiApp
from .comd import CoMD
from .earlyexit import EarlyExit
from .lammps_lj import LammpsLJ
from .minivasp import MiniVasp
from .osu import OSU_KINDS, OsuCollective, OsuOverlap
from .poisson import PoissonCG
from .registry import (
    APP_ALIASES,
    APP_FACTORIES,
    REAL_WORLD_APPS,
    app_uses_nonblocking,
    make_app_factory,
    resolve_app_name,
)
from .scheduled import ScheduledMix, build_schedule
from .sw4 import SW4

__all__ = [
    "AppContext",
    "MpiApp",
    "MiniVasp",
    "PoissonCG",
    "CoMD",
    "LammpsLJ",
    "SW4",
    "OsuCollective",
    "OsuOverlap",
    "EarlyExit",
    "ScheduledMix",
    "build_schedule",
    "OSU_KINDS",
    "APP_FACTORIES",
    "APP_ALIASES",
    "REAL_WORLD_APPS",
    "make_app_factory",
    "resolve_app_name",
    "app_uses_nonblocking",
]
