"""CoMD-like molecular dynamics: halo-exchange p2p, rare collectives.

CoMD (Cu u6.eam input) sits in the paper's *low* collective-rate band:
Table 1 reports 7.8 coll/s against 414 p2p/s — roughly one energy
reduction per ~13 halo-exchange steps.  Both 2PC and CC overheads are
negligible here (Figure 7), which this mini-app reproduces.
"""

from __future__ import annotations

import numpy as np

from .base import AppContext, MpiApp

__all__ = ["CoMD"]


class CoMD(MpiApp):
    """1D-decomposed Lennard-Jones cell dynamics."""

    name = "comd"

    def __init__(
        self,
        niters: int = 40,
        *,
        atoms_per_rank: int = 64,
        reduce_every: int = 13,
        base_compute: float = 9.0e-3,
        memory_bytes: int = 300 << 20,
    ):
        super().__init__(niters)
        self.atoms_per_rank = atoms_per_rank
        self.reduce_every = reduce_every
        self.base_compute = base_compute
        self.memory_bytes = memory_bytes

    def setup(self, ctx: AppContext) -> None:
        ctx.declare_memory(self.memory_bytes)
        rng = ctx.step_rng(-1, "init")
        m = self.atoms_per_rank
        ctx.state["pos"] = np.sort(rng.uniform(0.1, 0.9, m)) + ctx.rank
        ctx.state["vel"] = rng.normal(0.0, 0.05, m)
        ctx.state["energy_samples"] = []

    def step(self, ctx: AppContext, i: int) -> None:
        s = ctx.state
        pos, vel = s["pos"], s["vel"]
        me, n = ctx.rank, ctx.nprocs
        right, left = (me + 1) % n, (me - 1) % n

        # Halo exchange: boundary atom slabs to both neighbours
        # (2 sendrecv = 4 p2p calls per step).
        from_left = ctx.world.sendrecv(pos[-8:], dest=right, source=left, sendtag=1, recvtag=1)
        from_right = ctx.world.sendrecv(pos[:8], dest=left, source=right, sendtag=2, recvtag=2)

        # LJ-ish forces from local pairs + ghosts (real arithmetic, small).
        ghosts = np.concatenate([from_left - 1.0, from_right + 1.0])
        d = pos[:, None] - np.concatenate([pos, ghosts])[None, :]
        d = np.where(np.abs(d) < 1e-9, np.inf, d)
        inv = 1.0 / np.clip(np.abs(d), 0.05, np.inf)
        force = np.sum(np.sign(d) * (inv**7 - 0.5 * inv**4) * 1e-4, axis=1)
        ctx.compute_jittered(self.base_compute, i, "force")

        dt = 1e-3
        new_vel = vel + dt * force
        new_pos = pos + dt * new_vel

        samples = s["energy_samples"]
        if i % self.reduce_every == 0:
            kinetic = float(0.5 * np.sum(new_vel**2))
            total = ctx.world.allreduce(kinetic)
            samples = samples + [total]

        # ---- commit block ----
        s["pos"] = new_pos
        s["vel"] = new_vel
        s["energy_samples"] = samples

    def finalize(self, ctx: AppContext):
        return {
            "kinetic_samples": tuple(round(v, 9) for v in ctx.state["energy_samples"]),
            "pos_checksum": float(np.sum(ctx.state["pos"])),
        }
