"""Application framework: the context apps program against, and the
resumable-step base class.

Checkpointable-app contract (see DESIGN.md §2 for why):

1. All persistent state lives in ``ctx.state`` (a picklable dict; it may
   contain :class:`~repro.mana.vcomm.VirtualComm` handles).
2. Work is organized in *steps*; the framework calls ``step(ctx, i)``
   and advances ``ctx.state["iter"]``; a checkpoint may land anywhere,
   and an interrupted step is deterministically replayed after restart.
3. Within a step, state writes must be replayable: derive them from call
   results and prior state (assign, don't accumulate across the replay
   span), and draw randomness from ``ctx.step_rng(i)``, which is a pure
   function of (seed, rank, step).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from ..mana.session import Session
    from ..mana.vcomm import VirtualComm

__all__ = ["AppContext", "MpiApp"]


class AppContext:
    """What an application sees: virtual MPI plus compute/state services."""

    def __init__(self, session: "Session", seed: int = 0):
        self._session = session
        self.seed = seed

    # -- identity ---------------------------------------------------------- #

    @property
    def rank(self) -> int:
        return self._session.rank

    @property
    def nprocs(self) -> int:
        return self._session.nprocs

    @property
    def world(self) -> "VirtualComm":
        """COMM_WORLD as a virtual handle."""
        return self._session.comm_world

    @property
    def state(self) -> dict:
        """The rank's persistent (checkpointed) application state."""
        return self._session.app_state

    # -- services ------------------------------------------------------------ #

    def compute(self, seconds: float) -> None:
        """Model ``seconds`` of local computation (interruptible)."""
        self._session.compute(seconds)

    def compute_jittered(self, base_seconds: float, step: int, tag: str = "") -> None:
        """Compute with per-rank OS-noise-style jitter.

        The jitter is what an inserted barrier (2PC) converts into
        waiting time, so realistic skew matters for the overhead figures.
        Deterministic in (seed, rank, step, tag).
        """
        cv = self._session.world.params.compute.jitter_cv
        rng = self.step_rng(step, tag or "jitter")
        factor = float(np.exp(rng.normal(0.0, cv)))
        floor = self._session.world.params.compute.noise_floor
        self.compute(max(base_seconds * factor, floor))

    def step_boundary(self) -> None:
        self._session.step_boundary()

    def step_rng(self, step: int, tag: str = "") -> np.random.Generator:
        """Deterministic per-(rank, step) random stream — replay-safe.

        ``step=-1`` is the conventional setup-phase stream.
        """
        import zlib

        return np.random.default_rng(
            np.random.SeedSequence(
                entropy=self.seed,
                # crc32, not hash(): string hashing is salted per process
                # and would break determinism and restart replay.
                spawn_key=(self.rank, step + 1, zlib.crc32(tag.encode())),
            )
        )

    def declare_memory(self, nbytes: int) -> None:
        """Declare modelled upper-half memory (drives image-size costs)."""
        self._session.declared_bytes = int(nbytes)

    def now(self) -> float:
        return self._session.sim.now()


class MpiApp(ABC):
    """Base class for resumable step-structured MPI applications."""

    #: Application name used by the harness and Table 1.
    name: str = "app"

    def __init__(self, niters: int = 10):
        if niters < 1:
            raise ValueError(f"niters must be >= 1, got {niters}")
        self.niters = niters

    def setup(self, ctx: AppContext) -> None:
        """One-time initialization (may create communicators, seed state).

        Runs exactly once per logical job: skipped on restart because the
        restored state already carries its effects.
        """

    @abstractmethod
    def step(self, ctx: AppContext, i: int) -> None:
        """One outer iteration.  Must follow the replayability contract."""

    def finalize(self, ctx: AppContext) -> Any:
        """Produce the rank's result after the last step."""
        return None

    def run(self, ctx: AppContext) -> Any:
        """The framework loop (called by the harness runner)."""
        if "iter" not in ctx.state:
            self.setup(ctx)
            ctx.state.setdefault("iter", 0)
            ctx.step_boundary()
        while ctx.state["iter"] < self.niters:
            i = ctx.state["iter"]
            self.step(ctx, i)
            ctx.state["iter"] = i + 1
            ctx.step_boundary()
        return self.finalize(ctx)
