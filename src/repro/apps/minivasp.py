"""miniVASP: the communication signature of VASP 6 (paper Section 5.4).

VASP's hot loop is plane-wave DFT: per SCF iteration it performs many
parallel FFTs (transposes = ``MPI_Alltoall`` on row/column communicators
of a 2D process grid), band reductions (``MPI_Allreduce``), occasional
potential broadcasts, and halo point-to-point traffic — a *very high*
collective-call rate (Table 1: ~2,489 coll/s and ~2,569 p2p/s at 512
ranks).  This mini-app reproduces that mix with real data movement
(numpy FFTs over alltoall-transposed pencils) and a deterministic,
monotonically converging SCF energy.

Replay contract: all state writes happen in a single commit block at the
end of ``step`` (gather-then-commit).
"""

from __future__ import annotations

import numpy as np

from .base import AppContext, MpiApp

__all__ = ["MiniVasp"]


class MiniVasp(MpiApp):
    """FFT/collective-heavy SCF loop on a 2D process grid."""

    name = "minivasp"

    def __init__(
        self,
        niters: int = 20,
        *,
        bands: int = 4,
        npw: int = 64,
        ffts_per_step: int = 6,
        bcast_every: int = 5,
        base_compute: float = 2.5e-3,
        memory_bytes: int = 700 << 20,
    ):
        super().__init__(niters)
        self.bands = bands
        self.npw = npw
        self.ffts_per_step = ffts_per_step
        self.bcast_every = bcast_every
        self.base_compute = base_compute
        self.memory_bytes = memory_bytes

    def setup(self, ctx: AppContext) -> None:
        ctx.declare_memory(self.memory_bytes)
        n = ctx.nprocs
        # 2D process grid (rows x cols), as even as possible.
        rows = 1
        for r in range(int(np.sqrt(n)), 0, -1):
            if n % r == 0:
                rows = r
                break
        cols = n // rows
        my_row, my_col = divmod(ctx.rank, cols)
        ctx.state["row_comm"] = ctx.world.split(color=my_row, key=my_col)
        ctx.state["col_comm"] = ctx.world.split(color=my_col, key=my_row)
        rng = ctx.step_rng(-1, "init")
        psi = rng.standard_normal((self.bands, self.npw)) + 1j * rng.standard_normal(
            (self.bands, self.npw)
        )
        ctx.state["psi"] = psi / np.linalg.norm(psi)
        ctx.state["potential"] = np.linspace(0.5, 1.5, self.npw)
        ctx.state["energy"] = float("inf")
        ctx.state["energy_hist"] = []

    def step(self, ctx: AppContext, i: int) -> None:
        s = ctx.state
        row, col = s["row_comm"], s["col_comm"]
        psi = s["psi"]
        potential = s["potential"]
        n = ctx.nprocs
        me = ctx.rank

        # Halo exchange with world neighbours (charge-density ghost
        # planes, both directions + a second pass for gradients): VASP's
        # p2p rate roughly matches its collective rate (Table 1).
        right, left = (me + 1) % n, (me - 1) % n
        edge = np.ascontiguousarray(psi[:, -4:])
        edge_lo = np.ascontiguousarray(psi[:, :4])
        ghost = ctx.world.sendrecv(edge, dest=right, source=left, sendtag=11, recvtag=11)
        ghost_r = ctx.world.sendrecv(edge_lo, dest=left, source=right, sendtag=12, recvtag=12)
        g2l = ctx.world.sendrecv(np.abs(edge), dest=right, source=left, sendtag=13, recvtag=13)
        g2r = ctx.world.sendrecv(np.abs(edge_lo), dest=left, source=right, sendtag=14, recvtag=14)
        ghost = ghost + 1e-15 * (np.abs(ghost_r) + g2l + g2r)

        # FFT phase: repeated pencil transposes + local FFTs.  Each pass
        # also broadcasts updated plane-wave coefficients — VASP's
        # collective mix is broadcast-heavy (the very case where 2PC's
        # inserted barrier turns per-rank jitter into waiting, because a
        # native Bcast lets the root and early ranks leave immediately).
        work = psi
        for k in range(self.ffts_per_step):
            comm = row if k % 2 == 0 else col
            p = comm.size
            chunks = [np.ascontiguousarray(c) for c in np.array_split(work, p, axis=1)]
            recv = comm.alltoall(chunks)
            gathered = np.concatenate(recv, axis=1) if len(recv) > 1 else recv[0]
            pad = self.npw - gathered.shape[1]
            if pad > 0:
                gathered = np.pad(gathered, ((0, 0), (0, pad)))
            work = np.fft.ifft(np.fft.fft(gathered[:, : self.npw], axis=1) * 0.999, axis=1)
            # Local FFT work (jittered) happens *before* the coefficient
            # broadcast, so ranks reach the Bcast skewed — natively the
            # tree lets early ranks proceed; 2PC's barrier makes everyone
            # wait for the slowest rank here.
            ctx.compute_jittered(self.base_compute / self.ffts_per_step, i, f"fft{k}")
            root = k % p
            coeff = comm.bcast(
                np.real(work[0, :8]).copy() if comm.rank() == root else None, root=root
            )
            work = work * (1.0 + 1e-15 * float(np.sum(coeff)))

        # Preconditioned gradient step against the (bcast) potential.
        grad = work * potential[None, :]
        new_psi = psi - 0.1 * grad
        new_psi = new_psi / max(np.linalg.norm(new_psi), 1e-300)
        local_e = float(np.sum(np.abs(new_psi) ** 2 * potential[None, :]).real)
        local_e += 1e-12 * float(np.abs(ghost).sum())  # halo data participates

        # Band-energy reduction (the SCF convergence driver).
        total_e = ctx.world.allreduce(local_e)
        n_norm = ctx.world.allreduce(float(np.sum(np.abs(new_psi) ** 2)))
        energy = total_e / max(n_norm, 1e-300)

        new_potential = potential
        if i % self.bcast_every == 0:
            # Root mixes and broadcasts the updated potential.
            mixed = potential * 0.98 + 0.02 * np.linspace(0.5, 1.5, self.npw) if me == 0 else None
            new_potential = ctx.world.bcast(mixed, root=0)

        # ---- commit block (no MPI calls below) ----
        s["psi"] = new_psi
        s["potential"] = new_potential
        s["energy"] = energy
        s["energy_hist"] = s["energy_hist"] + [energy]

    def finalize(self, ctx: AppContext):
        hist = ctx.state["energy_hist"]
        return {"energy": ctx.state["energy"], "hist_tail": tuple(hist[-3:]), "iters": len(hist)}
