"""SW4-like seismic stencil: long compute steps, collectives almost never.

SW4 (LOH.1-h50 input) is the paper's lowest collective-rate code:
0.6 coll/s vs 157.9 p2p/s (Table 1).  Steps are long (4th-order elastic
wave stencil), halo exchange happens every step, and a stability-check
reduction appears only every few hundred steps.
"""

from __future__ import annotations

import numpy as np

from .base import AppContext, MpiApp

__all__ = ["SW4"]


class SW4(MpiApp):
    """Fourth-order accurate 1D-decomposed elastic wave stencil."""

    name = "sw4"

    def __init__(
        self,
        niters: int = 30,
        *,
        points_per_rank: int = 128,
        check_every: int = 260,
        base_compute: float = 5.0e-2,
        memory_bytes: int = 400 << 20,
    ):
        super().__init__(niters)
        self.points_per_rank = points_per_rank
        self.check_every = check_every
        self.base_compute = base_compute
        self.memory_bytes = memory_bytes

    def setup(self, ctx: AppContext) -> None:
        ctx.declare_memory(self.memory_bytes)
        m = self.points_per_rank
        xs = np.linspace(0, 1, m) + ctx.rank
        ctx.state["u"] = np.exp(-50 * (xs - (ctx.nprocs / 2)) ** 2)
        ctx.state["u_prev"] = ctx.state["u"].copy()
        ctx.state["checks"] = []

    def step(self, ctx: AppContext, i: int) -> None:
        s = ctx.state
        u, u_prev = s["u"], s["u_prev"]
        me, n = ctx.rank, ctx.nprocs
        right, left = (me + 1) % n, (me - 1) % n

        # 4th-order stencil needs two ghost points per side: two sendrecv
        # per direction = 8 p2p calls per step.
        gl = ctx.world.sendrecv(u[-2:], dest=right, source=left, sendtag=1, recvtag=1)
        gr = ctx.world.sendrecv(u[:2], dest=left, source=right, sendtag=2, recvtag=2)
        gl2 = ctx.world.sendrecv(u_prev[-2:], dest=right, source=left, sendtag=3, recvtag=3)
        gr2 = ctx.world.sendrecv(u_prev[:2], dest=left, source=right, sendtag=4, recvtag=4)

        ext = np.concatenate([gl if me > 0 else np.zeros(2), u, gr if me < n - 1 else np.zeros(2)])
        lap4 = (
            -ext[:-4] + 16 * ext[1:-3] - 30 * ext[2:-2] + 16 * ext[3:-1] - ext[4:]
        ) / 12.0
        c2dt2 = 1e-4
        new_u = 2 * u - u_prev + c2dt2 * lap4
        new_u[0] += 1e-12 * float(gl2.sum())
        new_u[-1] += 1e-12 * float(gr2.sum())
        ctx.compute_jittered(self.base_compute, i, "stencil")

        checks = s["checks"]
        if i % self.check_every == 0:
            peak = ctx.world.allreduce(float(np.max(np.abs(new_u))), op="max")
            checks = checks + [peak]

        # ---- commit block ----
        s["u_prev"] = u
        s["u"] = new_u
        s["checks"] = checks

    def finalize(self, ctx: AppContext):
        return {
            "peaks": tuple(round(p, 12) for p in ctx.state["checks"]),
            "u_norm": float(np.linalg.norm(ctx.state["u"])),
        }
