"""Schedule-known workload for the safe-cut verification oracle.

Executes a randomized (but seed-deterministic) per-step sequence of
allreduces over a Figure-3-like overlapping group mix — world, parity
groups, and halves — whose *global* collective schedule is known a
priori.  Because the schedule is known, the online CC cut (the SEQ
tables captured in a committed checkpoint's images) can be compared
against the offline topological-sort fixpoint
(:func:`repro.core.graph.compute_safe_cut`) computed from the
request-time reports — the end-to-end tie between the implementation
(Algorithms 1-3) and the paper's formal model (Section 4.2.2).

Promoted from the ``tests/core`` online-vs-offline test into a
first-class registry app so the ``safe-cut`` oracle (see
:mod:`repro.harness.verify`) can build it from a :class:`RunSpec`.
"""

from __future__ import annotations

import numpy as np

from .base import AppContext, MpiApp

__all__ = ["ScheduledMix", "build_schedule"]


def build_schedule(nprocs: int, niters: int, seed: int):
    """Per-step group schedule, identical on every rank (a legal program).

    Groups: world, evens, odds, low half, high half.  Returns
    ``(groups: name -> world ranks, steps: list of 3-name lists)``.
    """
    groups = {
        "world": tuple(range(nprocs)),
        "even": tuple(r for r in range(nprocs) if r % 2 == 0),
        "odd": tuple(r for r in range(nprocs) if r % 2 == 1),
        "low": tuple(range(nprocs // 2)),
        "high": tuple(range(nprocs // 2, nprocs)),
    }
    rng = np.random.default_rng(seed)
    steps = []
    for _ in range(niters):
        names = list(rng.choice(["world", "even", "odd", "low", "high"], size=3))
        steps.append(names)
    return groups, steps


class ScheduledMix(MpiApp):
    """Executes the precomputed schedule; each op is an allreduce on the
    named group's communicator."""

    name = "scheduled"

    def __init__(self, niters: int = 10, *, nprocs: int = 4, schedule_seed: int = 0):
        super().__init__(niters)
        self.nprocs = nprocs
        self.schedule_seed = schedule_seed
        self.groups, self.steps = build_schedule(nprocs, niters, schedule_seed)

    def setup(self, ctx: AppContext) -> None:
        if ctx.nprocs != self.nprocs:
            raise ValueError(
                f"schedule was built for {self.nprocs} ranks, job has {ctx.nprocs}"
            )
        comms = {"world": ctx.world}
        comms["even"] = ctx.world.split(color=ctx.rank % 2 == 0, key=ctx.rank)
        comms["odd"] = comms["even"]  # each rank holds its own parity comm
        comms["low"] = ctx.world.split(
            color=0 if ctx.rank < ctx.nprocs // 2 else 1, key=ctx.rank
        )
        comms["high"] = comms["low"]
        ctx.state["comms"] = comms
        ctx.state["acc"] = 0.0

    def _my_group(self, ctx: AppContext, name: str):
        if name == "world":
            return "world"
        if name in ("even", "odd"):
            mine = "even" if ctx.rank % 2 == 0 else "odd"
            return mine if name == mine else None
        mine = "low" if ctx.rank < ctx.nprocs // 2 else "high"
        return mine if name == mine else None

    def step(self, ctx: AppContext, i: int) -> None:
        ctx.compute_jittered(2e-6 * (1 + ctx.rank % 3), i)
        acc = 0.0
        for name in self.steps[i]:
            mine = self._my_group(ctx, name)
            if mine is None:
                continue
            key = (
                "world"
                if name == "world"
                else ("even" if name in ("even", "odd") else "low")
            )
            acc += ctx.state["comms"][key].allreduce(float(i))
        ctx.state["acc"] = ctx.state["acc"] + acc

    def finalize(self, ctx: AppContext):
        return ctx.state["acc"]

    # -- offline model ---------------------------------------------------- #

    def offline_program(self):
        """Project the global schedule onto per-rank op sequences.

        Communicator-creation calls count as collectives on the parent
        group (world) — the implementation counts them too.
        """
        from ..core import CollectiveProgram
        from ..util.hashing import stable_hash_ranks

        nprocs = len(self.groups["world"])
        ggid = {
            name: stable_hash_ranks(ranks) for name, ranks in self.groups.items()
        }
        ops = [[] for _ in range(nprocs)]
        members = {ggid[name]: self.groups[name] for name in self.groups}
        for r in range(nprocs):
            # setup: two splits = two collectives on world.
            ops[r].append(ggid["world"])
            ops[r].append(ggid["world"])
        for step_names in self.steps:
            for name in step_names:
                for r in self.groups[name]:
                    ops[r].append(ggid[name])
        return CollectiveProgram(
            ops=tuple(tuple(o) for o in ops), members=members
        )
