"""LAMMPS-like scaled LJ liquid: p2p-dominant, collectives very rare.

Table 1: 1,707 p2p calls/s against 6.3 coll/s — LAMMPS' halo exchange
runs every step in six directions while thermo reductions are sparse.
Checkpoint-protocol overhead is negligible for this class (Figure 7).
"""

from __future__ import annotations

import numpy as np

from .base import AppContext, MpiApp

__all__ = ["LammpsLJ"]


class LammpsLJ(MpiApp):
    """LJ liquid with six-direction halo exchange per step."""

    name = "lammps"

    def __init__(
        self,
        niters: int = 60,
        *,
        atoms_per_rank: int = 48,
        thermo_every: int = 45,
        base_compute: float = 7.0e-3,
        memory_bytes: int = 250 << 20,
    ):
        super().__init__(niters)
        self.atoms_per_rank = atoms_per_rank
        self.thermo_every = thermo_every
        self.base_compute = base_compute
        self.memory_bytes = memory_bytes

    def setup(self, ctx: AppContext) -> None:
        ctx.declare_memory(self.memory_bytes)
        rng = ctx.step_rng(-1, "init")
        m = self.atoms_per_rank
        ctx.state["x"] = rng.uniform(0, 1, (m, 3))
        ctx.state["v"] = rng.normal(0, 0.02, (m, 3))
        ctx.state["thermo"] = []

    def step(self, ctx: AppContext, i: int) -> None:
        s = ctx.state
        x, v = s["x"], s["v"]
        me, n = ctx.rank, ctx.nprocs

        # Six-direction halo exchange (3 dims x 2 directions): each
        # sendrecv is 2 p2p calls -> 12 p2p calls per step.
        ghosts = []
        for dim in range(3):
            stride = (dim + 1) % max(n, 1) or 1
            fwd, back = (me + stride) % n, (me - stride) % n
            g1 = ctx.world.sendrecv(
                np.ascontiguousarray(x[:6, dim]), dest=fwd, source=back,
                sendtag=10 + dim, recvtag=10 + dim,
            )
            g2 = ctx.world.sendrecv(
                np.ascontiguousarray(x[-6:, dim]), dest=back, source=fwd,
                sendtag=20 + dim, recvtag=20 + dim,
            )
            ghosts.append((g1, g2))

        # Pairwise short-range forces (small but real computation).
        d = x[:, None, :] - x[None, :, :]
        r2 = np.sum(d * d, axis=2) + np.eye(len(x))
        inv6 = 1.0 / np.clip(r2, 0.01, np.inf) ** 3
        fmag = (2.0 * inv6 * inv6 - inv6)[:, :, None]
        force = np.sum(1e-5 * fmag * d, axis=1)
        force[:6, 0] += 1e-9 * float(sum(g[0].sum() for g in ghosts))
        ctx.compute_jittered(self.base_compute, i, "pair")

        dt = 5e-4
        new_v = v + dt * force
        new_x = (x + dt * new_v) % 1.0

        thermo = s["thermo"]
        if i % self.thermo_every == 0:
            ke = float(0.5 * np.sum(new_v**2))
            thermo = thermo + [ctx.world.allreduce(ke)]

        # ---- commit block ----
        s["x"] = new_x
        s["v"] = new_v
        s["thermo"] = thermo

    def finalize(self, ctx: AppContext):
        return {
            "thermo": tuple(round(t, 9) for t in ctx.state["thermo"]),
            "x_checksum": float(np.sum(ctx.state["x"])),
        }
