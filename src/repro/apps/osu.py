"""OSU micro-benchmark kernels (paper Section 5.1, Figures 5 and 6).

``OsuCollective`` reproduces the OSU latency loop: a window of
collectives in a tight loop with minimal compute in between — the upper
limit of collective call rates (Table 1's 255k coll/s row).

``OsuOverlap`` reproduces the OSU non-blocking overlap methodology
(Figure 6): measure pure communication time ``t_pure``, then issue the
non-blocking collective, compute for ~``t_pure``, and wait; report

    overlap% = max(0, 1 - (t_overall - t_compute) / t_pure) * 100.
"""

from __future__ import annotations

import numpy as np

from .base import AppContext, MpiApp

__all__ = ["OsuCollective", "OsuOverlap", "OSU_KINDS"]

OSU_KINDS = ("bcast", "alltoall", "allreduce", "allgather")


def _payload(kind: str, nbytes: int, nprocs: int, rank: int):
    if kind == "alltoall":
        per = max(nbytes // 8, 1)
        return [np.full(per, float(rank)) for _ in range(nprocs)]
    arr = np.full(max(nbytes // 8, 1), float(rank))
    return arr


class OsuCollective(MpiApp):
    """osu_bcast / osu_alltoall / osu_allreduce / osu_allgather."""

    name = "osu"

    def __init__(
        self,
        niters: int = 100,
        *,
        kind: str = "bcast",
        nbytes: int = 4,
        blocking: bool = True,
        gap_compute: float = 2.0e-7,
    ):
        super().__init__(niters)
        if kind not in OSU_KINDS:
            raise ValueError(f"unknown OSU kind {kind!r}; expected {OSU_KINDS}")
        self.kind = kind
        self.nbytes = nbytes
        self.blocking = blocking
        self.gap_compute = gap_compute
        self.name = f"osu_{'' if blocking else 'i'}{kind}"

    def setup(self, ctx: AppContext) -> None:
        ctx.declare_memory(16 << 20)
        ctx.state["t_total"] = 0.0
        ctx.state["count"] = 0

    def _issue(self, ctx: AppContext, payload):
        comm = ctx.world
        k = self.kind
        if self.blocking:
            if k == "bcast":
                return comm.bcast(payload if ctx.rank == 0 else None, root=0)
            if k == "alltoall":
                return comm.alltoall(payload)
            if k == "allreduce":
                return comm.allreduce(payload)
            return comm.allgather(payload)
        if k == "bcast":
            return comm.ibcast(payload if ctx.rank == 0 else None, root=0)
        if k == "alltoall":
            return comm.ialltoall(payload)
        if k == "allreduce":
            return comm.iallreduce(payload)
        return comm.iallgather(payload)

    def step(self, ctx: AppContext, i: int) -> None:
        payload = _payload(self.kind, self.nbytes, ctx.nprocs, ctx.rank)
        ctx.compute_jittered(self.gap_compute, i, "gap")
        t0 = ctx.now()
        result = self._issue(ctx, payload)
        if not self.blocking:
            result.wait()
        t1 = ctx.now()
        # ---- commit block ----
        ctx.state["t_total"] = ctx.state["t_total"] + (t1 - t0)
        ctx.state["count"] = ctx.state["count"] + 1

    def finalize(self, ctx: AppContext):
        return {
            "avg_latency": ctx.state["t_total"] / max(ctx.state["count"], 1),
            "iterations": ctx.state["count"],
        }


class OsuOverlap(MpiApp):
    """OSU communication/computation overlap measurement (Figure 6)."""

    name = "osu_overlap"

    def __init__(
        self,
        niters: int = 60,
        *,
        kind: str = "bcast",
        nbytes: int = 1024,
        warmup: int = 10,
    ):
        super().__init__(niters)
        if kind not in OSU_KINDS:
            raise ValueError(f"unknown OSU kind {kind!r}")
        self.kind = kind
        self.nbytes = nbytes
        self.warmup = warmup
        self.name = f"osu_overlap_{kind}"

    def setup(self, ctx: AppContext) -> None:
        ctx.declare_memory(16 << 20)
        ctx.state["t_pure"] = 0.0
        ctx.state["overlaps"] = []

    def _initiate(self, ctx: AppContext, payload):
        comm = ctx.world
        k = self.kind
        if k == "bcast":
            return comm.ibcast(payload if ctx.rank == 0 else None, root=0)
        if k == "alltoall":
            return comm.ialltoall(payload)
        if k == "allreduce":
            return comm.iallreduce(payload)
        return comm.iallgather(payload)

    def step(self, ctx: AppContext, i: int) -> None:
        payload = _payload(self.kind, self.nbytes, ctx.nprocs, ctx.rank)
        s = ctx.state
        if i < self.warmup:
            # Warmup phase: measure pure (non-overlapped) latency.
            t0 = ctx.now()
            req = self._initiate(ctx, payload)
            req.wait()
            t1 = ctx.now()
            # ---- commit block ----
            prev = s["t_pure"]
            k = i + 1
            s["t_pure"] = prev + ((t1 - t0) - prev) / k  # running mean
            return
        t_pure = max(s["t_pure"], 1e-12)
        t0 = ctx.now()
        req = self._initiate(ctx, payload)
        ctx.compute(t_pure)  # overlap window sized to the pure latency
        t_after_compute = ctx.now()
        req.wait()
        t1 = ctx.now()
        t_compute = t_after_compute - t0
        overlap = max(0.0, min(1.0, 1.0 - (t1 - t0 - t_compute) / t_pure)) * 100.0
        # ---- commit block ----
        s["overlaps"] = s["overlaps"] + [overlap]

    def finalize(self, ctx: AppContext):
        overlaps = ctx.state["overlaps"]
        return {
            "overlap_pct": float(np.mean(overlaps)) if overlaps else 0.0,
            "t_pure": ctx.state["t_pure"],
        }
