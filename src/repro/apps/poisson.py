"""Poisson solver: conjugate gradient with *non-blocking collectives only*.

The paper's Poisson Solver (Hoefler et al.'s non-blocking-collective CG)
uses no point-to-point traffic and a medium collective rate (Table 1:
21.3 coll/s, p2p = NA).  Because every collective is non-blocking, the
2PC baseline cannot run it — the harness reports NA, as the paper does
(Figure 7).

The math is a real distributed CG on the 1D Laplacian ``A = tridiag(-1,
2, -1)``; neighbour boundary values travel in an ``Iallgather`` and the
dot products in ``Iallreduce``, each overlapped with local compute.
"""

from __future__ import annotations

import numpy as np

from .base import AppContext, MpiApp

__all__ = ["PoissonCG"]


class PoissonCG(MpiApp):
    """Non-blocking-collective conjugate gradient for -u'' = f."""

    name = "poisson"

    def __init__(
        self,
        niters: int = 30,
        *,
        local_n: int = 64,
        base_compute: float = 2.0e-2,
        rel_error: float = 0.01,
        memory_bytes: int = 200 << 20,
    ):
        super().__init__(niters)
        self.local_n = local_n
        self.base_compute = base_compute
        self.rel_error = rel_error
        self.memory_bytes = memory_bytes

    def setup(self, ctx: AppContext) -> None:
        ctx.declare_memory(self.memory_bytes)
        m = self.local_n
        # Right-hand side: f = 1 on the whole domain (nontrivial solution).
        b = np.ones(m)
        x = np.zeros(m)
        ctx.state["b"] = b
        ctx.state["x"] = x
        ctx.state["r"] = b.copy()  # r = b - A@0
        ctx.state["p"] = b.copy()
        ctx.state["rs"] = None  # filled by first step
        ctx.state["res_hist"] = []
        ctx.state["converged"] = False

    def _apply_laplacian(self, ctx: AppContext, p: np.ndarray, bounds) -> np.ndarray:
        me, n = ctx.rank, ctx.nprocs
        left_ghost = bounds[me - 1][1] if me > 0 else 0.0
        right_ghost = bounds[me + 1][0] if me < n - 1 else 0.0
        ap = 2.0 * p
        ap[:-1] -= p[1:]
        ap[1:] -= p[:-1]
        ap[0] -= left_ghost
        ap[-1] -= right_ghost
        return ap

    def step(self, ctx: AppContext, i: int) -> None:
        s = ctx.state
        if s["converged"]:
            # Converged: idle iteration (keeps step counts deterministic).
            ctx.compute(self.base_compute * 0.01)
            return
        p, r, x = s["p"], s["r"], s["x"]

        # Boundary exchange via non-blocking allgather, overlapped.
        breq = ctx.world.iallgather((float(p[0]), float(p[-1])))
        ctx.compute_jittered(self.base_compute * 0.4, i, "interior")
        bounds = breq.wait()
        ap = self._apply_laplacian(ctx, p, bounds)

        # rs (first iteration computes it; later carried in state).
        if s["rs"] is None:
            rs_req = ctx.world.iallreduce(float(r @ r))
            ctx.compute_jittered(self.base_compute * 0.1, i, "rs0")
            rs = rs_req.wait()
        else:
            rs = s["rs"]

        pap_req = ctx.world.iallreduce(float(p @ ap))
        ctx.compute_jittered(self.base_compute * 0.25, i, "pap")
        pap = pap_req.wait()
        alpha = rs / max(pap, 1e-300)
        new_x = x + alpha * p
        new_r = r - alpha * ap

        rsn_req = ctx.world.iallreduce(float(new_r @ new_r))
        ctx.compute_jittered(self.base_compute * 0.25, i, "rsnew")
        rs_new = rsn_req.wait()
        new_p = new_r + (rs_new / max(rs, 1e-300)) * p

        rhs_norm = np.sqrt(ctx.nprocs * self.local_n)  # ||b|| with b = 1
        rel = float(np.sqrt(rs_new)) / rhs_norm

        # ---- commit block (no MPI calls below) ----
        s["x"] = new_x
        s["r"] = new_r
        s["p"] = new_p
        s["rs"] = rs_new
        s["res_hist"] = s["res_hist"] + [rel]
        s["converged"] = bool(rel < self.rel_error)

    def finalize(self, ctx: AppContext):
        s = ctx.state
        return {
            "converged": s["converged"],
            "rel_residual": s["res_hist"][-1] if s["res_hist"] else None,
            "x_norm": float(np.linalg.norm(s["x"])),
            "iters_run": len(s["res_hist"]),
        }
