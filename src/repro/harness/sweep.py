"""Declarative cartesian sweeps over :class:`RunSpec` — scenario studies
as one-liners.

The paper's central claim is that the CC protocol stays cheap across
protocols × applications × scales (Figures 5-9).  Exploring a new cell
of that matrix used to mean hand-writing a plan/fold pair; a
:class:`Sweep` instead *declares* the grid:

    Sweep(
        "scale_grid",
        axes={"app": ("minivasp", "comd"), "protocol": ("native", "2pc", "cc"),
              "nprocs": (4, 8, 16)},
        base={"seed": 0},
        derive={"ppn": lambda p: max(p["nprocs"] // 2, 1)},
        mask=MASKS["2pc-nonblocking"],
    )

and expands it into a deduplicated spec batch:

* **Axes** are swept in declaration order (cartesian product, values in
  the given order) — the expansion is deterministic and hash-stable
  (:meth:`Sweep.signature`), never touching set/dict iteration order.
* **Base** entries are constants merged into every point; an axis of the
  same name overrides the base value.
* **Derive** entries are per-point computed columns (e.g. ``ppn`` from
  ``nprocs``, or a protocol-dependent checkpoint schedule); they join
  the point, the table, and the spec like axis values.
* **Masks** annotate combinations that must not run — the paper's NA
  cells, e.g. 2PC × non-blocking collectives — with an ``na_reason``
  *before* simulation, instead of crashing mid-sweep.  A point a mask
  passes but :class:`RunSpec` rejects (e.g. ``native`` ×
  ``checkpoint_fractions``) also folds to an NA cell carrying the
  :class:`SpecError` message.
* Point keys that are not spec fields flow into ``app_kwargs``
  (``niters``, ``kind``, ``nbytes``, …), and a truthy ``restart`` key
  builds checkpoint → restart chains (see :meth:`RunSpec.from_point`).
  Restart cells are cheap to re-sweep: once a parent's committed images
  sit in the result cache's image tier, the engine schedules restarts
  without re-simulating (or even re-planning) the parent runs.
  **Meta** keys are grid-only: they feed derivation, masks, and the
  table (an ``n_ckpts`` axis a schedule is derived from) but are
  stripped before the spec is built.

:meth:`Sweep.specs` is the deduplicated executable batch (submit it via
``ExperimentEngine.run_sweep``), and :meth:`Sweep.fold` pivots the
engine's result map back into the existing
:class:`~repro.harness.experiments.ExperimentResult` table/series
shapes, including per-protocol overhead-vs-baseline pivots.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence, TYPE_CHECKING

from ..apps import app_uses_nonblocking
from ..util.hashing import stable_json_hash
from ..util.records import Series
from ..util.stats import overhead_pct
from .runner import RunResult
from .spec import RunSpec, SpecError, spec_hash

if TYPE_CHECKING:  # pragma: no cover
    from .experiments import ExperimentResult, FigurePlan

__all__ = [
    "Sweep",
    "SweepCell",
    "SweepError",
    "MASKS",
    "mask_2pc_nonblocking",
    "mask_paper_memory_limit",
]


class SweepError(ValueError):
    """Malformed sweep declaration (bad axes, masks, or metrics)."""


#: Value types rendered as point columns; anything else (storage/param
#: model objects) still reaches the spec but stays out of the table.
_DISPLAY_TYPES = (bool, int, float, str, type(None), tuple)


# --------------------------------------------------------------------- #
# Built-in NA masks
# --------------------------------------------------------------------- #

def mask_2pc_nonblocking(point: Mapping[str, Any]) -> str | None:
    """The paper's flagship NA cell: MANA's 2PC cannot wrap non-blocking
    collectives (Sections 2.2 and 5.2)."""
    if point.get("protocol") != "2pc":
        return None
    app = point.get("app")
    if app is None:
        return None
    try:
        nonblocking = app_uses_nonblocking(app, point)
    except ValueError:
        return None  # unknown app: reported by spec construction instead
    if nonblocking:
        return "2PC does not support non-blocking collectives (paper §2.2, §5.2)"
    return None


def mask_paper_memory_limit(point: Mapping[str, Any]) -> str | None:
    """Cells the paper itself omits: alltoall/allgather buffers grow with
    p² × message size past the default memory limit (Section 5.1)."""
    if (
        point.get("kind") in ("alltoall", "allgather")
        and point.get("nbytes", 0) >= (1 << 20)
        and point.get("nprocs", 0) > 16
    ):
        return "alltoall/allgather at >=1MB beyond 16 procs exceeds the memory limit"
    return None


#: Named masks for the CLI (``repro-mpi sweep --mask <name>``).
MASKS: dict[str, Callable[[Mapping[str, Any]], "str | None"]] = {
    "2pc-nonblocking": mask_2pc_nonblocking,
    "paper-memory-limit": mask_paper_memory_limit,
}


# --------------------------------------------------------------------- #
# Metrics the fold knows by name
# --------------------------------------------------------------------- #

def _first_committed(result: RunResult):
    committed = [c for c in result.checkpoints if c.committed]
    return committed[0] if committed else None


def _metric_ckpt_time(result: RunResult):
    rec = _first_committed(result)
    return None if rec is None else rec.checkpoint_time


def _metric_ckpt_count(result: RunResult):
    return sum(1 for c in result.checkpoints if c.committed)


#: name -> (column header, extractor).  Extractors may return None
#: (rendered as "-") when the measurement does not apply to the cell.
METRICS: dict[str, tuple[str, Callable[[RunResult], Any]]] = {
    "runtime": ("runtime (s)", lambda r: r.runtime),
    "coll_calls": ("coll calls", lambda r: r.coll_calls),
    "p2p_calls": ("p2p calls", lambda r: r.p2p_calls),
    "sim_events": ("events", lambda r: r.sim_events),
    "ckpt_time": ("ckpt (s)", _metric_ckpt_time),
    "ckpt_count": ("ckpts", _metric_ckpt_count),
    "restart_ready": ("restart ready (s)", lambda r: r.restart_ready_time),
    "restart_read": ("restart read (s)", lambda r: r.restart_read_time),
}


@dataclass(frozen=True)
class SweepCell:
    """One expanded grid point: its coordinates and its job (or NA)."""

    #: Ordered ``(name, value)`` pairs: axes first (declaration order),
    #: then derived columns.
    point: tuple[tuple[str, Any], ...]
    spec: "RunSpec | None"
    na_reason: str = ""

    @property
    def values(self) -> dict[str, Any]:
        return dict(self.point)

    def label(self) -> str:
        return "/".join(str(v) for _, v in self.point)


class Sweep:
    """A declarative cartesian scenario grid over :class:`RunSpec`."""

    def __init__(
        self,
        name: str,
        axes: Mapping[str, Sequence[Any]],
        *,
        base: Mapping[str, Any] | None = None,
        derive: "Mapping[str, Callable[[dict], Any]] | None" = None,
        mask: "Callable | Sequence[Callable] | None" = None,
        meta: Sequence[str] = (),
    ):
        if not axes:
            raise SweepError("a sweep needs at least one axis")
        self.name = str(name)
        self.axes: dict[str, tuple[Any, ...]] = {}
        for axis, values in axes.items():
            if not isinstance(axis, str):
                raise SweepError(f"axis names must be str, got {axis!r}")
            if isinstance(values, (set, frozenset)):
                raise SweepError(
                    f"axis {axis!r} values must be an ordered sequence, not a "
                    "set (set iteration order would make the expansion "
                    "hash-unstable)"
                )
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
                raise SweepError(
                    f"axis {axis!r} values must be a list/tuple of values, "
                    f"got {values!r}"
                )
            if not values:
                raise SweepError(f"axis {axis!r} has no values")
            self.axes[axis] = tuple(values)
        self.base = dict(base or {})
        self.derive = dict(derive or {})
        for derived in self.derive:
            if derived in self.axes:
                raise SweepError(
                    f"derived column {derived!r} collides with an axis"
                )
        if mask is None:
            self.masks: tuple[Callable, ...] = ()
        elif callable(mask):
            self.masks = (mask,)
        else:
            self.masks = tuple(mask)
        for m in self.masks:
            if not callable(m):
                raise SweepError(f"mask {m!r} is not callable")
        #: Grid-only keys: they parameterize derivation, masking, and
        #: the table (e.g. an ``n_ckpts`` axis a schedule derives from)
        #: but are stripped from the point before spec construction.
        self.meta = tuple(meta)
        for name in self.meta:
            if name not in self.axes and name not in self.base and name not in self.derive:
                raise SweepError(
                    f"meta key {name!r} names no axis, base, or derived column"
                )
        self._cells: tuple[SweepCell, ...] | None = None

    # ----------------------------------------------------------------- #
    # Expansion
    # ----------------------------------------------------------------- #

    def cells(self) -> tuple[SweepCell, ...]:
        """Every grid point, in deterministic declaration order."""
        if self._cells is None:
            self._cells = tuple(self._expand())
        return self._cells

    def _expand(self):
        axis_names = list(self.axes)
        for combo in itertools.product(*(self.axes[a] for a in axis_names)):
            point = dict(self.base)
            point.update(zip(axis_names, combo))
            # Point columns: base constants (scalar-ish only — a storage
            # model is a spec ingredient, not a table column), then axes
            # (an axis overriding a base constant shows once, with the
            # axis value), then derived columns.
            seen: dict[str, Any] = {}
            for name, value in self.base.items():
                if (
                    name not in self.axes
                    and name not in self.derive
                    and isinstance(value, _DISPLAY_TYPES)
                ):
                    seen[name] = value
            for name in axis_names:
                seen[name] = point[name]
            for derived, fn in self.derive.items():
                value = fn(dict(point))
                point[derived] = value
                if isinstance(value, _DISPLAY_TYPES):
                    seen[derived] = value
            coords = tuple(seen.items())
            reason = ""
            for m in self.masks:
                verdict = m(dict(point))
                if verdict:
                    reason = str(verdict)
                    break
            if reason:
                yield SweepCell(coords, None, reason)
                continue
            for name in self.meta:
                point.pop(name, None)
            try:
                # RunSpec.create canonicalizes app aliases and rejects
                # unknown names: a typo'd app axis fails the whole sweep
                # (ValueError with the known-app list) up front, while a
                # structurally impossible point folds to an NA cell.
                spec = RunSpec.from_point(point)
            except SpecError as exc:
                yield SweepCell(coords, None, str(exc))
                continue
            yield SweepCell(coords, spec)

    def specs(self) -> list[RunSpec]:
        """The deduplicated executable batch (first-occurrence order)."""
        unique: dict[RunSpec, None] = {}
        for cell in self.cells():
            if cell.spec is not None:
                unique.setdefault(cell.spec, None)
        return list(unique)

    def signature(self) -> str:
        """Stable content hash of the whole expansion.

        Identical declarations produce identical signatures across
        processes and platforms; any change to an axis value, mask
        verdict, derived column, or spec identity changes it.
        """
        payload = {
            "name": self.name,
            "cells": [
                [
                    [[k, repr(v)] for k, v in cell.point],
                    None if cell.spec is None else spec_hash(cell.spec),
                    cell.na_reason,
                ]
                for cell in self.cells()
            ],
        }
        return stable_json_hash(payload)

    # ----------------------------------------------------------------- #
    # Folding results back into tables/series
    # ----------------------------------------------------------------- #

    def column_names(self) -> list[str]:
        """The point columns, in display order."""
        out: dict[str, None] = {}
        for cell in self.cells():
            for key, _ in cell.point:
                out.setdefault(key)
        return list(out)

    def plan(self, **fold_kwargs) -> "FigurePlan":
        """This sweep as a figure plan: specs + a bound fold.

        The fold arguments are validated *now*, not when the fold runs:
        a typo'd pivot/metric must fail before hours of simulation, not
        after.
        """
        from .experiments import FigurePlan

        self._check_fold_args(**fold_kwargs)
        return FigurePlan(
            self.name,
            self.specs(),
            lambda results: self.fold(results, **fold_kwargs),
        )

    def _check_fold_args(
        self,
        *,
        metrics=None,
        pivot: str | None = None,
        baseline: Any = None,
        x_axis: str | None = None,
        title: str | None = None,
    ) -> None:
        """Raise :class:`SweepError` for fold arguments that cannot work."""
        self._resolve_metrics(metrics)
        if pivot is None:
            if baseline is not None or x_axis is not None:
                raise SweepError("baseline/x_axis need a pivot axis")
            return
        if pivot not in self.axes:
            raise SweepError(f"pivot {pivot!r} is not a sweep axis")
        if baseline is not None and baseline not in self.axes[pivot]:
            raise SweepError(
                f"baseline {baseline!r} is not a value of axis {pivot!r}"
            )
        if x_axis is not None and (x_axis == pivot or x_axis not in self.axes):
            raise SweepError(f"x_axis {x_axis!r} must be a non-pivot sweep axis")

    def fold(
        self,
        results: Mapping[RunSpec, RunResult],
        *,
        metrics: "Sequence[str | tuple[str, Callable]] | None" = None,
        pivot: str | None = None,
        baseline: Any = None,
        x_axis: str | None = None,
        title: str | None = None,
    ) -> "ExperimentResult":
        """Pivot the engine's result map into an :class:`ExperimentResult`.

        Flat mode (default): one row per cell — point columns then one
        column per metric; NA cells render "NA" and carry their reason
        as a note.

        Pivot mode (``pivot="protocol"``): rows are grouped by every
        axis *except* the pivot; each pivot value contributes a metric
        column, and with ``baseline`` set, every non-baseline value also
        gets an overhead-% column.  With ``x_axis`` naming a numeric
        group axis, the same data is emitted as series (the existing
        figure record shape).
        """
        from .experiments import ExperimentResult

        self._check_fold_args(
            metrics=metrics, pivot=pivot, baseline=baseline, x_axis=x_axis
        )
        chosen = self._resolve_metrics(metrics)
        result = ExperimentResult(
            name=self.name,
            title=title or f"Sweep: {self.name} ({len(self.cells())} cells)",
        )
        if pivot is None:
            self._fold_flat(result, results, chosen)
        else:
            self._fold_pivot(
                result, results, chosen, pivot, baseline, x_axis
            )
        return result

    def _resolve_metrics(self, metrics) -> list[tuple[str, Callable]]:
        if metrics is None:
            metrics = ("runtime",)
        out: list[tuple[str, Callable]] = []
        for metric in metrics:
            if isinstance(metric, str):
                try:
                    out.append(METRICS[metric])
                except KeyError:
                    raise SweepError(
                        f"unknown metric {metric!r}; expected one of "
                        f"{sorted(METRICS)} or a (header, callable) pair"
                    ) from None
            else:
                header, fn = metric
                if not callable(fn):
                    raise SweepError(f"metric {header!r} extractor is not callable")
                out.append((str(header), fn))
        return out

    def _cell_result(
        self, cell: SweepCell, results: Mapping[RunSpec, RunResult]
    ) -> "tuple[RunResult | None, str]":
        """(result, na_reason) for one cell; engine-time NA included."""
        if cell.spec is None:
            return None, cell.na_reason
        try:
            run = results[cell.spec]
        except KeyError:
            raise SweepError(
                f"engine results are missing sweep cell {cell.label()!r}; "
                "fold the same sweep you executed"
            ) from None
        if run.na_reason:
            return None, run.na_reason
        return run, ""

    def _fold_flat(self, result, results, chosen) -> None:
        columns = self.column_names()
        result.headers = columns + [header for header, _ in chosen]
        for cell in self.cells():
            values = cell.values
            row = [values.get(c, "-") for c in columns]
            run, na_reason = self._cell_result(cell, results)
            if run is None:
                row += ["NA"] * len(chosen)
                result.add_note(f"NA[{cell.label()}]: {na_reason}")
            else:
                row += [_render(fn(run)) for _, fn in chosen]
            result.rows.append(row)

    def _fold_pivot(
        self, result, results, chosen, pivot, baseline, x_axis
    ) -> None:
        header, fn = chosen[0]
        group_axes = [a for a in self.axes if a != pivot]
        pivot_values = self.axes[pivot]

        groups: dict[tuple, dict[Any, tuple]] = {}
        for cell in self.cells():
            values = cell.values
            key = tuple(values[a] for a in group_axes)
            groups.setdefault(key, {})[values[pivot]] = self._cell_result(
                cell, results
            )

        result.headers = list(group_axes)
        for pv in pivot_values:
            result.headers.append(f"{pv} {header}")
        overhead_values = [
            pv for pv in pivot_values if baseline is not None and pv != baseline
        ]
        for pv in overhead_values:
            result.headers.append(f"{pv} %")

        series: dict[Any, Series] = {}
        if x_axis is not None:
            x_index = group_axes.index(x_axis)
            label_axes = [
                (i, a) for i, a in enumerate(group_axes) if a != x_axis
            ]
            result.x_label = x_axis

        def record_series(key, suffix, x, y) -> None:
            prefix = "/".join(str(key[i]) for i, _ in label_axes)
            label = f"{prefix + '/' if prefix else ''}{suffix}"
            series.setdefault(label, Series(label)).add(x, y)

        for key, by_pivot in groups.items():
            row: list[Any] = list(key)
            measured: dict[Any, float | None] = {}
            for pv in pivot_values:
                run, na_reason = by_pivot.get(pv, (None, "cell not swept"))
                if run is None:
                    measured[pv] = None
                    row.append("NA")
                    result.add_note(
                        f"NA[{'/'.join(str(k) for k in key)}/{pv}]: {na_reason}"
                    )
                else:
                    value = fn(run)
                    measured[pv] = None if value is None else float(value)
                    row.append(_render(value))
                if (
                    x_axis is not None
                    and baseline is None
                    and measured.get(pv) is not None
                ):
                    # No baseline: series carry the raw metric.
                    record_series(key, f"{pv} {header}", key[x_index], measured[pv])
            base_value = measured.get(baseline) if baseline is not None else None
            for pv in overhead_values:
                value = measured.get(pv)
                if value is None or not base_value:
                    row.append("NA")
                    continue
                pct = overhead_pct(value, base_value)
                row.append(f"{pct:.1f}")
                if x_axis is not None:
                    record_series(key, f"{pv} %", key[x_index], pct)
            result.rows.append(row)
        result.series = list(series.values())


def _render(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
