"""Per-figure experiment drivers (paper Section 5).

Every table and figure in the paper's evaluation has a function here
that runs the corresponding (scaled-down) experiment and returns an
:class:`ExperimentResult` with the same rows/series the paper reports.
Scale knobs default to laptop-friendly sizes; pass larger ``procs``
lists to approach the paper's 128-2048 range.

Architecture: each figure is split into a *planner* that builds the
declarative :class:`RunSpec` list for every cell (``plan_fig7`` etc.)
and a *fold* that turns the engine's ``{spec: RunResult}`` map back
into the rendered table.  The figure functions (``fig7`` etc.) submit
one plan to an :class:`ExperimentEngine`; :func:`run_plans` submits
*several figures as one batch*, which is how ``repro-mpi all`` dedupes
the native baselines shared by Table 1, Figure 7, and Figure 8, and
how Figure 9's probe/checkpoint/restart chains each simulate once.

The expected *shapes* (who wins, where NA appears, where the dip is)
are documented in DESIGN.md §4 and validated by tests/benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..netmodel import StorageModel
from ..util.records import Series, format_series_table, format_table
from ..util.stats import mean, overhead_pct
from .engine import ExperimentEngine
from .runner import RunResult
from .spec import RunSpec
from .sweep import MASKS, Sweep, mask_paper_memory_limit

__all__ = [
    "ExperimentResult",
    "FigurePlan",
    "plan_with_scenario",
    "run_plans",
    "sweep_plan",
    "sweep_fold",
    "plan_scale_grid",
    "plan_ckpt_freq",
    "plan_restart_chain",
    "STUDIES",
    "table1",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "plan_table1",
    "plan_fig5a",
    "plan_fig5b",
    "plan_fig6",
    "plan_fig7",
    "plan_fig8",
    "plan_fig9",
    "EXPERIMENTS",
    "PLANNERS",
]

#: Default scaled message sizes matching the paper's {4 B, 1 KB, 1 MB}.
MSG_SIZES = (4, 1024, 1 << 20)
OSU_KINDS = ("bcast", "alltoall", "allreduce", "allgather")


@dataclass
class ExperimentResult:
    """Rendered-table plus raw-data result of one experiment."""

    name: str
    title: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[Any]] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    x_label: str = "x"
    notes: str = ""

    def render(self) -> str:
        parts = [f"== {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.series:
            parts.append(format_series_table(self.series, x_label=self.x_label))
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def add_note(self, line: str) -> None:
        self.notes = f"{self.notes}\n{line}" if self.notes else line


@dataclass
class FigurePlan:
    """One figure's declarative job list plus its result fold.

    ``specs`` may contain duplicates (and may overlap other plans');
    the engine dedupes.  ``fold`` receives the engine's result map and
    must look results up by the exact spec values it planned.
    """

    name: str
    specs: list[RunSpec]
    fold: Callable[[Mapping[RunSpec, RunResult]], ExperimentResult]


def plan_with_scenario(plan: FigurePlan, scenario: str) -> FigurePlan:
    """Re-plan a figure under a scenario without touching its fold.

    Every spec (including restart ancestry) gets the scenario stamped
    in; the fold still looks results up by the specs it originally
    planned, so the wrapper re-keys the engine's result map back to the
    scenario-free specs before delegating.
    """
    mapping = {
        spec: spec.with_scenario(scenario)
        for spec in dict.fromkeys(plan.specs)
    }

    def fold(results: Mapping[RunSpec, RunResult]) -> ExperimentResult:
        return plan.fold({orig: results[new] for orig, new in mapping.items()})

    return FigurePlan(plan.name, [mapping[s] for s in plan.specs], fold)


def run_plans(
    plans: Sequence[FigurePlan], engine: ExperimentEngine | None = None
) -> list[ExperimentResult]:
    """Run several figures as ONE engine batch and fold each result.

    Submitting the union lets the engine dedupe cells shared between
    figures (the paper's sweeps re-measure many identical baselines).
    """
    engine = engine or ExperimentEngine()
    results = engine.run_batch([s for p in plans for s in p.specs])
    return [p.fold(results) for p in plans]


def _run_single(plan: FigurePlan, engine: ExperimentEngine | None) -> ExperimentResult:
    return run_plans([plan], engine)[0]


# --------------------------------------------------------------------- #
# Protocol-sweep cells (the shape `_run_protocols` used to run inline)
# --------------------------------------------------------------------- #

def _protocol_cell(
    app: str,
    app_kwargs: Mapping[str, Any],
    nprocs: int,
    protocols: Sequence[str],
    *,
    ppn: int | None = None,
    seed: int = 0,
    repeats: int = 1,
) -> dict[str, list[RunSpec]]:
    """Specs for one app under several protocols: {proto: [spec per rep]}."""
    return {
        proto: [
            RunSpec.create(
                app,
                nprocs,
                app_kwargs=app_kwargs,
                protocol=proto,
                ppn=ppn,
                seed=seed + rep,
            )
            for rep in range(repeats)
        ]
        for proto in protocols
    }


def _cell_specs(cell: dict[str, list[RunSpec]]) -> list[RunSpec]:
    return [spec for specs in cell.values() for spec in specs]


def _fold_cell(
    results: Mapping[RunSpec, RunResult], cell: dict[str, list[RunSpec]]
) -> tuple[dict[str, list[float] | None], dict[str, str]]:
    """Per-protocol runtimes; NA protocols map to None with the reason.

    This replaces the old inline ``_run_protocols``: instead of letting
    an :class:`UnsupportedOperationError` unwind the whole sweep, the
    engine records the refusal per cell and the fold surfaces *why* the
    cell is NA alongside the None.
    """
    times: dict[str, list[float] | None] = {}
    reasons: dict[str, str] = {}
    for proto, specs in cell.items():
        values: list[float] = []
        for spec in specs:
            run = results[spec]
            if run.na_reason:
                times[proto] = None
                reasons[proto] = run.na_reason
                break
            values.append(run.runtime)
        else:
            times[proto] = values
    return times, reasons


def _note_na(
    result: ExperimentResult, label: str, reasons: Mapping[str, str]
) -> None:
    for proto in sorted(reasons):
        result.add_note(f"NA[{label}/{proto}]: {reasons[proto]}")


# --------------------------------------------------------------------- #
# Table 1: collective and p2p call rates per application
# --------------------------------------------------------------------- #

def plan_table1(
    nprocs: int = 16, *, ppn: int | None = 8, seed: int = 0
) -> FigurePlan:
    configs = [
        ("osu (bcast 4B)", "osu", {"niters": 400, "kind": "bcast", "nbytes": 4}),
        ("minivasp", "minivasp", {"niters": 12}),
        ("poisson", "poisson", {"niters": 20}),
        ("comd", "comd", {"niters": 40}),
        ("lammps", "lammps", {"niters": 60}),
        ("sw4", "sw4", {"niters": 12}),
    ]
    cells = [
        (
            label,
            RunSpec.create(
                app, nprocs, app_kwargs=kwargs, protocol="native", ppn=ppn, seed=seed
            ),
        )
        for label, app, kwargs in configs
    ]

    def fold(results: Mapping[RunSpec, RunResult]) -> ExperimentResult:
        result = ExperimentResult(
            name="table1",
            title=f"Table 1: communication call rates ({nprocs} procs)",
            headers=["application", "coll calls/s", "p2p calls/s"],
        )
        for label, spec in cells:
            r = results[spec]
            p2p = f"{r.p2p_rate:.1f}" if r.p2p_calls else "NA"
            result.rows.append([label, f"{r.coll_rate:.1f}", p2p])
        return result

    return FigurePlan("table1", [spec for _, spec in cells], fold)


def table1(
    nprocs: int = 16,
    *,
    ppn: int | None = 8,
    seed: int = 0,
    engine: ExperimentEngine | None = None,
) -> ExperimentResult:
    """Rates of communication calls per second (paper Table 1).

    The paper's ordering — OSU >> VASP >> Poisson >> CoMD > LAMMPS > SW4
    for collectives, and LAMMPS-heavy p2p — is scale-robust because the
    rates are per-rank properties of each app's step structure.
    """
    return _run_single(plan_table1(nprocs, ppn=ppn, seed=seed), engine)


# --------------------------------------------------------------------- #
# Figure 5a: blocking OSU overhead, 2PC vs CC
# --------------------------------------------------------------------- #

def plan_fig5a(
    procs: Sequence[int] = (8, 16, 32),
    *,
    kinds: Sequence[str] = OSU_KINDS,
    sizes: Sequence[int] = MSG_SIZES,
    iters: int = 60,
    seed: int = 0,
    repeats: int = 1,
) -> FigurePlan:
    cells = []
    for kind in kinds:
        for size in sizes:
            for p in procs:
                if _memory_limited(kind, size, p):
                    continue
                cell = _protocol_cell(
                    "osu",
                    {"niters": iters, "kind": kind, "nbytes": size, "blocking": True},
                    p,
                    ("native", "2pc", "cc"),
                    ppn=max(p // 2, 1),
                    seed=seed,
                    repeats=repeats,
                )
                cells.append((kind, size, p, cell))

    def fold(results: Mapping[RunSpec, RunResult]) -> ExperimentResult:
        result = ExperimentResult(
            name="fig5a",
            title="Figure 5a: OSU blocking collectives, runtime overhead % vs native",
            headers=["benchmark", "msg", "procs", "2PC %", "CC %"],
            notes="(alltoall/allgather at 1MB limited to 16 procs — memory, as in the paper)",
        )
        for kind, size, p, cell in cells:
            times, reasons = _fold_cell(results, cell)
            base = mean(times["native"])
            o2 = overhead_pct(mean(times["2pc"]), base)
            oc = overhead_pct(mean(times["cc"]), base)
            result.rows.append(
                [f"{kind}", _fmt_size(size), p, f"{o2:.1f}", f"{oc:.1f}"]
            )
            _note_na(result, f"{kind}/{_fmt_size(size)}/{p}", reasons)
        return result

    return FigurePlan(
        "fig5a", [s for _, _, _, cell in cells for s in _cell_specs(cell)], fold
    )


def fig5a(
    procs: Sequence[int] = (8, 16, 32),
    *,
    kinds: Sequence[str] = OSU_KINDS,
    sizes: Sequence[int] = MSG_SIZES,
    iters: int = 60,
    seed: int = 0,
    repeats: int = 1,
    engine: ExperimentEngine | None = None,
) -> ExperimentResult:
    """Blocking-collective runtime overhead: 2PC vs CC (Figure 5a)."""
    plan = plan_fig5a(
        procs, kinds=kinds, sizes=sizes, iters=iters, seed=seed, repeats=repeats
    )
    return _run_single(plan, engine)


# --------------------------------------------------------------------- #
# Figure 5b: non-blocking OSU overhead (CC only; 2PC = NA)
# --------------------------------------------------------------------- #

def plan_fig5b(
    procs: Sequence[int] = (8, 16, 32),
    *,
    kinds: Sequence[str] = OSU_KINDS,
    sizes: Sequence[int] = MSG_SIZES,
    iters: int = 60,
    seed: int = 0,
) -> FigurePlan:
    cells = []
    for kind in kinds:
        for size in sizes:
            for p in procs:
                if _memory_limited(kind, size, p):
                    continue
                cell = _protocol_cell(
                    "osu",
                    {"niters": iters, "kind": kind, "nbytes": size, "blocking": False},
                    p,
                    ("native", "2pc", "cc"),
                    ppn=max(p // 2, 1),
                    seed=seed,
                )
                cells.append((kind, size, p, cell))

    def fold(results: Mapping[RunSpec, RunResult]) -> ExperimentResult:
        result = ExperimentResult(
            name="fig5b",
            title="Figure 5b: OSU non-blocking collectives, CC overhead % vs native "
            "(2PC does not support non-blocking collectives)",
            headers=["benchmark", "msg", "procs", "2PC %", "CC %"],
        )
        for kind, size, p, cell in cells:
            times, reasons = _fold_cell(results, cell)
            base = mean(times["native"])
            # The paper's central claim for this figure: 2PC *must*
            # reject non-blocking collectives.  An assert would vanish
            # under `python -O`, so check explicitly.
            if times["2pc"] is not None:
                raise RuntimeError(
                    f"2PC unexpectedly ran non-blocking {kind} at "
                    f"{_fmt_size(size)}/{p} procs — it must reject "
                    "non-blocking collectives (paper Sections 2.2, 5.2)"
                )
            oc = overhead_pct(mean(times["cc"]), base)
            result.rows.append(
                [f"i{kind}", _fmt_size(size), p, "NA", f"{oc:.1f}"]
            )
            _note_na(result, f"i{kind}/{_fmt_size(size)}/{p}", reasons)
        return result

    return FigurePlan(
        "fig5b", [s for _, _, _, cell in cells for s in _cell_specs(cell)], fold
    )


def fig5b(
    procs: Sequence[int] = (8, 16, 32),
    *,
    kinds: Sequence[str] = OSU_KINDS,
    sizes: Sequence[int] = MSG_SIZES,
    iters: int = 60,
    seed: int = 0,
    engine: ExperimentEngine | None = None,
) -> ExperimentResult:
    """Non-blocking collective overhead under CC (Figure 5b)."""
    plan = plan_fig5b(procs, kinds=kinds, sizes=sizes, iters=iters, seed=seed)
    return _run_single(plan, engine)


# --------------------------------------------------------------------- #
# Figure 6: communication/computation overlap, native vs CC
# --------------------------------------------------------------------- #

def plan_fig6(
    procs: Sequence[int] = (8, 16),
    *,
    kinds: Sequence[str] = OSU_KINDS,
    sizes: Sequence[int] = (1024, 1 << 20),
    iters: int = 40,
    seed: int = 0,
) -> FigurePlan:
    cells = []
    for kind in kinds:
        for size in sizes:
            for p in procs:
                cell = _protocol_cell(
                    "osu_overlap",
                    {"niters": iters, "kind": kind, "nbytes": size},
                    p,
                    ("native", "cc"),
                    ppn=max(p // 2, 1),
                    seed=seed,
                )
                cells.append((kind, size, p, cell))

    def fold(results: Mapping[RunSpec, RunResult]) -> ExperimentResult:
        result = ExperimentResult(
            name="fig6",
            title="Figure 6: overlap %% of non-blocking collectives (native vs CC)",
            headers=["benchmark", "msg", "procs", "native %", "CC %"],
        )
        for kind, size, p, cell in cells:
            values = {}
            for proto, specs in cell.items():
                run = results[specs[0]]
                values[proto] = mean([x["overlap_pct"] for x in run.per_rank])
            result.rows.append(
                [
                    f"i{kind}",
                    _fmt_size(size),
                    p,
                    f"{values['native']:.1f}",
                    f"{values['cc']:.1f}",
                ]
            )
        return result

    return FigurePlan(
        "fig6", [s for _, _, _, cell in cells for s in _cell_specs(cell)], fold
    )


def fig6(
    procs: Sequence[int] = (8, 16),
    *,
    kinds: Sequence[str] = OSU_KINDS,
    sizes: Sequence[int] = (1024, 1 << 20),
    iters: int = 40,
    seed: int = 0,
    engine: ExperimentEngine | None = None,
) -> ExperimentResult:
    """Overlap of communication and computation (Figure 6)."""
    plan = plan_fig6(procs, kinds=kinds, sizes=sizes, iters=iters, seed=seed)
    return _run_single(plan, engine)


# --------------------------------------------------------------------- #
# Figure 7: five real-world applications
# --------------------------------------------------------------------- #

def plan_fig7(
    nprocs: int = 16, *, ppn: int | None = 8, seed: int = 0, repeats: int = 2
) -> FigurePlan:
    configs = [
        ("minivasp", {"niters": 12}),
        ("sw4", {"niters": 10}),
        ("comd", {"niters": 30}),
        ("lammps", {"niters": 40}),
        ("poisson", {"niters": 20}),
    ]
    cells = [
        (
            label,
            _protocol_cell(
                label,
                kwargs,
                nprocs,
                ("native", "2pc", "cc"),
                ppn=ppn,
                seed=seed,
                repeats=repeats,
            ),
        )
        for label, kwargs in configs
    ]

    def fold(results: Mapping[RunSpec, RunResult]) -> ExperimentResult:
        result = ExperimentResult(
            name="fig7",
            title=f"Figure 7: application runtimes ({nprocs} procs), seconds (virtual)",
            headers=["application", "native", "2PC", "CC", "2PC %", "CC %"],
            notes="(Poisson uses non-blocking collectives: supported by CC, not by 2PC.)",
        )
        for label, cell in cells:
            times, reasons = _fold_cell(results, cell)
            base = mean(times["native"])
            row = [label, f"{base:.4f}"]
            if times["2pc"] is None:
                row += ["NA", f"{mean(times['cc']):.4f}", "NA"]
            else:
                row += [
                    f"{mean(times['2pc']):.4f}",
                    f"{mean(times['cc']):.4f}",
                    f"{overhead_pct(mean(times['2pc']), base):.1f}",
                ]
            row.append(f"{overhead_pct(mean(times['cc']), base):.1f}")
            result.rows.append(row)
            _note_na(result, label, reasons)
        return result

    return FigurePlan(
        "fig7", [s for _, cell in cells for s in _cell_specs(cell)], fold
    )


def fig7(
    nprocs: int = 16,
    *,
    ppn: int | None = 8,
    seed: int = 0,
    repeats: int = 2,
    engine: ExperimentEngine | None = None,
) -> ExperimentResult:
    """Real-world application runtimes: native / 2PC / CC (Figure 7)."""
    return _run_single(plan_fig7(nprocs, ppn=ppn, seed=seed, repeats=repeats), engine)


# --------------------------------------------------------------------- #
# Figure 8: VASP overhead vs process count (the 2-node dip)
# --------------------------------------------------------------------- #

def plan_fig8(
    procs: Sequence[int] = (8, 16, 32),
    *,
    ppn: int | None = None,
    seed: int = 0,
    repeats: int = 2,
    niters: int = 12,
) -> FigurePlan:
    ppn = ppn or procs[0]
    cells = [
        (
            p,
            _protocol_cell(
                "minivasp",
                {"niters": niters},
                p,
                ("native", "2pc", "cc"),
                ppn=ppn,
                seed=seed,
                repeats=repeats,
            ),
        )
        for p in procs
    ]

    def fold(results: Mapping[RunSpec, RunResult]) -> ExperimentResult:
        s2 = Series("2PC %")
        sc = Series("CC %")
        result = ExperimentResult(
            name="fig8",
            title=f"Figure 8: miniVASP runtime overhead vs process count (ppn={ppn})",
            series=[s2, sc],
            x_label="procs",
        )
        for p, cell in cells:
            times, reasons = _fold_cell(results, cell)
            base = mean(times["native"])
            s2.add(p, overhead_pct(mean(times["2pc"]), base))
            sc.add(p, overhead_pct(mean(times["cc"]), base))
            _note_na(result, f"{p}procs", reasons)
        return result

    return FigurePlan(
        "fig8", [s for _, cell in cells for s in _cell_specs(cell)], fold
    )


def fig8(
    procs: Sequence[int] = (8, 16, 32),
    *,
    ppn: int | None = None,
    seed: int = 0,
    repeats: int = 2,
    niters: int = 12,
    engine: ExperimentEngine | None = None,
) -> ExperimentResult:
    """VASP runtime overhead, 2PC vs CC, across node counts (Figure 8).

    The first entry runs on one node; doubling the process count adds
    nodes, raising the base communication cost and producing the paper's
    dip in *relative* overhead at two nodes.
    """
    plan = plan_fig8(procs, ppn=ppn, seed=seed, repeats=repeats, niters=niters)
    return _run_single(plan, engine)


# --------------------------------------------------------------------- #
# Figure 9: VASP checkpoint and restart times vs node count
# --------------------------------------------------------------------- #

def plan_fig9(
    nodes: Sequence[int] = (1, 2, 4, 8),
    *,
    ppn: int = 4,
    seed: int = 0,
    niters: int = 10,
    image_bytes_per_rank: int = 398 << 20,
) -> FigurePlan:
    storage = StorageModel(
        per_node_bandwidth=2.0e9, aggregate_bandwidth=6.0e9, base_latency=1.0
    )
    cells = []
    for n in nodes:
        nprocs = n * ppn
        for proto in ("2pc", "cc"):
            kwargs = {"niters": niters, "memory_bytes": image_bytes_per_rank}
            # Checkpoint mid-run: the fraction schedule makes the probe
            # an explicit dependent phase the engine can dedupe/cache
            # (it used to be an inline throwaway run).
            ckpt = RunSpec.create(
                "minivasp",
                nprocs,
                app_kwargs=kwargs,
                protocol=proto,
                ppn=ppn,
                seed=seed,
                checkpoint_fractions=(0.5,),
                storage=storage,
            )
            restart = RunSpec.create(
                "minivasp",
                nprocs,
                app_kwargs=kwargs,
                protocol=proto,
                ppn=ppn,
                seed=seed,
                storage=storage,
                restart_of=ckpt,
            )
            cells.append((n, proto, ckpt, restart))

    def fold(results: Mapping[RunSpec, RunResult]) -> ExperimentResult:
        series = {
            ("2pc", "ckpt"): Series("2PC ckpt (s)"),
            ("cc", "ckpt"): Series("CC ckpt (s)"),
            ("2pc", "restart"): Series("2PC restart (s)"),
            ("cc", "restart"): Series("CC restart (s)"),
        }
        for n, proto, ckpt, restart in cells:
            committed = [c for c in results[ckpt].checkpoints if c.committed]
            if not committed:
                raise RuntimeError(
                    f"no committed checkpoint at {n} nodes ({proto}); "
                    "cannot report Figure 9 for this cell"
                )
            series[(proto, "ckpt")].add(n, committed[0].checkpoint_time)
            series[(proto, "restart")].add(n, results[restart].restart_ready_time)
        return ExperimentResult(
            name="fig9",
            title=f"Figure 9: miniVASP checkpoint/restart times ({ppn} ranks per node)",
            series=list(series.values()),
            x_label="nodes",
        )

    return FigurePlan(
        "fig9", [s for _, _, ckpt, restart in cells for s in (ckpt, restart)], fold
    )


def fig9(
    nodes: Sequence[int] = (1, 2, 4, 8),
    *,
    ppn: int = 4,
    seed: int = 0,
    niters: int = 10,
    image_bytes_per_rank: int = 398 << 20,
    engine: ExperimentEngine | None = None,
) -> ExperimentResult:
    """Checkpoint and restart times, 2PC vs CC, vs node count (Figure 9)."""
    plan = plan_fig9(
        nodes,
        ppn=ppn,
        seed=seed,
        niters=niters,
        image_bytes_per_rank=image_bytes_per_rank,
    )
    return _run_single(plan, engine)


# --------------------------------------------------------------------- #
# Sweep-DSL studies: scenario grids beyond the paper's figures
# --------------------------------------------------------------------- #

def sweep_plan(sweep: Sweep, **fold_kwargs) -> FigurePlan:
    """A :class:`Sweep` as a figure plan (generic plan/fold pair).

    The plan's spec list is the sweep's deduplicated product; the fold
    is :meth:`Sweep.fold` bound to ``fold_kwargs``.  Because it is an
    ordinary :class:`FigurePlan`, sweeps batch with figures through
    :func:`run_plans` and dedupe against their cells.
    """
    return sweep.plan(**fold_kwargs)


def sweep_fold(
    sweep: Sweep, results: Mapping[RunSpec, RunResult], **fold_kwargs
) -> ExperimentResult:
    """Fold an engine result map through ``sweep`` (see :meth:`Sweep.fold`)."""
    return sweep.fold(results, **fold_kwargs)


#: Per-app default step counts for sweep studies (scaled-down sizes in
#: the same spirit as the figure defaults above).
_STUDY_NITERS = {
    "minivasp": 8,
    "poisson": 12,
    "comd": 20,
    "lammps": 30,
    "sw4": 6,
    "osu": 80,
    "osu_overlap": 30,
}


def plan_scale_grid(
    apps: Sequence[str] = ("minivasp", "comd", "poisson"),
    procs: Sequence[int] = (4, 8, 16),
    *,
    seed: int = 0,
) -> FigurePlan:
    """Scenario study: protocol × application × process-count grid.

    The whole study is one sweep declaration — per-app step counts and
    the node layout are derived columns, the paper's 2PC × non-blocking
    NA rule is a mask, and the fold pivots on protocol with native as
    the overhead baseline (series over process count, Figure-8 style).
    """
    sweep = Sweep(
        "scale_grid",
        axes={
            "app": tuple(apps),
            "protocol": ("native", "2pc", "cc"),
            "nprocs": tuple(int(p) for p in procs),
        },
        base={"seed": seed},
        derive={
            "niters": lambda p: _STUDY_NITERS.get(p["app"], 16),
            "ppn": lambda p: max(p["nprocs"] // 2, 1),
        },
        mask=MASKS["2pc-nonblocking"],
    )
    return sweep.plan(
        pivot="protocol",
        baseline="native",
        x_axis="nprocs",
        title="Scale grid: runtime and overhead % vs native, "
        "protocol × app × procs",
    )


def plan_ckpt_freq(
    n_ckpts: Sequence[int] = (1, 2, 4),
    *,
    app: str = "minivasp",
    nprocs: int = 8,
    niters: int = 10,
    seed: int = 0,
) -> FigurePlan:
    """Scenario study: checkpoint-frequency sensitivity.

    Sweeps how many evenly spaced checkpoints a run takes (the schedule
    is a derived column: ``n`` fractions of the probe runtime; native
    derives an empty schedule, so its one baseline cell dedupes across
    the whole frequency axis) and reports runtime overhead vs native.
    """
    # Fast burst-buffer-like storage: checkpoint pauses stay comparable
    # to the (scaled-down) run itself, so the frequency trend reads as
    # overhead percentages rather than multiples.
    storage = StorageModel(
        per_node_bandwidth=8.0e9, aggregate_bandwidth=2.0e10, base_latency=1e-3
    )
    sweep = Sweep(
        "ckpt_freq",
        axes={"protocol": ("native", "2pc", "cc"), "n_ckpts": tuple(n_ckpts)},
        base={
            "app": app,
            "nprocs": int(nprocs),
            "niters": int(niters),
            "memory_bytes": 4 << 20,
            "ppn": max(int(nprocs) // 2, 1),
            "seed": seed,
            "storage": storage,
        },
        derive={
            "checkpoint_fractions": lambda p: ()
            if p["protocol"] == "native"
            else tuple(
                (i + 1) / (p["n_ckpts"] + 1) for i in range(p["n_ckpts"])
            ),
        },
        meta=("n_ckpts",),
    )
    return sweep.plan(
        pivot="protocol",
        baseline="native",
        x_axis="n_ckpts",
        title=f"Checkpoint frequency: {app} runtime vs checkpoints per run "
        f"({nprocs} procs)",
    )


def plan_restart_chain(
    apps: Sequence[str] = ("minivasp", "comd"),
    *,
    nprocs: int = 4,
    seed: int = 0,
) -> FigurePlan:
    """Scenario study: checkpoint → restart recovery chains (MANA's
    headline scenario — a fresh lower half adopting committed images).

    Sweeps ``restart`` on/off per app × protocol: the ``restart=True``
    cell's checkpoint schedule moves onto a parent spec that the
    ``restart=False`` cell dedupes against, so a cold run simulates
    each chain once.  On a warm cache the parent's committed images are
    served from the result cache's image tier and the engine schedules
    restart cells as wave-0 work with zero parent simulations
    (``EngineStats.images_reused``) — this study is the cheap way to
    exercise that fast path.
    """
    # Burst-buffer-like storage (as in ckpt_freq): image write/read
    # stays comparable to the scaled-down run itself.
    storage = StorageModel(
        per_node_bandwidth=8.0e9, aggregate_bandwidth=2.0e10, base_latency=1e-3
    )
    sweep = Sweep(
        "restart_chain",
        axes={
            "app": tuple(apps),
            "protocol": ("2pc", "cc"),
            "restart": (False, True),
        },
        base={
            "nprocs": int(nprocs),
            "ppn": max(int(nprocs) // 2, 1),
            "seed": seed,
            "checkpoint_fractions": 0.5,
            "storage": storage,
            "memory_bytes": 4 << 20,
        },
        derive={"niters": lambda p: _STUDY_NITERS.get(p["app"], 16)},
        mask=MASKS["2pc-nonblocking"],
    )
    return sweep.plan(
        metrics=("runtime", "ckpt_count", "restart_ready", "restart_read"),
        title=f"Restart chains: checkpoint → restart per app × protocol "
        f"({nprocs} procs)",
    )


#: Sweep-based scenario studies.  Deliberately *not* in PLANNERS:
#: ``repro-mpi all`` regenerates exactly the paper's tables/figures;
#: studies run via ``repro-mpi sweep --study <name>``.
STUDIES = {
    "scale_grid": plan_scale_grid,
    "ckpt_freq": plan_ckpt_freq,
    "restart_chain": plan_restart_chain,
}


def _memory_limited(kind: str, size: int, procs: int) -> bool:
    """Cells the paper itself omits: alltoall/allgather buffers grow with
    p^2 x message size ("do not support a message size of 1 MB over 1024
    and 2048 processes, due to the default maximum memory limit").

    The rule itself lives in the sweep mask registry so figures and
    sweeps can never disagree about which cells the paper skips.
    """
    return (
        mask_paper_memory_limit({"kind": kind, "nbytes": size, "nprocs": procs})
        is not None
    )


def _fmt_size(nbytes: int) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes >> 20}MB"
    if nbytes >= 1024:
        return f"{nbytes >> 10}KB"
    return f"{nbytes}B"


EXPERIMENTS = {
    "table1": table1,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}

PLANNERS = {
    "table1": plan_table1,
    "fig5a": plan_fig5a,
    "fig5b": plan_fig5b,
    "fig6": plan_fig6,
    "fig7": plan_fig7,
    "fig8": plan_fig8,
    "fig9": plan_fig9,
}
