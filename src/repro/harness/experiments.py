"""Per-figure experiment drivers (paper Section 5).

Every table and figure in the paper's evaluation has a function here
that runs the corresponding (scaled-down) experiment and returns a
:class:`ExperimentResult` with the same rows/series the paper reports.
Scale knobs default to laptop-friendly sizes; pass larger ``procs``
lists to approach the paper's 128-2048 range.

The expected *shapes* (who wins, where NA appears, where the dip is)
are documented in DESIGN.md §4 and validated by tests/benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..apps import make_app_factory
from ..core import UnsupportedOperationError
from ..des import ProcessFailed
from ..netmodel import StorageModel
from ..util.records import Series, format_series_table, format_table
from ..util.stats import mean, overhead_pct
from .runner import launch_run, restart_run

__all__ = [
    "ExperimentResult",
    "table1",
    "fig5a",
    "fig5b",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "EXPERIMENTS",
]

#: Default scaled message sizes matching the paper's {4 B, 1 KB, 1 MB}.
MSG_SIZES = (4, 1024, 1 << 20)
OSU_KINDS = ("bcast", "alltoall", "allreduce", "allgather")


@dataclass
class ExperimentResult:
    """Rendered-table plus raw-data result of one experiment."""

    name: str
    title: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[Any]] = field(default_factory=list)
    series: list[Series] = field(default_factory=list)
    x_label: str = "x"
    notes: str = ""

    def render(self) -> str:
        parts = [f"== {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        if self.series:
            parts.append(format_series_table(self.series, x_label=self.x_label))
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)


def _run_protocols(factory, nprocs, protocols, *, ppn=None, seed=0, repeats=1):
    """Run one app under several protocols; returns {proto: [runtimes]}."""
    out: dict[str, list[float] | None] = {}
    for proto in protocols:
        times: list[float] | None = []
        for rep in range(repeats):
            try:
                r = launch_run(
                    factory, nprocs, protocol=proto, ppn=ppn, seed=seed + rep
                )
                times.append(r.runtime)
            except ProcessFailed as exc:
                if isinstance(exc.original, UnsupportedOperationError):
                    times = None
                    break
                raise
        out[proto] = times
    return out


# --------------------------------------------------------------------- #
# Table 1: collective and p2p call rates per application
# --------------------------------------------------------------------- #

def table1(nprocs: int = 16, *, ppn: int | None = 8, seed: int = 0) -> ExperimentResult:
    """Rates of communication calls per second (paper Table 1).

    The paper's ordering — OSU >> VASP >> Poisson >> CoMD > LAMMPS > SW4
    for collectives, and LAMMPS-heavy p2p — is scale-robust because the
    rates are per-rank properties of each app's step structure.
    """
    configs = [
        ("osu (bcast 4B)", make_app_factory("osu", niters=400, kind="bcast", nbytes=4)),
        ("minivasp", make_app_factory("minivasp", niters=12)),
        ("poisson", make_app_factory("poisson", niters=20)),
        ("comd", make_app_factory("comd", niters=40)),
        ("lammps", make_app_factory("lammps", niters=60)),
        ("sw4", make_app_factory("sw4", niters=12)),
    ]
    result = ExperimentResult(
        name="table1",
        title=f"Table 1: communication call rates ({nprocs} procs)",
        headers=["application", "coll calls/s", "p2p calls/s"],
    )
    for label, factory in configs:
        r = launch_run(factory, nprocs, protocol="native", ppn=ppn, seed=seed)
        p2p = f"{r.p2p_rate:.1f}" if r.p2p_calls else "NA"
        result.rows.append([label, f"{r.coll_rate:.1f}", p2p])
    return result


# --------------------------------------------------------------------- #
# Figure 5a: blocking OSU overhead, 2PC vs CC
# --------------------------------------------------------------------- #

def fig5a(
    procs: Sequence[int] = (8, 16, 32),
    *,
    kinds: Sequence[str] = OSU_KINDS,
    sizes: Sequence[int] = MSG_SIZES,
    iters: int = 60,
    seed: int = 0,
    repeats: int = 1,
) -> ExperimentResult:
    """Blocking-collective runtime overhead: 2PC vs CC (Figure 5a)."""
    result = ExperimentResult(
        name="fig5a",
        title="Figure 5a: OSU blocking collectives, runtime overhead % vs native",
        headers=["benchmark", "msg", "procs", "2PC %", "CC %"],
        notes="(alltoall/allgather at 1MB limited to 16 procs — memory, as in the paper)",
    )
    for kind in kinds:
        for size in sizes:
            for p in procs:
                if _memory_limited(kind, size, p):
                    continue
                factory = make_app_factory(
                    "osu", niters=iters, kind=kind, nbytes=size, blocking=True
                )
                runs = _run_protocols(
                    factory, p, ("native", "2pc", "cc"),
                    ppn=max(p // 2, 1), seed=seed, repeats=repeats,
                )
                base = mean(runs["native"])
                o2 = overhead_pct(mean(runs["2pc"]), base)
                oc = overhead_pct(mean(runs["cc"]), base)
                result.rows.append(
                    [f"{kind}", _fmt_size(size), p, f"{o2:.1f}", f"{oc:.1f}"]
                )
    return result


# --------------------------------------------------------------------- #
# Figure 5b: non-blocking OSU overhead (CC only; 2PC = NA)
# --------------------------------------------------------------------- #

def fig5b(
    procs: Sequence[int] = (8, 16, 32),
    *,
    kinds: Sequence[str] = OSU_KINDS,
    sizes: Sequence[int] = MSG_SIZES,
    iters: int = 60,
    seed: int = 0,
) -> ExperimentResult:
    """Non-blocking collective overhead under CC (Figure 5b)."""
    result = ExperimentResult(
        name="fig5b",
        title="Figure 5b: OSU non-blocking collectives, CC overhead % vs native "
        "(2PC does not support non-blocking collectives)",
        headers=["benchmark", "msg", "procs", "2PC %", "CC %"],
    )
    for kind in kinds:
        for size in sizes:
            for p in procs:
                if _memory_limited(kind, size, p):
                    continue
                factory = make_app_factory(
                    "osu", niters=iters, kind=kind, nbytes=size, blocking=False
                )
                runs = _run_protocols(
                    factory, p, ("native", "2pc", "cc"),
                    ppn=max(p // 2, 1), seed=seed,
                )
                base = mean(runs["native"])
                assert runs["2pc"] is None, "2PC must reject non-blocking collectives"
                oc = overhead_pct(mean(runs["cc"]), base)
                result.rows.append(
                    [f"i{kind}", _fmt_size(size), p, "NA", f"{oc:.1f}"]
                )
    return result


# --------------------------------------------------------------------- #
# Figure 6: communication/computation overlap, native vs CC
# --------------------------------------------------------------------- #

def fig6(
    procs: Sequence[int] = (8, 16),
    *,
    kinds: Sequence[str] = OSU_KINDS,
    sizes: Sequence[int] = (1024, 1 << 20),
    iters: int = 40,
    seed: int = 0,
) -> ExperimentResult:
    """Overlap of communication and computation (Figure 6)."""
    result = ExperimentResult(
        name="fig6",
        title="Figure 6: overlap %% of non-blocking collectives (native vs CC)",
        headers=["benchmark", "msg", "procs", "native %", "CC %"],
    )
    for kind in kinds:
        for size in sizes:
            for p in procs:
                factory = make_app_factory(
                    "osu_overlap", niters=iters, kind=kind, nbytes=size
                )
                values = {}
                for proto in ("native", "cc"):
                    r = launch_run(
                        factory, p, protocol=proto, ppn=max(p // 2, 1), seed=seed
                    )
                    values[proto] = mean([x["overlap_pct"] for x in r.per_rank])
                result.rows.append(
                    [
                        f"i{kind}",
                        _fmt_size(size),
                        p,
                        f"{values['native']:.1f}",
                        f"{values['cc']:.1f}",
                    ]
                )
    return result


# --------------------------------------------------------------------- #
# Figure 7: five real-world applications
# --------------------------------------------------------------------- #

def fig7(
    nprocs: int = 16, *, ppn: int | None = 8, seed: int = 0, repeats: int = 2
) -> ExperimentResult:
    """Real-world application runtimes: native / 2PC / CC (Figure 7)."""
    configs = [
        ("minivasp", make_app_factory("minivasp", niters=12)),
        ("sw4", make_app_factory("sw4", niters=10)),
        ("comd", make_app_factory("comd", niters=30)),
        ("lammps", make_app_factory("lammps", niters=40)),
        ("poisson", make_app_factory("poisson", niters=20)),
    ]
    result = ExperimentResult(
        name="fig7",
        title=f"Figure 7: application runtimes ({nprocs} procs), seconds (virtual)",
        headers=["application", "native", "2PC", "CC", "2PC %", "CC %"],
        notes="(Poisson uses non-blocking collectives: supported by CC, not by 2PC.)",
    )
    for label, factory in configs:
        runs = _run_protocols(
            factory, nprocs, ("native", "2pc", "cc"),
            ppn=ppn, seed=seed, repeats=repeats,
        )
        base = mean(runs["native"])
        row = [label, f"{base:.4f}"]
        if runs["2pc"] is None:
            row += ["NA", f"{mean(runs['cc']):.4f}", "NA"]
        else:
            row += [
                f"{mean(runs['2pc']):.4f}",
                f"{mean(runs['cc']):.4f}",
                f"{overhead_pct(mean(runs['2pc']), base):.1f}",
            ]
        row.append(f"{overhead_pct(mean(runs['cc']), base):.1f}")
        result.rows.append(row)
    return result


# --------------------------------------------------------------------- #
# Figure 8: VASP overhead vs process count (the 2-node dip)
# --------------------------------------------------------------------- #

def fig8(
    procs: Sequence[int] = (8, 16, 32),
    *,
    ppn: int | None = None,
    seed: int = 0,
    repeats: int = 2,
    niters: int = 12,
) -> ExperimentResult:
    """VASP runtime overhead, 2PC vs CC, across node counts (Figure 8).

    The first entry runs on one node; doubling the process count adds
    nodes, raising the base communication cost and producing the paper's
    dip in *relative* overhead at two nodes.
    """
    ppn = ppn or procs[0]
    s2 = Series("2PC %")
    sc = Series("CC %")
    for p in procs:
        factory = make_app_factory("minivasp", niters=niters)
        runs = _run_protocols(
            factory, p, ("native", "2pc", "cc"), ppn=ppn, seed=seed, repeats=repeats
        )
        base = mean(runs["native"])
        s2.add(p, overhead_pct(mean(runs["2pc"]), base))
        sc.add(p, overhead_pct(mean(runs["cc"]), base))
    return ExperimentResult(
        name="fig8",
        title=f"Figure 8: miniVASP runtime overhead vs process count (ppn={ppn})",
        series=[s2, sc],
        x_label="procs",
    )


# --------------------------------------------------------------------- #
# Figure 9: VASP checkpoint and restart times vs node count
# --------------------------------------------------------------------- #

def fig9(
    nodes: Sequence[int] = (1, 2, 4, 8),
    *,
    ppn: int = 4,
    seed: int = 0,
    niters: int = 10,
    image_bytes_per_rank: int = 398 << 20,
) -> ExperimentResult:
    """Checkpoint and restart times, 2PC vs CC, vs node count (Figure 9)."""
    storage = StorageModel(
        per_node_bandwidth=2.0e9, aggregate_bandwidth=6.0e9, base_latency=1.0
    )
    series = {
        ("2pc", "ckpt"): Series("2PC ckpt (s)"),
        ("cc", "ckpt"): Series("CC ckpt (s)"),
        ("2pc", "restart"): Series("2PC restart (s)"),
        ("cc", "restart"): Series("CC restart (s)"),
    }
    for n in nodes:
        nprocs = n * ppn
        for proto in ("2pc", "cc"):
            factory = make_app_factory(
                "minivasp", niters=niters, memory_bytes=image_bytes_per_rank
            )
            probe = launch_run(factory, nprocs, protocol=proto, ppn=ppn, seed=seed)
            r = launch_run(
                factory,
                nprocs,
                protocol=proto,
                ppn=ppn,
                seed=seed,
                checkpoint_at=[probe.runtime * 0.5],
                storage=storage,
            )
            committed = [c for c in r.checkpoints if c.committed]
            assert committed, f"no committed checkpoint at {n} nodes ({proto})"
            series[(proto, "ckpt")].add(n, committed[0].checkpoint_time)
            rs = restart_run(
                factory, committed[0].images, ppn=ppn, seed=seed, storage=storage
            )
            series[(proto, "restart")].add(n, rs.restart_ready_time)
    return ExperimentResult(
        name="fig9",
        title=f"Figure 9: miniVASP checkpoint/restart times ({ppn} ranks per node)",
        series=list(series.values()),
        x_label="nodes",
    )


def _memory_limited(kind: str, size: int, procs: int) -> bool:
    """Cells the paper itself omits: alltoall/allgather buffers grow with
    p^2 x message size ("do not support a message size of 1 MB over 1024
    and 2048 processes, due to the default maximum memory limit")."""
    return kind in ("alltoall", "allgather") and size >= (1 << 20) and procs > 16


def _fmt_size(nbytes: int) -> str:
    if nbytes >= 1 << 20:
        return f"{nbytes >> 20}MB"
    if nbytes >= 1024:
        return f"{nbytes >> 10}KB"
    return f"{nbytes}B"


EXPERIMENTS = {
    "table1": table1,
    "fig5a": fig5a,
    "fig5b": fig5b,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
}
