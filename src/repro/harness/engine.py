"""Batch experiment engine: dedupe, cache, and fan out simulated jobs.

``ExperimentEngine.run_batch`` accepts any number of :class:`RunSpec`
values — typically every cell of one or several figures at once — and:

1. **dedupes** identical specs (value equality), so e.g. the native
   miniVASP baseline shared by Figure 7, Figure 8, and Table 1 runs
   once per batch instead of once per figure;
2. **expands** dependent phases (probe runs for fraction-scheduled
   checkpoints, checkpoint runs for restarts) into explicit jobs and
   schedules them in dependency waves, so a Figure 9 cell's probe,
   checkpoint run, and restart each simulate exactly once;
3. **consults the disk cache** before simulating, so a warm rerun of
   ``repro-mpi all`` executes zero simulations — and consults the
   cache's **image tier** when planning restart chains: a restart whose
   parent's committed images are already stored needs no parent job at
   all, so it schedules as wave-0 work and the parent simulation is
   dropped from the batch (``EngineStats.images_reused``);
4. **orders every wave longest-pole-first** using a per-spec cost
   model — the wall time recorded in the cache when the spec last ran,
   falling back to a ``nprocs × niters`` heuristic — so the slowest job
   starts first and the pool never idles behind a stragglers' tail;
5. **fans out** the remaining unique jobs through a pluggable dispatch
   backend (:mod:`repro.harness.dispatch`): the default ``local-pool``
   keeps the spawn-safe ``ProcessPoolExecutor`` (``jobs=N``), ``inline``
   runs every job in-process for debugging, and ``service`` ships jobs
   over a socket to a long-lived experiment server
   (:mod:`repro.harness.service`) whose pull-model workers share the
   content-addressed cache as their artifact store.  Every backend
   applies the per-job ``max_events`` guard and honours the optional
   progress lines on stderr.

Results are keyed by spec and identical whether the batch ran serially
or in parallel — workers only ever execute independent simulations, and
folding happens in the parent process.

Declarative scenario grids submit through :meth:`ExperimentEngine.run_sweep`
(see :mod:`repro.harness.sweep`): the sweep's masked cells never reach
the engine, and its cartesian product arrives as one batch so shared
cells and probe/restart parents dedupe like any figure's.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..des.backends import (
    get_default_backend,
    resolve_backend,
    set_default_backend,
)
from .cache import ResultCache
from .dispatch import (
    DispatchBackend,
    DispatchConfig,
    create_dispatch,
    resolve_dispatch,
    resolve_service_addr,
)
from .runner import RunResult
from .spec import RunSpec, execute

__all__ = [
    "EngineStats",
    "ExperimentEngine",
    "DEFAULT_MAX_EVENTS",
    "HEURISTIC_SECONDS_PER_UNIT",
]

#: Runaway-simulation guard applied to jobs that don't set their own
#: ``max_events``.  Two orders of magnitude above the largest legitimate
#: scaled-down run; a job that trips it is wedged, not slow.
DEFAULT_MAX_EVENTS = 100_000_000

#: Rough wall seconds per ``RunSpec.cost_hint`` unit (one rank-iteration),
#: calibrated on the scaled-down figure cells.  Only used to let
#: heuristic estimates sort alongside recorded wall times; ordering, not
#: accuracy, is what matters.
HEURISTIC_SECONDS_PER_UNIT = 2e-3


@dataclass
class EngineStats:
    """What one ``run_batch`` call actually did."""

    submitted: int = 0
    unique: int = 0
    #: Dependency-phase jobs (probes, restart parents) added beyond the
    #: submitted specs.
    chained: int = 0
    cache_hits: int = 0
    executed: int = 0
    #: Parent image maps the cache's image tier actually served to
    #: executed restarts (each one is a parent simulation skipped).
    #: Counted at load time, not planning time: a blob that exists but
    #: fails verification degrades to re-simulation and is not reported.
    images_reused: int = 0
    #: Executed jobs whose scheduling cost came from a recorded wall time.
    predicted_recorded: int = 0
    #: Executed jobs scheduled by the ``nprocs × niters`` fallback.
    predicted_heuristic: int = 0
    #: Submitted specs whose crashed results were chased by the
    #: auto-recovery planner (``recover=True`` / ``recovery=`` policy).
    recoveries: int = 0
    #: Recovery legs executed across all chains (excludes initial runs).
    recovery_attempts: int = 0
    wall_time: float = 0.0

    @property
    def deduped(self) -> int:
        return self.submitted - self.unique

    @property
    def prediction_hit_rate(self) -> float:
        """Fraction of scheduled jobs with a history-based cost estimate."""
        total = self.predicted_recorded + self.predicted_heuristic
        if total == 0:
            return 0.0
        return self.predicted_recorded / total

    def summary(self) -> str:
        """One-line human-readable account (printed by the CLI)."""
        line = (
            f"engine: {self.submitted} jobs submitted, {self.deduped} deduped, "
            f"{self.chained} chained, {self.cache_hits} cache hits, "
            f"{self.executed} simulated, {self.wall_time:.1f}s wall"
        )
        if self.images_reused:
            line += f", {self.images_reused} restarts fed from image tier"
        scheduled = self.predicted_recorded + self.predicted_heuristic
        if scheduled:
            line += f", {self.prediction_hit_rate:.0%} costs from history"
        if self.recoveries:
            line += (
                f", {self.recoveries} crashed jobs recovered "
                f"({self.recovery_attempts} restart legs)"
            )
        return line


def _execute_job(
    spec: RunSpec,
    deps: dict[RunSpec, RunResult],
    guard: int | None,
    cache_dir=None,
    backend: str | None = None,
) -> tuple[RunResult, float, int]:
    """Top-level worker entry point (must be picklable by name for spawn).

    ``cache_dir`` (a path, not a live cache — workers are spawned) roots
    a local :class:`ResultCache` whose image tier feeds restart parents
    without re-simulation.  ``backend`` is the *resolved* execution
    backend forwarded from the parent engine: spawned workers start from
    a fresh interpreter where a parent-side ``set_default_backend`` (the
    ``--backend`` flag) would otherwise be lost, and parallel runs must
    agree with serial byte-for-byte.  Returns ``(result,
    elapsed_seconds, images_served)`` — the wall time is measured in the
    worker so pool queueing delays never pollute the cost model, and
    ``images_served`` counts the parent image maps the tier *actually*
    delivered (a blob that exists at planning time but fails
    verification here degrades to re-simulation, and must not be
    reported as reuse).
    """
    served = 0
    images = None
    if cache_dir is not None:
        loader = ResultCache(cache_dir).get_images

        def images(parent, index):
            nonlocal served
            found = loader(parent, index)
            if found is not None:
                served += 1
            return found

    previous_backend = get_default_backend()
    if backend is not None:
        set_default_backend(backend)
    try:
        t0 = time.perf_counter()
        result = execute(spec, deps, max_events_guard=guard, images=images)
        return result, time.perf_counter() - t0, served
    finally:
        if backend is not None:
            set_default_backend(previous_backend)


class ExperimentEngine:
    """Executes batches of run specs with dedupe, caching, and parallelism.

    Args:
        jobs: worker processes; ``1`` (the default) runs in-process.
        cache: optional :class:`ResultCache`; hits skip simulation.
        max_events: per-job event guard for specs without their own.
        progress: emit one line per executed job on stderr.
        backend: kernel execution backend for every job (``None`` =
            the process default / ``REPRO_SIM_BACKEND`` / auto).  The
            name is resolved to a concrete backend *here* and forwarded
            to spawned workers, so serial and parallel execution always
            run the same backend.
        dispatch: job-dispatch backend (``None`` = the process default
            / ``REPRO_DISPATCH`` / auto — see
            :mod:`repro.harness.dispatch`).  ``local-pool`` is the
            historical pool, ``inline`` runs in-process, ``service``
            ships jobs to a long-lived ``repro-mpi serve`` server.
        service: ``HOST:PORT`` of the experiment service (``service``
            dispatch only; falls back to ``$REPRO_SERVICE_ADDR``).
        recovery: automatic crash recovery for submitted specs whose
            results crashed.  ``None``/``False`` disables (callers can
            still opt in per batch with ``run_batch(..., recover=True)``,
            which resolves a policy through
            :func:`repro.harness.recovery.resolve_policy`); ``True``
            enables with the resolved default policy; a
            :class:`~repro.harness.recovery.RecoveryPolicy` enables with
            that budget.  Recovered specs' entries in the returned map
            are substituted with the chain's final (clean) result — the
            cache keeps every leg, including the crashed ones, under
            their own keys.

    The engine is a context manager; ``close()`` releases dispatch
    resources (the service connection).  Both are optional for the
    in-process backends.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        cache: ResultCache | None = None,
        max_events: int | None = DEFAULT_MAX_EVENTS,
        progress: bool = False,
        backend: str | None = None,
        dispatch: str | None = None,
        service: str | None = None,
        recovery=None,
    ):
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.max_events = max_events
        self.progress = progress
        self.backend = resolve_backend(backend)
        self.dispatch = resolve_dispatch(dispatch)
        # Resolve the address eagerly: a service engine with no server
        # to talk to should fail at construction, not mid-batch.
        self.service_addr = (
            resolve_service_addr(service) if self.dispatch == "service" else None
        )
        self.recovery = recovery
        self.last_stats: EngineStats | None = None
        self._dispatcher: DispatchBackend | None = None

    def _dispatch_backend(self) -> DispatchBackend:
        """The engine's (lazily created, engine-lived) dispatch backend.

        Long-lived on purpose: the service connection persists across
        waves and batches, so a sweep is one client session server-side.
        """
        if self._dispatcher is None:
            self._dispatcher = create_dispatch(
                self.dispatch,
                DispatchConfig(
                    jobs=self.jobs,
                    cache_dir=None if self.cache is None else self.cache.root,
                    guard=self.max_events,
                    sim_backend=self.backend,
                    service_addr=self.service_addr,
                ),
            )
        return self._dispatcher

    def close(self) -> None:
        """Release dispatch resources (idempotent)."""
        if self._dispatcher is not None:
            self._dispatcher.close()
            self._dispatcher = None

    def __enter__(self) -> "ExperimentEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ----------------------------------------------------------------- #

    def run(self, spec: RunSpec) -> RunResult:
        """Run a single spec (one-element batch)."""
        return self.run_batch([spec])[spec]

    def run_sweep(self, sweep) -> dict[RunSpec, RunResult]:
        """Execute a :class:`~repro.harness.sweep.Sweep` as ONE batch.

        The sweep's masked (NA) cells never reach the engine; the
        executable product is submitted in one deduplicated batch so
        cells sharing a spec — or a probe/restart parent — simulate
        once.  Returns the result map :meth:`Sweep.fold` consumes.
        """
        return self.run_batch(sweep.specs())

    def run_batch(
        self, specs: Sequence[RunSpec], *, recover: bool | None = None
    ) -> dict[RunSpec, RunResult]:
        """Run many specs; returns results keyed by the submitted specs.

        ``recover`` overrides the engine's ``recovery`` setting for this
        batch: ``True`` chases every crashed submitted spec with a
        bounded restart chain after the waves drain (see
        :mod:`repro.harness.recovery`), ``False`` suppresses it (the
        planner itself runs its legs this way), ``None`` follows the
        engine.
        """
        t0 = time.perf_counter()
        stats = EngineStats(submitted=len(specs))

        unique: dict[RunSpec, None] = {}
        for spec in specs:
            unique.setdefault(spec, None)
        stats.unique = len(unique)

        # Dependency closure over *pruned* parent edges, then waves by
        # effective chain depth: a spec only runs once every remaining
        # ancestor's result is available to pass along.  The pruning is
        # the restart-chain short-circuit — a restart whose parent
        # images are already in the cache's image tier needs no parent
        # job at all (execution loads the images directly), so that
        # edge, and everything reachable only through it, is dropped
        # and the restart schedules as wave-0 work.
        parent_memo: dict[RunSpec, tuple[RunSpec, ...]] = {}

        def parents_of(spec: RunSpec) -> tuple[RunSpec, ...]:
            known = parent_memo.get(spec)
            if known is None:
                known = spec.parents()
                if (
                    self.cache is not None
                    and spec.restart_of is not None
                    and self.cache.has_images(spec.restart_of, spec.restart_ckpt)
                ):
                    known = tuple(p for p in known if p != spec.restart_of)
                parent_memo[spec] = known
            return known

        closure: dict[RunSpec, None] = {}
        for spec in unique:
            stack = list(parents_of(spec))
            while stack:
                node = stack.pop()
                if node in closure:
                    continue
                closure[node] = None
                stack.extend(parents_of(node))
            closure.setdefault(spec, None)
        stats.chained = len(closure) - stats.unique

        # Effective depth over the pruned graph, iteratively (restart
        # chains can be thousands of links deep; no recursion).
        depths: dict[RunSpec, int] = {}
        for spec in closure:
            stack = [spec]
            while stack:
                node = stack[-1]
                if node in depths:
                    stack.pop()
                    continue
                parents = parents_of(node)
                missing = [p for p in parents if p not in depths]
                if missing:
                    stack.extend(missing)
                    continue
                depths[node] = (
                    1 + max(depths[p] for p in parents) if parents else 0
                )
                stack.pop()

        waves: dict[int, list[RunSpec]] = {}
        for spec in closure:
            waves.setdefault(depths[spec], []).append(spec)

        resolved: dict[RunSpec, RunResult] = {}
        total = len(closure)
        done = 0
        for depth in sorted(waves):
            pending: list[RunSpec] = []
            for spec in waves[depth]:
                if self.cache is not None:
                    hit = self.cache.get(spec)
                    if hit is not None:
                        resolved[spec] = hit
                        stats.cache_hits += 1
                        done += 1
                        self._report(done, total, spec, "cached")
                        continue
                pending.append(spec)
            # Longest pole first: with workers this stops the batch tail
            # from hiding behind a late-started slow job; serially it
            # just front-loads the expensive cells.  Stable sort keeps
            # equal-cost specs in submission order (determinism).
            pending.sort(key=lambda spec: self._predicted_cost(spec, stats),
                         reverse=True)
            for spec, result, elapsed, served, cached in self._execute_wave(
                pending, resolved
            ):
                resolved[spec] = result
                if cached:
                    # Served from the service's shared store without a
                    # simulation anywhere — a cache hit, just one that
                    # was discovered server-side instead of locally.
                    stats.cache_hits += 1
                else:
                    stats.executed += 1
                stats.images_reused += served
                done += 1
                self._report(done, total, spec, "cached" if cached else "ran")
                if self.cache is not None and not cached:
                    self.cache.put(spec, result, elapsed=elapsed)

        # Automatic crash recovery: after every wave has drained (so the
        # dispatch backend is idle and each leg can batch on its own),
        # chase submitted specs whose results crashed with a bounded
        # restart chain.  Only the *returned map* sees the substitution —
        # the cache keeps the crashed leg under its own key, and the
        # chain's legs cache under theirs.
        do_recover = bool(self.recovery) if recover is None else recover
        if do_recover:
            from .recovery import RecoveryPolicy, resolve_policy, run_recovery

            policy = resolve_policy(
                self.recovery if isinstance(self.recovery, RecoveryPolicy)
                else None
            )
            for spec in unique:
                result = resolved[spec]
                if not result.crashed_ranks:
                    continue
                outcome = run_recovery(
                    spec, policy, engine=self, initial=result
                )
                stats.recoveries += 1
                stats.recovery_attempts += outcome.recovery_legs
                if self.progress:
                    print(
                        f"[engine] {outcome.describe()}: {spec.label()}",
                        file=sys.stderr,
                        flush=True,
                    )
                if outcome.completed:
                    resolved[spec] = outcome.final_result

        stats.wall_time = time.perf_counter() - t0
        self.last_stats = stats
        return {spec: resolved[spec] for spec in unique}

    def run_recovery(self, spec: RunSpec, policy=None, *, leg_faults=()):
        """Run one spec under explicit crash recovery (see
        :func:`repro.harness.recovery.run_recovery`); legs execute
        through this engine's cache and dispatch backend."""
        from .recovery import run_recovery

        return run_recovery(
            spec, policy, leg_faults=leg_faults, engine=self
        )

    # ----------------------------------------------------------------- #

    def _predicted_cost(self, spec: RunSpec, stats: EngineStats) -> float:
        """Estimated execution seconds for wave ordering."""
        if self.cache is not None:
            recorded = self.cache.recorded_time(spec)
            if recorded is not None:
                stats.predicted_recorded += 1
                return recorded
        stats.predicted_heuristic += 1
        return spec.cost_hint() * HEURISTIC_SECONDS_PER_UNIT

    def _deps_for(
        self, spec: RunSpec, resolved: Mapping[RunSpec, RunResult]
    ) -> dict[RunSpec, RunResult]:
        return {
            ancestor: resolved[ancestor]
            for ancestor in spec.ancestors()
            if ancestor in resolved
        }

    def _execute_wave(
        self,
        pending: Sequence[RunSpec],
        resolved: Mapping[RunSpec, RunResult],
    ) -> Iterable[tuple[RunSpec, RunResult, float, int, bool]]:
        """Fan one wave out through the dispatch backend.

        Yields ``(spec, result, elapsed, served, cached)`` in whatever
        order the backend completes jobs; the caller keys by spec, so
        ordering only affects progress lines, never results.
        """
        if not pending:
            return
        backend = self._dispatch_backend()
        for spec in pending:
            backend.submit(spec, self._deps_for(spec, resolved))
        for job in backend.drain():
            result, elapsed, served, cached = job.result()
            yield job.spec, result, elapsed, served, cached

    def _report(self, done: int, total: int, spec: RunSpec, how: str) -> None:
        if self.progress:
            print(
                f"[engine {done}/{total}] {how}: {spec.label()}",
                file=sys.stderr,
                flush=True,
            )
